"""Combining phase of BPart (§3.3, Figure 9).

The partitioning phase over-splits the graph into many small pieces
whose ``|V_i|`` and ``|E_i|`` distributions are *inversely proportional*
(the weighted indicator makes small-vertex pieces edge-heavy). This
module implements:

- :func:`pair_by_vertex_count` — one combination round: sort pieces by
  ``|V_i|`` and merge the fewest-vertices piece (most edges) with the
  most-vertices piece (fewest edges), second-fewest with second-most,
  and so on (the ⤨ pattern of Figure 9).
- :func:`combine_assignment` — apply a pairing to an assignment.
- :func:`multi_layer_combine` — the full driver: at layer ``ℓ`` the
  remaining graph is split into ``2^ℓ · N_r`` pieces and combined for
  ``ℓ`` rounds; combined subgraphs within the balance thresholds in both
  dimensions are finalised, the rest re-enter the next layer. The paper
  reports 2–3 layers suffice; ``max_layers`` caps the loop and the final
  layer finalises unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import telemetry
from repro.errors import PartitionError
from repro.graph.csr import CSRGraph
from repro.graph.subgraph import extract_subgraph
from repro.partition.metrics import bias

__all__ = ["pair_by_vertex_count", "combine_assignment", "multi_layer_combine", "CombinePlan", "LayerTrace"]


@dataclass(frozen=True)
class CombinePlan:
    """One round's piece → merged-part mapping (``new_id[piece]``)."""

    mapping: np.ndarray
    num_merged: int


@dataclass
class LayerTrace:
    """Diagnostics for one layer of :func:`multi_layer_combine`."""

    layer: int
    num_pieces: int
    num_targets: int
    finalized: list[int] = field(default_factory=list)
    vertex_bias_after: float = 0.0
    edge_bias_after: float = 0.0


def pair_by_vertex_count(vertex_counts: np.ndarray) -> CombinePlan:
    """Pair pieces smallest-|V| with largest-|V| (one combine round).

    With an even number of pieces ``2t`` this produces ``t`` merged
    parts. An odd piece count leaves the median piece unpaired as its
    own merged part (supports non-power-of-two targets).
    """
    vc = np.asarray(vertex_counts)
    p = vc.size
    if p == 0:
        raise PartitionError("cannot combine zero pieces")
    order = np.argsort(vc, kind="stable")
    t = p // 2
    mapping = np.empty(p, dtype=np.int32)
    # order[i] (i-th fewest vertices) merges with order[p-1-i].
    for i in range(t):
        mapping[order[i]] = i
        mapping[order[p - 1 - i]] = i
    if p % 2 == 1:
        mapping[order[t]] = t
    return CombinePlan(mapping=mapping, num_merged=t + (p % 2))


def combine_assignment(parts: np.ndarray, plan: CombinePlan) -> np.ndarray:
    """Relabel a piece-id vector through one combine round."""
    return plan.mapping[parts]


def multi_layer_combine(
    graph: CSRGraph,
    partition_fn: Callable[[CSRGraph, int], np.ndarray],
    num_parts: int,
    *,
    oversplit_base: int = 2,
    base_rounds: int = 2,
    balance_threshold: float = 0.1,
    max_layers: int = 3,
) -> tuple[np.ndarray, list[LayerTrace]]:
    """Run the full multi-layer combination of Figure 9.

    Parameters
    ----------
    graph:
        The original graph.
    partition_fn:
        ``(subgraph, num_pieces) → piece ids`` — BPart passes its
        weighted streaming pass here. Called once per layer on the
        induced subgraph of the not-yet-finalised vertices.
    num_parts:
        Target part count ``N``.
    oversplit_base:
        Pieces per target per combine round (paper: 2).
    base_rounds:
        Combine rounds in the first layer; layer ℓ runs
        ``base_rounds + ℓ − 1`` rounds over
        ``oversplit_base^rounds · N_r`` pieces. The paper's Figure 9
        shows 1 round (2N pieces) in layer 1; empirically a single
        min–max pairing round cannot absorb a hub-dominated outlier
        piece, while 2 rounds (4N pieces) reaches the paper's < 0.1
        bias in one layer, consistent with its "two or three rounds of
        combinations" remark. Default 2.
    balance_threshold:
        ε — a combined subgraph is *final* when both ``|V_i|`` and
        ``|E_i|`` are within ``(1 ± ε)`` of the global targets
        ``|V|/N`` and ``|E|/N``.
    max_layers:
        Layer cap; the last layer finalises every remaining subgraph.

    Returns
    -------
    (parts, traces):
        Final assignment into ``num_parts`` parts and per-layer
        diagnostics.
    """
    n = graph.num_vertices
    if num_parts > n:
        raise PartitionError(f"cannot split {n} vertices into {num_parts} parts")
    degrees = graph.degrees
    v_target = n / num_parts
    e_target = graph.num_edges / num_parts

    final = np.full(n, -1, dtype=np.int32)
    next_id = 0
    remaining = np.ones(n, dtype=bool)
    traces: list[LayerTrace] = []

    for layer in range(1, max_layers + 1):
        n_remaining_parts = num_parts - next_id
        if n_remaining_parts <= 0:
            break
        rem_count = int(remaining.sum())
        last = layer == max_layers or n_remaining_parts == 1

        sub = extract_subgraph(graph, remaining)
        rounds = base_rounds + layer - 1
        pieces = (oversplit_base**rounds) * n_remaining_parts
        # Degenerate small remainders: never ask for more pieces than
        # vertices; shrink the round count to keep pairing meaningful.
        while rounds > 0 and pieces > rem_count:
            rounds -= 1
            pieces = (oversplit_base**rounds) * n_remaining_parts
        pieces = min(pieces, rem_count)

        piece_parts = np.asarray(partition_fn(sub.graph, pieces), dtype=np.int32)
        if piece_parts.size != rem_count:
            raise PartitionError("partition_fn returned wrong-length assignment")

        cur_k = pieces
        # Merge rounds: each halves the piece count back toward N_r using
        # the inverse-proportionality pairing.
        global_vertex_ids = sub.global_ids
        for _ in range(rounds):
            vc = np.bincount(piece_parts, minlength=cur_k)
            plan = pair_by_vertex_count(vc)
            piece_parts = combine_assignment(piece_parts, plan)
            cur_k = plan.num_merged

        vcnt = np.bincount(piece_parts, minlength=cur_k).astype(np.float64)
        ecnt = np.bincount(
            piece_parts, weights=degrees[global_vertex_ids].astype(np.float64), minlength=cur_k
        )
        trace = LayerTrace(
            layer=layer,
            num_pieces=pieces,
            num_targets=cur_k,
            vertex_bias_after=bias(vcnt) if vcnt.size else 0.0,
            edge_bias_after=bias(ecnt) if ecnt.size else 0.0,
        )
        if telemetry.enabled():
            reg = telemetry.active()
            reg.counter("partition.combine.layers").inc()
            reg.counter("partition.combine.pieces").inc(pieces)
            reg.gauge("partition.combine.vertex_bias", layer=layer).set(
                trace.vertex_bias_after
            )
            reg.gauge("partition.combine.edge_bias", layer=layer).set(
                trace.edge_bias_after
            )

        eps = balance_threshold
        dev_v = np.abs(vcnt - v_target) / v_target
        # Edgeless graphs have e_target = 0: the edge dimension is then
        # trivially balanced.
        dev_e = np.abs(ecnt - e_target) / e_target if e_target > 0 else np.zeros(cur_k)
        dev = np.maximum(dev_v, dev_e)
        if last:
            ok = np.ones(cur_k, dtype=bool)
        else:
            # Finalise best-balanced parts first, but never let the
            # remainder drift: each finalised part removes its share from
            # the pool the later layers must still split into the
            # remaining slots, so if we greedily keep parts that all sit
            # slightly below target, the leftover slots are doomed to
            # overshoot. Accept a part only while the remainder's
            # per-slot mean stays within ε/2 of the global target in
            # both dimensions.
            ok = np.zeros(cur_k, dtype=bool)
            rem_v, rem_e, rem_k = float(vcnt.sum()), float(ecnt.sum()), cur_k
            for p in np.argsort(dev, kind="stable"):
                if dev[p] > eps:
                    break
                nv, ne, nk = rem_v - vcnt[p], rem_e - ecnt[p], rem_k - 1
                if nk > 0 and (
                    abs(nv / nk - v_target) > 0.5 * eps * v_target
                    or abs(ne / nk - e_target) > 0.5 * eps * e_target
                ):
                    continue  # a differently-sided part may still fit
                ok[p] = True
                rem_v, rem_e, rem_k = nv, ne, nk
            if 0 < int((~ok).sum()) < 2:
                # Exactly one part would remain: a later layer cannot
                # re-balance a single subgraph (no pairing freedom), so
                # hold back the worst finalised part too.
                passing = np.nonzero(ok)[0]
                ok[passing[np.argmax(dev[passing])]] = False
        for p in range(cur_k):
            if ok[p]:
                members = global_vertex_ids[piece_parts == p]
                # Guard against overshoot if a layer produced more merged
                # parts than target slots remain (only possible when the
                # remainder was too small to pair down fully): dump
                # extras into the last slot.
                part_id = min(next_id, num_parts - 1)
                final[members] = part_id
                remaining[members] = False
                trace.finalized.append(part_id)
                if next_id < num_parts:
                    next_id += 1
        traces.append(trace)
        if not remaining.any():
            break

    if remaining.any():  # pragma: no cover - defensive; last layer finalises all
        final[remaining] = num_parts - 1
    return final, traces
