"""Reference streaming-assignment kernel: the original NumPy loop.

This is the bit-exact specification the other backends are tested
against. Each vertex issues a handful of small NumPy calls (fancy
index, mask, ``bincount``, ``power``, ``argmax``), so interpreter and
ufunc-dispatch overhead dominates for the small ``k`` the paper uses —
see :mod:`repro.partition.kernels.incremental` for the same semantics
without the per-vertex dispatch cost.
"""

from __future__ import annotations

import numpy as np

from repro.partition.kernels.base import KernelBackend, register_kernel

__all__ = ["BACKEND"]


def fennel_scalar(
    indptr: np.ndarray,
    indices: np.ndarray,
    stream: np.ndarray,
    parts: np.ndarray,
    loads: np.ndarray,
    weights: np.ndarray,
    *,
    alpha: float,
    gamma: float,
    capacity: float,
    passes: int,
) -> None:
    k = loads.shape[0]
    scores = np.empty(k, dtype=np.float64)
    penalty = np.empty(k, dtype=np.float64)
    gamma_minus_1 = gamma - 1.0
    ag = alpha * gamma

    for _pass in range(passes):
        for v in stream:
            current = parts[v]
            if current >= 0:
                # Re-streaming: release v's load before re-scoring.
                loads[current] -= weights[v]
            nbrs = indices[indptr[v] : indptr[v + 1]]
            assigned = parts[nbrs]
            assigned = assigned[assigned >= 0]
            # Score: neighbour overlap minus the balance penalty.
            np.power(loads, gamma_minus_1, out=penalty)
            penalty *= ag
            if assigned.size:
                np.subtract(
                    np.bincount(assigned, minlength=k).astype(np.float64),
                    penalty,
                    out=scores,
                )
            else:
                np.negative(penalty, out=scores)
            # Exclude saturated parts; if every part is saturated (can
            # happen for the final few heavy vertices), fall back to
            # least-loaded.
            over = loads >= capacity
            if over.all():
                choice = int(np.argmin(loads))
            else:
                scores[over] = -np.inf
                choice = int(np.argmax(scores))
            parts[v] = choice
            loads[choice] += weights[v]


def ldg_scalar(
    indptr: np.ndarray,
    indices: np.ndarray,
    stream: np.ndarray,
    parts: np.ndarray,
    loads: np.ndarray,
    *,
    capacity: float,
) -> None:
    k = loads.shape[0]
    scores = np.empty(k, dtype=np.float64)
    for v in stream:
        nbrs = indices[indptr[v] : indptr[v + 1]]
        assigned = parts[nbrs]
        assigned = assigned[assigned >= 0]
        weight = 1.0 - loads / capacity
        if assigned.size:
            np.multiply(
                np.bincount(assigned, minlength=k).astype(np.float64),
                weight,
                out=scores,
            )
        else:
            scores[:] = weight  # empty overlap → fill least loaded
        scores[loads >= capacity] = -np.inf
        if np.isneginf(scores).all():
            choice = int(np.argmin(loads))
        else:
            choice = int(np.argmax(scores))
        parts[v] = choice
        loads[choice] += 1.0


def single_scalar(
    overlap: np.ndarray,
    loads: np.ndarray,
    *,
    alpha: float,
    gamma: float,
    capacity: float,
) -> int:
    penalty = alpha * gamma * loads ** (gamma - 1.0)
    scores = overlap - penalty
    over = loads >= capacity
    if over.all():
        return int(np.argmin(loads))
    scores[over] = -np.inf
    return int(np.argmax(scores))


BACKEND = KernelBackend(
    name="scalar",
    fennel=fennel_scalar,
    ldg=ldg_scalar,
    single=single_scalar,
    exact=True,
    description="per-vertex NumPy loop (bit-exact reference)",
)
register_kernel(BACKEND)
