"""Per-machine computation cost model.

The simulator converts abstract work counts into seconds. Defaults are
calibrated to the paper's hardware (2 × 24-core Xeon E5-2650 v4): a
random-walk step or an edge update is a few tens of nanoseconds of
per-core work in KnightKing/Gemini, and each machine spreads its local
work across its cores.

Only *ratios* matter for every figure reproduced here (normalized
running time, waiting ratio, load distributions), so the absolute
constants need not be exact — but keeping them physical makes simulated
runtimes land in a plausible range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import check_nonnegative

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Seconds of work per unit, per machine.

    Attributes
    ----------
    step_cost:    seconds of single-core work per walker step.
    edge_cost:    seconds of single-core work per edge processed.
    vertex_cost:  seconds of single-core work per active vertex.
    cores:        cores per machine; local work is divided by this.
                  May be a per-machine array (aligned with the work
                  arrays) to model a *heterogeneous* cluster — e.g. one
                  straggler with half the cores, the failure mode
                  balanced partitioning cannot fix but the ledger should
                  expose.
    """

    step_cost: float = 5e-8
    edge_cost: float = 2e-8
    vertex_cost: float = 1e-8
    cores: int | tuple[int, ...] = 48

    def __post_init__(self) -> None:
        check_nonnegative("step_cost", self.step_cost)
        check_nonnegative("edge_cost", self.edge_cost)
        check_nonnegative("vertex_cost", self.vertex_cost)
        cores = np.asarray(self.cores)
        if cores.size == 0 or (cores <= 0).any():
            raise ConfigurationError(f"cores must be positive, got {self.cores!r}")
        # Normalise sequences to a hashable tuple so the dataclass stays
        # frozen-friendly.
        if cores.ndim:
            object.__setattr__(self, "cores", tuple(int(c) for c in cores))

    @property
    def cores_array(self) -> np.ndarray | int:
        """Cores as an array (heterogeneous) or scalar (uniform)."""
        return np.asarray(self.cores) if isinstance(self.cores, tuple) else self.cores

    def compute_seconds(
        self,
        *,
        steps: np.ndarray | float = 0.0,
        edges: np.ndarray | float = 0.0,
        vertices: np.ndarray | float = 0.0,
    ) -> np.ndarray | float:
        """Convert per-machine work counts into per-machine seconds.

        Accepts scalars or aligned arrays (one entry per machine) and
        broadcasts; with per-machine ``cores`` the arrays must align
        with the machine axis.
        """
        total = (
            np.asarray(steps, dtype=np.float64) * self.step_cost
            + np.asarray(edges, dtype=np.float64) * self.edge_cost
            + np.asarray(vertices, dtype=np.float64) * self.vertex_cost
        )
        return total / self.cores_array
