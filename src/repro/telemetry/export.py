"""Telemetry export formats: canonical JSON, Prometheus text, chrome trace.

Three consumers, three renderings of one :class:`MetricsRegistry`:

- :func:`to_json` — canonical JSON (sorted keys, compact separators).
  The deterministic subset serialises to identical bytes for identical
  jobs, so it can sit next to cached artifacts without breaking their
  byte-stability; wall-clock material is opt-in and clearly fenced
  under ``"nondeterministic"``.
- :func:`to_prometheus` — the Prometheus text exposition format
  (``# TYPE`` headers, ``_total``/``_bucket``/``_sum``/``_count``
  conventions) so a scraper or ``promtool`` can consume a run's
  metrics directly.
- :func:`spans_to_chrome_events` — span intervals as chrome-tracing
  "X" events on a dedicated telemetry track, mergeable with the BSP
  schedule exported by :mod:`repro.cluster.trace`.
"""

from __future__ import annotations

import json
import re

from repro.telemetry.registry import MetricsRegistry

__all__ = [
    "to_json",
    "to_prometheus",
    "spans_to_chrome_events",
    "render_table",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def to_json(registry: MetricsRegistry, *, include_nondeterministic: bool = False) -> str:
    """Canonical JSON form (sorted keys, no whitespace)."""
    return json.dumps(
        registry.snapshot(include_nondeterministic=include_nondeterministic),
        sort_keys=True,
        separators=(",", ":"),
    )


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _prom_labels(labels, extra: str = "") -> str:
    parts = [
        f'{_LABEL_RE.sub("_", str(k))}="{_escape(v)}"' for k, v in labels
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _prom_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format (v0.0.4).

    Counters gain the conventional ``_total`` suffix, timers render as
    summaries in ``_seconds`` units, histograms expose cumulative
    ``_bucket{le=...}`` series plus ``_sum``/``_count``.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def header(pname: str, ptype: str) -> None:
        if pname not in typed:
            typed.add(pname)
            lines.append(f"# TYPE {pname} {ptype}")

    for m in registry.metrics():
        if m.kind == "counter":
            pname = _prom_name(m.name) + "_total"
            header(pname, "counter")
            lines.append(f"{pname}{_prom_labels(m.labels)} {_prom_value(m.value)}")
        elif m.kind == "gauge":
            pname = _prom_name(m.name)
            header(pname, "gauge")
            lines.append(f"{pname}{_prom_labels(m.labels)} {_prom_value(m.value)}")
        elif m.kind in ("histogram", "bounded_histogram"):
            pname = _prom_name(m.name)
            header(pname, "histogram")
            cumulative = 0
            for bound, count in zip(m.buckets, m.bucket_counts):
                cumulative += count
                le = 'le="' + repr(bound) + '"'
                lines.append(f"{pname}_bucket{_prom_labels(m.labels, le)} {cumulative}")
            inf_le = 'le="+Inf"'
            lines.append(f"{pname}_bucket{_prom_labels(m.labels, inf_le)} {m.count}")
            lines.append(f"{pname}_sum{_prom_labels(m.labels)} {repr(float(m.sum))}")
            lines.append(f"{pname}_count{_prom_labels(m.labels)} {m.count}")
        else:  # timer → summary in seconds
            pname = _prom_name(m.name)
            if not pname.endswith("_seconds"):
                pname += "_seconds"
            header(pname, "summary")
            lines.append(f"{pname}_sum{_prom_labels(m.labels)} {repr(float(m.seconds))}")
            lines.append(f"{pname}_count{_prom_labels(m.labels)} {m.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def spans_to_chrome_events(registry: MetricsRegistry, *, tid: int = 0) -> list[dict]:
    """Render recorded spans as chrome-tracing complete ("X") events.

    Spans live on their own process track (``pid=1``, named
    ``telemetry``) so merging them with a BSP schedule (machine tracks
    on ``pid=0``) keeps the two timelines visually separate.
    """
    if not registry.spans:
        return []
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 1, "args": {"name": "telemetry"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid, "args": {"name": "spans"}},
    ]
    for span in registry.spans:
        events.append(
            {
                "name": span["name"],
                "cat": "span",
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": span["ts"] * 1e6,
                "dur": span["dur"] * 1e6,
                "args": dict(span["args"]),
            }
        )
    return events


def render_table(registry: MetricsRegistry) -> str:
    """Human-readable listing for the ``repro-bench metrics`` CLI."""
    rows: list[str] = []
    for m in registry.metrics():
        if m.kind == "counter":
            rows.append(f"counter    {m.key:56s} {_prom_value(m.value)}")
        elif m.kind == "gauge":
            rows.append(f"gauge      {m.key:56s} {m.value:.6g}")
        elif m.kind in ("histogram", "bounded_histogram"):
            rows.append(
                f"histogram  {m.key:56s} count={m.count} sum={m.sum:.6g}"
                + (f" min={m.min:.3g} max={m.max:.3g}" if m.count else "")
            )
        else:
            rows.append(
                f"timer      {m.key:56s} count={m.count} seconds={m.seconds:.6f}"
            )
    if registry.spans:
        rows.append(f"spans      {len(registry.spans)} recorded")
    return "\n".join(rows) if rows else "(no metrics recorded)"
