"""Edge-partition data model and partitioner interface."""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError, PartitionError
from repro.graph.csr import CSRGraph
from repro.utils.timing import WallClock

__all__ = ["canonical_edges", "EdgePartition", "EdgePartitioner"]


def canonical_edges(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Each undirected edge once, as ``(u, v)`` with ``u < v``.

    For directed graphs, every arc is its own edge.
    """
    src, dst = graph.edge_array()
    if graph.directed:
        return src.astype(np.int64), dst.astype(np.int64)
    keep = src < dst
    return src[keep].astype(np.int64), dst[keep].astype(np.int64)


class EdgePartition:
    """An edge → part mapping plus derived replication structure.

    Attributes
    ----------
    src, dst:   the canonical edge arrays the mapping refers to.
    edge_parts: part id per edge.
    num_parts:  ``k``.
    """

    __slots__ = ("graph", "src", "dst", "edge_parts", "num_parts", "_copies")

    def __init__(
        self,
        graph: CSRGraph,
        src: np.ndarray,
        dst: np.ndarray,
        edge_parts: np.ndarray,
        num_parts: int,
    ) -> None:
        if not (src.size == dst.size == edge_parts.size):
            raise PartitionError("edge arrays and edge_parts length mismatch")
        if edge_parts.size and (edge_parts.min() < 0 or edge_parts.max() >= num_parts):
            raise PartitionError("edge part ids outside [0, num_parts)")
        self.graph = graph
        self.src = src
        self.dst = dst
        self.edge_parts = np.ascontiguousarray(edge_parts, dtype=np.int32)
        self.num_parts = int(num_parts)
        self._copies: np.ndarray | None = None

    @property
    def num_edges(self) -> int:
        return self.src.size

    @property
    def edge_counts(self) -> np.ndarray:
        """Edges per part (the dimension vertex-cut schemes balance)."""
        return np.bincount(self.edge_parts, minlength=self.num_parts).astype(np.int64)

    @property
    def copies(self) -> np.ndarray:
        """Number of parts each vertex is replicated into (0 for
        isolated vertices)."""
        if self._copies is None:
            n = self.graph.num_vertices
            k = self.num_parts
            # membership matrix via unique (vertex, part) pairs
            pairs = np.concatenate(
                [
                    self.src.astype(np.int64) * k + self.edge_parts,
                    self.dst.astype(np.int64) * k + self.edge_parts,
                ]
            )
            uniq = np.unique(pairs)
            self._copies = np.bincount((uniq // k).astype(np.int64), minlength=n).astype(
                np.int64
            )
        return self._copies

    def __repr__(self) -> str:
        return (
            f"EdgePartition(k={self.num_parts}, edges={self.num_edges}, "
            f"replication={self.copies[self.copies > 0].mean() if self.num_edges else 0:.3f})"
        )


class EdgePartitioner(abc.ABC):
    """Base class for vertex-cut (edge) partitioners."""

    name: str = "edge-base"

    def partition(self, graph: CSRGraph, num_parts: int) -> EdgePartition:
        """Partition the edge set of ``graph`` into ``num_parts`` parts."""
        if num_parts <= 0:
            raise ConfigurationError(f"num_parts must be positive, got {num_parts}")
        src, dst = canonical_edges(graph)
        clock = WallClock()
        with clock.measure("total"):
            edge_parts = self._assign(graph, src, dst, int(num_parts))
        part = EdgePartition(graph, src, dst, edge_parts, num_parts)
        return part

    @abc.abstractmethod
    def _assign(
        self, graph: CSRGraph, src: np.ndarray, dst: np.ndarray, num_parts: int
    ) -> np.ndarray:
        """Return the part id of every canonical edge."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
