"""Figure 15 — Hash vs BPart normalized computation time (Hash = 1).

Both schemes are 2-D balanced, so the difference isolates the *edge-cut*
effect. The paper: BPart 5–20 % faster on random-walk apps and 20–35 %
faster on iteration apps (PageRank, CC).
"""

from __future__ import annotations

from repro.bench.experiments._common import graph_for, partition_with
from repro.bench.harness import ExperimentConfig, ExperimentResult, register_experiment
from repro.bench.report import Table
from repro.bench.workloads import ALL_APPS, run_app

DATASETS = ("twitter", "friendster")
K = 8


@register_experiment("fig15", "Hash vs BPart normalized computation time (Hash = 1)")
def run(config: ExperimentConfig) -> ExperimentResult:
    result = ExperimentResult(
        "fig15", "Hash vs BPart normalized computation time (Hash = 1)"
    )
    for dataset in DATASETS:
        g = graph_for(config, dataset)
        hash_a = partition_with("hash", g, K, seed=config.seed).assignment
        bpart_a = partition_with("bpart", g, K, seed=config.seed).assignment
        table = Table(
            f"{dataset}: runtime / Hash runtime",
            ["app", "hash", "bpart", "reduction"],
            note="BPart 5-20% faster on walks, 20-35% on PageRank/CC (fewer cuts)",
        )
        for app in ALL_APPS:
            t_hash = run_app(app, g, hash_a, seed=config.seed).runtime
            t_bpart = run_app(app, g, bpart_a, seed=config.seed).runtime
            base = t_hash or 1e-12
            table.add_row(app, 1.0, t_bpart / base, 1.0 - t_bpart / base)
            result.data[(dataset, app)] = (t_hash, t_bpart)
        result.tables.append(table)
    return result
