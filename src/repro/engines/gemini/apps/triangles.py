"""Triangle counting via sparse matrix algebra.

Per-vertex triangle counts are ``diag(A³) / 2`` for symmetrised
adjacency; the global count divides by 3 again. Computed as
``(A·A) ∘ A`` row sums with SciPy sparse — one "superstep" whose
per-machine work is Σ d(v)² over local vertices (the cost of
enumerating each vertex's 2-paths), which is how distributed triangle
counters are load-modelled.

Memory scales with the number of length-2 paths (Σ d²); fine for the
bundled datasets, but quadratic-in-hub-degree — not for million-vertex
hubs.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.engines.gemini.vertex_program import VertexProgram
from repro.graph.csr import CSRGraph

__all__ = ["TriangleCount"]


class TriangleCount(VertexProgram):
    """Per-vertex triangle counts in a single dense superstep."""

    name = "triangle-count"
    max_iterations = 1

    def initialize(self, graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
        n = graph.num_vertices
        return np.zeros(n), np.ones(n, dtype=bool)

    def iterate(
        self, graph: CSRGraph, state: np.ndarray, active: np.ndarray, iteration: int
    ) -> tuple[np.ndarray, np.ndarray]:
        n = graph.num_vertices
        if graph.num_edges == 0:
            return np.zeros(n), np.zeros(n, dtype=bool)
        adj = sp.csr_matrix(
            (np.ones(graph.num_edges), graph.indices, graph.indptr), shape=(n, n)
        )
        paths2 = adj @ adj
        closed = paths2.multiply(adj)
        per_vertex = np.asarray(closed.sum(axis=1)).ravel() / 2.0
        return per_vertex, np.zeros(n, dtype=bool)

    @staticmethod
    def global_count(per_vertex: np.ndarray) -> int:
        """Total triangles from the per-vertex counts."""
        return int(round(per_vertex.sum() / 3.0))
