"""Shared helpers for experiment modules."""

from __future__ import annotations

from repro.bench.harness import ExperimentConfig
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset
from repro.partition.base import PartitionResult, get_partitioner

__all__ = ["DATASET_ORDER", "graph_for", "partition_with"]

#: presentation order used by the paper's tables.
DATASET_ORDER = ("livejournal", "twitter", "friendster")


def graph_for(config: ExperimentConfig, dataset: str) -> CSRGraph:
    """Load a stand-in dataset at the experiment's scale and seed."""
    return load_dataset(dataset, scale=config.scale, seed=config.seed)


def partition_with(
    name: str, graph: CSRGraph, num_parts: int, seed: int = 0, **kwargs
) -> PartitionResult:
    """Partition ``graph`` with the named algorithm."""
    return get_partitioner(name, seed=seed, **kwargs).partition(graph, num_parts)
