"""Churn: repartition daemon vs static hash vs periodic full BPart.

A planted-partition graph streams in, then a seeded churn tail mutates
it (community-respecting edge churn plus vertex departures/rejoins).
Three strategies track it:

- **daemon** — the prioritized-restreaming service: incremental BPart
  placement on arrival, one budgeted restream epoch every
  ``epoch_events`` events.
- **hash** — static ``hash(id) % k``; zero migrations, no structure.
- **bpart-full** — the paper's full two-phase scheme rerun from scratch
  on the live snapshot at every epoch boundary, migrating wholesale.

Quality is recovered-community ARI against the planted ground truth;
cost is cumulative migrations. The headline: the daemon's ARI beats
hash outright and matches-or-beats the periodic full rerun (whose
combining phase optimises two-dimensional *balance*, not community
alignment) at a tiny fraction of the migrations. The daemon run is a
pure function of (scenario, config) and rides the artifact cache as
canonical ledger bytes.
"""

from __future__ import annotations

from repro.bench.artifacts import cached_churn_ledger
from repro.bench.harness import ExperimentConfig, ExperimentResult, register_experiment
from repro.bench.report import Series, Table
from repro.partition.repartition import (
    ChurnScenario,
    PeriodicBPartBaseline,
    RepartitionDaemon,
    RepartitionLedger,
    static_hash_ari,
)

__all__ = ["churn", "run_daemon_ledger"]

_NUM_PARTS = 4
_EPOCH_EVENTS = 500
_BUDGET = 64
_FINAL_EPOCHS = 2


def scenario_for(config: ExperimentConfig) -> ChurnScenario:
    """The experiment's workload at the configured scale and seed."""
    n = max(int(2000 * config.scale), 200)
    return ChurnScenario(
        num_vertices=n,
        num_groups=_NUM_PARTS,
        churn_events=max(int(2000 * config.scale), 200),
        seed=config.seed,
    )


def run_daemon_ledger(
    scenario: ChurnScenario,
    *,
    num_parts: int = _NUM_PARTS,
    epoch_events: int = _EPOCH_EVENTS,
    budget: int = _BUDGET,
    final_epochs: int = _FINAL_EPOCHS,
    bypass_cache: bool = False,
) -> RepartitionLedger:
    """Run the daemon over the scenario (through the artifact cache)."""
    daemon_params = {
        "num_parts": num_parts,
        "epoch_events": epoch_events,
        "budget": budget,
        "final_epochs": final_epochs,
    }

    def _compute() -> str:
        daemon = RepartitionDaemon(
            num_parts,
            epoch_events=epoch_events,
            budget=budget,
            labels=scenario.labels(),
            scenario=scenario,
            seed=scenario.seed,
            expected_vertices=scenario.num_vertices,
        )
        return daemon.drain(scenario.events(), final_epochs=final_epochs).to_json()

    text = cached_churn_ledger(scenario, daemon_params, _compute, bypass=bypass_cache)
    return RepartitionLedger.from_json(text)


@register_experiment(
    "churn",
    "Repartition daemon vs static hash vs periodic full BPart under churn",
)
def churn(config: ExperimentConfig) -> ExperimentResult:
    scenario = scenario_for(config)
    events = scenario.events()
    ledger = run_daemon_ledger(scenario)
    last = ledger.epochs[-1]

    bpart = PeriodicBPartBaseline(
        _NUM_PARTS, epoch_events=_EPOCH_EVENTS, seed=config.seed
    )
    bpart.drain(events)
    labels = scenario.labels()
    residents = bpart.mirror.resident
    hash_ari = static_hash_ari(residents, labels, _NUM_PARTS, seed=config.seed)
    bpart_ari = bpart.ari(labels)
    daemon_ari = last.get("ari_after", 0.0)

    table = Table(
        title="recovered-community quality vs migration cost under churn",
        headers=("strategy", "final ARI", "migrations", "repartitions"),
        note="daemon must beat hash and stay within 10% of the full rerun",
    )
    table.add_row("daemon", f"{daemon_ari:.4f}", str(ledger.total_migrations), str(len(ledger.epochs)))
    table.add_row("hash", f"{hash_ari:.4f}", "0", "0")
    table.add_row("bpart-full", f"{bpart_ari:.4f}", str(bpart.migrations), str(bpart.repartitions))

    ari_series = Series(name="daemon ARI per epoch")
    cut_series = Series(name="daemon resident edge cut per epoch")
    for rec in ledger.epochs:
        if "ari_after" in rec:
            ari_series.add(rec["epoch"], rec["ari_after"])
        cut_series.add(rec["epoch"], rec["edge_cut_after"])

    budget_ok = all(rec["migrations"] <= rec["budget"] for rec in ledger.epochs)
    return ExperimentResult(
        experiment_id="churn",
        title="Long-running repartitioning under planted-partition churn",
        tables=[table],
        series=[ari_series, cut_series],
        notes=[
            f"scenario {scenario.digest()[:12]}, ledger {ledger.digest()[:12]}; "
            f"budget {_BUDGET}/epoch "
            f"({'never' if budget_ok else 'SOMETIMES'} exceeded)",
            "daemon > hash: "
            + ("PASS" if daemon_ari > hash_ari else "FAIL")
            + "; daemon >= 0.9x bpart-full: "
            + ("PASS" if daemon_ari >= 0.9 * bpart_ari else "FAIL"),
        ],
        data={
            ("churn", "ledger"): ledger.to_dict(),
            ("churn", "hash_ari"): hash_ari,
            ("churn", "bpart_ari"): bpart_ari,
            ("churn", "bpart_migrations"): bpart.migrations,
        },
    )
