"""Table 2 — partition wall-clock overhead (k = 8).

Ordering Chunk-V ~ Chunk-E << Hash < Fennel < BPart; BPart's extra
cost is the multi-layer combination.
"""


def test_table2(run_paper_experiment):
    result = run_paper_experiment("table2")
    assert result.tables or result.series
