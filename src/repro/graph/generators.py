"""Synthetic graph generators.

The paper's phenomena (one-dimensional balance skews the other
dimension; hubs concentrate in chunks) are driven by the *scale-free*
degree distribution of real social graphs. The primary generator here is
:func:`chung_lu`, which reproduces a prescribed power-law expected-degree
sequence and is fully vectorised — it is the engine behind the
LiveJournal/Twitter/Friendster stand-ins in :mod:`repro.graph.datasets`.

:func:`rmat` (the Graph500 generator) and :func:`barabasi_albert` are
provided as alternative skewed generators for ablations; the regular
graphs at the bottom (ring, grid, star, …) are deterministic fixtures
used throughout the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive, check_probability

__all__ = [
    "powerlaw_degrees",
    "chung_lu",
    "social_graph",
    "social_edge_batches",
    "rmat",
    "barabasi_albert",
    "erdos_renyi",
    "planted_partition",
    "ring_graph",
    "path_graph",
    "star_graph",
    "grid_graph",
    "complete_graph",
]


def powerlaw_degrees(
    num_vertices: int,
    avg_degree: float,
    exponent: float = 2.5,
    *,
    max_degree: int | None = None,
    order: str = "shuffle",
    rng=None,
) -> np.ndarray:
    """Expected-degree sequence following a power law.

    Uses the standard rank-based construction ``w_i ∝ (i + i0)^{-1/(γ-1)}``
    which yields a tail exponent of ``γ`` (``exponent``), then rescales so
    the mean equals ``avg_degree``.

    Parameters
    ----------
    num_vertices: number of vertices.
    avg_degree:   target mean degree.
    exponent:     power-law tail exponent γ (social graphs: 2–3).
    max_degree:   optional hub cap (defaults to ``n / 2``).
    order:
        ``"shuffle"`` — vertex id carries no degree information;
        ``"desc"`` / ``"asc"`` — degree monotone in id, modelling
        crawl-order datasets where early ids are the high-degree
        accounts (the paper's "high-degree vertices are easily gathered
        together" observation);
        ``"windows"`` — descending but shuffled inside small windows, so
        hubs cluster in id ranges without being exactly sorted.
    rng:          seed or generator for the shuffles.
    """
    check_positive("num_vertices", num_vertices)
    check_positive("avg_degree", avg_degree)
    if exponent <= 1.0:
        raise ConfigurationError(f"exponent must be > 1, got {exponent}")
    rng = as_rng(rng)
    n = int(num_vertices)
    ranks = np.arange(n, dtype=np.float64)
    # Offset i0 keeps the largest weight finite and tunes hub dominance.
    i0 = max(1.0, n * 0.001)
    w = (ranks + i0) ** (-1.0 / (exponent - 1.0))
    w *= avg_degree / w.mean()
    cap = float(max_degree if max_degree is not None else n // 2 or 1)
    np.minimum(w, cap, out=w)
    w *= avg_degree / w.mean()  # re-center mean after the cap
    np.minimum(w, cap, out=w)  # final cap wins; mean may land slightly low
    if order == "shuffle":
        rng.shuffle(w)
    elif order == "desc":
        pass  # already descending by construction
    elif order == "asc":
        w = w[::-1].copy()
    elif order == "windows":
        _shuffle_windows(w, max(16, n // 256), rng)
    else:
        raise ConfigurationError(
            f"order must be shuffle|desc|asc|windows, got {order!r}"
        )
    return w


def _shuffle_windows(values: np.ndarray, window: int, rng) -> None:
    """In-place shuffle restricted to consecutive windows of ``window``."""
    n = values.size
    for start in range(0, n, window):
        rng.shuffle(values[start : start + window])


def social_graph(
    num_vertices: int,
    avg_degree: float,
    exponent: float = 2.5,
    *,
    locality: float = 0.2,
    window_frac: float = 0.02,
    rng=None,
) -> CSRGraph:
    """Scale-free graph with the two id-structure properties of real
    social-network dumps.

    Real crawls (the paper's Twitter/Friendster/LiveJournal files) have:

    1. **Degree–id correlation** — early ids are old, high-degree
       accounts, so hubs cluster in id ranges. This is what makes
       Chunk-V's edge counts wildly imbalanced (Figure 6a) and Chunk-E's
       vertex counts wildly imbalanced (Figure 6b).
    2. **Id locality** — neighbouring accounts get nearby ids (crawl /
       community order), so contiguous chunks cut fewer edges than a
       random (hash) split, and Fennel can find genuinely low cuts
       (Table 3).

    Implementation: a Chung–Lu draw over a *windows-ordered* power-law
    weight sequence, where a ``locality`` fraction of edges is rewired to
    a uniformly random target inside ``±window_frac·n`` of the source.

    Parameters
    ----------
    locality:     fraction of edges rewired to nearby ids (0 = pure
                  Chung–Lu; calibrate against the dataset's chunk cut).
    window_frac:  half-width of the locality window as a fraction of n.
    """
    check_positive("num_vertices", num_vertices)
    check_positive("avg_degree", avg_degree)
    check_probability("locality", locality)
    check_fraction_local = 0.0 < window_frac <= 1.0
    if not check_fraction_local:
        raise ConfigurationError(f"window_frac must be in (0, 1], got {window_frac}")
    rng = as_rng(rng)
    n = int(num_vertices)
    w = powerlaw_degrees(n, avg_degree, exponent, order="windows", rng=rng)
    p = w / w.sum()
    m = int(round(n * avg_degree / 2 * 1.08))
    src = rng.choice(n, size=m, p=p)
    dst = rng.choice(n, size=m, p=p)
    local = rng.random(m) < locality
    n_local = int(local.sum())
    if n_local:
        half = max(1, int(round(n * window_frac)))
        offsets = rng.integers(1, half + 1, size=n_local) * rng.choice(
            np.array([-1, 1]), size=n_local
        )
        dst[local] = np.clip(src[local] + offsets, 0, n - 1)
    return from_edges(src, dst, n, directed=False)


def social_edge_batches(
    num_vertices: int,
    avg_degree: float,
    exponent: float = 2.5,
    *,
    locality: float = 0.2,
    window_frac: float = 0.02,
    rng=None,
    batch_size: int = 1 << 20,
):
    """:func:`social_graph`'s edge sampler as a bounded-memory stream.

    Yields ``(src, dst)`` batches of at most ``batch_size`` draws — the
    same weight sequence, sampling distribution, and locality rewiring,
    holding only O(n) weights plus one batch in memory. Feed the batches
    to a :class:`~repro.graph.sharded.ShardedCSRBuilder` to construct
    graphs larger than RAM.

    Deterministic for a fixed ``(seed, batch_size)``. Note the RNG is
    consumed per batch, so the realised graph differs from a one-shot
    :func:`social_graph` call with the same seed (same distribution,
    different sample) — out-of-core builds are their own dataset family,
    not a byte-level replay of the in-RAM one.
    """
    check_positive("num_vertices", num_vertices)
    check_positive("avg_degree", avg_degree)
    check_probability("locality", locality)
    if not 0.0 < window_frac <= 1.0:
        raise ConfigurationError(f"window_frac must be in (0, 1], got {window_frac}")
    check_positive("batch_size", batch_size)
    rng = as_rng(rng)
    n = int(num_vertices)
    w = powerlaw_degrees(n, avg_degree, exponent, order="windows", rng=rng)
    p = w / w.sum()
    m = int(round(n * avg_degree / 2 * 1.08))
    half = max(1, int(round(n * window_frac)))
    sign = np.array([-1, 1])
    for begin in range(0, m, int(batch_size)):
        b = min(int(batch_size), m - begin)
        src = rng.choice(n, size=b, p=p)
        dst = rng.choice(n, size=b, p=p)
        local = rng.random(b) < locality
        n_local = int(local.sum())
        if n_local:
            offsets = rng.integers(1, half + 1, size=n_local) * rng.choice(
                sign, size=n_local
            )
            dst[local] = np.clip(src[local] + offsets, 0, n - 1)
        yield src, dst


def chung_lu(
    num_vertices: int,
    avg_degree: float,
    exponent: float = 2.5,
    *,
    weights: np.ndarray | None = None,
    rng=None,
) -> CSRGraph:
    """Chung–Lu style random graph with a power-law degree sequence.

    Edges are sampled by drawing both endpoints proportionally to the
    weight sequence (an expected-degree configuration model). Self-loops
    and duplicates are dropped, so the realised average degree lands
    slightly below the target; the stand-in datasets compensate by
    oversampling ~5 %.

    Fully vectorised: two :meth:`Generator.choice` draws of ``m`` ids.
    """
    rng = as_rng(rng)
    n = int(num_vertices)
    if weights is None:
        weights = powerlaw_degrees(n, avg_degree, exponent, rng=rng)
    w = np.asarray(weights, dtype=np.float64)
    if w.size != n:
        raise ConfigurationError(f"weights length {w.size} != num_vertices {n}")
    p = w / w.sum()
    # Undirected edges; each contributes degree 2, so m = n·d̄/2. Oversample
    # to offset dedup/self-loop losses on heavy-tailed sequences.
    m = int(round(n * avg_degree / 2 * 1.05))
    src = rng.choice(n, size=m, p=p)
    dst = rng.choice(n, size=m, p=p)
    return from_edges(src, dst, n, directed=False)


def rmat(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    *,
    rng=None,
    directed: bool = False,
) -> CSRGraph:
    """R-MAT / Graph500 recursive-matrix generator.

    Generates ``2^scale`` vertices and ``edge_factor · 2^scale`` edges by
    recursively descending into quadrants of the adjacency matrix with
    probabilities ``(a, b, c, d = 1 - a - b - c)``. Vectorised across all
    edges: one pass per bit of the vertex id.
    """
    check_positive("scale", scale)
    check_positive("edge_factor", edge_factor)
    for name, val in (("a", a), ("b", b), ("c", c)):
        check_probability(name, val)
    d = 1.0 - a - b - c
    if d < 0:
        raise ConfigurationError(f"a + b + c must be <= 1, got {a + b + c}")
    rng = as_rng(rng)
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # At each level, pick a quadrant for every edge simultaneously.
    p_right = b + d  # probability the column bit is 1
    for bit in range(scale):
        r_col = rng.random(m)
        col = r_col < p_right
        # Row bit conditioned on the chosen column half.
        p_row_given_col1 = d / p_right if p_right > 0 else 0.0
        p_row_given_col0 = c / (a + c) if (a + c) > 0 else 0.0
        r_row = rng.random(m)
        row = np.where(col, r_row < p_row_given_col1, r_row < p_row_given_col0)
        src = (src << 1) | row
        dst = (dst << 1) | col
    # Permute vertex ids so hubs are not clustered at low ids — Chunk-V on
    # raw R-MAT ids would otherwise see a sorted-degree stream.
    perm = rng.permutation(n)
    return from_edges(perm[src], perm[dst], n, directed=directed)


def barabasi_albert(num_vertices: int, m: int = 4, *, rng=None) -> CSRGraph:
    """Barabási–Albert preferential attachment.

    Classic repeated-endpoints implementation: sequential by nature, so
    intended for test- and ablation-scale graphs (≲ 10^5 vertices).
    """
    check_positive("num_vertices", num_vertices)
    check_positive("m", m)
    n = int(num_vertices)
    if n <= m:
        raise ConfigurationError(f"num_vertices ({n}) must exceed m ({m})")
    rng = as_rng(rng)
    # Attachment pool: every endpoint of every edge so far; sampling
    # uniformly from the pool is sampling ∝ degree.
    pool = np.empty(2 * m * n, dtype=np.int64)
    pool[: m + 1] = np.arange(m + 1)  # seed clique-ish start
    pool_len = m + 1
    src_out = np.empty(m * n, dtype=np.int64)
    dst_out = np.empty(m * n, dtype=np.int64)
    e = 0
    for v in range(m + 1, n):
        targets = pool[rng.integers(0, pool_len, size=m)]
        targets = np.unique(targets)
        k = targets.size
        src_out[e : e + k] = v
        dst_out[e : e + k] = targets
        e += k
        pool[pool_len : pool_len + k] = targets
        pool[pool_len + k : pool_len + 2 * k] = v
        pool_len += 2 * k
    return from_edges(src_out[:e], dst_out[:e], n, directed=False)


def erdos_renyi(num_vertices: int, avg_degree: float, *, rng=None) -> CSRGraph:
    """G(n, m) uniform random graph with ``m = n · d̄ / 2`` edges."""
    check_positive("num_vertices", num_vertices)
    check_positive("avg_degree", avg_degree)
    rng = as_rng(rng)
    n = int(num_vertices)
    m = int(round(n * avg_degree / 2 * 1.02))
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    return from_edges(src, dst, n, directed=False)


def planted_partition(
    num_vertices: int,
    num_groups: int,
    *,
    intra_degree: float = 8.0,
    inter_degree: float = 1.0,
    rng=None,
) -> tuple[CSRGraph, np.ndarray]:
    """Planted-partition (stochastic block model) graph with ground truth.

    ``num_groups`` equal-size contiguous communities (vertex ``v``
    belongs to group ``v·g/n``); each vertex gets ``intra_degree``
    expected within-group stubs and ``inter_degree`` expected
    cross-group stubs. Returns ``(graph, labels)`` — the labels are the
    recovered-community ground truth the churn scenarios score ARI
    against (Tsourakakis-style planted benchmark).
    """
    check_positive("num_vertices", num_vertices)
    check_positive("num_groups", num_groups)
    check_positive("intra_degree", intra_degree)
    if inter_degree < 0:
        raise ConfigurationError(f"inter_degree must be >= 0, got {inter_degree}")
    n = int(num_vertices)
    g = int(num_groups)
    if g > n:
        raise ConfigurationError(f"num_groups {g} exceeds num_vertices {n}")
    rng = as_rng(rng)
    labels = (np.arange(n, dtype=np.int64) * g) // n

    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    # within-group edges, sampled per block so both endpoints share a label
    bounds = np.searchsorted(labels, np.arange(g + 1))
    for b in range(g):
        lo, hi = int(bounds[b]), int(bounds[b + 1])
        size = hi - lo
        if size < 2:
            continue
        m_in = int(round(size * intra_degree / 2))
        srcs.append(rng.integers(lo, hi, size=m_in))
        dsts.append(rng.integers(lo, hi, size=m_in))
    # cross-group edges: uniform pairs filtered to differing labels
    m_out = int(round(n * inter_degree / 2))
    if m_out and g > 1:
        # oversample so the post-filter count concentrates near m_out
        cand = int(m_out * g / max(g - 1, 1)) + 8
        u = rng.integers(0, n, size=cand)
        v = rng.integers(0, n, size=cand)
        keep = labels[u] != labels[v]
        srcs.append(u[keep][:m_out])
        dsts.append(v[keep][:m_out])
    src = np.concatenate(srcs) if srcs else np.empty(0, dtype=np.int64)
    dst = np.concatenate(dsts) if dsts else np.empty(0, dtype=np.int64)
    return from_edges(src, dst, n, directed=False), labels


# ----------------------------------------------------------------------
# Deterministic fixtures
# ----------------------------------------------------------------------
def ring_graph(num_vertices: int) -> CSRGraph:
    """Cycle of ``n`` vertices — every vertex has degree 2."""
    check_positive("num_vertices", num_vertices)
    n = int(num_vertices)
    v = np.arange(n, dtype=np.int64)
    return from_edges(v, (v + 1) % n, n, directed=False)


def path_graph(num_vertices: int) -> CSRGraph:
    """Simple path ``0 - 1 - … - (n-1)``."""
    check_positive("num_vertices", num_vertices)
    n = int(num_vertices)
    v = np.arange(n - 1, dtype=np.int64)
    return from_edges(v, v + 1, n, directed=False)


def star_graph(num_leaves: int) -> CSRGraph:
    """Hub vertex 0 connected to ``num_leaves`` leaves — the extreme
    skew case used to stress-test balance metrics."""
    check_positive("num_leaves", num_leaves)
    k = int(num_leaves)
    return from_edges(np.zeros(k, dtype=np.int64), np.arange(1, k + 1), k + 1, directed=False)


def grid_graph(rows: int, cols: int) -> CSRGraph:
    """2-D mesh — a low-cut planar fixture (partitioners should find
    near-optimal cuts on it)."""
    check_positive("rows", rows)
    check_positive("cols", cols)
    r, c = int(rows), int(cols)
    ids = np.arange(r * c, dtype=np.int64).reshape(r, c)
    horiz_src, horiz_dst = ids[:, :-1].ravel(), ids[:, 1:].ravel()
    vert_src, vert_dst = ids[:-1, :].ravel(), ids[1:, :].ravel()
    return from_edges(
        np.concatenate([horiz_src, vert_src]),
        np.concatenate([horiz_dst, vert_dst]),
        r * c,
        directed=False,
    )


def complete_graph(num_vertices: int) -> CSRGraph:
    """K_n — for tiny exact-answer tests."""
    check_positive("num_vertices", num_vertices)
    n = int(num_vertices)
    src, dst = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    keep = src.ravel() < dst.ravel()
    return from_edges(src.ravel()[keep], dst.ravel()[keep], n, directed=False)
