"""NetworkModel.request_cost — the shared wire-cost formula."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.network import NetworkModel
from repro.errors import ConfigurationError


@pytest.fixture
def net():
    return NetworkModel(bandwidth=1e9, latency=1e-4, message_bytes=100)


def test_scalar_formula(net):
    assert net.request_cost(10) == pytest.approx(1e-4 + 10 * 100 / 1e9)
    assert isinstance(net.request_cost(10), float)


def test_zero_messages_still_pays_latency(net):
    # Documented: callers that send nothing must skip the call.
    assert net.request_cost(0) == pytest.approx(net.latency)


def test_bytes_each_override(net):
    assert net.request_cost(4, 4096) == pytest.approx(1e-4 + 4 * 4096 / 1e9)


def test_array_input(net):
    n = np.array([0.0, 5.0, 50.0])
    out = net.request_cost(n)
    assert isinstance(out, np.ndarray)
    np.testing.assert_allclose(out, 1e-4 + n * 100 / 1e9)


def test_latency_amortised_by_batching(net):
    # One batched request of 10 messages beats 10 single requests —
    # the economics the serving layer's coalescing relies on.
    assert net.request_cost(10) < 10 * net.request_cost(1)


def test_negative_messages_rejected(net):
    with pytest.raises(ConfigurationError):
        net.request_cost(-1)
    with pytest.raises(ConfigurationError):
        net.request_cost(np.array([3.0, -2.0]))


def test_bad_bytes_each_rejected(net):
    with pytest.raises(ConfigurationError):
        net.request_cost(1, 0)
    with pytest.raises(ConfigurationError):
        net.request_cost(1, -16)


def test_comm_seconds_shares_the_formula(net):
    sent = np.array([10.0, 0.0, 3.0])
    received = np.array([2.0, 7.0, 3.0])
    np.testing.assert_allclose(
        net.comm_seconds(sent, received),
        net.request_cost(np.maximum(sent, received)),
    )
