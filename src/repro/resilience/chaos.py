"""Deterministic chaos harness: seeded fault injection for the pipeline.

Production code calls :func:`maybe_inject` at its *injection sites* —
named choke points such as ``runner.worker`` (inside a suite worker
process, keyed by experiment id) or ``artifacts.load`` (before reading a
cache file, keyed by the artifact key). With no plan installed the call
is a module-global ``None`` check. With a plan, whether a site fires is
a **pure function** of ``(plan seed, site, rule, key)`` plus the
caller's 1-based attempt number:

- a rule fires for a key iff ``hash_unit(seed, site, index, key) <
  rate`` — the *same* keys fail in every run of the same plan,
  regardless of worker scheduling;
- it keeps firing for the first ``max_fires`` attempts at that key and
  then stays quiet, so a retry policy with more attempts than
  ``max_fires`` is *guaranteed* to eventually see the clean path (the
  chaos tests assert recovery, not luck).

Fault kinds cover the real failure classes of the execution layer:

``exception``  raise :class:`ChaosError` (an experiment bug),
``ioerror``    raise :class:`OSError` (store/filesystem failure),
``corrupt``    scribble over the file at ``path`` (torn cache write),
``hang``       sleep ``hang_seconds`` (stuck worker / NFS stall),
``kill``       ``os._exit(70)`` (OOM-killed / segfaulted worker).

Plans serialise to canonical JSON and install into the
``REPRO_CHAOS`` environment variable, so spawn workers inherit the
active plan exactly like ``REPRO_NO_CACHE`` — the parent process and
every worker agree on which sites fail.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from repro import telemetry
from repro.errors import ConfigurationError, ReproError
from repro.resilience.policy import hash_unit

__all__ = [
    "CHAOS_ENV",
    "KILL_EXIT_CODE",
    "ChaosError",
    "ChaosRule",
    "ChaosPlan",
    "active_plan",
    "install_plan",
    "known_sites",
    "maybe_inject",
    "register_site",
]

#: environment variable carrying the installed plan's JSON.
CHAOS_ENV = "REPRO_CHAOS"

#: exit status used by the ``kill`` fault (distinct from Python's 1/2).
KILL_EXIT_CODE = 70

_KINDS = ("exception", "ioerror", "corrupt", "hang", "kill")


class ChaosError(ReproError):
    """The exception raised by an ``exception``-kind injection."""


# ---------------------------------------------------------------------------
# Injection-site registry. Every module that calls maybe_inject() declares
# its sites at import time via register_site(); ChaosPlan validation then
# rejects rules naming a site nothing will ever fire — a typo'd plan fails
# at construction instead of silently never injecting.

_SITES: set[str] = set()

#: modules that own injection sites, imported lazily before a plan is
#: declared invalid so validation never depends on caller import order.
_SITE_MODULES = (
    "repro.bench.artifacts",
    "repro.bench.runner",
    "repro.serving.simulator",
)


def register_site(site: str) -> str:
    """Declare ``site`` as a real injection site; returns the name.

    Idempotent. Call it at module scope next to the constant the module
    passes to :func:`maybe_inject`, so importing the module is what
    makes its sites plannable.
    """
    if not site or not isinstance(site, str):
        raise ConfigurationError(f"chaos site name must be a non-empty string, got {site!r}")
    _SITES.add(site)
    return site


def _ensure_sites_loaded() -> None:
    """Import the site-owning modules so their registrations land."""
    import importlib

    for module in _SITE_MODULES:
        try:
            importlib.import_module(module)
        except ImportError:  # pragma: no cover - optional subsystem absent
            pass


def known_sites() -> tuple[str, ...]:
    """All registered injection sites, sorted."""
    _ensure_sites_loaded()
    return tuple(sorted(_SITES))


@dataclass(frozen=True)
class ChaosRule:
    """One injection rule: *where*, *what*, *how often*, *how long*.

    Attributes
    ----------
    site:   injection-site name the rule applies to (exact match).
    kind:   one of ``exception | ioerror | corrupt | hang | kill``.
    rate:   fraction of keys at the site that fail (hash-selected).
    match:  substring filter on the key ("" = every key).
    max_fires:  attempts (per key) the rule fires on before going quiet.
    hang_seconds:  sleep length for ``hang`` rules.
    """

    site: str
    kind: str
    rate: float = 1.0
    match: str = ""
    max_fires: int = 1
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"chaos kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if not (0.0 <= self.rate <= 1.0):
            raise ConfigurationError(f"chaos rate must be in [0, 1], got {self.rate}")
        if self.max_fires < 1:
            raise ConfigurationError(f"max_fires must be >= 1, got {self.max_fires}")
        if self.hang_seconds <= 0:
            raise ConfigurationError(
                f"hang_seconds must be positive, got {self.hang_seconds}"
            )

    def as_dict(self) -> dict:
        return {
            "site": self.site,
            "kind": self.kind,
            "rate": self.rate,
            "match": self.match,
            "max_fires": self.max_fires,
            "hang_seconds": self.hang_seconds,
        }


@dataclass(frozen=True)
class ChaosPlan:
    """A seed plus an ordered rule list; fully deterministic."""

    seed: int = 0
    rules: tuple[ChaosRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        unknown = sorted({r.site for r in self.rules} - _SITES)
        if unknown:
            # Late registrations (modules not yet imported) are the
            # common false positive — load the site owners first.
            _ensure_sites_loaded()
            unknown = sorted({r.site for r in self.rules} - _SITES)
        if unknown:
            raise ChaosError(
                f"chaos plan names unknown injection site(s) {unknown}; "
                f"known sites: {sorted(_SITES)}"
            )

    def firing_rule(self, site: str, key: str, attempt: int = 1) -> ChaosRule | None:
        """The first rule that fires at ``(site, key, attempt)``, if any."""
        for index, rule in enumerate(self.rules):
            if rule.site != site or rule.match not in key:
                continue
            if attempt > rule.max_fires:
                continue
            if hash_unit(self.seed, site, index, key) < rule.rate:
                return rule
        return None

    def to_json(self) -> str:
        return json.dumps(
            {
                "format": "chaos-plan/v1",
                "seed": self.seed,
                "rules": [r.as_dict() for r in self.rules],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid chaos plan JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ConfigurationError("chaos plan must be a JSON object")
        fmt = payload.get("format", "chaos-plan/v1")
        if fmt != "chaos-plan/v1":
            raise ConfigurationError(f"unknown chaos plan format {fmt!r}")
        rules = []
        for entry in payload.get("rules", []):
            known = {k: entry[k] for k in entry if k in ChaosRule.__dataclass_fields__}
            rules.append(ChaosRule(**known))
        return cls(seed=int(payload.get("seed", 0)), rules=tuple(rules))


_PLAN: ChaosPlan | None = None
_ENV_CACHE: tuple[str, ChaosPlan] | None = None


def install_plan(plan: ChaosPlan | None) -> None:
    """Install (or with ``None``, clear) the process-wide plan.

    The plan is also mirrored into ``$REPRO_CHAOS`` so spawn workers —
    which import everything fresh — inherit it, exactly like the cache
    and telemetry environment switches.
    """
    global _PLAN
    _PLAN = plan
    if plan is None:
        os.environ.pop(CHAOS_ENV, None)
    else:
        os.environ[CHAOS_ENV] = plan.to_json()


def active_plan() -> ChaosPlan | None:
    """The installed plan, or one parsed from ``$REPRO_CHAOS``, or None."""
    global _ENV_CACHE
    if _PLAN is not None:
        return _PLAN
    text = os.environ.get(CHAOS_ENV, "")
    if not text:
        return None
    if _ENV_CACHE is None or _ENV_CACHE[0] != text:
        _ENV_CACHE = (text, ChaosPlan.from_json(text))
    return _ENV_CACHE[1]


def maybe_inject(
    site: str, key: str, *, attempt: int = 1, path: os.PathLike | str | None = None
) -> None:
    """Fire the active plan's fault for ``(site, key, attempt)``, if any.

    ``path`` is required for ``corrupt`` rules to have a target; other
    kinds ignore it. Injections are counted under ``chaos.injections``
    (labelled by site and kind) before the effect, so even a ``kill``
    leaves a trace in worker-local telemetry.
    """
    plan = active_plan()
    if plan is None:
        return
    rule = plan.firing_rule(site, key, attempt)
    if rule is None:
        return
    if telemetry.enabled():
        telemetry.active().counter("chaos.injections", site=site, kind=rule.kind).inc()
    if rule.kind == "exception":
        raise ChaosError(f"chaos: injected failure at {site} for {key!r}")
    if rule.kind == "ioerror":
        raise OSError(f"chaos: injected I/O error at {site} for {key!r}")
    if rule.kind == "hang":
        time.sleep(rule.hang_seconds)
        return
    if rule.kind == "corrupt":
        if path is not None and os.path.exists(path):
            with open(path, "wb") as fh:
                fh.write(b"chaos: corrupted artifact\x00")
        return
    # kill: flush stdio so partial output is not lost with the process.
    try:
        import sys

        sys.stdout.flush()
        sys.stderr.flush()
    except Exception:  # pragma: no cover - flushing is best-effort
        pass
    os._exit(KILL_EXIT_CODE)
