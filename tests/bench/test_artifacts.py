"""Tests for the content-addressed artifact cache and parallel runner."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench import artifacts
from repro.bench.artifacts import (
    ArtifactStore,
    cached_edge_partition,
    cached_partition,
    config_key,
    get_assignment,
)
from repro.bench.harness import ExperimentConfig, run_experiment
from repro.bench.runner import ExperimentOutcome, run_suite
from repro.bench.workloads import PAPER_PARTITIONERS, run_app, run_walk_job
from repro.graph import chung_lu
from repro.graph.datasets import clear_dataset_cache, load_dataset
from repro.partition import get_partitioner
from repro.partition.vertexcut import DBHPartitioner

TINY = ExperimentConfig(scale=0.05, seed=3)
K = 4


@pytest.fixture
def graph():
    return chung_lu(600, 8.0, 2.3, rng=11)


# ----------------------------------------------------------------------
# Fingerprints and keys
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_stable_across_instances(self):
        g1 = chung_lu(300, 6.0, 2.3, rng=5)
        g2 = chung_lu(300, 6.0, 2.3, rng=5)
        assert g1 is not g2
        assert g1.fingerprint() == g2.fingerprint()

    def test_distinct_graphs_distinct_fingerprints(self):
        g1 = chung_lu(300, 6.0, 2.3, rng=5)
        g2 = chung_lu(300, 6.0, 2.3, rng=6)
        assert g1.fingerprint() != g2.fingerprint()

    def test_assignment_fingerprint_depends_on_parts(self, graph):
        a1 = get_partitioner("hash").partition(graph, K).assignment
        a2 = get_partitioner("chunk-v").partition(graph, K).assignment
        assert a1.fingerprint() != a2.fingerprint()
        a3 = get_partitioner("hash").partition(graph, K).assignment
        assert a1.fingerprint() == a3.fingerprint()


class TestConfigKey:
    def test_int_float_collapse(self):
        assert config_key("x", {"c": 1}) != config_key("x", {"c": 1.0})
        assert config_key("x", {"c": 1.0}) == config_key("x", {"c": np.float64(1.0)})
        assert config_key("x", {"c": 1}) == config_key("x", {"c": np.int64(1)})

    def test_order_insensitive(self):
        assert config_key("x", {"a": 1, "b": 2}) == config_key("x", {"b": 2, "a": 1})

    def test_version_salt_invalidates(self, monkeypatch):
        k1 = config_key("x", {"a": 1})
        monkeypatch.setattr(artifacts, "CACHE_FORMAT_VERSION", 999)
        assert config_key("x", {"a": 1}) != k1

    def test_unkeyable_param_rejected(self):
        with pytest.raises(TypeError):
            config_key("x", {"a": object()})


# ----------------------------------------------------------------------
# Hit/miss accounting and parity
# ----------------------------------------------------------------------
class TestCachedPartition:
    def test_miss_then_hit_accounting(self, graph):
        cached_partition("bpart", graph, K, seed=1)
        snap = artifacts.stats_snapshot()
        assert snap["misses"] == 1 and snap["stores"] == 1 and snap["hits"] == 0
        cached_partition("bpart", graph, K, seed=1)
        snap = artifacts.stats_snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1

    @pytest.mark.parametrize("name", PAPER_PARTITIONERS)
    def test_cached_equals_fresh_all_partitioners(self, graph, name):
        fresh = get_partitioner(name, seed=2).partition(graph, K).assignment
        first = cached_partition(name, graph, K, seed=2).assignment
        # Cold pass through the disk: forget the in-process store.
        artifacts.reset_store()
        warm = cached_partition(name, graph, K, seed=2)
        assert np.array_equal(fresh.parts, first.parts)
        assert np.array_equal(fresh.parts, warm.assignment.parts)
        assert warm.metadata.get("artifact_cache") == "hit"
        assert warm.assignment.num_parts == K

    def test_hit_replays_recorded_clock(self, graph):
        cold = cached_partition("fennel", graph, K, seed=1)
        artifacts.reset_store()
        warm = cached_partition("fennel", graph, K, seed=1)
        assert warm.elapsed == pytest.approx(cold.elapsed)

    def test_param_change_invalidates(self, graph):
        cached_partition("bpart", graph, K, seed=1)
        cached_partition("bpart", graph, K, seed=1, c=0.9)
        snap = artifacts.stats_snapshot()
        assert snap["misses"] == 2 and snap["hits"] == 0
        cached_partition("bpart", graph, K, seed=2)
        assert artifacts.stats_snapshot()["misses"] == 3

    def test_version_salt_invalidates_store(self, graph, monkeypatch):
        cached_partition("hash", graph, K, seed=1)
        monkeypatch.setattr(artifacts, "CACHE_FORMAT_VERSION", 999)
        cached_partition("hash", graph, K, seed=1)
        snap = artifacts.stats_snapshot()
        assert snap["misses"] == 2 and snap["hits"] == 0

    def test_corrupted_file_recovers(self, graph):
        cold = cached_partition("bpart", graph, K, seed=1)
        store = artifacts.get_store()
        files = list(store.root.rglob("*.npz"))
        assert files
        for path in files:
            path.write_bytes(b"this is not an npz archive")
        artifacts.reset_store()  # drop the memory layer: force disk reads
        recovered = cached_partition("bpart", graph, K, seed=1)
        snap = artifacts.stats_snapshot()
        assert snap["errors"] == 1 and snap["misses"] == 1
        assert np.array_equal(cold.assignment.parts, recovered.assignment.parts)
        # the poisoned file was replaced by the recomputed artifact
        artifacts.reset_store()
        assert cached_partition("bpart", graph, K, seed=1).metadata["artifact_cache"] == "hit"

    def test_no_cache_env_disables(self, graph, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        r1 = cached_partition("bpart", graph, K, seed=1)
        r2 = cached_partition("bpart", graph, K, seed=1)
        snap = artifacts.stats_snapshot()
        assert snap["hits"] == snap["misses"] == snap["stores"] == 0
        assert not list(artifacts.get_store().root.rglob("*.npz"))
        assert np.array_equal(r1.assignment.parts, r2.assignment.parts)

    def test_get_assignment_convenience(self, graph):
        a = get_assignment(graph, "fennel", num_parts=K, seed=1)
        b = get_assignment(graph, "fennel", num_parts=K, seed=1)
        assert a is b  # in-process hits share the rehydrated object

    def test_memory_lru_bounded(self, graph):
        store = ArtifactStore(artifacts.default_cache_dir(), memory_items=2)
        for i in range(5):
            store.store("partition", f"fp{i}", "k", {"parts": np.arange(3)})
        assert len(store._memory) == 2


class TestVertexCutArtifacts:
    def test_cached_edge_partition_roundtrip(self, graph):
        algo = DBHPartitioner()
        p1 = cached_edge_partition(algo, graph, K)
        artifacts.reset_store()
        p2 = cached_edge_partition(algo, graph, K)
        assert np.array_equal(p1.edge_parts, p2.edge_parts)
        snap = artifacts.stats_snapshot()
        assert snap["by_kind"]["vertexcut"]["hits"] == 1


# ----------------------------------------------------------------------
# Simulation artifacts
# ----------------------------------------------------------------------
class TestSimulationArtifacts:
    def test_walk_job_replay(self, graph):
        a = get_assignment(graph, "bpart", num_parts=K, seed=1)
        cold = run_walk_job(graph, a, app_name="deepwalk", walkers_per_vertex=2, seed=1)
        artifacts.reset_store()
        warm = run_walk_job(graph, a, app_name="deepwalk", walkers_per_vertex=2, seed=1)
        assert warm.total_steps == cold.total_steps
        assert warm.total_messages == cold.total_messages
        assert warm.runtime == pytest.approx(cold.runtime)
        assert warm.ledger.waiting_ratio == pytest.approx(cold.ledger.waiting_ratio)
        np.testing.assert_array_equal(warm.final_positions, cold.final_positions)
        assert artifacts.stats_snapshot()["by_kind"]["walk"]["hits"] == 1

    def test_apprun_replay(self, graph):
        a = get_assignment(graph, "bpart", num_parts=K, seed=1)
        cold = run_app("pagerank", graph, a, seed=1)
        artifacts.reset_store()
        warm = run_app("pagerank", graph, a, seed=1)
        assert warm == cold
        assert artifacts.stats_snapshot()["by_kind"]["apprun"]["hits"] == 1

    def test_different_app_misses(self, graph):
        a = get_assignment(graph, "hash", num_parts=K, seed=1)
        run_app("pagerank", graph, a, seed=1)
        run_app("cc", graph, a, seed=1)
        assert artifacts.stats_snapshot()["by_kind"]["apprun"]["hits"] == 0


# ----------------------------------------------------------------------
# Bypass: timing experiments never read the cache
# ----------------------------------------------------------------------
def _poison_partition_clocks(sentinel: float) -> None:
    """Overwrite every stored partition clock with a sentinel value."""
    store = artifacts.get_store()
    for (kind, _fp, _key), payload in store._memory.items():
        if kind == "partition":
            payload["segments"] = np.array(json.dumps({"total": sentinel}))


class TestBypass:
    SENTINEL = 12345.0

    def test_bypass_never_reads(self, graph):
        cached_partition("bpart", graph, K, seed=1)
        _poison_partition_clocks(self.SENTINEL)
        # non-bypass replays the poisoned clock — proves the poison works
        assert cached_partition("bpart", graph, K, seed=1).elapsed == self.SENTINEL
        # bypass measures fresh, ignoring the poisoned artifact...
        fresh = cached_partition("bpart", graph, K, seed=1, bypass=True)
        assert fresh.elapsed != self.SENTINEL
        assert "artifact_cache" not in fresh.metadata
        # ...and leaves the existing artifact untouched: the clock other
        # runs replay must be stable, not the latest timing measurement
        assert cached_partition("bpart", graph, K, seed=1).elapsed == self.SENTINEL

    def test_bypass_warms_a_cold_cache(self, graph):
        fresh = cached_partition("bpart", graph, K, seed=1, bypass=True)
        assert artifacts.stats_snapshot()["stores"] == 1
        warm = cached_partition("bpart", graph, K, seed=1)
        assert warm.metadata.get("artifact_cache") == "hit"
        assert np.array_equal(fresh.assignment.parts, warm.assignment.parts)

    def test_table2_is_cache_independent(self):
        """table2's reported seconds must come from real runs even when
        the cache holds poisoned clocks for every one of its cells."""
        from repro.bench.experiments.table2_overhead import ALGOS, K as T2K
        from repro.bench.experiments._common import DATASET_ORDER, graph_for

        for dataset in DATASET_ORDER:
            g = graph_for(TINY, dataset)
            for name in ALGOS:
                cached_partition(name, g, T2K, seed=TINY.seed)
        _poison_partition_clocks(self.SENTINEL)
        result = run_experiment("table2", TINY)
        for per_dataset in result.data.values():
            for seconds in per_dataset.values():
                assert seconds != self.SENTINEL


# ----------------------------------------------------------------------
# Parallel runner
# ----------------------------------------------------------------------
class TestRunner:
    def test_serial_outcomes_in_order(self):
        outcomes = run_suite(["fig06", "fig03"], TINY, jobs=1)
        assert [o.experiment_id for o in outcomes] == ["fig06", "fig03"]
        assert all(o.ok for o in outcomes)
        assert all(o.wall_seconds > 0 for o in outcomes)

    def test_experiment_failure_is_an_outcome(self):
        outcomes = run_suite(["no-such-experiment"], TINY)
        assert len(outcomes) == 1
        assert not outcomes[0].ok
        assert outcomes[0].result is None
        assert "no-such-experiment" in outcomes[0].error

    def test_cache_counters_attributed_per_experiment(self, graph):
        cached_partition("bpart", graph, K, seed=1)  # unrelated earlier traffic
        outcomes = run_suite(["fig03"], TINY)
        cache = outcomes[0].cache
        assert cache["misses"] >= 1  # fig03's own work, not the pre-run traffic
        assert set(cache) == {"hits", "misses", "stores", "errors", "by_kind"}

    def test_parallel_matches_serial(self):
        serial = run_suite(["fig03", "fig06"], TINY, jobs=1)
        parallel = run_suite(["fig03", "fig06"], TINY, jobs=2)
        assert [o.experiment_id for o in parallel] == ["fig03", "fig06"]
        for s, p in zip(serial, parallel):
            assert p.ok, p.error
            assert s.result.to_dict() == p.result.to_dict()

    def test_outcome_ok_property(self):
        good = ExperimentOutcome("x", result=None, error=None, wall_seconds=0.1)
        bad = ExperimentOutcome("x", result=None, error="boom", wall_seconds=0.1)
        assert good.ok and not bad.ok


# ----------------------------------------------------------------------
# Satellites: dataset-cache key normalisation, engine memoisation
# ----------------------------------------------------------------------
class TestDatasetCache:
    def test_scale_normalised_before_cache_key(self):
        g1 = load_dataset("twitter", scale=0.05, seed=1)
        g2 = load_dataset("twitter", scale=np.float64(0.05), seed=np.int64(1))
        assert g1 is g2

    def test_clear_dataset_cache(self):
        g1 = load_dataset("twitter", scale=0.05, seed=1)
        clear_dataset_cache()
        g2 = load_dataset("twitter", scale=0.05, seed=1)
        assert g1 is not g2
        assert g1.fingerprint() == g2.fingerprint()


class TestGeminiMemoisation:
    def test_derived_structures_cached_on_assignment(self, graph):
        from repro.cluster import BSPCluster
        from repro.engines.gemini import GeminiEngine, PageRank

        a = get_partitioner("bpart", seed=1).partition(graph, K).assignment
        assert a.derived_cache() == {}
        engine = GeminiEngine(BSPCluster(K))
        r1 = engine.run(graph, a, PageRank(5))
        assert "gemini" in a.derived_cache()
        structs = a.derived_cache()["gemini"]
        r2 = engine.run(graph, a, PageRank(5))
        assert a.derived_cache()["gemini"] is structs  # reused, not rebuilt
        assert r2.runtime == pytest.approx(r1.runtime)
        assert r2.total_messages == r1.total_messages


class TestScalarAttrs:
    def test_single_leading_underscore_stripped(self):
        from types import SimpleNamespace

        from repro.bench.artifacts import scalar_attrs

        out = scalar_attrs(SimpleNamespace(_slack=1.1, order="natural"))
        assert out == {"slack": 1.1, "order": "natural"}

    def test_double_underscore_keeps_one(self):
        """``__x`` strips to ``_x`` (one underscore only), so it cannot
        alias a plain ``x`` attribute."""
        from types import SimpleNamespace

        from repro.bench.artifacts import scalar_attrs

        obj = SimpleNamespace()
        vars(obj)["__x"] = 1
        vars(obj)["x"] = 2
        out = scalar_attrs(obj)
        assert out == {"_x": 1, "x": 2}

    def test_collision_raises(self):
        """``_c`` and ``c`` must never silently merge into one cache
        key — two distinct configs would alias one artifact."""
        from types import SimpleNamespace

        from repro.bench.artifacts import scalar_attrs
        from repro.errors import ConfigurationError

        obj = SimpleNamespace(_c=0.5, c=0.7)
        with pytest.raises(ConfigurationError, match="collision"):
            scalar_attrs(obj)

    def test_partitioner_keys_unchanged(self):
        """The one-underscore strip produces the same keys as before for
        every registered partitioner (all use single-underscore attrs),
        so existing cache artifacts stay addressable — no salt bump."""
        from repro.bench.artifacts import scalar_attrs
        from repro.partition.base import available_partitioners

        for name in available_partitioners():
            try:
                p = get_partitioner(name, seed=0)
            except TypeError:
                p = get_partitioner(name)
            attrs = scalar_attrs(p)
            for key in attrs:
                assert not key.startswith("_")
