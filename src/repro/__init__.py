"""repro — reproduction of BPart (ICPP 2022).

Two-dimensional balanced graph partitioning, the baselines it is
evaluated against, and simulated Gemini/KnightKing distributed engines
for running the paper's seven applications.

Quickstart::

    from repro import graph, partition
    g = graph.twitter_like(scale=0.5, seed=1)
    result = partition.get_partitioner("bpart").partition(g, 8)
    print(partition.balance_report(result.assignment))
"""

from repro import bench, cluster, engines, errors, graph, partition, telemetry, utils

__version__ = "1.0.0"

__all__ = [
    "bench",
    "cluster",
    "engines",
    "errors",
    "graph",
    "partition",
    "telemetry",
    "utils",
    "__version__",
]
