"""Linear Deterministic Greedy streaming partitioner.

LDG (Stanton & Kliot, KDD 2012) is the other classic streaming
heuristic: vertex ``v`` goes to the part maximising

    |V_i ∩ N(v)| · (1 − |V_i| / C),      C = ν·n/k

i.e. neighbour overlap scaled by remaining capacity. Not compared in the
paper's evaluation, but it predates Fennel and is included as an extra
baseline for the bias-scatter ablation: like Fennel it balances only the
vertex dimension.

The inner loop is served by the shared kernel layer
(:mod:`repro.partition.kernels`) rather than a private copy — every
backend implements the LDG rule alongside the Fennel score, so the
``kernel=`` knob applies here too.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro import telemetry
from repro.graph.csr import CSRGraph
from repro.graph.stream import vertex_stream
from repro.partition.assignment import PartitionAssignment
from repro.partition.base import Partitioner, register_partitioner
from repro.partition.kernels import get_kernel, resolve_kernel_name
from repro.utils.timing import WallClock
from repro.utils.validation import check_positive

__all__ = ["LDGPartitioner"]


class LDGPartitioner(Partitioner):
    """Linear deterministic greedy streaming assignment."""

    name = "ldg"

    def __init__(
        self,
        *,
        slack: float = 1.1,
        order: str = "natural",
        seed: int | None = None,
        kernel: str = "auto",
        jobs: int | None = None,
    ) -> None:
        check_positive("slack", slack)
        self._slack = slack
        self._order = order
        self._seed = seed
        self._jobs = jobs
        self._kernel = get_kernel(resolve_kernel_name(kernel, jobs))

    def _partition(
        self, graph: CSRGraph, num_parts: int, clock: WallClock
    ) -> tuple[PartitionAssignment, dict[str, Any]]:
        n = graph.num_vertices
        k = num_parts
        parts = np.full(n, -1, dtype=np.int32)
        loads = np.zeros(k, dtype=np.float64)
        capacity = self._slack * n / k
        stream = vertex_stream(graph, self._order, rng=self._seed)

        # Sharded graphs have no global indices array: route every kernel
        # choice through the buffered backend's chunked gather (bit-exact
        # with the others, so the knob still trades throughput only).
        gather = getattr(graph, "gather_block", None)
        parallel = self._kernel.name == "parallel"
        if parallel:
            effective = "parallel"
        else:
            effective = "buffered" if gather is not None else self._kernel.name
        with clock.measure("stream"):
            if parallel:
                from repro.partition.kernels.parallel_backend import ldg_parallel

                dense = gather is None
                ldg_parallel(
                    graph.indptr if dense else None,
                    graph.indices if dense else None,
                    stream,
                    parts,
                    loads,
                    capacity=float(capacity),
                    gather=gather,
                    graph=graph,
                    jobs=self._jobs,
                )
            elif gather is not None:
                from repro.partition.kernels.buffered import ldg_buffered

                ldg_buffered(
                    None,
                    None,
                    stream,
                    parts,
                    loads,
                    capacity=float(capacity),
                    gather=gather,
                )
            else:
                self._kernel.ldg(
                    graph.indptr,
                    graph.indices,
                    stream,
                    parts,
                    loads,
                    capacity=float(capacity),
                )
        if telemetry.enabled():
            reg = telemetry.active()
            reg.counter("partition.stream.vertices", kernel=effective).inc(n)
            reg.gauge("partition.stream.saturated_parts").set(
                int((loads >= capacity).sum())
            )
        return (
            PartitionAssignment(graph, parts, num_parts),
            {"order": self._order, "kernel": effective},
        )


register_partitioner("ldg", LDGPartitioner)
