"""Per-machine health state machine driven by virtual-clock heartbeats.

Failure *detection* is deliberately separate from failure *injection*:
a chaos-crashed machine does not flip a flag the router can see — it
simply stops emitting heartbeats, and the monitor walks it through

::

    healthy ──missed ≥ suspect_after──▶ suspect ──missed ≥ dead_after──▶ dead
       ▲                                   │                              │
       │◀──────────heartbeat───────────────┘                              │
       │                                                        restart_delay
       └──────────── re-replication complete ◀── recovering ◀─────────────┘

so detection latency, drain, and readmission are all visible in the
latency tail exactly as they would be in a real cluster. ``suspect``
machines are drained (no new routing) but may return to ``healthy`` on
a single heartbeat — which is how a ``serving.heartbeat.drop`` chaos
fire models a network blip without losing work. ``dead`` machines are
fenced: their queues are re-dispatched and they re-enter through
``recovering``, where the recovery planner re-replicates their blocks
before the monitor readmits them.

Everything here is pure bookkeeping on the simulator's virtual clock —
no wall time, no randomness — so the transition ledger is byte-stable
per seed and per-state dwell times are exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, SimulationError

__all__ = [
    "HEALTHY",
    "SUSPECT",
    "DEAD",
    "RECOVERING",
    "HealthEvent",
    "HealthMonitor",
]

HEALTHY = "healthy"
SUSPECT = "suspect"
DEAD = "dead"
RECOVERING = "recovering"

_STATES = (HEALTHY, SUSPECT, DEAD, RECOVERING)

#: legal transitions — anything else is a simulator bug, not data.
_ALLOWED = {
    (HEALTHY, SUSPECT),
    (SUSPECT, HEALTHY),
    (SUSPECT, DEAD),
    (DEAD, RECOVERING),
    (RECOVERING, HEALTHY),
}


@dataclass(frozen=True)
class HealthEvent:
    """One ledger row: machine ``machine`` moved ``old → new`` at ``time``."""

    time: float
    machine: int
    old: str
    new: str
    cause: str

    def as_row(self) -> list:
        """JSON-ready ``[time, machine, old, new, cause]`` row."""
        return [round(float(self.time), 9), int(self.machine), self.old, self.new, self.cause]


class HealthMonitor:
    """Heartbeat bookkeeping and the transition ledger for one run."""

    def __init__(
        self,
        num_machines: int,
        *,
        heartbeat_interval: float,
        suspect_after: int,
        dead_after: int,
    ) -> None:
        if num_machines <= 0:
            raise ConfigurationError(f"num_machines must be positive, got {num_machines}")
        if heartbeat_interval <= 0:
            raise ConfigurationError(
                f"heartbeat_interval must be positive, got {heartbeat_interval!r}"
            )
        if not (1 <= suspect_after < dead_after):
            raise ConfigurationError(
                f"need 1 <= suspect_after < dead_after, got "
                f"{suspect_after}/{dead_after}"
            )
        self.num_machines = int(num_machines)
        self.heartbeat_interval = float(heartbeat_interval)
        self.suspect_after = int(suspect_after)
        self.dead_after = int(dead_after)
        self.state = [HEALTHY] * self.num_machines
        self.last_beat = [0.0] * self.num_machines
        self.ledger: list[HealthEvent] = []
        self._entered = [0.0] * self.num_machines
        self.state_seconds = [
            {s: 0.0 for s in _STATES} for _ in range(self.num_machines)
        ]

    # ------------------------------------------------------------------
    def transition(self, machine: int, now: float, new: str, cause: str) -> None:
        """Move ``machine`` to ``new``, closing its current dwell."""
        old = self.state[machine]
        if (old, new) not in _ALLOWED:
            raise SimulationError(
                f"illegal health transition {old} -> {new} on machine {machine}"
            )
        self.state_seconds[machine][old] += now - self._entered[machine]
        self._entered[machine] = now
        self.state[machine] = new
        self.ledger.append(HealthEvent(now, machine, old, new, cause))

    def beat(self, machine: int, now: float) -> None:
        """A heartbeat arrived; a ``suspect`` machine is readmitted."""
        self.last_beat[machine] = now
        if self.state[machine] == SUSPECT:
            self.transition(machine, now, HEALTHY, "heartbeat")

    def check(self, machine: int, now: float) -> str | None:
        """Apply timeout detection; returns the new state on a change.

        Only ``healthy``/``suspect`` machines are timeout-checked —
        ``dead`` and ``recovering`` are owned by the recovery path.
        """
        state = self.state[machine]
        if state not in (HEALTHY, SUSPECT):
            return None
        missed = int(
            (now - self.last_beat[machine]) / self.heartbeat_interval + 1e-9
        )
        changed: str | None = None
        if state == HEALTHY and missed >= self.suspect_after:
            self.transition(machine, now, SUSPECT, "missed_heartbeats")
            changed = SUSPECT
        if self.state[machine] == SUSPECT and missed >= self.dead_after:
            self.transition(machine, now, DEAD, "missed_heartbeats")
            changed = DEAD
        return changed

    # ------------------------------------------------------------------
    def routable(self, machine: int) -> bool:
        """Whether the router may send new work to ``machine``."""
        return self.state[machine] == HEALTHY

    def all_healthy(self) -> bool:
        """True when every machine is serving (nothing in-flight to heal)."""
        return all(s == HEALTHY for s in self.state)

    def finish(self, now: float) -> None:
        """Close every open dwell at the end of the run."""
        for m in range(self.num_machines):
            self.state_seconds[m][self.state[m]] += now - self._entered[m]
            self._entered[m] = now

    # ------------------------------------------------------------------
    def transition_counts(self) -> dict[str, int]:
        """``{"old->new": count}`` over the ledger, key-sorted."""
        counts: dict[str, int] = {}
        for ev in self.ledger:
            key = f"{ev.old}->{ev.new}"
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def recovery_seconds(self) -> list[float]:
        """Dead→healthy durations, one per completed recovery, in order."""
        died: dict[int, float] = {}
        out: list[float] = []
        for ev in self.ledger:
            if ev.new == DEAD:
                died[ev.machine] = ev.time
            elif ev.new == HEALTHY and ev.old == RECOVERING and ev.machine in died:
                out.append(ev.time - died.pop(ev.machine))
        return out

    def ledger_rows(self) -> list[list]:
        """The whole ledger as JSON-ready rows (time order)."""
        return [ev.as_row() for ev in self.ledger]
