"""Unit tests for the crash-safe JSONL outcome journal."""

from __future__ import annotations

import json

from repro import telemetry
from repro.resilience import JsonlJournal


class TestJsonlJournal:
    def test_append_and_read_back(self, tmp_path):
        j = JsonlJournal(tmp_path / "nested" / "journal.jsonl")
        j.append({"id": "a", "ok": True})
        j.append({"id": "b", "ok": False})
        assert j.records() == [{"id": "a", "ok": True}, {"id": "b", "ok": False}]

    def test_missing_file_is_empty(self, tmp_path):
        assert JsonlJournal(tmp_path / "absent.jsonl").records() == []

    def test_torn_trailing_line_is_skipped_and_counted(self, tmp_path):
        telemetry.set_enabled(True)
        path = tmp_path / "journal.jsonl"
        j = JsonlJournal(path)
        j.append({"id": "a"})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"id": "b", "ok": tr')  # crash mid-append
        assert j.records() == [{"id": "a"}]
        reg = telemetry.registry()
        assert reg.counter("resilience.journal_torn_lines").value == 1
        # Appending after the torn line still yields decodable records
        # (the torn line stays torn; later records supersede by key).
        j.append({"id": "b", "ok": True})
        assert j.records() == [{"id": "a"}, {"id": "b", "ok": True}]

    def test_non_object_lines_are_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('[1, 2]\n"str"\n{"id": "a"}\n\n', encoding="utf-8")
        assert JsonlJournal(path).records() == [{"id": "a"}]

    def test_latest_by_later_record_wins(self, tmp_path):
        j = JsonlJournal(tmp_path / "journal.jsonl")
        j.append({"id": "a", "cfg": "1", "ok": False})
        j.append({"id": "a", "cfg": "1", "ok": True})
        j.append({"id": "a", "cfg": "2", "ok": False})
        latest = j.latest_by("id", "cfg")
        assert latest[("a", "1")]["ok"] is True
        assert latest[("a", "2")]["ok"] is False

    def test_records_are_plain_json_lines(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        JsonlJournal(path).append({"z": 1, "a": 2})
        line = path.read_text(encoding="utf-8").strip()
        assert json.loads(line) == {"a": 2, "z": 1}
        assert line == '{"a": 2, "z": 1}'  # sorted keys, one line
