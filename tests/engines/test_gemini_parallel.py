"""Serial-vs-parallel bit-parity for the Gemini engine's supersteps.

The parallel census fans the per-machine superstep accounting out to a
worker pool; because every reduction is merged in fixed machine order
(and every quantity is an exactly-representable integer-valued float),
the ledger, message counts, mode decisions, and vertex values must be
bit-identical to the serial engine for any worker count — including
after a worker crash mid-run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.cluster import BSPCluster
from repro.engines.gemini import ConnectedComponents, GeminiEngine, PageRank
from repro.graph import chung_lu
from repro.parallel import shm_available
from repro.partition import HashPartitioner

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="no usable shared memory on this host"
)


@pytest.fixture(scope="module")
def graph():
    return chung_lu(600, 9.0, 2.2, rng=13)


@pytest.fixture(scope="module")
def assignment(graph):
    return HashPartitioner(seed=2).partition(graph, 4).assignment


def _run(graph, assignment, program, *, jobs, mode="adaptive"):
    engine = GeminiEngine(BSPCluster(4), mode=mode, jobs=jobs)
    return engine.run(graph, assignment, program)


def _assert_identical(base, par):
    np.testing.assert_array_equal(base.values, par.values)
    assert base.ledger.total_runtime == par.ledger.total_runtime
    assert base.total_messages == par.total_messages
    assert base.modes == par.modes
    assert base.iterations == par.iterations


@pytest.mark.parametrize("jobs", [2, 4])
@pytest.mark.parametrize("mode", ["push", "adaptive", "pull"])
def test_pagerank_ledger_parity(graph, assignment, jobs, mode):
    base = _run(graph, assignment, PageRank(iterations=6), jobs=1, mode=mode)
    par = _run(graph, assignment, PageRank(iterations=6), jobs=jobs, mode=mode)
    _assert_identical(base, par)


@pytest.mark.parametrize("jobs", [2, 4])
def test_cc_ledger_parity(graph, assignment, jobs):
    base = _run(graph, assignment, ConnectedComponents(), jobs=1)
    par = _run(graph, assignment, ConnectedComponents(), jobs=jobs)
    _assert_identical(base, par)


def test_jobs_one_never_spawns(graph, assignment):
    telemetry.set_enabled(True)
    telemetry.reset()
    _run(graph, assignment, PageRank(iterations=3), jobs=1)
    counters = telemetry.registry().snapshot()["counters"]
    assert counters.get("parallel.workers_spawned", 0) == 0


def test_crashed_worker_falls_back_to_serial(graph, assignment, monkeypatch):
    from repro.engines.gemini import engine as engine_mod

    telemetry.set_enabled(True)
    telemetry.reset()
    monkeypatch.setattr(engine_mod, "_CENSUS_TASK", "tests.parallel._tasks:crash")
    base = _run(graph, assignment, PageRank(iterations=5), jobs=1)
    par = _run(graph, assignment, PageRank(iterations=5), jobs=2)
    _assert_identical(base, par)
    counters = telemetry.registry().snapshot()["counters"]
    assert counters.get('parallel.fallbacks{site="gemini.crash"}', 0) >= 1
