"""Serving SLOs per partitioner — the production-facing comparison.

The paper's tables rank partitioners by batch-analytics runtime; this
experiment ranks them by what an online service would see: p50/p99
query latency, sustained throughput, shed rate, and cache hit rate
under one open-loop heavy-tailed workload. The same two-dimensional
balance argument applies — a hub-heavy part concentrates popular
vertices on one machine (queueing), a vertex-heavy part overflows its
block cache (misses), and a large edge cut turns every neighbourhood
read into remote traffic (wire latency) — but serving exposes all
three as *tail* effects rather than makespan.

A second pass replays the same workload under a chaos plan firing at
the serving sites (machine slowdowns + cache flushes) to show graceful
degradation: completion with bounded shed rate, tails inflated but
finite.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentConfig, ExperimentResult, register_experiment
from repro.bench.report import BarChart, Table
from repro.bench.workloads import run_serving_job
from repro.bench.experiments._common import graph_for, partition_with
from repro.resilience.chaos import ChaosPlan, ChaosRule, active_plan, install_plan
from repro.serving import SITE_CACHE, SITE_MACHINE, ServingConfig, ServingReport, WorkloadSpec

__all__ = ["SERVING_PARTITIONERS", "serving_chaos_plan", "serving_slo"]

#: the paper's headline partitioners plus LDG, with hash as the
#: locality-free baseline every serving system implicitly compares to.
SERVING_PARTITIONERS = ("chunk-v", "chunk-e", "fennel", "ldg", "bpart", "hash")

_DATASET = "livejournal"
_NUM_PARTS = 8


def serving_chaos_plan() -> ChaosPlan:
    """The degradation drill: straggling batches + cache flushes.

    ``exception`` kind only — the serving sites translate it into
    simulated slowdown/flush; ``hang``/``kill`` would act on the host
    process (see :mod:`repro.serving.simulator`).
    """
    return ChaosPlan(
        seed=1,
        rules=(
            ChaosRule(site=SITE_MACHINE, kind="exception", rate=0.05),
            ChaosRule(site=SITE_CACHE, kind="exception", rate=0.02),
        ),
    )


@register_experiment(
    "serving_slo",
    "Request-serving SLOs per partitioner (p50/p99, throughput, shed rate)",
)
def serving_slo(config: ExperimentConfig) -> ExperimentResult:
    graph = graph_for(config, _DATASET)
    spec = WorkloadSpec(duration=1.0, seed=config.seed)
    serving = ServingConfig()

    report = ServingReport(
        spec, serving, dataset=_DATASET, num_parts=_NUM_PARTS
    )
    for name in SERVING_PARTITIONERS:
        assignment = partition_with(name, graph, _NUM_PARTS, seed=config.seed).assignment
        report.add(name, run_serving_job(graph, assignment, spec=spec, config=serving, seed=config.seed))

    # Degradation drill: same workload, chaos firing at the serving
    # sites, on the paper's partitioner and the hash baseline. The
    # previous plan (e.g. an outer harness's) is restored afterwards.
    chaos = serving_chaos_plan()
    chaos_report = ServingReport(
        spec, serving, dataset=_DATASET, num_parts=_NUM_PARTS, chaos="machine+cache"
    )
    prev = active_plan()
    try:
        install_plan(chaos)
        for name in ("bpart", "hash"):
            assignment = partition_with(name, graph, _NUM_PARTS, seed=config.seed).assignment
            chaos_report.add(
                name, run_serving_job(graph, assignment, spec=spec, config=serving, seed=config.seed)
            )
    finally:
        install_plan(prev)

    p99 = BarChart(
        title="p99 serving latency (ms, lower is better)",
    )
    for name, entry in report.entries.items():
        p99.add(name, entry["latency_p99"] * 1e3)

    degradation = Table(
        title="degradation drill — chaos at serving.machine/serving.cache",
        headers=("partitioner", "clean p99 ms", "chaos p99 ms", "shed %", "degraded", "flushes"),
    )
    for name, entry in chaos_report.entries.items():
        clean = report.entries[name]
        degradation.add_row(
            name,
            f"{clean['latency_p99'] * 1e3:.3f}",
            f"{entry['latency_p99'] * 1e3:.3f}",
            f"{entry['shed_rate'] * 100:.2f}",
            str(entry["degraded_batches"]),
            str(entry["cache_flushes"]),
        )

    return ExperimentResult(
        experiment_id="serving_slo",
        title="Request-serving SLOs over the partitioned cluster",
        tables=[report.table(), degradation],
        charts=[p99],
        notes=[
            "open-loop Poisson arrivals, Zipf-over-degree popularity, "
            "community-local sessions; all chaos runs completed",
            f"workload {spec.digest()[:12]}, serving config {serving.digest()[:12]}",
        ],
        data={
            ("report", "clean"): report.to_dict(),
            ("report", "chaos"): chaos_report.to_dict(),
        },
    )
