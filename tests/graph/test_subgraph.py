"""Unit tests for subgraph extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import extract_subgraph, partition_subgraphs


class TestExtract:
    def test_triangle_pair(self, triangle):
        sub = extract_subgraph(triangle, np.array([0, 1]))
        assert sub.num_vertices == 2
        assert sub.graph.num_undirected_edges == 1
        # each kept vertex loses one arc to vertex 2
        assert sub.num_cut_arcs == 2
        assert sub.num_total_arcs == 4

    def test_mask_and_ids_agree(self, grid8x8):
        ids = np.arange(0, 32)
        mask = np.zeros(64, dtype=bool)
        mask[ids] = True
        a = extract_subgraph(grid8x8, ids)
        b = extract_subgraph(grid8x8, mask)
        assert a.graph == b.graph
        assert a.num_cut_arcs == b.num_cut_arcs

    def test_relabelling_maps_back(self, grid8x8):
        ids = np.array([9, 10, 17, 18])  # 2x2 block
        sub = extract_subgraph(grid8x8, ids)
        assert np.array_equal(sub.global_ids, ids)
        for local, g in enumerate(ids):
            assert sub.local_of[g] == local
        # block has 4 internal undirected edges
        assert sub.graph.num_undirected_edges == 4

    def test_degrees_conserved(self, powerlaw_small):
        members = np.arange(0, powerlaw_small.num_vertices, 2)
        sub = extract_subgraph(powerlaw_small, members)
        assert (
            sub.graph.num_edges + sub.num_cut_arcs == sub.num_total_arcs
        )
        assert sub.num_total_arcs == int(powerlaw_small.degrees[members].sum())

    def test_empty_membership(self, triangle):
        sub = extract_subgraph(triangle, np.array([], dtype=np.int64))
        assert sub.num_vertices == 0
        assert sub.num_total_arcs == 0

    def test_out_of_range_ids(self, triangle):
        with pytest.raises(PartitionError):
            extract_subgraph(triangle, np.array([5]))

    def test_bad_mask_length(self, triangle):
        with pytest.raises(PartitionError):
            extract_subgraph(triangle, np.zeros(2, dtype=bool))


class TestPartitionSubgraphs:
    def test_parts_cover_graph(self, powerlaw_small):
        n = powerlaw_small.num_vertices
        parts = np.arange(n) % 4
        subs = partition_subgraphs(powerlaw_small, parts, 4)
        assert sum(s.num_vertices for s in subs) == n
        # every arc is either internal to exactly one part or cut twice
        internal = sum(s.graph.num_edges for s in subs)
        cut = sum(s.num_cut_arcs for s in subs)
        assert internal + cut == powerlaw_small.num_edges

    def test_wrong_length(self, triangle):
        with pytest.raises(PartitionError):
            partition_subgraphs(triangle, np.array([0, 1]), 2)
