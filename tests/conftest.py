"""Shared fixtures: small deterministic graphs used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    chung_lu,
    complete_graph,
    from_edges,
    grid_graph,
    path_graph,
    ring_graph,
    social_graph,
    star_graph,
)


@pytest.fixture(autouse=True)
def _hermetic_artifact_cache(tmp_path, monkeypatch):
    """Keep the artifact store out of ~/.cache during tests.

    Every test gets a private cache dir and a fresh store, so cached
    partitions never leak between tests (or into the user's real cache).
    """
    from repro.bench import artifacts

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "artifact-cache"))
    artifacts.reset_store()
    yield
    artifacts.reset_store()


@pytest.fixture(autouse=True)
def _hermetic_telemetry():
    """Telemetry starts disabled and empty for every test.

    Tests that enable collection (or record into the shared registry)
    never leak series into their neighbours.
    """
    from repro import telemetry

    telemetry.set_enabled(False)
    telemetry.reset()
    yield
    telemetry.set_enabled(False)
    telemetry.reset()


@pytest.fixture(autouse=True)
def _hermetic_chaos(monkeypatch):
    """No chaos plan leaks between tests (module global or $REPRO_CHAOS)."""
    from repro.resilience import chaos

    monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
    chaos.install_plan(None)
    yield
    chaos.install_plan(None)


@pytest.fixture
def triangle():
    """K3: the smallest graph with a cycle."""
    return from_edges([0, 1, 2], [1, 2, 0])


@pytest.fixture
def two_components():
    """A triangle plus a disjoint edge (5 vertices, 2 components)."""
    return from_edges([0, 1, 2, 3], [1, 2, 0, 4], num_vertices=5)


@pytest.fixture
def ring64():
    return ring_graph(64)


@pytest.fixture
def path10():
    return path_graph(10)


@pytest.fixture
def star16():
    return star_graph(16)


@pytest.fixture
def grid8x8():
    return grid_graph(8, 8)


@pytest.fixture
def k5():
    return complete_graph(5)


@pytest.fixture
def powerlaw_small():
    """~2k-vertex scale-free graph, the workhorse integration fixture."""
    return chung_lu(2000, 12.0, 2.3, rng=123)


@pytest.fixture
def social_small():
    """Social-style graph (degree-id correlation + locality)."""
    return social_graph(1500, 10.0, 2.3, locality=0.3, rng=7)


@pytest.fixture
def isolated_vertices():
    """Graph with trailing isolated vertices (edge cases for streams)."""
    return from_edges([0, 1], [1, 2], num_vertices=6)
