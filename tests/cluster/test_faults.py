"""Tests for the fault-injection subsystem (plan DSL, checkpoint cost,
recovery planners, and the FaultAwareCluster wrapper)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import BSPCluster
from repro.cluster.faults import (
    CheckpointCostModel,
    CheckpointPolicy,
    Crash,
    DegradedLink,
    FaultAwareCluster,
    FaultPlan,
    Straggler,
    plan_redistribute,
    plan_restart,
)
from repro.engines.knightking import DeepWalk, WalkEngine
from repro.errors import ConfigurationError, SimulationError
from repro.partition import get_partitioner

MACHINES = 4

STANDARD_PLAN = FaultPlan(
    crashes=(Crash(machine=1, superstep=2),),
    stragglers=(Straggler(machine=0, start=0, duration=2, factor=3.0),),
    checkpoint=CheckpointPolicy(interval=2),
    recovery="redistribute",
    seed=7,
)


@pytest.fixture(scope="module")
def job():
    """A partitioned graph shared by all cluster tests."""
    from repro.graph import chung_lu

    g = chung_lu(800, 10.0, 2.3, rng=5)
    a = get_partitioner("bpart", seed=2).partition(g, MACHINES).assignment
    return g, a


def _run_walk(cluster, g, a, *, seed=3, steps=4):
    engine = WalkEngine(cluster, seed=seed)
    return engine.run(g, a, DeepWalk(), walkers_per_vertex=2, max_steps=steps)


class TestFaultPlan:
    def test_json_round_trip_is_identity(self):
        plan = STANDARD_PLAN
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        assert again.to_json() == plan.to_json()
        assert again.digest() == plan.digest()

    def test_digest_distinguishes_plans(self):
        assert STANDARD_PLAN.digest() != FaultPlan().digest()
        assert (
            STANDARD_PLAN.digest()
            != STANDARD_PLAN.with_recovery("restart").digest()
        )

    def test_zero_fault_flags(self):
        assert FaultPlan().is_zero_fault
        assert not FaultPlan().needs_state
        assert not STANDARD_PLAN.is_zero_fault
        assert STANDARD_PLAN.needs_state
        # Stragglers alone perturb timing but need no state.
        p = FaultPlan(stragglers=(Straggler(machine=0, start=0),))
        assert not p.is_zero_fault
        assert not p.needs_state

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(recovery="teleport")
        with pytest.raises(ConfigurationError):
            FaultPlan(
                crashes=(Crash(machine=0, superstep=1), Crash(machine=0, superstep=2))
            )
        with pytest.raises(ConfigurationError):
            FaultPlan(stragglers=(Straggler(machine=0, start=0, factor=0.0),))
        with pytest.raises(ConfigurationError):
            FaultPlan(degraded_links=(DegradedLink(src=1, dst=1),))
        with pytest.raises(ConfigurationError):
            STANDARD_PLAN.validate_for(1)  # machine 1 outside a 1-machine cluster
        with pytest.raises(ConfigurationError):
            FaultPlan(crashes=(Crash(machine=0, superstep=0),)).validate_for(1)

    def test_from_json_rejects_other_formats(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_json('{"format": "something-else"}')

    def test_sample_is_deterministic(self):
        a = FaultPlan.sample(8, seed=11, num_degraded_links=1)
        b = FaultPlan.sample(8, seed=11, num_degraded_links=1)
        assert a == b
        assert a.digest() == b.digest()
        assert a != FaultPlan.sample(8, seed=12, num_degraded_links=1)
        a.validate_for(8)

    def test_straggler_and_link_windows(self):
        s = Straggler(machine=0, start=2, duration=2)
        assert not s.active_at(1) and s.active_at(2) and s.active_at(3)
        assert not s.active_at(4)
        open_ended = DegradedLink(src=0, dst=1, start=1, duration=None)
        assert not open_ended.active_at(0)
        assert open_ended.active_at(100)

    def test_checkpoint_cadence(self):
        p = CheckpointPolicy(interval=2)
        assert [t for t in range(6) if p.due_after(t)] == [1, 3, 5]
        assert not any(CheckpointPolicy(interval=0).due_after(t) for t in range(6))


class TestCheckpointCostModel:
    def test_cost_scales_with_state(self):
        m = CheckpointCostModel(fixed_seconds=0.0)
        small = m.checkpoint_seconds(100.0, 100.0)
        assert m.checkpoint_seconds(200.0, 200.0) == pytest.approx(2 * small)
        assert m.restore_seconds(100.0, 100.0) == pytest.approx(small)

    def test_read_bandwidth_override(self):
        m = CheckpointCostModel(write_bandwidth=1e6, read_bandwidth=2e6, fixed_seconds=0.0)
        assert m.restore_seconds(1e6 / 16, 0.0) == pytest.approx(
            m.checkpoint_seconds(1e6 / 16, 0.0) / 2
        )

    def test_validation(self):
        with pytest.raises(Exception):
            CheckpointCostModel(write_bandwidth=0.0)


class TestRecoveryPlanners:
    def test_restart_concentrates_on_failed(self):
        out = plan_restart(4, 2)
        assert out.strategy == "restart"
        assert out.share_v.tolist() == [0.0, 0.0, 1.0, 0.0]
        assert out.hosting is None

    def test_redistribute_moves_everything_to_survivors(self, job):
        g, a = job
        hosting = a.parts.astype(np.int64)
        alive = np.ones(MACHINES, dtype=bool)
        out = plan_redistribute(g, hosting, MACHINES, 1, alive, seed=7)
        assert out.strategy == "redistribute"
        assert (out.hosting != 1).all()
        assert out.share_v[1] == 0.0
        assert out.share_v.sum() == pytest.approx(1.0)
        assert out.share_e.sum() == pytest.approx(1.0)
        # Vertices not previously on machine 1 did not move.
        unchanged = hosting != 1
        assert (out.hosting[unchanged] == hosting[unchanged]).all()

    def test_redistribute_deterministic(self, job):
        g, a = job
        hosting = a.parts.astype(np.int64)
        alive = np.ones(MACHINES, dtype=bool)
        a_out = plan_redistribute(g, hosting, MACHINES, 1, alive, seed=7)
        b_out = plan_redistribute(g, hosting, MACHINES, 1, alive, seed=7)
        assert (a_out.hosting == b_out.hosting).all()
        assert (a_out.share_v == b_out.share_v).all()

    def test_redistribute_balances_survivors(self, job):
        g, a = job
        hosting = a.parts.astype(np.int64)
        alive = np.ones(MACHINES, dtype=bool)
        out = plan_redistribute(g, hosting, MACHINES, 1, alive, seed=7)
        counts = np.bincount(out.hosting, minlength=MACHINES).astype(float)
        surv = counts[[0, 2, 3]]
        assert surv.max() / surv.mean() < 1.35

    def test_no_survivors_raises(self, job):
        g, a = job
        alive = np.zeros(MACHINES, dtype=bool)
        alive[1] = True
        with pytest.raises(SimulationError):
            plan_redistribute(g, a.parts.astype(np.int64), MACHINES, 1, alive)


class TestZeroFaultEquivalence:
    def test_ledger_bit_identical_to_bsp(self, job):
        g, a = job
        base = _run_walk(BSPCluster(MACHINES), g, a)
        faulty = _run_walk(FaultAwareCluster(MACHINES, FaultPlan()), g, a)
        assert faulty.ledger.to_json() == base.ledger.to_json()
        assert faulty.total_messages == base.total_messages
        assert (faulty.final_positions == base.final_positions).all()
        assert faulty.ledger.waiting_ratio == base.ledger.waiting_ratio

    def test_overlap_flag_preserved(self, job):
        g, a = job
        base = _run_walk(BSPCluster(MACHINES, overlap=True), g, a)
        faulty = _run_walk(
            FaultAwareCluster(MACHINES, FaultPlan(), overlap=True), g, a
        )
        assert faulty.ledger.to_json() == base.ledger.to_json()


class TestFaultAwareCluster:
    def _faulty(self, job, plan, **kwargs):
        g, a = job
        return FaultAwareCluster(MACHINES, plan, graph=g, assignment=a, **kwargs)

    def test_requires_state_for_crashes(self):
        with pytest.raises(ConfigurationError):
            FaultAwareCluster(MACHINES, STANDARD_PLAN)

    def test_deterministic_byte_identical(self, job):
        g, a = job
        runs = [
            _run_walk(self._faulty(job, STANDARD_PLAN), g, a) for _ in range(2)
        ]
        assert runs[0].ledger.to_json() == runs[1].ledger.to_json()

    def test_crash_marks_machine_dead(self, job):
        g, a = job
        cluster = self._faulty(job, STANDARD_PLAN)
        result = _run_walk(cluster, g, a)
        report = cluster.report()
        assert report.alive == [True, False, True, True]
        assert len(report.crashes) == 1
        assert report.crashes[0]["machine"] == 1
        assert report.num_checkpoints >= 1
        assert report.recovery_seconds > 0
        # Dead machine does no work after the crash.
        last = result.ledger.iterations[-1]
        assert last.active is not None and not last.active[1]
        assert last.compute[1] == 0.0 and last.wait[1] == 0.0

    def test_walk_results_unperturbed_by_faults(self, job):
        g, a = job
        base = _run_walk(BSPCluster(MACHINES), g, a)
        faulty = _run_walk(self._faulty(job, STANDARD_PLAN), g, a)
        # Faults change the schedule, never the numerical semantics.
        assert (faulty.final_positions == base.final_positions).all()
        assert faulty.total_steps == base.total_steps

    def test_restart_keeps_membership(self, job):
        g, a = job
        cluster = self._faulty(job, STANDARD_PLAN.with_recovery("restart"))
        _run_walk(cluster, g, a)
        report = cluster.report()
        assert report.alive == [True] * MACHINES
        assert report.crashes[0]["strategy"] == "restart"
        assert report.recovery_seconds > 0

    def test_redistribute_survivors_balanced(self, job):
        g, a = job
        cluster = self._faulty(job, STANDARD_PLAN)
        _run_walk(cluster, g, a)
        report = cluster.report()
        # BPart input ⇒ recovered survivors stay near-balanced.
        assert report.survivor_vertex_max_dev < 0.15
        assert report.survivor_edge_max_dev < 0.35
        hosting = cluster.hosting
        assert (hosting != 1).all()

    def test_straggler_slows_compute(self, job):
        g, a = job
        plan = FaultPlan(stragglers=(Straggler(machine=0, start=0, duration=1, factor=4.0),))
        base = _run_walk(BSPCluster(MACHINES), g, a)
        slow = _run_walk(FaultAwareCluster(MACHINES, plan), g, a)
        assert slow.ledger.iterations[0].compute[0] == pytest.approx(
            4.0 * base.ledger.iterations[0].compute[0]
        )
        assert (
            slow.ledger.iterations[1].compute[0]
            == base.ledger.iterations[1].compute[0]
        )
        kinds = [e.kind for e in slow.ledger.events]
        assert kinds.count("straggler") == 1

    def test_degraded_link_increases_comm(self, job):
        g, a = job
        plan = FaultPlan(
            degraded_links=(DegradedLink(src=0, dst=1, bandwidth_scale=0.25),)
        )
        base = _run_walk(BSPCluster(MACHINES), g, a)
        slow = _run_walk(FaultAwareCluster(MACHINES, plan), g, a)
        assert slow.runtime >= base.runtime
        assert slow.ledger.comm_matrix.sum() > base.ledger.comm_matrix.sum()
        assert any(e.kind == "degraded-link" for e in slow.ledger.events)
        # The numbers are untouched: only the schedule changed.
        assert (slow.final_positions == base.final_positions).all()

    def test_checkpoint_cost_depends_on_balance(self, job):
        g, _ = job
        plan = FaultPlan(checkpoint=CheckpointPolicy(interval=1))
        cost = CheckpointCostModel(fixed_seconds=0.0)
        reports = {}
        for algo in ("bpart", "chunk-v"):
            a = get_partitioner(algo, seed=2).partition(g, MACHINES).assignment
            cluster = FaultAwareCluster(
                MACHINES, plan, graph=g, assignment=a, checkpoint_cost=cost
            )
            _run_walk(cluster, g, a)
            reports[algo] = cluster.report()
        assert reports["bpart"].num_checkpoints == reports["chunk-v"].num_checkpoints
        # A checkpoint barrier lasts as long as the most-stateful machine:
        # the 2-D balanced partition checkpoints strictly cheaper than the
        # vertex-balanced one on a skewed graph.
        assert (
            reports["bpart"].checkpoint_seconds
            < reports["chunk-v"].checkpoint_seconds
        )

    def test_checkpoints_bound_replay(self, job):
        g, a = job

        def replay_with(interval):
            plan = FaultPlan(
                crashes=(Crash(machine=1, superstep=3),),
                checkpoint=CheckpointPolicy(interval=interval),
                seed=7,
            )
            cluster = FaultAwareCluster(MACHINES, plan, graph=g, assignment=a)
            _run_walk(cluster, g, a)
            return cluster.report().crashes[0]["replay_seconds"]

        # With a checkpoint every superstep only the crashing superstep
        # replays; with none, everything since the start does.
        assert replay_with(1) < replay_with(0)

    def test_report_before_run_raises(self, job):
        cluster = self._faulty(job, STANDARD_PLAN)
        cluster.begin_run()
        cluster.report()  # mid-run report is fine
        fresh = FaultAwareCluster(MACHINES)
        with pytest.raises(SimulationError):
            fresh.ledger  # noqa: B018 - property raises before begin_run

    def test_gemini_engine_runs_through_faults(self, job):
        from repro.engines.gemini import GeminiEngine, PageRank

        g, a = job
        base = GeminiEngine(BSPCluster(MACHINES)).run(g, a, PageRank(iterations=5))
        cluster = self._faulty(job, STANDARD_PLAN)
        res = GeminiEngine(cluster).run(g, a, PageRank(iterations=5))
        assert np.allclose(res.values, base.values)
        assert res.ledger.num_iterations > base.ledger.num_iterations
        assert cluster.report().alive == [True, False, True, True]
