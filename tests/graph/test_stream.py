"""Unit tests for vertex stream orderings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph import vertex_stream
from repro.graph.stream import STREAM_ORDERS


class TestOrders:
    @pytest.mark.parametrize("order", STREAM_ORDERS)
    def test_is_permutation(self, powerlaw_small, order):
        s = vertex_stream(powerlaw_small, order, rng=1)
        assert np.array_equal(np.sort(s), np.arange(powerlaw_small.num_vertices))

    def test_natural(self, ring64):
        assert np.array_equal(vertex_stream(ring64, "natural"), np.arange(64))

    def test_random_is_seed_deterministic(self, ring64):
        a = vertex_stream(ring64, "random", rng=3)
        b = vertex_stream(ring64, "random", rng=3)
        assert np.array_equal(a, b)
        c = vertex_stream(ring64, "random", rng=4)
        assert not np.array_equal(a, c)

    def test_degree_orders(self, star16):
        asc = vertex_stream(star16, "degree")
        desc = vertex_stream(star16, "degree_desc")
        assert asc[-1] == 0  # hub last ascending
        assert desc[0] == 0  # hub first descending

    def test_bfs_visits_neighbors_contiguously(self, path10):
        s = vertex_stream(path10, "bfs")
        assert list(s) == list(range(10))  # path from 0 is already BFS order

    def test_bfs_covers_components(self, two_components):
        s = vertex_stream(two_components, "bfs")
        assert set(s) == set(range(5))

    def test_dfs_path(self, path10):
        s = vertex_stream(path10, "dfs")
        assert list(s) == list(range(10))

    def test_dfs_isolated(self, isolated_vertices):
        s = vertex_stream(isolated_vertices, "dfs")
        assert set(s) == set(range(6))

    def test_unknown_order(self, ring64):
        with pytest.raises(ConfigurationError):
            vertex_stream(ring64, "spiral")
