"""Long-running repartitioning service (prioritized restreaming).

The online layer above :class:`repro.partition.dynamic.
DynamicPartitioner`: a daemon ingests a seeded stream of vertex/edge
insertions and deletions, and every ``epoch_events`` events runs a
*prioritized restreaming* epoch — residents re-scored in descending
gain order under a hard migration budget (Awadelkarim & Ugander, KDD
2020, adapted to the paper's Eq. 1 weighted indicator). Each epoch is
appended to a canonical ``repartition-epoch/v1`` JSON ledger that is
byte-identical across same-seed runs.

Pieces
------
- :mod:`restream`  — gain scoring + the two-sweep epoch engine.
- :mod:`scenario`  — seeded planted-partition churn workloads.
- :mod:`daemon`    — the event loop, quality metrics, ledgering.
- :mod:`ledger`    — the canonical epoch document.
- :mod:`baselines` — static hash and periodic-full-BPart comparators.
"""

from repro.partition.repartition.baselines import (
    PeriodicBPartBaseline,
    static_hash_ari,
    static_hash_parts,
)
from repro.partition.repartition.daemon import RepartitionDaemon
from repro.partition.repartition.ledger import LEDGER_SCHEMA, RepartitionLedger
from repro.partition.repartition.restream import (
    EpochStats,
    MoveScore,
    restream_epoch,
    score_vertex,
)
from repro.partition.repartition.scenario import ChurnEvent, ChurnScenario

__all__ = [
    "ChurnEvent",
    "ChurnScenario",
    "EpochStats",
    "LEDGER_SCHEMA",
    "MoveScore",
    "PeriodicBPartBaseline",
    "RepartitionDaemon",
    "RepartitionLedger",
    "restream_epoch",
    "score_vertex",
    "static_hash_ari",
    "static_hash_parts",
]
