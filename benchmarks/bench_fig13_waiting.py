"""Figure 13 — waiting-time ratio at 4 and 8 machines.

Fraction of machine-time spent at BSP barriers; 1-D schemes reach
~40-70%, BPart ~2-20%.
"""


def test_fig13(run_paper_experiment):
    result = run_paper_experiment("fig13")
    assert result.tables or result.series
