"""Export a BSP schedule as a Chrome-tracing timeline.

``chrome://tracing`` / Perfetto render JSON event lists as per-track
timelines. Mapping each simulated machine to a track with its compute /
communication / wait phases per superstep turns a
:class:`~repro.cluster.ledger.TimingLedger` into the kind of Gantt view
systems papers use to *show* barrier waiting (the visual counterpart of
Figure 12).
"""

from __future__ import annotations

import json
import os

from repro.cluster.ledger import TimingLedger

__all__ = ["to_chrome_trace", "write_chrome_trace"]

_PHASES = ("compute", "comm", "wait")


def to_chrome_trace(ledger: TimingLedger, *, job_name: str = "bsp-job") -> list[dict]:
    """Convert a ledger to Chrome-tracing "complete" (X) events.

    One track (tid) per machine; one event per (superstep, phase) with
    microsecond timestamps. Supersteps start at the barrier-aligned
    global clock, so waits render as gaps filled by explicit "wait"
    events.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": job_name},
        }
    ]
    for machine in range(ledger.num_machines):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": machine,
                "args": {"name": f"machine-{machine}"},
            }
        )
    t0 = 0.0
    for step, it in enumerate(ledger.iterations):
        duration = it.duration
        for machine in range(ledger.num_machines):
            segments = (
                (f"compute[{step}]", float(it.compute[machine])),
                (f"comm[{step}]", float(it.comm[machine])),
                (f"wait[{step}]", float(it.wait[machine])),
            )
            cursor = t0
            for name, seconds in segments:
                if seconds <= 0:
                    continue
                events.append(
                    {
                        "name": name,
                        "cat": name.split("[")[0],
                        "ph": "X",
                        "pid": 0,
                        "tid": machine,
                        "ts": cursor * 1e6,
                        "dur": seconds * 1e6,
                    }
                )
                cursor += seconds
        t0 += duration
    return events


def write_chrome_trace(
    ledger: TimingLedger, path: str | os.PathLike, *, job_name: str = "bsp-job"
) -> None:
    """Write the trace JSON (loadable in chrome://tracing / Perfetto)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": to_chrome_trace(ledger, job_name=job_name)}, fh)
