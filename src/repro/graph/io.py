"""Graph persistence: edge-list text, NumPy ``.npz`` binary, METIS.

The edge-list reader/writer handles the whitespace-separated ``u v``
format of SNAP/KONECT dumps (the paper's datasets are distributed that
way), the ``.npz`` format is the fast native round-trip, and the METIS
format enables interop with external multilevel partitioners.

Real-world edge streams are multi-GB and messy, so the text readers
take an ``on_error`` recovery mode instead of failing the whole
ingestion on line one:

- ``"raise"`` (default) — :class:`~repro.errors.GraphFormatError` with
  ``path:lineno`` on the first malformed line;
- ``"skip"`` — drop malformed lines, counting them under the
  ``graph.io.malformed_lines`` telemetry counter;
- ``"collect"`` — like ``skip``, but additionally append a
  :class:`ParseIssue` per problem to the caller-supplied ``errors``
  list, so ingestion reports *what* was dropped.

Truncated input (e.g. a cut-short ``.gz`` download) follows the same
modes: fatal under ``"raise"``, a recorded issue plus a graph built
from the readable prefix otherwise.
"""

from __future__ import annotations

import gzip
import os
from dataclasses import dataclass
from pathlib import Path
from typing import IO

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError, GraphFormatError
from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph

__all__ = [
    "ParseIssue",
    "open_text",
    "read_edge_list",
    "read_edge_list_sharded",
    "write_edge_list",
    "read_npz",
    "write_npz",
    "read_metis",
    "read_metis_sharded",
    "write_metis",
]

#: Edges buffered per builder batch by the streaming readers.
STREAM_BATCH = 1 << 20

_ON_ERROR_MODES = ("raise", "skip", "collect")


@dataclass(frozen=True)
class ParseIssue:
    """One recoverable problem found while reading a graph file."""

    path: str
    lineno: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.lineno}: {self.message}"


def _check_mode(on_error: str, errors: list | None) -> None:
    if on_error not in _ON_ERROR_MODES:
        raise ConfigurationError(
            f"on_error must be one of {_ON_ERROR_MODES}, got {on_error!r}"
        )
    if on_error == "collect" and errors is None:
        raise ConfigurationError("on_error='collect' needs an errors=[] list to fill")


def _handle(
    on_error: str, errors: list | None, path, lineno: int, message: str
) -> None:
    """Dispatch one malformed-input event per the recovery mode."""
    if on_error == "raise":
        raise GraphFormatError(f"{path}:{lineno}: {message}")
    if telemetry.enabled():
        telemetry.active().counter("graph.io.malformed_lines", mode=on_error).inc()
    if on_error == "collect":
        errors.append(ParseIssue(str(path), lineno, message))


def open_text(path: str | os.PathLike, mode: str = "r") -> IO[str]:
    """Open a text file, transparently un/compressing ``.gz`` paths.

    SNAP/KONECT distribute their edge lists gzipped; every text reader
    and writer here routes through this helper so ``graph.txt.gz`` works
    anywhere ``graph.txt`` does.
    """
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _read_lines(fh, path, on_error: str, errors: list | None):
    """Yield ``(lineno, line)``, converting mid-stream I/O failures
    (truncated gzip, disk errors) into the recovery mode's behaviour."""
    lineno = 0
    while True:
        try:
            line = fh.readline()
        except (EOFError, OSError, UnicodeDecodeError) as exc:
            _handle(on_error, errors, path, lineno + 1, f"unreadable input: {exc}")
            return
        if not line:
            return
        lineno += 1
        yield lineno, line


def _parse_edge_lines(fh, path, comments, on_error, errors):
    """Yield ``(u, v)`` pairs from an open edge-list file, applying the
    recovery mode per malformed line. Shared by the dense and streaming
    readers so both accept exactly the same inputs."""
    for lineno, line in _read_lines(fh, path, on_error, errors):
        line = line.strip()
        if not line or line.startswith(comments):
            continue
        parts = line.split()
        if len(parts) < 2:
            _handle(on_error, errors, path, lineno, f"expected 'u v', got {line!r}")
            continue
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError:
            _handle(on_error, errors, path, lineno, "non-integer vertex id")
            continue
        if u < 0 or v < 0:
            _handle(on_error, errors, path, lineno, f"negative vertex id in {line!r}")
            continue
        yield u, v


def read_edge_list(
    path: str | os.PathLike,
    *,
    directed: bool = False,
    comments: str = "#",
    num_vertices: int | None = None,
    on_error: str = "raise",
    errors: list | None = None,
) -> CSRGraph:
    """Read a whitespace-separated ``u v`` edge list.

    Lines starting with ``comments`` (default ``#``, SNAP convention) and
    blank lines are skipped. Vertex ids must be non-negative integers;
    anything else follows the ``on_error`` recovery mode (see module
    docstring).
    """
    _check_mode(on_error, errors)
    src: list[int] = []
    dst: list[int] = []
    with open_text(path) as fh:
        for u, v in _parse_edge_lines(fh, path, comments, on_error, errors):
            src.append(u)
            dst.append(v)
    return from_edges(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        num_vertices,
        directed=directed,
    )


def read_edge_list_sharded(
    path: str | os.PathLike,
    spill_dir: str | os.PathLike,
    *,
    directed: bool = False,
    comments: str = "#",
    num_vertices: int | None = None,
    shard_size: int | None = None,
    on_error: str = "raise",
    errors: list | None = None,
):
    """Read an edge list directly into a shard directory.

    Same format and recovery modes as :func:`read_edge_list`, but edges
    flow through :class:`~repro.graph.sharded.ShardedCSRBuilder` in
    batches of :data:`STREAM_BATCH`, so peak memory is one batch plus one
    shard — never the graph. The result is content- and
    fingerprint-identical to ``read_edge_list`` of the same file.
    """
    from repro.graph.sharded import DEFAULT_SHARD_SIZE, ShardedCSRBuilder

    _check_mode(on_error, errors)
    builder = ShardedCSRBuilder(
        spill_dir,
        num_vertices=num_vertices,
        shard_size=shard_size or DEFAULT_SHARD_SIZE,
        directed=directed,
    )
    src: list[int] = []
    dst: list[int] = []
    try:
        with open_text(path) as fh:
            for u, v in _parse_edge_lines(fh, path, comments, on_error, errors):
                src.append(u)
                dst.append(v)
                if len(src) >= STREAM_BATCH:
                    builder.add_edges(src, dst)
                    src.clear()
                    dst.clear()
        if src:
            builder.add_edges(src, dst)
        return builder.finalize()
    except BaseException:
        builder.abort()
        raise


def write_edge_list(graph, path: str | os.PathLike) -> None:
    """Write every arc (undirected graphs: each edge once, ``u < v``)."""
    with open_text(path, "w") as fh:
        fh.write(f"# repro edge list: n={graph.num_vertices} directed={graph.directed}\n")
        for start, stop, local, idx in graph.iter_blocks():
            src = np.repeat(np.arange(start, stop, dtype=np.int64), np.diff(local))
            dst = idx.astype(np.int64, copy=False)
            if not graph.directed:
                keep = src < dst
                src, dst = src[keep], dst[keep]
            if src.size:
                np.savetxt(fh, np.column_stack([src, dst]), fmt="%d")


def write_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Binary CSR round-trip (compressed ``.npz``)."""
    np.savez_compressed(
        path,
        indptr=graph.indptr,
        indices=graph.indices,
        directed=np.array([graph.directed]),
    )


def read_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph written by :func:`write_npz`."""
    with np.load(path) as data:
        try:
            return CSRGraph(
                data["indptr"], data["indices"], directed=bool(data["directed"][0])
            )
        except KeyError as exc:
            raise GraphFormatError(f"{path}: missing array {exc}") from exc


def write_metis(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write the METIS/KaHIP format (1-indexed adjacency lines).

    METIS requires symmetric adjacency, so directed graphs are rejected.
    """
    if graph.directed:
        raise GraphFormatError("METIS format requires an undirected graph")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"{graph.num_vertices} {graph.num_undirected_edges}\n")
        for v in range(graph.num_vertices):
            fh.write(" ".join(str(int(u) + 1) for u in graph.neighbors(v)) + "\n")


def read_metis(
    path: str | os.PathLike,
    *,
    on_error: str = "raise",
    errors: list | None = None,
) -> CSRGraph:
    """Read the METIS/KaHIP format written by :func:`write_metis`.

    The header is always strict — without a trustworthy vertex count
    there is nothing to recover *to* — and is cross-checked against the
    body: the declared edge count must match the adjacency lists, and
    neighbor ids must be positive (the format is 1-indexed; a ``0``
    almost always means a 0-indexed exporter). Body problems follow
    ``on_error`` like the edge-list reader.
    """
    _check_mode(on_error, errors)
    path = Path(path)
    with open(path, "r", encoding="utf-8") as fh:
        n, m = _metis_header(fh, path)
        src: list[int] = []
        dst: list[int] = []
        for v, w in _metis_arcs(fh, path, n, on_error, errors):
            src.append(v)
            dst.append(w)
    _metis_crosscheck(len(src), n, m, path, on_error, errors)
    # The file stores both directions already; treat as directed arcs and
    # mark undirected so edge counting stays consistent.
    g = from_edges(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        n,
        directed=True,
    )
    return CSRGraph(g.indptr, g.indices, directed=False, validate=False)


def _metis_header(fh, path) -> tuple[int, int]:
    header = fh.readline().split()
    if len(header) < 2:
        raise GraphFormatError(
            f"{path}:1: bad METIS header (need '<num_vertices> <num_edges>')"
        )
    try:
        n, m = int(header[0]), int(header[1])
    except ValueError as exc:
        raise GraphFormatError(
            f"{path}:1: non-integer METIS header token in {header[:2]}"
        ) from exc
    if n < 0 or m < 0:
        raise GraphFormatError(f"{path}:1: negative count in METIS header")
    return n, m


def _metis_arcs(fh, path, n, on_error, errors):
    """Yield 0-indexed ``(v, neighbor)`` arcs from the adjacency body."""
    for v in range(n):
        line = fh.readline()
        if not line:
            _handle(
                on_error, errors, path, v + 2,
                f"truncated: adjacency for vertex {v} missing "
                f"(header claims {n} vertices)",
            )
            break
        for tok in line.split():
            try:
                w = int(tok)
            except ValueError:
                _handle(
                    on_error, errors, path, v + 2,
                    f"non-integer neighbor id {tok!r}",
                )
                continue
            if w < 1:
                _handle(
                    on_error, errors, path, v + 2,
                    f"non-positive neighbor id {w} "
                    "(METIS is 1-indexed; is the file 0-indexed?)",
                )
                continue
            yield v, w - 1


def _metis_crosscheck(num_arcs, n, m, path, on_error, errors) -> None:
    if num_arcs != 2 * m:
        _handle(
            on_error, errors, path, n + 1,
            f"header claims {m} edges but adjacency lists encode "
            f"{num_arcs} arcs (expected {2 * m})",
        )


def read_metis_sharded(
    path: str | os.PathLike,
    spill_dir: str | os.PathLike,
    *,
    shard_size: int | None = None,
    on_error: str = "raise",
    errors: list | None = None,
):
    """Read a METIS file directly into a shard directory.

    Same strict header / recoverable body as :func:`read_metis`, with
    arcs streamed through the sharded builder in :data:`STREAM_BATCH`
    batches. The file already stores both arc directions, so the builder
    runs with symmetrisation off; the result is content- and
    fingerprint-identical to ``read_metis`` of the same file.
    """
    from repro.graph.sharded import DEFAULT_SHARD_SIZE, ShardedCSRBuilder

    _check_mode(on_error, errors)
    path = Path(path)
    num_arcs = 0
    src: list[int] = []
    dst: list[int] = []
    builder = None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            n, m = _metis_header(fh, path)
            builder = ShardedCSRBuilder(
                spill_dir,
                num_vertices=n,
                shard_size=shard_size or DEFAULT_SHARD_SIZE,
                directed=False,
                symmetrize=False,
            )
            for v, w in _metis_arcs(fh, path, n, on_error, errors):
                num_arcs += 1
                src.append(v)
                dst.append(w)
                if len(src) >= STREAM_BATCH:
                    builder.add_edges(src, dst)
                    src.clear()
                    dst.clear()
        _metis_crosscheck(num_arcs, n, m, path, on_error, errors)
        if src:
            builder.add_edges(src, dst)
        return builder.finalize()
    except BaseException:
        if builder is not None:
            builder.abort()
        raise
