"""Plain-text rendering of experiment output.

Every experiment renders to :class:`Table` (paper tables, bar charts) or
:class:`Series` (paper line/scatter figures) so the bench harness can
print the same rows/series the paper reports, terminal-only, no plotting
dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["Table", "Series", "BarChart", "format_cell"]


def format_cell(value: Any) -> str:
    """Human formatting: floats get 4 significant-ish decimals."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.4g}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


@dataclass
class Table:
    """An ASCII table with a title and optional paper-expectation note."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    note: str = ""

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        cells = [[format_cell(c) for c in row] for row in self.rows]
        widths = [
            max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
            for i, h in enumerate(self.headers)
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title]
        lines.append(" | ".join(str(h).ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.note:
            lines.append(f"  paper: {self.note}")
        return "\n".join(lines)


@dataclass
class Series:
    """A named (x, y) series — one line of a paper figure."""

    name: str
    x: list[Any] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def add(self, x: Any, y: float) -> None:
        self.x.append(x)
        self.y.append(float(y))

    def render(self) -> str:
        pts = "  ".join(f"({format_cell(a)}, {format_cell(b)})" for a, b in zip(self.x, self.y))
        return f"{self.name}: {pts}"


@dataclass
class BarChart:
    """A horizontal ASCII bar chart — the terminal rendering of the
    paper's bar figures (13/14/15).

    Bars are scaled to ``width`` characters against the maximum value;
    each row shows the label, the bar, and the value.
    """

    title: str
    width: int = 40
    note: str = ""
    rows: list[tuple[str, float]] = field(default_factory=list)

    def add(self, label: str, value: float) -> None:
        if value < 0:
            raise ValueError(f"bar values must be non-negative, got {value}")
        self.rows.append((label, float(value)))

    def render(self) -> str:
        lines = [self.title]
        if not self.rows:
            return self.title
        peak = max(v for _, v in self.rows) or 1.0
        label_w = max(len(label) for label, _ in self.rows)
        for label, value in self.rows:
            filled = int(round(value / peak * self.width))
            bar = "█" * filled + "·" * (self.width - filled)
            lines.append(f"{label.ljust(label_w)} |{bar}| {format_cell(value)}")
        if self.note:
            lines.append(f"  paper: {self.note}")
        return "\n".join(lines)
