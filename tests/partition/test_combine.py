"""Unit tests for the combining phase (pairing + multi-layer driver)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import social_graph
from repro.partition.bpart import weighted_stream_partition
from repro.partition.combine import (
    combine_assignment,
    multi_layer_combine,
    pair_by_vertex_count,
)
from repro.partition.metrics import bias


class TestPairing:
    def test_min_pairs_with_max(self):
        plan = pair_by_vertex_count(np.array([10, 40, 20, 30]))
        # 10 (idx0) with 40 (idx1); 20 (idx2) with 30 (idx3)
        assert plan.num_merged == 2
        assert plan.mapping[0] == plan.mapping[1]
        assert plan.mapping[2] == plan.mapping[3]
        assert plan.mapping[0] != plan.mapping[2]

    def test_odd_piece_count(self):
        plan = pair_by_vertex_count(np.array([1, 2, 3]))
        assert plan.num_merged == 2
        # median piece (value 2, index 1) stays alone
        assert plan.mapping[1] not in (plan.mapping[0], plan.mapping[2])
        assert plan.mapping[0] == plan.mapping[2]

    def test_single_piece(self):
        plan = pair_by_vertex_count(np.array([5]))
        assert plan.num_merged == 1

    def test_empty_raises(self):
        with pytest.raises(PartitionError):
            pair_by_vertex_count(np.array([]))

    def test_combine_assignment(self):
        plan = pair_by_vertex_count(np.array([10, 40, 20, 30]))
        parts = np.array([0, 1, 2, 3, 0])
        merged = combine_assignment(parts, plan)
        assert merged[0] == merged[1]
        assert merged[0] == merged[4]

    def test_pairing_improves_balance(self):
        # inversely-proportional synthetic counts: pairing fixes both dims
        vc = np.array([10, 20, 30, 40])
        plan = pair_by_vertex_count(vc)
        merged_v = np.bincount(plan.mapping, weights=vc)
        assert bias(merged_v) < bias(vc)


class TestMultiLayer:
    def _phase1(self, c=0.5):
        def fn(sub, pieces):
            return weighted_stream_partition(sub, pieces, c=c)

        return fn

    def test_balanced_output(self):
        g = social_graph(3000, 16.0, 2.1, rng=1)
        parts, traces = multi_layer_combine(g, self._phase1(), 8)
        assert parts.min() >= 0 and parts.max() < 8
        vc = np.bincount(parts, minlength=8)
        ec = np.bincount(parts, weights=g.degrees, minlength=8)
        assert bias(vc) < 0.1
        assert bias(ec) < 0.1
        assert 1 <= len(traces) <= 3

    def test_every_vertex_assigned(self):
        g = social_graph(1000, 8.0, rng=2)
        parts, _ = multi_layer_combine(g, self._phase1(), 4)
        assert (parts >= 0).all()
        assert np.bincount(parts, minlength=4).sum() == g.num_vertices

    def test_trace_reports_layers(self):
        g = social_graph(2000, 12.0, rng=3)
        _, traces = multi_layer_combine(g, self._phase1(), 8, max_layers=2)
        for i, t in enumerate(traces):
            assert t.layer == i + 1
            assert t.num_pieces >= t.num_targets

    def test_too_many_parts(self, triangle):
        with pytest.raises(PartitionError):
            multi_layer_combine(triangle, self._phase1(), 10)

    def test_single_part(self):
        g = social_graph(500, 6.0, rng=4)
        parts, _ = multi_layer_combine(g, self._phase1(), 1)
        assert (parts == 0).all()

    def test_max_layers_one_finalizes_everything(self):
        g = social_graph(2000, 12.0, rng=5)
        parts, traces = multi_layer_combine(g, self._phase1(), 8, max_layers=1)
        assert len(traces) == 1
        assert (parts >= 0).all()
        assert len(np.unique(parts)) == 8

    def test_wrong_length_partition_fn(self):
        g = social_graph(500, 6.0, rng=6)

        def bad(sub, pieces):
            return np.zeros(3, dtype=np.int32)

        with pytest.raises(PartitionError):
            multi_layer_combine(g, bad, 4)

    def test_more_rounds_tighter_balance(self):
        g = social_graph(4000, 16.0, 2.1, rng=7)
        biases = []
        for rounds in (1, 3):
            parts, _ = multi_layer_combine(
                g, self._phase1(), 8, base_rounds=rounds, max_layers=1
            )
            ec = np.bincount(parts, weights=g.degrees, minlength=8)
            biases.append(bias(ec))
        assert biases[1] <= biases[0]
