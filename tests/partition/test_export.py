"""Tests for partition deployment bundles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import chung_lu
from repro.partition import BPartPartitioner, HashPartitioner
from repro.partition.export import (
    export_partition_bundles,
    load_partition_bundle,
)


@pytest.fixture(scope="module")
def setup():
    g = chung_lu(500, 8.0, rng=110)
    a = BPartPartitioner(seed=110).partition(g, 4).assignment
    return g, a


class TestExport:
    def test_one_file_per_part(self, setup, tmp_path):
        g, a = setup
        paths = export_partition_bundles(a, tmp_path)
        assert len(paths) == 4
        assert all(p.exists() for p in paths)

    def test_vertices_partitioned_exactly(self, setup, tmp_path):
        g, a = setup
        paths = export_partition_bundles(a, tmp_path)
        seen = np.concatenate(
            [load_partition_bundle(p).global_ids for p in paths]
        )
        assert np.array_equal(np.sort(seen), np.arange(g.num_vertices))

    def test_arc_conservation(self, setup, tmp_path):
        g, a = setup
        paths = export_partition_bundles(a, tmp_path)
        total = sum(load_partition_bundle(p).num_arcs for p in paths)
        assert total == g.num_edges

    def test_ghost_routing_correct(self, setup, tmp_path):
        g, a = setup
        paths = export_partition_bundles(a, tmp_path)
        for p in paths:
            b = load_partition_bundle(p)
            # every ghost's recorded owner matches the assignment
            assert np.array_equal(b.remote_parts, a.parts[b.remote_ids])
            # no ghost claims to live on this machine
            assert (b.remote_parts != b.part).all()

    def test_adjacency_reconstruction(self, setup, tmp_path):
        """Resolving local + ghost ids reproduces each vertex's original
        neighbour set exactly."""
        g, a = setup
        paths = export_partition_bundles(a, tmp_path)
        b = load_partition_bundle(paths[0])
        for local in range(0, b.num_local, 17):
            s, e = b.indptr[local], b.indptr[local + 1]
            resolved = []
            for t in b.indices[s:e]:
                if t < b.num_local:
                    resolved.append(int(b.global_ids[t]))
                else:
                    resolved.append(int(b.remote_ids[t - b.num_local]))
            expected = sorted(int(x) for x in g.neighbors(int(b.global_ids[local])))
            assert sorted(resolved) == expected

    def test_ghosts_only_for_cut_arcs(self, setup, tmp_path):
        g, a = setup
        # single part: no ghosts at all
        single = HashPartitioner().partition(g, 1).assignment
        paths = export_partition_bundles(single, tmp_path / "single")
        b = load_partition_bundle(paths[0])
        assert b.num_ghosts == 0

    def test_corrupt_bundle_rejected(self, tmp_path):
        p = tmp_path / "bad.npz"
        np.savez(p, foo=np.arange(3))
        with pytest.raises(GraphFormatError):
            load_partition_bundle(p)

    def test_version_check(self, setup, tmp_path):
        g, a = setup
        paths = export_partition_bundles(a, tmp_path)
        with np.load(paths[0]) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["meta"] = np.array([99, 0, 4], dtype=np.int64)
        np.savez(paths[0], **arrays)
        with pytest.raises(GraphFormatError):
            load_partition_bundle(paths[0])
