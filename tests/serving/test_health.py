"""Heartbeat health state machine: detection, recovery, the ledger."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.serving import DEAD, HEALTHY, RECOVERING, SUSPECT, HealthMonitor


def monitor(**kw):
    defaults = dict(heartbeat_interval=0.02, suspect_after=2, dead_after=4)
    defaults.update(kw)
    return HealthMonitor(4, **defaults)


class TestValidation:
    def test_rejects_bad_thresholds(self):
        with pytest.raises(ConfigurationError):
            monitor(suspect_after=0)
        with pytest.raises(ConfigurationError):
            monitor(suspect_after=4, dead_after=4)
        with pytest.raises(ConfigurationError):
            HealthMonitor(0, heartbeat_interval=0.02, suspect_after=2, dead_after=4)
        with pytest.raises(ConfigurationError):
            monitor(heartbeat_interval=0.0)


class TestDetection:
    def test_beating_machine_stays_healthy(self):
        mon = monitor()
        for j in range(1, 20):
            mon.beat(0, j * 0.02)
            assert mon.check(0, j * 0.02) is None
        assert mon.state[0] == HEALTHY
        assert mon.ledger == []

    def test_missed_heartbeats_walk_to_suspect_then_dead(self):
        mon = monitor()
        mon.beat(0, 0.02)
        # silence from here: missed counts grow with the clock.
        assert mon.check(0, 0.04) is None  # 1 missed
        assert mon.check(0, 0.06) == SUSPECT  # 2 missed
        assert not mon.routable(0)
        assert mon.check(0, 0.08) is None  # 3 missed
        assert mon.check(0, 0.10) == DEAD  # 4 missed
        assert [ev.new for ev in mon.ledger] == [SUSPECT, DEAD]
        assert all(ev.cause == "missed_heartbeats" for ev in mon.ledger)

    def test_suspect_recovers_on_single_heartbeat(self):
        mon = monitor()
        mon.check(0, 0.04)
        assert mon.state[0] == SUSPECT
        mon.beat(0, 0.06)
        assert mon.state[0] == HEALTHY
        assert mon.routable(0)
        assert mon.ledger[-1].cause == "heartbeat"

    def test_big_silence_gap_fences_in_one_check(self):
        mon = monitor()
        assert mon.check(0, 1.0) == DEAD  # 50 missed: suspect AND dead
        assert [ev.new for ev in mon.ledger] == [SUSPECT, DEAD]

    def test_dead_machines_are_not_timeout_checked(self):
        mon = monitor()
        mon.check(0, 1.0)
        assert mon.check(0, 2.0) is None
        assert mon.state[0] == DEAD


class TestRecovery:
    def test_full_cycle_and_recovery_seconds(self):
        mon = monitor()
        mon.check(1, 1.0)  # dead at 1.0
        mon.transition(1, 1.1, RECOVERING, "restart")
        mon.transition(1, 1.35, HEALTHY, "rereplicated")
        assert mon.routable(1)
        assert mon.all_healthy()
        assert mon.recovery_seconds() == pytest.approx([0.35])
        assert mon.transition_counts() == {
            "dead->recovering": 1,
            "healthy->suspect": 1,
            "recovering->healthy": 1,
            "suspect->dead": 1,
        }

    def test_illegal_transitions_raise(self):
        mon = monitor()
        with pytest.raises(SimulationError):
            mon.transition(0, 0.1, DEAD, "skip-suspect")
        with pytest.raises(SimulationError):
            mon.transition(0, 0.1, RECOVERING, "not dead yet")
        mon.check(0, 1.0)  # dead
        with pytest.raises(SimulationError):
            mon.transition(0, 1.1, HEALTHY, "skip-recovering")


class TestAccounting:
    def test_state_seconds_partition_total_time(self):
        mon = monitor()
        mon.check(2, 1.0)  # healthy ends, suspect+dead stamped at 1.0
        mon.transition(2, 1.1, RECOVERING, "restart")
        mon.transition(2, 1.4, HEALTHY, "rereplicated")
        mon.finish(2.0)
        dwell = mon.state_seconds[2]
        assert sum(dwell.values()) == pytest.approx(2.0)
        assert dwell[DEAD] == pytest.approx(0.1)
        assert dwell[RECOVERING] == pytest.approx(0.3)
        # untouched machine: all healthy
        assert mon.state_seconds[0][HEALTHY] == pytest.approx(2.0)

    def test_ledger_rows_are_json_ready(self):
        mon = monitor()
        mon.check(0, 1.0)
        rows = mon.ledger_rows()
        assert rows == [
            [1.0, 0, HEALTHY, SUSPECT, "missed_heartbeats"],
            [1.0, 0, SUSPECT, DEAD, "missed_heartbeats"],
        ]
