"""Personalized PageRank random walk (Fogaras et al., 2005).

Geometric-length walk: before each step the walker stops with
probability ``stop_prob`` (the paper's setting: 0.1); otherwise it moves
to a uniform neighbour. The visit distribution of many such walks from a
seed estimates that seed's PPR vector.
"""

from __future__ import annotations

import numpy as np

from repro.engines.knightking.apps.base import WalkApp
from repro.engines.knightking.transition import uniform_neighbor
from repro.graph.csr import CSRGraph
from repro.utils.validation import check_probability

__all__ = ["PPR"]


class PPR(WalkApp):
    """Terminate w.p. ``stop_prob`` each step, else uniform step."""

    name = "ppr"

    def __init__(self, stop_prob: float = 0.1) -> None:
        check_probability("stop_prob", stop_prob)
        self.stop_prob = float(stop_prob)

    def advance(
        self,
        graph: CSRGraph,
        positions: np.ndarray,
        previous: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        stop = rng.random(positions.size) < self.stop_prob
        targets, dead = uniform_neighbor(graph, positions, rng)
        return targets, stop | dead
