"""Figure 14 — normalized running time of the 7 applications.

All seven apps x three datasets x five partitioners, normalized to
Chunk-V = 1; BPart lowest everywhere (paper: 5-70% reduction).
"""


def test_fig14(run_paper_experiment):
    result = run_paper_experiment("fig14")
    assert result.tables or result.series
