"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import from_edges
from repro.graph.stream import vertex_stream
from repro.partition import (
    BPartPartitioner,
    ChunkEPartitioner,
    ChunkVPartitioner,
    FennelPartitioner,
    HashPartitioner,
    bias,
    edge_cut_ratio,
    jains_fairness,
)
from repro.partition.combine import pair_by_vertex_count
from repro.utils.rng import hash_u64, splitmix64

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def edge_lists(draw, max_vertices=60, max_edges=200):
    """Random graphs as (n, src, dst)."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=1, max_value=max_edges))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    return n, src, dst


@st.composite
def graphs(draw):
    n, src, dst = draw(edge_lists())
    return from_edges(src, dst, n)


class TestGraphProperties:
    @given(edge_lists())
    @settings(max_examples=60, **COMMON)
    def test_csr_invariants(self, data):
        n, src, dst = data
        g = from_edges(src, dst, n)
        assert g.indptr[0] == 0
        assert g.indptr[-1] == g.indices.size
        assert (np.diff(g.indptr) >= 0).all()
        if g.num_edges:
            assert 0 <= g.indices.min() and g.indices.max() < n
        # symmetrised: every arc has a reverse
        for u, v in list(g.iter_edges())[:50]:
            assert g.has_edge(v, u)

    @given(edge_lists())
    @settings(max_examples=40, **COMMON)
    def test_degree_sum_is_arc_count(self, data):
        n, src, dst = data
        g = from_edges(src, dst, n)
        assert g.degrees.sum() == g.num_edges

    @given(graphs(), st.sampled_from(["natural", "random", "bfs", "dfs", "degree"]))
    @settings(max_examples=40, **COMMON)
    def test_streams_are_permutations(self, g, order):
        s = vertex_stream(g, order, rng=0)
        assert np.array_equal(np.sort(s), np.arange(g.num_vertices))


PARTITIONERS = [
    ChunkVPartitioner,
    ChunkEPartitioner,
    HashPartitioner,
    FennelPartitioner,
    lambda: BPartPartitioner(seed=0),
]


class TestPartitionProperties:
    @given(graphs(), st.integers(1, 5), st.sampled_from(range(len(PARTITIONERS))))
    @settings(max_examples=60, **COMMON)
    def test_totality_and_conservation(self, g, k, pidx):
        if k > g.num_vertices:
            k = g.num_vertices
        a = PARTITIONERS[pidx]().partition(g, k).assignment
        # totality: every vertex in exactly one part
        assert a.parts.size == g.num_vertices
        assert a.parts.min() >= 0 and a.parts.max() < k
        # conservation of both dimensions
        assert a.vertex_counts.sum() == g.num_vertices
        assert a.edge_counts.sum() == g.num_edges

    @given(graphs(), st.integers(2, 5))
    @settings(max_examples=30, **COMMON)
    def test_cut_ratio_bounds(self, g, k):
        k = min(k, g.num_vertices)
        a = HashPartitioner().partition(g, k).assignment
        assert 0.0 <= edge_cut_ratio(g, a.parts) <= 1.0

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=40))
    @settings(max_examples=100, **COMMON)
    def test_bias_and_fairness_bounds(self, counts):
        assert bias(counts) >= 0.0
        f = jains_fairness(counts)
        assert 1 / len(counts) - 1e-9 <= f <= 1.0 + 1e-9

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=33))
    @settings(max_examples=100, **COMMON)
    def test_pairing_is_total_and_conserves(self, counts):
        vc = np.array(counts)
        plan = pair_by_vertex_count(vc)
        # every piece mapped to a merged id in range
        assert plan.mapping.size == vc.size
        assert plan.mapping.min() >= 0 and plan.mapping.max() < plan.num_merged
        merged = np.bincount(plan.mapping, weights=vc, minlength=plan.num_merged)
        assert merged.sum() == vc.sum()
        # each merged part gets at most 2 pieces
        assert np.bincount(plan.mapping).max() <= 2

    @given(st.lists(st.integers(2, 1000), min_size=2, max_size=16).filter(lambda c: len(c) % 2 == 0))
    @settings(max_examples=60, **COMMON)
    def test_minmax_pairing_optimal_max_pair_sum(self, counts):
        """Sorted min–max pairing minimises the largest pair sum (the
        classic greedy-pairing optimality result)."""
        import itertools

        vc = np.array(counts)
        plan = pair_by_vertex_count(vc)
        merged = np.bincount(plan.mapping, weights=vc, minlength=plan.num_merged)
        if vc.size <= 8:  # brute-force all pairings for small inputs
            best = np.inf
            idx = list(range(vc.size))

            def pairings(rest):
                if not rest:
                    yield []
                    return
                first = rest[0]
                for j in range(1, len(rest)):
                    for tail in pairings(rest[1:j] + rest[j + 1 :]):
                        yield [(first, rest[j])] + tail

            for p in pairings(idx):
                best = min(best, max(vc[a] + vc[b] for a, b in p))
            assert merged.max() == pytest.approx(best)
        else:
            assert merged.max() <= 2 * vc.max()


class TestHashProperties:
    @given(st.lists(st.integers(0, 2**62), min_size=1, max_size=100), st.integers(0, 2**31))
    @settings(max_examples=60, **COMMON)
    def test_hash_deterministic(self, values, seed):
        v = np.array(values, dtype=np.uint64)
        assert np.array_equal(hash_u64(v, seed), hash_u64(v, seed))

    @given(st.integers(0, 2**62))
    @settings(max_examples=100, **COMMON)
    def test_splitmix_is_injective_locally(self, x):
        a = splitmix64(np.uint64(x))
        b = splitmix64(np.uint64(x + 1))
        assert a != b


class TestWalkProperties:
    @given(graphs(), st.integers(1, 6))
    @settings(max_examples=25, **COMMON)
    def test_walks_follow_edges(self, g, steps):
        from repro.cluster import BSPCluster
        from repro.engines.knightking import DeepWalk, WalkEngine

        k = min(2, g.num_vertices)
        a = HashPartitioner().partition(g, k).assignment
        engine = WalkEngine(BSPCluster(k), seed=0, record_paths=True)
        res = engine.run(g, a, DeepWalk(), walkers_per_vertex=1, max_steps=steps)
        for row in res.paths:
            trace = row[row >= 0]
            for u, v in zip(trace[:-1], trace[1:]):
                assert g.has_edge(int(u), int(v))

    @given(graphs())
    @settings(max_examples=25, **COMMON)
    def test_ledger_waits_nonnegative(self, g):
        from repro.cluster import BSPCluster
        from repro.engines.gemini import GeminiEngine, PageRank

        k = min(3, g.num_vertices)
        a = HashPartitioner().partition(g, k).assignment
        res = GeminiEngine(BSPCluster(k)).run(g, a, PageRank(3))
        assert (res.ledger.wait_matrix >= -1e-15).all()
        assert res.values.sum() == pytest.approx(1.0)
