"""Edge-case regression tests for the online partitioner.

Covers the adjacency-hygiene fix (duplicate neighbour ids and
self-loops must not inflate degree or overlap — the offline CSR builder
dedups and drops them at build time, so the online path must agree) and
count integrity under repeated add/remove churn cycles.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import chung_lu
from repro.partition.dynamic import DynamicPartitioner


class TestAdjacencyHygiene:
    def test_duplicate_neighbors_do_not_inflate_degree(self):
        dp = DynamicPartitioner(2)
        dp.add_vertex(0, [1, 1, 1, 2, 2])
        # two distinct neighbours, not five
        assert dp.edge_counts.sum() == 2

    def test_self_loop_does_not_count_toward_degree(self):
        dp = DynamicPartitioner(2)
        dp.add_vertex(0, [0, 1, 2])
        assert dp.edge_counts.sum() == 2

    def test_duplicates_do_not_inflate_overlap(self):
        """A part must not win the argmax on repeated copies of one
        neighbour: deduped, one neighbour in each part is a tie (broken
        toward the first part), regardless of multiplicity."""
        dirty = DynamicPartitioner(2, alpha=10.0)
        clean = DynamicPartitioner(2, alpha=10.0)
        for dp in (dirty, clean):
            # alpha is large, so the empty-adjacency arrivals spread:
            # vertex 0 → part 0, vertex 1 → part 1.
            assert dp.add_vertex(0, []) == 0
            assert dp.add_vertex(1, []) == 1
        # Vertex 2 sees part 0 twice and part 1 three times. Deduped
        # the overlap ties 1–1 and both feeds pick part 0; counting
        # multiplicity would send the dirty feed to part 1.
        assert dirty.add_vertex(2, [0, 0, 1, 1, 1]) == clean.add_vertex(2, [0, 1])

    def test_duplicated_adjacency_matches_clean_feed(self):
        """Churn test of the issue: feeding every adjacency duplicated
        (and with a self-loop added) must reproduce the clean feed's
        assignment exactly."""
        g = chung_lu(400, 8.0, rng=77)
        clean = DynamicPartitioner(4, c=0.5, avg_degree=g.avg_degree)
        dirty = DynamicPartitioner(4, c=0.5, avg_degree=g.avg_degree)
        for v in range(g.num_vertices):
            nbrs = list(g.neighbors(v))
            clean.add_vertex(v, nbrs)
            dirty.add_vertex(v, nbrs + nbrs + [v])
        assert np.array_equal(clean.assignment_for(g), dirty.assignment_for(g))
        assert np.array_equal(clean.edge_counts, dirty.edge_counts)


class TestChurnCycles:
    def test_add_remove_cycles_keep_counts_exact(self):
        """Repeated add/remove of the same vertex must never drift the
        per-part counters (under- or overflow)."""
        dp = DynamicPartitioner(2)
        dp.add_vertex(0, [1, 2])
        dp.add_vertex(1, [0])
        for _ in range(50):
            dp.add_vertex(5, [0, 1, 1, 5])  # dirty adjacency on purpose
            assert dp.vertex_counts.sum() == 3
            assert dp.edge_counts.sum() == 5  # 2 + 1 + deduped 2
            dp.remove_vertex(5)
            assert dp.vertex_counts.sum() == 2
            assert dp.edge_counts.sum() == 3
        assert (dp.vertex_counts >= 0).all()
        assert (dp.edge_counts >= 0).all()

    def test_full_drain_returns_to_zero(self):
        g = chung_lu(200, 6.0, rng=78)
        dp = DynamicPartitioner(4)
        for v in range(g.num_vertices):
            dp.add_vertex(v, g.neighbors(v))
        for v in range(g.num_vertices):
            dp.remove_vertex(v)
        assert dp.num_vertices == 0
        assert dp.vertex_counts.sum() == 0
        assert dp.edge_counts.sum() == 0
        # and the partitioner is reusable after a full drain
        dp.add_vertex(0, g.neighbors(0))
        assert dp.num_vertices == 1

    def test_release_matches_insertion_degree_not_current(self):
        """remove_vertex releases the degree recorded at insertion —
        duplicates in the removal-time adjacency are irrelevant because
        only the stored degree is used."""
        dp = DynamicPartitioner(2)
        p = dp.add_vertex(0, [1, 1, 2, 0])
        assert dp.edge_counts[p] == 2
        dp.remove_vertex(0)
        assert dp.edge_counts[p] == 0


class TestDynamicTelemetry:
    def test_add_remove_counters(self):
        from repro import telemetry

        telemetry.set_enabled(True)
        telemetry.reset()
        dp = DynamicPartitioner(2)
        dp.add_vertex(0, [1])
        dp.add_vertex(1, [0])
        dp.remove_vertex(0)
        snap = telemetry.registry().snapshot()
        assert snap["counters"]["partition.dynamic.adds"] == 2
        assert snap["counters"]["partition.dynamic.removes"] == 1
        assert snap["gauges"]["partition.dynamic.vertices"] == 1

    def test_disabled_mode_records_nothing(self):
        from repro import telemetry

        assert not telemetry.enabled()
        dp = DynamicPartitioner(2)
        dp.add_vertex(0, [1])
        assert telemetry.registry().metrics() == []
