"""Kernel registry for the streaming-assignment inner loop.

Every streaming partitioner in this library (Fennel, BPart phase-1, LDG,
the dynamic variant) bottoms out in the same sequential inner loop: pop
the next vertex off the stream, measure its overlap with each part,
apply a balance term, assign, update the loads. The loop is inherently
sequential — each assignment feeds the next score — but *how* the body
is computed is an implementation detail, and the fastest implementation
depends on what is installed and on the workload shape. This module
owns the dispatch.

A backend bundles three entry points:

``fennel``
    The additive-penalty loop of Eq. 2 (shared by Fennel and BPart's
    partitioning phase):  ``S(v, G_i) = |V_i ∩ N(v)| − α·γ·W_i^{γ−1}``.
``ldg``
    The multiplicative LDG rule: ``|V_i ∩ N(v)| · (1 − W_i/C)``.
``single``
    One scoring decision for an externally-maintained state — the
    primitive :class:`~repro.partition.dynamic.DynamicPartitioner`
    builds on.

Backends register themselves at import time (see
:mod:`repro.partition.kernels`); :func:`get_kernel` resolves a name —
including ``"auto"`` and graceful fallbacks for optional backends — to
a :class:`KernelBackend`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError

__all__ = [
    "KernelBackend",
    "KERNEL_CHOICES",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "resolve_kernel_name",
    "pow_like_numpy",
]

#: Names accepted by ``kernel=`` knobs. ``auto`` resolves to the fastest
#: available bit-exact backend (``numba`` when importable, else
#: ``incremental``); ``numba`` falls back to ``incremental`` (with a
#: one-time warning) when the JIT is not installed; ``parallel`` fans
#: chunk scoring over worker processes and itself degrades to
#: ``buffered`` at ``jobs=1``.
KERNEL_CHOICES = ("auto", "scalar", "incremental", "buffered", "numba", "parallel")


@dataclass(frozen=True)
class KernelBackend:
    """One streaming-assignment implementation.

    ``fennel``/``ldg`` mutate the ``parts`` and ``loads`` arrays they are
    handed; ``single`` returns the chosen part id. ``exact`` records
    whether the backend is bit-exact with the ``scalar`` reference (all
    shipped backends are; the flag exists so a future approximate
    backend can be gated by tolerance tests instead of parity tests).
    """

    name: str
    fennel: Callable[..., None]
    ldg: Callable[..., None]
    single: Callable[..., int]
    exact: bool = True
    description: str = ""


_REGISTRY: dict[str, KernelBackend] = {}


def register_kernel(backend: KernelBackend) -> None:
    """Register ``backend`` under its (lowercased) name."""
    _REGISTRY[backend.name.lower()] = backend


def available_kernels() -> list[str]:
    """Sorted names of the backends actually importable in this process."""
    return sorted(_REGISTRY)


def get_kernel(name: str | None = "auto") -> KernelBackend:
    """Resolve a kernel name to a registered backend.

    ``"auto"`` (or ``None``) prefers the JIT backend when numba is
    installed and otherwise uses ``incremental`` — both are bit-exact
    with ``scalar``, so the default never changes results. Requesting
    ``"numba"`` without numba installed falls back to ``incremental``
    rather than erroring, matching how optional accelerators should
    degrade.
    """
    key = (name or "auto").lower()
    if key == "auto":
        key = "numba" if "numba" in _REGISTRY else "incremental"
    elif key == "numba" and "numba" not in _REGISTRY:
        _note_numba_fallback()
        key = "incremental"
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown streaming kernel {name!r}; choose from {KERNEL_CHOICES}"
        )
    return _REGISTRY[key]


def resolve_kernel_name(name: str | None, jobs: int | None = None) -> str:
    """Pin a ``kernel=`` knob to the concrete backend that will run.

    Like :func:`get_kernel` but jobs-aware: with ``kernel="auto"`` and a
    requested/ambient worker count above 1 (``jobs=`` beats
    ``$REPRO_JOBS``), the ``parallel`` backend is selected so
    multi-core runs engage the fan-out by default. An explicit
    non-parallel kernel name is always respected — it runs in-process
    regardless of ``jobs`` (all backends are bit-exact, so either way
    the output is identical).
    """
    key = (name or "auto").lower()
    if key == "auto":
        from repro.parallel import resolve_jobs

        if resolve_jobs(jobs) > 1:
            return "parallel"
    return get_kernel(key).name


def _note_numba_fallback() -> None:
    # Lazy import: numba_backend imports this module at registration
    # time, so the hook resolves at call time instead.
    from repro.partition.kernels.numba_backend import note_missing_numba

    note_missing_numba()


def pow_like_numpy(base: float, exp: float) -> float:
    """``base ** exp`` with :func:`numpy.power`'s edge-case semantics.

    Python's ``0.0 ** -0.5`` raises while ``np.power`` returns ``inf``;
    the pure-Python kernels must match the vectorised reference exactly,
    including at a zero load with ``γ < 1``. For normal positive bases
    both route to the platform ``pow``, so results are bit-identical.
    """
    if base == 0.0:
        if exp > 0.0:
            return 0.0
        if exp == 0.0:
            return 1.0
        return math.inf
    if base < 0.0 and not float(exp).is_integer():
        return math.nan
    return base**exp
