"""Degree-Based Hashing (Xie et al., NeurIPS 2014).

Hash each edge by its *lower-degree* endpoint. The low-degree vertex
then has all its edges in one part (never replicated), while the hub
endpoint absorbs the replication — provably better replication factors
than random hashing on power-law graphs, with the same perfect edge
balance in expectation. Fully vectorised.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.vertexcut.base import EdgePartitioner
from repro.utils.rng import hash_u64

__all__ = ["DBHPartitioner"]


class DBHPartitioner(EdgePartitioner):
    """Hash the lower-degree endpoint of each edge."""

    name = "dbh"

    def __init__(self, *, seed: int = 0) -> None:
        self._seed = int(seed)

    def _assign(
        self, graph: CSRGraph, src: np.ndarray, dst: np.ndarray, num_parts: int
    ) -> np.ndarray:
        deg = graph.degrees
        # tie-break on vertex id so the choice is deterministic
        src_lower = (deg[src] < deg[dst]) | ((deg[src] == deg[dst]) & (src < dst))
        anchor = np.where(src_lower, src, dst).astype(np.uint64)
        return (hash_u64(anchor, self._seed) % np.uint64(num_parts)).astype(np.int32)
