"""The Gemini-like BSP execution engine.

Runs a :class:`~repro.engines.gemini.vertex_program.VertexProgram` over a
partitioned graph, charging each superstep to the cluster:

- **compute** — each machine processes the out-edges and vertex updates
  of its *active local* vertices (Gemini's computation phase);
- **communication** — every cut arc whose source is active carries one
  update message. With ``aggregate_messages=True`` (Gemini's sender-side
  mirror aggregation) duplicate updates from one machine to one target
  vertex count once.

The numerical result is exact: the program's transition runs on global
arrays, so the partition affects only the timing ledger — exactly the
property the paper exploits when comparing partitioners on one system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.cluster.bsp import BSPCluster
from repro.cluster.ledger import TimingLedger
from repro.cluster.messages import TrafficMatrix
from repro.engines.gemini.vertex_program import VertexProgram
from repro.errors import ConfigurationError, SimulationError
from repro.parallel import WorkerCrash, note_fallback
from repro.graph.csr import CSRGraph
from repro.partition.assignment import PartitionAssignment

__all__ = ["GeminiEngine", "GeminiResult"]


@dataclass
class GeminiResult:
    """Outcome of one engine run."""

    values: np.ndarray
    iterations: int
    ledger: TimingLedger
    total_messages: int
    #: execution mode chosen in each iteration ("push"/"pull").
    modes: list[str] = field(default_factory=list)

    @property
    def runtime(self) -> float:
        """Simulated makespan in seconds."""
        return self.ledger.total_runtime


class GeminiEngine:
    """Iteration-based vertex-centric engine over a simulated cluster.

    Parameters
    ----------
    cluster:
        The BSP cluster; its machine count must equal the assignment's
        part count at :meth:`run` time. Anything with the
        :class:`~repro.cluster.bsp.BSPCluster` superstep surface works —
        in particular :class:`~repro.cluster.faults.FaultAwareCluster`
        injects crashes/stragglers without engine changes.
    aggregate_messages:
        Model Gemini's sender-side aggregation: multiple updates from
        machine ``a`` to the same target vertex merge into one message.
    mode:
        Gemini's dual execution modes:

        ``"push"`` (sparse) — only *active* vertices do work: compute ∝
        out-arcs of active vertices, messages ∝ active cut arcs. Cheap
        for small frontiers (BFS rings, late CC iterations).

        ``"pull"`` (dense) — every vertex gathers from all neighbours:
        compute ∝ all local arcs, and each machine fetches every remote
        neighbour value once — a *fixed* per-iteration mirror traffic,
        independent of the frontier. Cheap when almost everything is
        active (PageRank).

        ``"adaptive"`` (Gemini's default) — per iteration pick push when
        the active arc fraction is below ``dense_threshold``, else pull.
    dense_threshold:
        Active-arc fraction above which adaptive mode switches to pull
        (Gemini's heuristic uses |E_active| > |E| / 20).
    jobs:
        Worker processes for the per-iteration superstep census
        (explicit value beats ``$REPRO_JOBS`` beats 1). With
        ``jobs > 1`` each machine's active-edge/vertex counts and
        traffic row are computed by pool workers over shared arrays and
        merged in machine order — every per-machine quantity is an
        integer-valued float64 below 2^53, so the ledger is
        bit-identical to the serial path at any jobs value. A worker
        crash degrades the run to serial mid-flight (counted in
        ``parallel.fallbacks``).
    """

    def __init__(
        self,
        cluster: BSPCluster,
        *,
        aggregate_messages: bool = True,
        mode: str = "push",
        dense_threshold: float = 0.05,
        jobs: int | None = None,
    ) -> None:
        if mode not in ("push", "pull", "adaptive"):
            raise ConfigurationError(f"mode must be push|pull|adaptive, got {mode!r}")
        if not (0.0 < dense_threshold <= 1.0):
            raise ConfigurationError(
                f"dense_threshold must be in (0, 1], got {dense_threshold}"
            )
        self._cluster = cluster
        self._aggregate = bool(aggregate_messages)
        self._mode = mode
        self._dense_threshold = float(dense_threshold)
        self._jobs = jobs

    def run(
        self,
        graph: CSRGraph,
        assignment: PartitionAssignment,
        program: VertexProgram,
    ) -> GeminiResult:
        """Execute ``program`` to completion and return its result."""
        if assignment.num_parts != self._cluster.num_machines:
            raise SimulationError(
                f"assignment has {assignment.num_parts} parts but cluster has "
                f"{self._cluster.num_machines} machines"
            )
        if assignment.graph is not graph and assignment.graph != graph:
            raise SimulationError("assignment was computed for a different graph")
        if graph.num_vertices == 0:
            raise SimulationError("cannot run a vertex program on an empty graph")

        m = self._cluster.num_machines
        degrees = graph.degrees

        # Cut-arc and mirror structures are pure functions of the
        # (immutable) assignment, so they are computed once and memoised
        # on it — multi-app experiments run several programs over one
        # partition, and the edge_array + three np.unique passes were
        # the dominant repeated cost.
        structs = assignment.derived_cache().get("gemini")
        if structs is None:
            parts = assignment.parts.astype(np.int64)
            n = np.int64(graph.num_vertices)
            # Walk the adjacency one block at a time (dense graphs yield a
            # single zero-copy block) so sharded graphs never materialise
            # the full edge array; blocks ascend, so concatenating the
            # per-block cut arrays reproduces the edge_array order.
            cut_src_chunks, cut_sp_chunks, cut_dp_chunks = [], [], []
            agg_chunks, mirror_chunks = [], []
            for start, stop, local, idx in graph.iter_blocks():
                src = np.repeat(
                    np.arange(start, stop, dtype=np.int64), np.diff(local)
                )
                dst = idx.astype(np.int64, copy=False)
                src_part, dst_part = parts[src], parts[dst]
                cut = src_part != dst_part
                cut_src_chunks.append(src[cut])
                cut_sp_chunks.append(src_part[cut])
                cut_dp_chunks.append(dst_part[cut])
                # One message per distinct (source machine, target vertex):
                # mirrors receive a single combined update (aggregate mode).
                agg_chunks.append(src_part[cut] * n + dst[cut])
                mirror_chunks.append(dst_part[cut] * n + src[cut])
            empty = np.empty(0, dtype=np.int64)
            cut_src_vertex = np.concatenate(cut_src_chunks) if cut_src_chunks else empty
            # Pull-mode fixed structures: compute covers every local arc,
            # and the traffic is the mirror set — one fetch per distinct
            # (consumer machine, remote neighbour vertex) pair/iteration.
            mirror_key = (
                np.unique(np.concatenate(mirror_chunks)) if mirror_chunks else empty
            )
            mirror_consumer = (mirror_key // graph.num_vertices).astype(np.int64)
            mirror_owner = parts[(mirror_key % graph.num_vertices).astype(np.int64)]
            structs = {
                "parts": parts,
                "cut_src_vertex": cut_src_vertex,
                "cut_src_part": (
                    np.concatenate(cut_sp_chunks) if cut_sp_chunks else empty
                ),
                "cut_dst_part": (
                    np.concatenate(cut_dp_chunks) if cut_dp_chunks else empty
                ),
                "agg_key": np.concatenate(agg_chunks) if agg_chunks else empty,
                "all_edges_per_m": np.bincount(
                    parts, weights=degrees.astype(np.float64), minlength=m
                ),
                "all_vertices_per_m": np.bincount(parts, minlength=m).astype(np.float64),
                "pull_traffic_pairs": (mirror_owner, mirror_consumer),  # owner sends
            }
            assignment.derived_cache()["gemini"] = structs
        parts = structs["parts"]
        cut_src_vertex = structs["cut_src_vertex"]
        cut_src_part = structs["cut_src_part"]
        cut_dst_part = structs["cut_dst_part"]
        agg_key = structs["agg_key"] if self._aggregate else None
        all_edges_per_m = structs["all_edges_per_m"]
        all_vertices_per_m = structs["all_vertices_per_m"]
        pull_traffic_pairs = structs["pull_traffic_pairs"]

        total_arcs = max(graph.num_edges, 1)
        self._cluster.begin_run()
        state, active = program.initialize(graph)
        iterations = 0
        modes: list[str] = []
        emit = telemetry.enabled()  # hoisted: one flag read per run
        reg = telemetry.active()
        pool, shm, setup_tokens = self._open_census_pool(graph, structs, m)
        try:
            for it in range(program.max_iterations):
                if not active.any():
                    break
                iterations += 1

                # Per-machine census: active edge/vertex counts and the
                # machine's traffic row. The parallel path computes the
                # same integer-valued quantities per machine and merges
                # them in machine order, so everything downstream
                # (adaptive mode choice, ledger, telemetry) is
                # bit-identical to the serial path.
                census = None
                if pool is not None:
                    np.copyto(shm.array("active"), active)
                    sid = setup_tokens["active"].name
                    payloads = [
                        {
                            "sid": sid,
                            "machine": mi,
                            "aggregate": self._aggregate,
                            "setup": setup_tokens,
                        }
                        for mi in range(m)
                    ]
                    try:
                        census = pool.map_ordered(_CENSUS_TASK, payloads)
                    except WorkerCrash:
                        note_fallback("gemini.crash")
                        pool.close()
                        pool = None
                if census is not None:
                    push_edges = np.array([c[0] for c in census], dtype=np.float64)
                    push_vertices = np.array(
                        [float(c[1]) for c in census], dtype=np.float64
                    )
                    push_traffic_counts = np.array(
                        [c[2] for c in census], dtype=np.int64
                    )
                    num_active = int(push_vertices.sum())
                    active_arc_fraction = float(push_edges.sum()) / total_arcs
                else:
                    active_vertices = np.nonzero(active)[0]
                    active_parts = parts[active_vertices]
                    num_active = int(active_vertices.size)
                    active_arc_fraction = (
                        float(degrees[active_vertices].sum()) / total_arcs
                    )
                if self._mode == "adaptive":
                    mode = (
                        "pull" if active_arc_fraction > self._dense_threshold else "push"
                    )
                else:
                    mode = self._mode
                modes.append(mode)
                if emit:
                    reg.counter("engine.gemini.iterations", mode=mode).inc()
                    reg.counter("engine.gemini.active_vertices").inc(num_active)
                    reg.histogram(
                        "engine.gemini.active_arc_fraction",
                        buckets=(0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
                    ).observe(active_arc_fraction)

                if mode == "pull":
                    edges_per_m = all_edges_per_m
                    vertices_per_m = all_vertices_per_m
                    traffic = TrafficMatrix.from_pairs(m, *pull_traffic_pairs)
                elif census is not None:
                    edges_per_m = push_edges
                    vertices_per_m = push_vertices
                    traffic = TrafficMatrix.from_counts(push_traffic_counts)
                else:
                    edges_per_m = np.bincount(
                        active_parts,
                        weights=degrees[active_vertices].astype(np.float64),
                        minlength=m,
                    )
                    vertices_per_m = np.bincount(active_parts, minlength=m).astype(
                        np.float64
                    )
                    live_arc = active[cut_src_vertex]
                    if self._aggregate:
                        live_keys = np.unique(agg_key[live_arc])
                        live_src = (live_keys // graph.num_vertices).astype(np.int64)
                        live_dst = parts[
                            (live_keys % graph.num_vertices).astype(np.int64)
                        ]
                        traffic = TrafficMatrix.from_pairs(m, live_src, live_dst)
                    else:
                        traffic = TrafficMatrix.from_pairs(
                            m, cut_src_part[live_arc], cut_dst_part[live_arc]
                        )

                self._cluster.superstep(
                    edges=edges_per_m, vertices=vertices_per_m, traffic=traffic
                )
                state, active = program.iterate(graph, state, active, it)
        finally:
            if pool is not None:
                pool.close()
            if shm is not None:
                shm.close()

        if emit:
            reg.counter("engine.gemini.runs").inc()
            reg.counter("engine.gemini.messages").inc(self._cluster.total_messages)
        return GeminiResult(
            values=state,
            iterations=iterations,
            ledger=self._cluster.ledger,
            total_messages=self._cluster.total_messages,
            modes=modes,
        )

    def _open_census_pool(self, graph, structs: dict, m: int):
        """Set up the worker pool + shared arrays for parallel supersteps.

        Returns ``(pool, shm, setup_tokens)`` — all ``None`` when the run
        stays serial (``jobs <= 1``, no shared memory, or a single
        machine). Grouped per-machine structures are memoised on the
        assignment's derived cache next to the serial ones.
        """
        from repro.parallel import (
            SharedArrayPool,
            WorkerPool,
            note_fallback,
            resolve_jobs,
            shm_available,
        )

        jobs = min(resolve_jobs(self._jobs), m)
        if jobs <= 1:
            return None, None, None
        if not shm_available():
            note_fallback("gemini.no_shm")
            return None, None, None
        par = structs.get("parallel")
        if par is None:
            parts = structs["parts"]
            cut_src_part = structs["cut_src_part"]
            n = np.int64(max(graph.num_vertices, 1))
            vert_order = np.argsort(parts, kind="stable").astype(np.int64)
            vert_offsets = np.zeros(m + 1, dtype=np.int64)
            np.cumsum(np.bincount(parts, minlength=m), out=vert_offsets[1:])
            # Cut arcs grouped by source machine (stable, so each group
            # preserves edge_array order — unique/bincount reductions are
            # order-insensitive anyway, but determinism costs nothing).
            cut_order = np.argsort(cut_src_part, kind="stable")
            cut_offsets = np.searchsorted(
                cut_src_part[cut_order], np.arange(m + 1, dtype=np.int64)
            ).astype(np.int64)
            par = {
                "vert_order": vert_order,
                "vert_offsets": vert_offsets,
                "cut_src": structs["cut_src_vertex"][cut_order],
                "cut_dst": (structs["agg_key"][cut_order] % n).astype(np.int64),
                "cut_dst_part": structs["cut_dst_part"][cut_order],
                "cut_offsets": cut_offsets,
            }
            structs["parallel"] = par
        shm = SharedArrayPool()
        try:
            shm.share("degrees", np.ascontiguousarray(graph.degrees, dtype=np.int64))
            shm.share("parts", structs["parts"])
            shm.share("active", np.zeros(graph.num_vertices, dtype=bool))
            for key in (
                "vert_order",
                "vert_offsets",
                "cut_src",
                "cut_dst",
                "cut_dst_part",
                "cut_offsets",
            ):
                shm.share(key, par[key])
            pool = WorkerPool(jobs)
        except (OSError, ValueError):  # pragma: no cover - shm exhaustion
            note_fallback("gemini.setup")
            shm.close()
            return None, None, None
        return pool, shm, shm.tokens()


#: ``module:attr`` spec of the census task for the worker pool.
_CENSUS_TASK = "repro.engines.gemini.engine:_census_task"


def _census_task(payload: dict, state: dict) -> tuple[float, int, list[int]]:
    """Pool worker: one machine's active census + traffic row.

    Everything is integer-valued (edge/vertex/message counts), so the
    parent's machine-order merge is bit-identical to the serial global
    reduction.
    """
    from repro.parallel import attach_array

    sess = state.get(payload["sid"])
    if sess is None:
        sess = {
            key: attach_array(token, state)
            for key, token in payload["setup"].items()
        }
        state[payload["sid"]] = sess
    mi = int(payload["machine"])
    active = sess["active"]
    voff = sess["vert_offsets"]
    verts = sess["vert_order"][voff[mi] : voff[mi + 1]]
    live_verts = verts[active[verts]]
    edges = float(sess["degrees"][live_verts].sum())
    num_machines = int(voff.shape[0] - 1)
    lo, hi = int(sess["cut_offsets"][mi]), int(sess["cut_offsets"][mi + 1])
    live_arc = active[sess["cut_src"][lo:hi]]
    if payload["aggregate"]:
        # Within one source machine the (machine, dst) aggregation key
        # reduces to distinct destination vertices.
        dst = np.unique(sess["cut_dst"][lo:hi][live_arc])
        row = np.bincount(sess["parts"][dst], minlength=num_machines)
    else:
        row = np.bincount(sess["cut_dst_part"][lo:hi][live_arc], minlength=num_machines)
    return edges, int(live_verts.size), row.astype(np.int64).tolist()
