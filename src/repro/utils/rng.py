"""Deterministic random-number utilities.

All stochastic components of the library (graph generators, hash
partitioner, walker engines) accept either a seed or a
:class:`numpy.random.Generator`. Centralising the coercion here keeps
experiments reproducible: the same seed always yields the same graph,
partition, and walk traces.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "derive_rng", "spawn_rngs", "splitmix64", "hash_u64"]

# Constants of the splitmix64 finaliser (Steele et al., "Fast splittable
# pseudorandom number generators", OOPSLA 2014). Used as a deterministic
# integer hash so Hash partitioning does not depend on Python's salted hash().
_SM64_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM64_MUL1 = np.uint64(0xBF58476D1CE4E5B9)
_SM64_MUL2 = np.uint64(0x94D049BB133111EB)


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh nondeterministic generator; an integer seeds a
    PCG64 stream; an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(seed: int | np.random.Generator | None, *salt: int) -> np.random.Generator:
    """Derive an independent generator from ``seed`` and integer ``salt``.

    Useful when one experiment seed must drive several independent
    stochastic stages (graph generation, partitioning, walking) without
    the stages sharing a stream.
    """
    if isinstance(seed, np.random.Generator):
        # Fold salt into fresh entropy drawn from the parent stream.
        base = int(seed.integers(0, 2**63 - 1))
    elif seed is None:
        return np.random.default_rng()
    else:
        base = int(seed)
    mixed = base & 0xFFFFFFFFFFFFFFFF
    for s in salt:
        mixed = int(splitmix64(np.uint64(mixed ^ (s & 0xFFFFFFFFFFFFFFFF))))
    return np.random.default_rng(mixed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` independent generators (one per simulated machine)."""
    root = np.random.SeedSequence(
        seed if isinstance(seed, int) else int(as_rng(seed).integers(0, 2**63 - 1))
    )
    return [np.random.default_rng(ss) for ss in root.spawn(n)]


def splitmix64(x: np.uint64 | np.ndarray) -> np.uint64 | np.ndarray:
    """Splitmix64 finaliser: a high-quality 64-bit integer mix.

    Works elementwise on ``uint64`` arrays; overflow wraps (mod 2^64) as
    the algorithm requires.
    """
    with np.errstate(over="ignore"):
        z = (np.uint64(x) + _SM64_GAMMA).astype(np.uint64) if isinstance(x, np.ndarray) else np.uint64(x) + _SM64_GAMMA
        z = (z ^ (z >> np.uint64(30))) * _SM64_MUL1
        z = (z ^ (z >> np.uint64(27))) * _SM64_MUL2
        return z ^ (z >> np.uint64(31))


def hash_u64(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Deterministically hash an integer array to ``uint64``.

    The hash mixes a caller-supplied seed so different hash partitioner
    instances produce different but reproducible assignments.
    """
    v = np.asarray(values, dtype=np.uint64)
    with np.errstate(over="ignore"):
        return splitmix64(v ^ splitmix64(np.uint64(seed & 0xFFFFFFFFFFFFFFFF)))
