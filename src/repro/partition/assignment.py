"""Partition assignment vector with cached per-part statistics.

A partition of graph ``G`` into ``k`` parts is a vector ``parts`` of
length ``n`` with values in ``[0, k)``. :class:`PartitionAssignment`
wraps that vector together with the graph and lazily caches the two
quantities the whole paper revolves around: per-part vertex counts
``|V_i|`` and per-part edge counts ``|E_i|`` (the sum of out-degrees of
the part's vertices, i.e. the arcs each machine stores).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph

__all__ = ["PartitionAssignment"]


class PartitionAssignment:
    """An immutable vertex → part mapping plus derived statistics."""

    __slots__ = (
        "_graph",
        "_parts",
        "_num_parts",
        "_vcounts",
        "_ecounts",
        "_fingerprint",
        "_derived",
    )

    def __init__(self, graph: CSRGraph, parts: np.ndarray, num_parts: int) -> None:
        parts = np.ascontiguousarray(parts, dtype=np.int32)
        if parts.size != graph.num_vertices:
            raise PartitionError(
                f"assignment length {parts.size} != num_vertices {graph.num_vertices}"
            )
        if num_parts <= 0:
            raise PartitionError(f"num_parts must be positive, got {num_parts}")
        if parts.size and (parts.min() < 0 or parts.max() >= num_parts):
            raise PartitionError("part ids outside [0, num_parts)")
        self._graph = graph
        self._parts = parts
        self._parts.setflags(write=False)
        self._num_parts = int(num_parts)
        self._vcounts: np.ndarray | None = None
        self._ecounts: np.ndarray | None = None
        self._fingerprint: str | None = None
        self._derived: dict | None = None

    # ------------------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        """The partitioned graph."""
        return self._graph

    @property
    def parts(self) -> np.ndarray:
        """Read-only part-id vector of length ``n``."""
        return self._parts

    @property
    def num_parts(self) -> int:
        """Number of parts ``k``."""
        return self._num_parts

    @property
    def vertex_counts(self) -> np.ndarray:
        """``|V_i|`` for every part (length ``k``)."""
        if self._vcounts is None:
            self._vcounts = np.bincount(self._parts, minlength=self._num_parts).astype(
                np.int64
            )
        return self._vcounts

    @property
    def edge_counts(self) -> np.ndarray:
        """``|E_i|`` — arcs stored by each part = Σ out-degree over V_i."""
        if self._ecounts is None:
            self._ecounts = np.bincount(
                self._parts, weights=self._graph.degrees, minlength=self._num_parts
            ).astype(np.int64)
        return self._ecounts

    def fingerprint(self) -> str:
        """Stable content hash over (graph, parts vector, ``k``).

        The partition half of the simulation-artifact cache key (see
        :mod:`repro.bench.artifacts`): two assignments of the same graph
        content with equal part vectors hash identically, however they
        were produced. Computed once (the arrays are frozen).
        """
        if self._fingerprint is None:
            h = hashlib.sha256()
            h.update(b"assignment-v1:")
            h.update(self._graph.fingerprint().encode("ascii"))
            h.update(np.int64(self._num_parts).tobytes())
            h.update(np.ascontiguousarray(self._parts, dtype=np.int32).tobytes())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def derived_cache(self) -> dict:
        """Mutable scratch dict for engine-side memoised structures.

        Engines derive expensive per-(graph, assignment) structures —
        Gemini's cut/mirror arrays — that are pure functions of this
        immutable object, so they live here and survive across runs of
        different applications on the same partition.
        """
        if self._derived is None:
            self._derived = {}
        return self._derived

    def vertices_of(self, part: int) -> np.ndarray:
        """Vertex ids assigned to ``part``."""
        return np.nonzero(self._parts == part)[0]

    def relabel(self, mapping: np.ndarray, num_parts: int) -> "PartitionAssignment":
        """Apply ``old part id → new part id`` (the combining phase).

        ``mapping`` has length ``self.num_parts``; the result has
        ``num_parts`` parts.
        """
        mapping = np.asarray(mapping, dtype=np.int32)
        if mapping.size != self._num_parts:
            raise PartitionError(
                f"mapping length {mapping.size} != num_parts {self._num_parts}"
            )
        return PartitionAssignment(self._graph, mapping[self._parts], num_parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartitionAssignment):
            return NotImplemented
        return (
            self._num_parts == other._num_parts
            and self._graph == other._graph
            and np.array_equal(self._parts, other._parts)
        )

    def __hash__(self) -> int:  # pragma: no cover
        return id(self)

    def __repr__(self) -> str:
        v, e = self.vertex_counts, self.edge_counts
        return (
            f"PartitionAssignment(k={self._num_parts}, "
            f"|V_i|∈[{v.min()},{v.max()}], |E_i|∈[{e.min()},{e.max()}])"
        )
