"""The parallel substrate: shared segments, the worker pool's ordering
and failure contracts, and the ``jobs=`` resolution policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.parallel import (
    SharedArrayPool,
    WorkerCrash,
    WorkerPool,
    WorkerTaskError,
    attach_array,
    resolve_jobs,
    shm_available,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="no usable shared memory on this host"
)

TASKS = "tests.parallel._tasks"


# ----------------------------------------------------------------------
# resolve_jobs policy
# ----------------------------------------------------------------------
class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1
        assert resolve_jobs(None) == 1

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) == 7

    def test_nonpositive_means_all_cores(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-1) == resolve_jobs(0)

    def test_garbage_env_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert resolve_jobs() == 1

    def test_child_guard_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_CHILD", "1")
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(4) == 1

    def test_child_guard_applies_inside_real_worker(self):
        with WorkerPool(1) as pool:
            assert pool.map_ordered(f"{TASKS}:report_jobs", [None]) == [1]


# ----------------------------------------------------------------------
# Shared segments
# ----------------------------------------------------------------------
class TestSharedArrays:
    def test_round_trip_through_worker(self):
        data = np.arange(1000, dtype=np.float64)
        with SharedArrayPool() as shm, WorkerPool(2) as pool:
            token = shm.share("data", data)
            payloads = [
                {"token": token, "lo": 0, "hi": 500},
                {"token": token, "lo": 500, "hi": 1000},
            ]
            sums = pool.map_ordered(f"{TASKS}:shm_sum", payloads)
        assert sums == [float(data[:500].sum()), float(data[500:].sum())]

    def test_share_copies_and_tokens_describe(self):
        data = np.arange(12, dtype=np.int32).reshape(3, 4)
        with SharedArrayPool() as shm:
            token = shm.share("m", data)
            assert token.shape == (3, 4) and np.dtype(token.dtype) == np.int32
            view = shm.array("m")
            np.testing.assert_array_equal(view, data)
            data[0, 0] = 99  # the segment holds its own copy
            assert view[0, 0] == 0
            assert shm.tokens() == {"m": token}

    def test_attach_caches_segment(self):
        data = np.ones(8)
        cache: dict = {}
        with SharedArrayPool() as shm:
            token = shm.share("x", data)
            a = attach_array(token, cache)
            b = attach_array(token, cache)
            assert a.base is b.base  # one mapping, two views
            assert len(cache["_shm_segments"]) == 1
            for seg in cache["_shm_segments"].values():
                seg.close()

    def test_bytes_shared_counter(self):
        telemetry.set_enabled(True)
        telemetry.reset()
        with SharedArrayPool() as shm:
            shm.share("x", np.zeros(1024, dtype=np.int64))
        snap = telemetry.registry().snapshot()
        assert snap["counters"]["parallel.bytes_shared"] >= 8192


# ----------------------------------------------------------------------
# WorkerPool contracts
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_map_ordered_routes_and_orders(self):
        payloads = list(range(23))
        with WorkerPool(3) as pool:
            out = pool.map_ordered(f"{TASKS}:square", payloads)
        values = [v for v, _, _ in out]
        assert values == [p * p for p in payloads]
        # Task i runs on worker i % jobs: each worker's per-task call
        # counter climbs 1, 2, 3, ... in submission order.
        by_pid: dict = {}
        for _, calls, pid in out:
            assert calls == by_pid.get(pid, 0) + 1
            by_pid[pid] = calls
        assert len(by_pid) == 3

    def test_worker_state_persists_across_tasks(self):
        with WorkerPool(1) as pool:
            out = pool.map_ordered(f"{TASKS}:square", [1, 2, 3])
        assert [calls for _, calls, _ in out] == [1, 2, 3]

    def test_dead_worker_raises_crash(self):
        telemetry.set_enabled(True)
        telemetry.reset()
        with WorkerPool(2) as pool:
            with pytest.raises(WorkerCrash):
                pool.map_ordered(f"{TASKS}:crash", [None, None])
        snap = telemetry.registry().snapshot()
        assert snap["counters"]["parallel.worker_crashes"] >= 1

    def test_task_exception_raises_task_error(self):
        with WorkerPool(1) as pool:
            with pytest.raises(WorkerTaskError, match="bad payload 'p0'"):
                pool.map_ordered(f"{TASKS}:boom", ["p0"])

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_close_is_idempotent(self):
        pool = WorkerPool(2)
        pool.map_ordered(f"{TASKS}:square", [1, 2])
        pool.close()
        pool.close()
