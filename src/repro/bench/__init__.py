"""Benchmark harness: experiment registry, canonical workloads, reports."""

from repro.bench.harness import (
    ExperimentConfig,
    ExperimentResult,
    available_experiments,
    experiment_description,
    register_experiment,
    run_experiment,
)
from repro.bench.artifacts import (
    cached_partition,
    get_assignment,
    get_store,
    reset_store,
    stats_snapshot,
)
from repro.bench.claims import Claim, ClaimResult, all_claims, check_claims
from repro.bench.report import BarChart, Series, Table
from repro.bench.runner import ExperimentOutcome, run_suite
from repro.bench.workloads import (
    ALL_APPS,
    PAPER_PARTITIONERS,
    AppRun,
    make_partitioners,
    run_app,
    run_walk_job,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "available_experiments",
    "experiment_description",
    "register_experiment",
    "run_experiment",
    "BarChart",
    "Claim",
    "ClaimResult",
    "all_claims",
    "check_claims",
    "Series",
    "Table",
    "ALL_APPS",
    "PAPER_PARTITIONERS",
    "AppRun",
    "make_partitioners",
    "run_app",
    "run_walk_job",
    "ExperimentOutcome",
    "run_suite",
    "cached_partition",
    "get_assignment",
    "get_store",
    "reset_store",
    "stats_snapshot",
]
