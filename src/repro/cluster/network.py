"""Network timing model.

Models the paper's 56 Gbps Ethernet fabric with the standard
latency + size/bandwidth cost. Per superstep each machine's
communication time is the time to push its outgoing bytes onto the wire
plus the time to drain its incoming bytes, plus one synchronisation
latency — the full-duplex approximation used by most BSP cost analyses
(and consistent with how Gemini/KnightKing pipeline sends and
receives).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth network with fixed-size messages.

    Attributes
    ----------
    bandwidth:     usable bytes/second per machine NIC
                   (56 Gbps ≈ 7 GB/s raw; default assumes ~70 % goodput).
    latency:       per-superstep synchronisation latency in seconds.
    message_bytes: wire size of one message (a walker or one vertex
                   update, including headers).
    """

    bandwidth: float = 5e9
    latency: float = 50e-6
    message_bytes: int = 16

    def __post_init__(self) -> None:
        check_positive("bandwidth", self.bandwidth)
        check_nonnegative("latency", self.latency)
        check_positive("message_bytes", self.message_bytes)

    def comm_seconds(self, sent: np.ndarray, received: np.ndarray) -> np.ndarray:
        """Per-machine communication seconds for one superstep.

        Parameters
        ----------
        sent, received:
            Per-machine *message counts* (not bytes) for the superstep.
        """
        sent = np.asarray(sent, dtype=np.float64)
        received = np.asarray(received, dtype=np.float64)
        busy = np.maximum(sent, received) * self.message_bytes / self.bandwidth
        # Machines that neither send nor receive still pay the barrier
        # latency — BSP synchronises everyone.
        return busy + self.latency
