"""Export a BSP schedule as a Chrome-tracing timeline.

``chrome://tracing`` / Perfetto render JSON event lists as per-track
timelines. Mapping each simulated machine to a track with its compute /
communication / wait phases per superstep turns a
:class:`~repro.cluster.ledger.TimingLedger` into the kind of Gantt view
systems papers use to *show* barrier waiting (the visual counterpart of
Figure 12).

Ledger event markers (crashes, checkpoints, recoveries, stragglers —
see :class:`~repro.cluster.ledger.LedgerEvent`) are rendered as instant
("i") events on the owning machine's track, so a fault-injected run
shows *where* in the timeline the cluster lost a machine and how the
schedule deformed around it.
"""

from __future__ import annotations

import json
import os

from repro.cluster.ledger import LedgerEvent, TimingLedger

__all__ = ["to_chrome_trace", "write_chrome_trace"]

_PHASES = ("compute", "comm", "wait")

#: event kinds that semantically occur *at the barrier* closing their
#: superstep (a crash is detected there; checkpoint/recovery iterations
#: complete there). Everything else marks the superstep's start.
_BARRIER_EVENT_KINDS = frozenset({"crash", "checkpoint", "recovery"})


def _event_to_instant(event: LedgerEvent, starts: list[float], durations: list[float]) -> dict:
    """Render one ledger event as a Chrome-tracing instant event."""
    step = event.superstep
    if 0 <= step < len(starts):
        ts = starts[step]
        if event.kind in _BARRIER_EVENT_KINDS:
            ts += durations[step]
    else:  # event outside the recorded range (defensive): pin to the end
        ts = starts[-1] + durations[-1] if starts else 0.0
    instant = {
        "name": f"{event.kind}[{step}]",
        "cat": event.kind,
        "ph": "i",
        "pid": 0,
        "ts": ts * 1e6,
        "args": {"superstep": step, "seconds": event.seconds, **event.detail},
    }
    if event.machine >= 0:
        instant["tid"] = event.machine
        instant["s"] = "t"  # thread-scoped: flag on the machine's track
    else:
        instant["tid"] = 0
        instant["s"] = "g"  # cluster-wide: global flag line
    return instant


def to_chrome_trace(
    ledger: TimingLedger,
    *,
    job_name: str = "bsp-job",
    extra_events: list[dict] | None = None,
) -> list[dict]:
    """Convert a ledger to Chrome-tracing "complete" (X) events.

    One track (tid) per machine; one event per (superstep, phase) with
    microsecond timestamps. Supersteps start at the barrier-aligned
    global clock, so waits render as gaps filled by explicit "wait"
    events. Ledger events become instant ("i") markers — on their
    machine's track, or on the global flag line for cluster-wide ones.

    ``extra_events`` are appended verbatim — telemetry spans
    (:func:`repro.telemetry.spans_to_chrome_events`) use this to merge
    their own track (``pid=1``) into the machine timeline.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": job_name},
        }
    ]
    for machine in range(ledger.num_machines):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": machine,
                "args": {"name": f"machine-{machine}"},
            }
        )
    t0 = 0.0
    starts: list[float] = []
    durations: list[float] = []
    for step, it in enumerate(ledger.iterations):
        duration = it.duration
        starts.append(t0)
        durations.append(duration)
        for machine in range(ledger.num_machines):
            # Machines outside the iteration's active mask (crashed)
            # record zero-length segments and drop out naturally.
            segments = (
                (f"compute[{step}]", float(it.compute[machine])),
                (f"comm[{step}]", float(it.comm[machine])),
                (f"wait[{step}]", float(it.wait[machine])),
            )
            cursor = t0
            for name, seconds in segments:
                if seconds <= 0:
                    continue
                events.append(
                    {
                        "name": name,
                        "cat": name.split("[")[0],
                        "ph": "X",
                        "pid": 0,
                        "tid": machine,
                        "ts": cursor * 1e6,
                        "dur": seconds * 1e6,
                    }
                )
                cursor += seconds
        t0 += duration
    for event in ledger.events:
        events.append(_event_to_instant(event, starts, durations))
    if extra_events:
        events.extend(extra_events)
    return events


def write_chrome_trace(
    ledger: TimingLedger,
    path: str | os.PathLike,
    *,
    job_name: str = "bsp-job",
    extra_events: list[dict] | None = None,
) -> None:
    """Write the trace JSON (loadable in chrome://tracing / Perfetto)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "traceEvents": to_chrome_trace(
                    ledger, job_name=job_name, extra_events=extra_events
                )
            },
            fh,
        )
