"""Partition-aware hot-vertex block cache for the serving layer.

Each simulated machine keeps an LRU cache of fixed-size vertex blocks
(``vertex // block_size``). A query batch first touches the cache; only
blocks absent from it pay the storage fetch (costed by the simulator as
wire reads of ``block_bytes`` each). Capacity is *fixed per machine*,
so a machine hosting an oversized part — more distinct vertices, more
distinct blocks — cycles its cache harder and shows a lower hit rate.
That is the mechanism by which vertex-balance (the |V_i| axis of the
paper's two-dimensional objective) surfaces in serving telemetry, not
just in batch runtimes.

The cache is plain deterministic Python: an :class:`OrderedDict` per
machine with move-to-end on hit and FIFO-of-LRU eviction, no clocks, no
randomness.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["PartitionAwareCache"]


class PartitionAwareCache:
    """Per-machine LRU over vertex blocks with hit/miss telemetry."""

    __slots__ = (
        "num_machines",
        "block_size",
        "capacity",
        "_blocks",
        "hits",
        "misses",
        "miss_blocks",
        "evictions",
        "flushes",
    )

    def __init__(self, num_machines: int, *, block_size: int = 64, capacity: int = 256) -> None:
        check_positive("num_machines", num_machines)
        check_positive("block_size", block_size)
        check_positive("capacity", capacity)
        self.num_machines = int(num_machines)
        self.block_size = int(block_size)
        self.capacity = int(capacity)
        self._blocks: list[OrderedDict] = [OrderedDict() for _ in range(self.num_machines)]
        self.hits = np.zeros(self.num_machines, dtype=np.int64)
        self.misses = np.zeros(self.num_machines, dtype=np.int64)
        self.miss_blocks = np.zeros(self.num_machines, dtype=np.int64)
        self.evictions = np.zeros(self.num_machines, dtype=np.int64)
        self.flushes = np.zeros(self.num_machines, dtype=np.int64)

    def touch(self, machine: int, vertices: np.ndarray) -> int:
        """Access ``vertices`` on ``machine``; returns fetched blocks.

        Per-vertex hits/misses are tallied by whether the vertex's block
        was resident *before* this call; the return value is the number
        of distinct blocks that had to be fetched (the quantity the
        simulator turns into wire reads). Missing blocks are inserted
        and the LRU trimmed back to capacity.
        """
        verts = np.asarray(vertices, dtype=np.int64)
        if verts.size == 0:
            return 0
        lru = self._blocks[machine]
        blocks, counts = np.unique(verts // self.block_size, return_counts=True)
        fetched = 0
        for block, count in zip(blocks.tolist(), counts.tolist()):
            if block in lru:
                self.hits[machine] += count
                lru.move_to_end(block)
            else:
                self.misses[machine] += count
                fetched += 1
                lru[block] = True
        while len(lru) > self.capacity:
            lru.popitem(last=False)
            self.evictions[machine] += 1
        self.miss_blocks[machine] += fetched
        return fetched

    def flush(self, machine: int) -> int:
        """Drop every block on ``machine`` (chaos: cache corruption).

        Returns how many blocks were discarded.
        """
        dropped = len(self._blocks[machine])
        self._blocks[machine].clear()
        self.flushes[machine] += 1
        return dropped

    def reset(self, machine: int) -> int:
        """Cold-start ``machine`` after recovery (not a chaos flush).

        Drops every resident block like :meth:`flush` but does not
        count toward the ``flushes`` telemetry — a re-replicated
        machine legitimately starts cold. Returns dropped blocks.
        """
        dropped = len(self._blocks[machine])
        self._blocks[machine].clear()
        return dropped

    def resident_blocks(self, machine: int) -> int:
        """Blocks currently cached on ``machine``."""
        return len(self._blocks[machine])

    def hit_rate(self, machine: int | None = None) -> float:
        """Vertex-level hit rate, per machine or overall; 0.0 if idle."""
        if machine is None:
            hits, misses = int(self.hits.sum()), int(self.misses.sum())
        else:
            hits, misses = int(self.hits[machine]), int(self.misses[machine])
        total = hits + misses
        return hits / total if total else 0.0

    def stats(self) -> dict:
        """Aggregate counters in JSON-ready form."""
        return {
            "hits": int(self.hits.sum()),
            "misses": int(self.misses.sum()),
            "miss_blocks": int(self.miss_blocks.sum()),
            "evictions": int(self.evictions.sum()),
            "flushes": int(self.flushes.sum()),
            "hit_rate": self.hit_rate(),
        }
