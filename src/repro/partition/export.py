"""Deployment bundles: what each machine actually receives.

After partitioning, a real distributed deployment ships to machine
``i`` its local subgraph plus the routing metadata needed to address
remote neighbours. :func:`export_partition_bundles` materialises those
per-machine ``.npz`` files; :func:`load_partition_bundle` reads one
back. The format is self-describing and versioned so bundles survive
library upgrades.

Bundle contents (one ``.npz`` per part):

- ``indptr`` / ``indices`` — the *local* CSR over relabelled vertices,
  including boundary arcs whose targets are remote (encoded as
  ``num_local + remote_index``);
- ``global_ids`` — local id → original vertex id;
- ``remote_ids`` — remote index → original vertex id of the ghost;
- ``remote_parts`` — remote index → owning machine;
- ``meta`` — format version, part id, part count.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError, PartitionError
from repro.partition.assignment import PartitionAssignment

__all__ = ["PartitionBundle", "export_partition_bundles", "load_partition_bundle"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class PartitionBundle:
    """One machine's share of a partitioned graph, deployment-ready.

    Local vertices are ``0 .. num_local-1``; a neighbour id ``>=
    num_local`` refers to ghost ``remote_ids[id - num_local]`` owned by
    ``remote_parts[id - num_local]``.
    """

    part: int
    num_parts: int
    indptr: np.ndarray
    indices: np.ndarray
    global_ids: np.ndarray
    remote_ids: np.ndarray
    remote_parts: np.ndarray

    @property
    def num_local(self) -> int:
        return self.global_ids.size

    @property
    def num_ghosts(self) -> int:
        return self.remote_ids.size

    @property
    def num_arcs(self) -> int:
        return self.indices.size

    def is_ghost(self, local_id: int) -> bool:
        """Whether a neighbour id refers to a remote (ghost) vertex."""
        return local_id >= self.num_local


def export_partition_bundles(
    assignment: PartitionAssignment, directory: str | os.PathLike
) -> list[Path]:
    """Write one bundle per part into ``directory``; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    graph = assignment.graph
    parts = assignment.parts.astype(np.int64)
    k = assignment.num_parts
    indptr, indices = graph.indptr, graph.indices
    paths: list[Path] = []

    for p in range(k):
        local_ids = np.nonzero(parts == p)[0].astype(np.int64)
        local_of = np.full(graph.num_vertices, -1, dtype=np.int64)
        local_of[local_ids] = np.arange(local_ids.size)

        # Gather all arcs of local vertices.
        counts = (indptr[local_ids + 1] - indptr[local_ids]).astype(np.int64)
        new_indptr = np.zeros(local_ids.size + 1, dtype=np.int64)
        np.cumsum(counts, out=new_indptr[1:])
        targets = (
            np.concatenate([indices[indptr[v] : indptr[v + 1]] for v in local_ids])
            if counts.sum()
            else np.empty(0, dtype=np.int64)
        ).astype(np.int64)

        remote_mask = parts[targets] != p if targets.size else np.empty(0, dtype=bool)
        remote_globals = np.unique(targets[remote_mask]) if targets.size else np.empty(0, dtype=np.int64)
        ghost_of = np.full(graph.num_vertices, -1, dtype=np.int64)
        ghost_of[remote_globals] = np.arange(remote_globals.size)

        new_indices = np.where(
            remote_mask,
            local_ids.size + ghost_of[targets],
            local_of[targets],
        ).astype(np.int64) if targets.size else np.empty(0, dtype=np.int64)

        path = directory / f"part-{p:04d}.npz"
        np.savez_compressed(
            path,
            indptr=new_indptr,
            indices=new_indices,
            global_ids=local_ids,
            remote_ids=remote_globals,
            remote_parts=parts[remote_globals] if remote_globals.size else np.empty(0, dtype=np.int64),
            meta=np.array([_FORMAT_VERSION, p, k], dtype=np.int64),
        )
        paths.append(path)
    return paths


def load_partition_bundle(path: str | os.PathLike) -> PartitionBundle:
    """Load one bundle written by :func:`export_partition_bundles`."""
    with np.load(path) as data:
        try:
            meta = data["meta"]
            if meta[0] != _FORMAT_VERSION:
                raise GraphFormatError(
                    f"{path}: bundle format version {meta[0]} unsupported"
                )
            bundle = PartitionBundle(
                part=int(meta[1]),
                num_parts=int(meta[2]),
                indptr=data["indptr"],
                indices=data["indices"],
                global_ids=data["global_ids"],
                remote_ids=data["remote_ids"],
                remote_parts=data["remote_parts"],
            )
        except KeyError as exc:
            raise GraphFormatError(f"{path}: missing array {exc}") from exc
    if bundle.indptr[-1] != bundle.indices.size:
        raise PartitionError(f"{path}: corrupt bundle (indptr/indices mismatch)")
    return bundle
