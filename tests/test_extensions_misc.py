"""Tests for the trace exporter, HITS, and walk-corpus IO."""

from __future__ import annotations

import json

import networkx as nx
import numpy as np
import pytest

from repro.cluster import BSPCluster
from repro.cluster.trace import to_chrome_trace, write_chrome_trace
from repro.engines.gemini import GeminiEngine, PageRank
from repro.engines.gemini.apps.hits import HITS
from repro.engines.knightking import DeepWalk, WalkEngine
from repro.engines.knightking.corpus import read_walk_corpus, write_walk_corpus
from repro.errors import GraphFormatError
from repro.graph import chung_lu, from_edges
from repro.graph.convert import to_networkx
from repro.partition import HashPartitioner


class TestChromeTrace:
    @pytest.fixture(scope="class")
    def ledger(self):
        g = chung_lu(300, 6.0, rng=100)
        a = HashPartitioner().partition(g, 4).assignment
        return GeminiEngine(BSPCluster(4)).run(g, a, PageRank(3)).ledger

    def test_events_cover_machines_and_steps(self, ledger):
        events = to_chrome_trace(ledger)
        x_events = [e for e in events if e["ph"] == "X"]
        tids = {e["tid"] for e in x_events}
        assert tids == set(range(4))
        compute_events = [e for e in x_events if e["cat"] == "compute"]
        assert len(compute_events) == 3 * 4  # iterations × machines

    def test_durations_match_ledger(self, ledger):
        events = to_chrome_trace(ledger)
        total_compute_us = sum(
            e["dur"] for e in events if e.get("cat") == "compute"
        )
        assert total_compute_us == pytest.approx(
            ledger.compute_matrix.sum() * 1e6, rel=1e-9
        )

    def test_events_within_makespan(self, ledger):
        events = to_chrome_trace(ledger)
        end = max(e["ts"] + e["dur"] for e in events if e["ph"] == "X")
        assert end == pytest.approx(ledger.total_runtime * 1e6, rel=1e-9)

    def test_write_valid_json(self, ledger, tmp_path):
        p = tmp_path / "trace.json"
        write_chrome_trace(ledger, p, job_name="test-job")
        data = json.loads(p.read_text())
        assert "traceEvents" in data
        assert any(e.get("args", {}).get("name") == "test-job" for e in data["traceEvents"])


class TestHITS:
    def test_matches_networkx_undirected(self):
        g = chung_lu(300, 8.0, rng=101)
        a = HashPartitioner().partition(g, 2).assignment
        res = GeminiEngine(BSPCluster(2)).run(g, a, HITS(iterations=200))
        hubs, auths = nx.hits(to_networkx(g), max_iter=1000, tol=1e-12)
        mine = res.values[:, 0]
        mine = mine / mine.sum()
        theirs = np.array([auths[v] for v in range(g.num_vertices)])
        assert np.abs(mine - theirs).max() < 1e-4

    def test_hub_equals_authority_on_undirected(self):
        g = chung_lu(200, 6.0, rng=102)
        a = HashPartitioner().partition(g, 2).assignment
        res = GeminiEngine(BSPCluster(2)).run(g, a, HITS(iterations=100))
        assert np.allclose(res.values[:, 0], res.values[:, 1], atol=1e-6)

    def test_directed_chain(self):
        # 0 → 1 → 2: vertex 0 is a pure hub, vertex 2 a pure authority
        g = from_edges([0, 1], [1, 2], directed=True)
        a = HashPartitioner().partition(g, 2).assignment
        res = GeminiEngine(BSPCluster(2)).run(g, a, HITS(iterations=100))
        auth, hub = res.values[:, 0], res.values[:, 1]
        assert auth[0] == pytest.approx(0.0, abs=1e-9)
        assert hub[2] == pytest.approx(0.0, abs=1e-9)

    def test_converges_early(self):
        g = chung_lu(200, 8.0, rng=103)
        a = HashPartitioner().partition(g, 2).assignment
        res = GeminiEngine(BSPCluster(2)).run(g, a, HITS(iterations=500))
        assert res.iterations < 500


class TestWalkCorpus:
    def test_roundtrip(self, tmp_path):
        g = chung_lu(200, 6.0, rng=104)
        a = HashPartitioner().partition(g, 2).assignment
        engine = WalkEngine(BSPCluster(2), seed=105, record_paths=True)
        res = engine.run(g, a, DeepWalk(), walkers_per_vertex=1, max_steps=5)
        p = tmp_path / "walks.txt"
        lines = write_walk_corpus(res.paths, p)
        assert lines == res.paths.shape[0]
        back = read_walk_corpus(p)
        # same traces modulo padding width
        for i in range(res.paths.shape[0]):
            a_trace = res.paths[i][res.paths[i] >= 0]
            b_trace = back[i][back[i] >= 0]
            assert np.array_equal(a_trace, b_trace)

    def test_empty_file(self, tmp_path):
        p = tmp_path / "empty.txt"
        p.write_text("")
        assert read_walk_corpus(p).size == 0

    def test_malformed(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("1 two 3\n")
        with pytest.raises(GraphFormatError):
            read_walk_corpus(p)

    def test_bad_shape(self, tmp_path):
        with pytest.raises(GraphFormatError):
            write_walk_corpus(np.zeros(5), tmp_path / "x.txt")
