"""Tests for the Spinner-style balanced LPA partitioner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph import grid_graph, social_graph
from repro.partition import HashPartitioner, bias, edge_cut_ratio, get_partitioner
from repro.partition.spinner import SpinnerPartitioner


@pytest.fixture(scope="module")
def g():
    return social_graph(2500, 14.0, 2.2, rng=90)


class TestSpinner:
    def test_registered(self):
        assert get_partitioner("spinner").name == "spinner"

    def test_totality(self, g):
        a = SpinnerPartitioner(seed=1).partition(g, 8).assignment
        assert a.vertex_counts.sum() == g.num_vertices
        assert (a.parts >= 0).all()

    def test_vertex_balance_within_slack(self, g):
        a = SpinnerPartitioner(seed=1, slack=1.05).partition(g, 8).assignment
        assert a.vertex_counts.max() <= 1.06 * g.num_vertices / 8

    def test_cut_below_hash(self, g):
        sp = SpinnerPartitioner(seed=1).partition(g, 8).assignment
        h = HashPartitioner().partition(g, 8).assignment
        assert edge_cut_ratio(g, sp.parts) < edge_cut_ratio(g, h.parts)

    def test_structured_graph_low_cut(self):
        g = grid_graph(30, 30)
        a = SpinnerPartitioner(seed=2, iterations=60).partition(g, 4).assignment
        h = HashPartitioner().partition(g, 4).assignment
        assert edge_cut_ratio(g, a.parts) < edge_cut_ratio(g, h.parts) / 2

    def test_rounds_recorded(self, g):
        res = SpinnerPartitioner(seed=1, iterations=5).partition(g, 4)
        assert 1 <= res.metadata["rounds"] <= 5

    def test_deterministic(self, g):
        a = SpinnerPartitioner(seed=3).partition(g, 4).assignment
        b = SpinnerPartitioner(seed=3).partition(g, 4).assignment
        assert np.array_equal(a.parts, b.parts)

    def test_balance_weight_tightens_balance(self, g):
        loose = SpinnerPartitioner(seed=1, balance_weight=0.0, iterations=20).partition(g, 8).assignment
        tight = SpinnerPartitioner(seed=1, balance_weight=2.0, iterations=20).partition(g, 8).assignment
        assert bias(tight.vertex_counts) <= bias(loose.vertex_counts) + 0.05

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            SpinnerPartitioner(iterations=0)
        with pytest.raises(ConfigurationError):
            SpinnerPartitioner(stop_fraction=0.0)
