"""BSP timing ledger — the accounting heart of the evaluation.

Per superstep the ledger stores each machine's compute and communication
seconds. The BSP barrier means the superstep lasts as long as its
slowest machine, so every other machine *waits* for the difference
(Figure 1's "possible wait"). From these records the ledger derives:

- per-iteration per-machine compute time (Figures 4 & 12),
- total runtime = Σ over iterations of the slowest machine (Figures 14 & 15),
- waiting ratio = Σ wait over machines and iterations divided by
  (machines × total runtime) — the fraction of machine-time spent
  blocked at barriers (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError

__all__ = ["IterationTiming", "TimingLedger"]


@dataclass(frozen=True)
class IterationTiming:
    """Timing of one superstep across all machines.

    ``overlap`` models systems that pipeline computation with
    communication (the paper's §2.1 notes both Gemini and KnightKing
    amortise part of the communication this way): a machine's busy time
    is then ``max(compute, comm)`` instead of their sum.
    """

    compute: np.ndarray  # seconds per machine
    comm: np.ndarray  # seconds per machine
    overlap: bool = False

    @property
    def busy(self) -> np.ndarray:
        """Per-machine busy time (sum, or max when overlapped)."""
        if self.overlap:
            return np.maximum(self.compute, self.comm)
        return self.compute + self.comm

    @property
    def duration(self) -> float:
        """Superstep length: the slowest machine's busy time."""
        return float(self.busy.max())

    @property
    def wait(self) -> np.ndarray:
        """Barrier wait per machine: duration − own busy time."""
        return self.duration - self.busy


class TimingLedger:
    """Accumulates :class:`IterationTiming` records for one run."""

    def __init__(self, num_machines: int, *, overlap: bool = False) -> None:
        if num_machines <= 0:
            raise SimulationError(f"num_machines must be positive, got {num_machines}")
        self._num_machines = int(num_machines)
        self._overlap = bool(overlap)
        self._iterations: list[IterationTiming] = []

    # ------------------------------------------------------------------
    def record(self, compute: np.ndarray, comm: np.ndarray) -> IterationTiming:
        """Append one superstep's per-machine compute/comm seconds."""
        compute = np.asarray(compute, dtype=np.float64)
        comm = np.asarray(comm, dtype=np.float64)
        if compute.shape != (self._num_machines,) or comm.shape != (self._num_machines,):
            raise SimulationError(
                f"expected arrays of shape ({self._num_machines},), "
                f"got {compute.shape} and {comm.shape}"
            )
        if (compute < 0).any() or (comm < 0).any():
            raise SimulationError("negative compute or comm time")
        it = IterationTiming(compute=compute.copy(), comm=comm.copy(), overlap=self._overlap)
        self._iterations.append(it)
        return it

    # ------------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        return self._num_machines

    @property
    def overlap(self) -> bool:
        """Whether compute and communication are pipelined."""
        return self._overlap

    @property
    def num_iterations(self) -> int:
        return len(self._iterations)

    @property
    def iterations(self) -> list[IterationTiming]:
        """All recorded supersteps (shared list — do not mutate)."""
        return self._iterations

    @property
    def compute_matrix(self) -> np.ndarray:
        """``iterations × machines`` compute seconds (Figures 4/12)."""
        if not self._iterations:
            return np.zeros((0, self._num_machines))
        return np.stack([it.compute for it in self._iterations])

    @property
    def comm_matrix(self) -> np.ndarray:
        """``iterations × machines`` communication seconds."""
        if not self._iterations:
            return np.zeros((0, self._num_machines))
        return np.stack([it.comm for it in self._iterations])

    @property
    def wait_matrix(self) -> np.ndarray:
        """``iterations × machines`` barrier-wait seconds."""
        if not self._iterations:
            return np.zeros((0, self._num_machines))
        return np.stack([it.wait for it in self._iterations])

    @property
    def total_runtime(self) -> float:
        """Job makespan: Σ superstep durations."""
        return float(sum(it.duration for it in self._iterations))

    @property
    def total_wait(self) -> float:
        """Σ wait over all machines and supersteps."""
        return float(self.wait_matrix.sum())

    @property
    def waiting_ratio(self) -> float:
        """Fraction of machine-time spent waiting (Figure 13's metric).

        ``Σ wait / (M × makespan)`` — 0 when perfectly balanced, → 1
        when one machine does all the work.
        """
        runtime = self.total_runtime
        if runtime == 0:
            return 0.0
        return self.total_wait / (self._num_machines * runtime)

    def __repr__(self) -> str:
        return (
            f"TimingLedger(machines={self._num_machines}, "
            f"iterations={self.num_iterations}, "
            f"runtime={self.total_runtime:.6f}s, "
            f"waiting_ratio={self.waiting_ratio:.3f})"
        )
