"""Unit tests for the BSP timing ledger."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import TimingLedger
from repro.errors import SimulationError


class TestIterationTiming:
    def test_duration_is_slowest_machine(self):
        ledger = TimingLedger(3)
        it = ledger.record(np.array([1.0, 2.0, 3.0]), np.array([0.5, 0.5, 0.5]))
        assert it.duration == pytest.approx(3.5)
        assert np.allclose(it.wait, [2.0, 1.0, 0.0])

    def test_wait_nonnegative(self):
        ledger = TimingLedger(4)
        rng = np.random.default_rng(0)
        for _ in range(10):
            it = ledger.record(rng.random(4), rng.random(4))
            assert (it.wait >= -1e-12).all()


class TestLedger:
    def test_total_runtime_sums_durations(self):
        ledger = TimingLedger(2)
        ledger.record(np.array([1.0, 2.0]), np.zeros(2))
        ledger.record(np.array([3.0, 1.0]), np.zeros(2))
        assert ledger.total_runtime == pytest.approx(5.0)

    def test_waiting_ratio_balanced_is_zero(self):
        ledger = TimingLedger(4)
        ledger.record(np.full(4, 2.0), np.zeros(4))
        assert ledger.waiting_ratio == pytest.approx(0.0)

    def test_waiting_ratio_single_worker(self):
        ledger = TimingLedger(4)
        ledger.record(np.array([4.0, 0.0, 0.0, 0.0]), np.zeros(4))
        # three machines wait the whole superstep → 3/4
        assert ledger.waiting_ratio == pytest.approx(0.75)

    def test_waiting_ratio_bounds(self):
        ledger = TimingLedger(5)
        rng = np.random.default_rng(1)
        for _ in range(5):
            ledger.record(rng.random(5), rng.random(5))
        assert 0.0 <= ledger.waiting_ratio < 1.0

    def test_empty_ledger(self):
        ledger = TimingLedger(2)
        assert ledger.total_runtime == 0.0
        assert ledger.waiting_ratio == 0.0
        assert ledger.compute_matrix.shape == (0, 2)

    def test_matrices_shape(self):
        ledger = TimingLedger(3)
        for _ in range(4):
            ledger.record(np.ones(3), np.ones(3))
        assert ledger.compute_matrix.shape == (4, 3)
        assert ledger.comm_matrix.shape == (4, 3)
        assert ledger.wait_matrix.shape == (4, 3)

    def test_shape_validation(self):
        ledger = TimingLedger(3)
        with pytest.raises(SimulationError):
            ledger.record(np.ones(2), np.ones(3))

    def test_negative_rejected(self):
        ledger = TimingLedger(2)
        with pytest.raises(SimulationError):
            ledger.record(np.array([-1.0, 0.0]), np.zeros(2))

    def test_invalid_machine_count(self):
        with pytest.raises(SimulationError):
            TimingLedger(0)

    def test_repr(self):
        ledger = TimingLedger(2)
        assert "machines=2" in repr(ledger)
