"""2-D grid-constrained edge partitioning (GraphBuilder / PowerLyra).

Arrange the ``k = r·c`` parts in an ``r × c`` grid. Vertex ``v`` hashes
to a row ``R(v)`` and a column ``C(v)``; edge ``(u, v)`` may only be
placed in the intersection cells of u's row/column with v's — here the
classic variant: cell ``(R(u), C(v))``. Every vertex therefore appears
in at most ``r + c − 1`` parts, bounding the replication factor by
``O(√k)`` regardless of degree.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.partition.vertexcut.base import EdgePartitioner
from repro.utils.rng import hash_u64

__all__ = ["GridPartitioner"]


def _grid_shape(k: int) -> tuple[int, int]:
    """Most-square factorisation r × c = k with r ≤ c."""
    r = int(math.isqrt(k))
    while r > 1 and k % r:
        r -= 1
    return r, k // r


class GridPartitioner(EdgePartitioner):
    """Constrained 2-D hashing; replication ≤ r + c − 1 per vertex."""

    name = "grid"

    def __init__(self, *, seed: int = 0) -> None:
        self._seed = int(seed)

    def _assign(
        self, graph: CSRGraph, src: np.ndarray, dst: np.ndarray, num_parts: int
    ) -> np.ndarray:
        r, c = _grid_shape(num_parts)
        if r == 1:
            # prime k degenerates to hashing one endpoint — warn via error
            # only for k > 3 where the grid is the point of this scheme.
            if num_parts > 3:
                raise ConfigurationError(
                    f"grid partitioner needs a composite part count, got prime {num_parts}"
                )
        rows = (hash_u64(src.astype(np.uint64), self._seed) % np.uint64(r)).astype(np.int64)
        cols = (hash_u64(dst.astype(np.uint64), self._seed + 1) % np.uint64(c)).astype(
            np.int64
        )
        return (rows * c + cols).astype(np.int32)
