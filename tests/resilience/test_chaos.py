"""Unit tests for the deterministic chaos harness."""

from __future__ import annotations

import time

import pytest

from repro import telemetry
from repro.errors import ConfigurationError
from repro.resilience import (
    ChaosError,
    ChaosPlan,
    ChaosRule,
    active_plan,
    install_plan,
    known_sites,
    maybe_inject,
    register_site,
)
from repro.resilience.chaos import CHAOS_ENV

# Plans validate their sites against the registry; the ad-hoc site
# names these tests use have to be declared like any real site.
for _site in ("s", "a", "b", "boom", "disk", "store", "slow"):
    register_site(_site)


class TestChaosRule:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "meteor"},
            {"kind": "kill", "rate": 1.5},
            {"kind": "kill", "max_fires": 0},
            {"kind": "hang", "hang_seconds": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ChaosRule(site="s", **kwargs)


class TestChaosPlan:
    def test_rate_one_always_fires_rate_zero_never(self):
        always = ChaosPlan(rules=[ChaosRule(site="s", kind="exception", rate=1.0)])
        never = ChaosPlan(rules=[ChaosRule(site="s", kind="exception", rate=0.0)])
        for key in ("a", "b", "c"):
            assert always.firing_rule("s", key) is not None
            assert never.firing_rule("s", key) is None

    def test_partial_rate_is_deterministic_per_key(self):
        plan = ChaosPlan(seed=5, rules=[ChaosRule(site="s", kind="exception", rate=0.5)])
        keys = [f"k{i}" for i in range(100)]
        fired = [plan.firing_rule("s", k) is not None for k in keys]
        assert fired == [plan.firing_rule("s", k) is not None for k in keys]
        assert 20 < sum(fired) < 80  # roughly half, hash-selected
        other = ChaosPlan(seed=6, rules=plan.rules)
        assert fired != [other.firing_rule("s", k) is not None for k in keys]

    def test_site_and_match_filters(self):
        plan = ChaosPlan(rules=[ChaosRule(site="s", kind="exception", match="fig")])
        assert plan.firing_rule("s", "fig03") is not None
        assert plan.firing_rule("s", "table2") is None
        assert plan.firing_rule("other", "fig03") is None

    def test_max_fires_caps_attempts(self):
        plan = ChaosPlan(rules=[ChaosRule(site="s", kind="exception", max_fires=2)])
        assert plan.firing_rule("s", "k", attempt=1) is not None
        assert plan.firing_rule("s", "k", attempt=2) is not None
        assert plan.firing_rule("s", "k", attempt=3) is None

    def test_json_round_trip(self):
        plan = ChaosPlan(
            seed=11,
            rules=[
                ChaosRule(site="a", kind="kill", rate=0.3, match="x", max_fires=2),
                ChaosRule(site="b", kind="hang", hang_seconds=0.5),
            ],
        )
        assert ChaosPlan.from_json(plan.to_json()) == plan

    @pytest.mark.parametrize("text", ["not json", "[1, 2]", '{"format": "v99"}'])
    def test_from_json_rejects_garbage(self, text):
        with pytest.raises(ConfigurationError):
            ChaosPlan.from_json(text)


class TestSiteRegistry:
    def test_known_sites_contains_registered_and_builtin(self):
        sites = known_sites()
        assert "s" in sites  # registered at module import above
        assert "artifacts.load" in sites
        assert "runner.worker" in sites
        assert "serving.machine" in sites
        assert "serving.replica.crash" in sites
        assert "serving.heartbeat.drop" in sites
        assert list(sites) == sorted(sites)

    def test_unknown_site_is_rejected_at_plan_construction(self):
        with pytest.raises(ChaosError, match="unknown injection site"):
            ChaosPlan(rules=[ChaosRule(site="no.such.site", kind="exception")])

    def test_register_site_returns_name_and_rejects_garbage(self):
        assert register_site("tests.extra") == "tests.extra"
        assert "tests.extra" in known_sites()
        with pytest.raises(ConfigurationError):
            register_site("")

    def test_registered_site_plans_validate(self):
        register_site("tests.fresh")
        plan = ChaosPlan(rules=[ChaosRule(site="tests.fresh", kind="exception")])
        assert ChaosPlan.from_json(plan.to_json()) == plan


class TestInstallAndInject:
    def test_no_plan_is_a_noop(self):
        assert active_plan() is None
        maybe_inject("anything", "key")  # must not raise

    def test_install_mirrors_into_env_and_clears(self):
        import os

        plan = ChaosPlan(rules=[ChaosRule(site="s", kind="exception")])
        install_plan(plan)
        assert os.environ[CHAOS_ENV] == plan.to_json()
        assert active_plan() == plan
        install_plan(None)
        assert CHAOS_ENV not in os.environ
        assert active_plan() is None

    def test_active_plan_parses_env(self, monkeypatch):
        plan = ChaosPlan(seed=3, rules=[ChaosRule(site="s", kind="ioerror")])
        monkeypatch.setenv(CHAOS_ENV, plan.to_json())
        assert active_plan() == plan

    def test_exception_and_ioerror_kinds(self):
        install_plan(ChaosPlan(rules=[ChaosRule(site="boom", kind="exception")]))
        with pytest.raises(ChaosError):
            maybe_inject("boom", "k")
        install_plan(ChaosPlan(rules=[ChaosRule(site="disk", kind="ioerror")]))
        with pytest.raises(OSError):
            maybe_inject("disk", "k")

    def test_corrupt_kind_scribbles_over_the_file(self, tmp_path):
        target = tmp_path / "artifact.npz"
        target.write_bytes(b"precious data")
        install_plan(ChaosPlan(rules=[ChaosRule(site="store", kind="corrupt")]))
        maybe_inject("store", "k", path=target)
        assert target.read_bytes() != b"precious data"
        # Missing path: the corruption has no target and is a no-op.
        maybe_inject("store", "k2", path=tmp_path / "nope")

    def test_hang_kind_sleeps(self):
        install_plan(
            ChaosPlan(rules=[ChaosRule(site="slow", kind="hang", hang_seconds=0.05)])
        )
        start = time.perf_counter()
        maybe_inject("slow", "k")
        assert time.perf_counter() - start >= 0.05

    def test_injections_are_counted(self):
        telemetry.set_enabled(True)
        install_plan(ChaosPlan(rules=[ChaosRule(site="boom", kind="exception")]))
        with pytest.raises(ChaosError):
            maybe_inject("boom", "k")
        reg = telemetry.registry()
        assert reg.counter("chaos.injections", site="boom", kind="exception").value == 1
