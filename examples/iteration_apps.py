"""Iteration-based analytics (PageRank / Connected Components / BFS)
on the Gemini-like engine, validated against networkx.

Shows the full pipeline: generate → partition → run on the simulated
cluster → compare messages and runtime across partitioners → verify the
numerical results against a reference implementation.

Usage::

    python examples/iteration_apps.py
"""

from __future__ import annotations

import numpy as np

from repro import graph, partition
from repro.cluster import BSPCluster
from repro.engines.gemini import BFS, ConnectedComponents, GeminiEngine, PageRank
from repro.graph.convert import to_networkx


def main() -> None:
    g = graph.livejournal_like(scale=0.3, seed=9)
    print(f"graph: {graph.summarize(g)}\n")

    results = {}
    print(f"{'algorithm':10s} {'PR msgs':>10s} {'PR ms':>8s} {'CC iters':>8s} {'CC ms':>8s}")
    for name in ("chunk-v", "hash", "bpart"):
        a = partition.get_partitioner(name, seed=9).partition(g, 8).assignment
        engine = GeminiEngine(BSPCluster(8))
        pr = engine.run(g, a, PageRank(iterations=10))
        cc = engine.run(g, a, ConnectedComponents())
        results[name] = (pr, cc)
        print(
            f"{name:10s} {pr.total_messages:>10,} {pr.runtime * 1e3:8.3f} "
            f"{cc.iterations:8d} {cc.runtime * 1e3:8.3f}"
        )

    # Verify against networkx (results are partition-independent).
    import networkx as nx

    nxg = to_networkx(g)
    pr_values = results["bpart"][0].values
    nx_pr = nx.pagerank(nxg, alpha=0.85, max_iter=200, tol=1e-12)
    err = max(abs(pr_values[v] - nx_pr[v]) for v in range(g.num_vertices))
    print(f"\nPageRank max |error| vs networkx: {err:.2e}")

    cc_values = results["bpart"][1].values
    num_components = len(np.unique(cc_values))
    print(f"components: engine={num_components} networkx={nx.number_connected_components(nxg)}")

    engine = GeminiEngine(BSPCluster(8))
    a = partition.get_partitioner("bpart", seed=9).partition(g, 8).assignment
    bfs = engine.run(g, a, BFS(source=0))
    reached = np.isfinite(bfs.values).sum()
    print(f"BFS from 0: reached {reached:,}/{g.num_vertices:,} vertices, "
          f"eccentricity {int(np.nanmax(np.where(np.isfinite(bfs.values), bfs.values, np.nan)))}")


if __name__ == "__main__":
    main()
