"""Balance-preserving cut refinement.

BPart's over-split-and-combine pays for its two-dimensional balance
with a higher edge cut than Fennel (paper Table 3 — a consequence the
authors note of partitioning "into smaller pieces"). This module adds
the natural post-processing the paper leaves open: greedy boundary
moves that reduce the cut *subject to keeping both dimensions within
the balance envelope*, i.e. Fiduccia–Mattheyses-style refinement with a
two-dimensional feasibility test.

Per round:

1. compute every vertex's neighbour-part histogram (one ``bincount``
   over all arcs);
2. rank boundary vertices by cut gain (best other part minus current);
3. apply moves in gain order, each validated against running
   ``(1 ± ε)``-of-target windows for *both* ``|V_i|`` and ``|E_i|`` of
   the two parts involved (and re-checked against the histogram drift
   caused by earlier moves in the round).

Rounds repeat until no move applies. The result provably never leaves
the balance envelope and never increases the cut.
"""

from __future__ import annotations

import numpy as np

from repro.partition.assignment import PartitionAssignment
from repro.utils.validation import check_fraction, check_positive

__all__ = ["refine_assignment"]


def refine_assignment(
    assignment: PartitionAssignment,
    *,
    epsilon: float = 0.1,
    rounds: int = 5,
    min_gain: int = 1,
) -> PartitionAssignment:
    """Reduce the edge cut of ``assignment`` without breaking 2-D balance.

    Parameters
    ----------
    epsilon:
        Balance envelope: after every accepted move, each touched part's
        ``|V_i|`` and ``|E_i|`` must stay within ``(1 ± ε)`` of the
        global targets ``n/k`` and ``m/k``. Parts already outside the
        envelope may only move *toward* it.
    rounds:
        Maximum refinement sweeps; stops early when a sweep applies no
        move.
    min_gain:
        Minimum cut-gain (in arcs) for a move to be considered.

    Returns
    -------
    A new :class:`PartitionAssignment` (the input is immutable).
    """
    check_fraction("epsilon", epsilon)
    check_positive("rounds", rounds)
    check_positive("min_gain", min_gain)

    graph = assignment.graph
    k = assignment.num_parts
    n = graph.num_vertices
    if k == 1 or n == 0 or graph.num_edges == 0:
        return assignment

    parts = assignment.parts.astype(np.int32).copy()
    degrees = graph.degrees.astype(np.int64)
    v_target = n / k
    e_target = graph.num_edges / k
    v_lo, v_hi = (1 - epsilon) * v_target, (1 + epsilon) * v_target
    e_lo, e_hi = (1 - epsilon) * e_target, (1 + epsilon) * e_target

    vcnt = np.bincount(parts, minlength=k).astype(np.int64)
    ecnt = np.bincount(parts, weights=degrees, minlength=k).astype(np.int64)

    src = np.repeat(np.arange(n, dtype=np.int64), degrees)
    dst = graph.indices.astype(np.int64)
    indptr = graph.indptr

    def window_ok(values, lo, hi, idx, delta, old):
        """A move is allowed if the touched count stays inside the
        window, or strictly improves an already-outside count."""
        new = values[idx] + delta
        if lo <= new <= hi:
            return True
        # outside: only accept if it moves toward the target
        return abs(new - (lo + hi) / 2) < abs(old - (lo + hi) / 2)

    for _ in range(rounds):
        # Neighbour-part histogram for every vertex (n × k).
        flat = src * k + parts[dst]
        hist = np.bincount(flat, minlength=n * k).reshape(n, k)
        cur_conn = hist[np.arange(n), parts]
        best_other = hist.copy()
        best_other[np.arange(n), parts] = -1
        target_part = np.argmax(best_other, axis=1).astype(np.int32)
        gain = best_other[np.arange(n), target_part] - cur_conn

        candidates = np.nonzero(gain >= min_gain)[0]
        if candidates.size == 0:
            break
        order = candidates[np.argsort(-gain[candidates], kind="stable")]

        moved = 0
        for v in order:
            a, b = int(parts[v]), int(target_part[v])
            if a == b:
                continue
            # Re-validate the gain against the *current* assignment —
            # earlier moves this round may have changed v's neighbours.
            nbr_parts = parts[dst[indptr[v] : indptr[v + 1]]]
            live_hist = np.bincount(nbr_parts, minlength=k)
            live_gain = live_hist[b] - live_hist[a]
            if live_gain < min_gain:
                continue
            d = int(degrees[v])
            if not (
                window_ok(vcnt, v_lo, v_hi, a, -1, vcnt[a])
                and window_ok(vcnt, v_lo, v_hi, b, +1, vcnt[b])
                and window_ok(ecnt, e_lo, e_hi, a, -d, ecnt[a])
                and window_ok(ecnt, e_lo, e_hi, b, +d, ecnt[b])
            ):
                continue
            parts[v] = b
            vcnt[a] -= 1
            vcnt[b] += 1
            ecnt[a] -= d
            ecnt[b] += d
            moved += 1
        if moved == 0:
            break

    return PartitionAssignment(graph, parts, k)
