"""Chunk-V and Chunk-E partitioners (§2.2, Figure 2a/2b).

Both treat the vertex stream as one contiguous sequence and slice it
into ``k`` consecutive ranges:

- **Chunk-V** closes a range when it has accumulated ``n / k`` vertices
  (Gemini's and GridGraph's scheme) → balanced ``|V_i|``.
- **Chunk-E** closes a range when it has accumulated ``m / k`` out-arcs
  (KnightKing's and GraphChi's scheme) → balanced ``|E_i|``.

Because real graphs are scale-free, the dimension *not* being balanced
ends up highly skewed — the paper's Limitation #1 and Figure 6. Both are
fully vectorised (a cumulative sum and a division), which is why Table 2
shows them orders of magnitude faster than score-based streaming.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.assignment import PartitionAssignment
from repro.partition.base import Partitioner, register_partitioner
from repro.utils.timing import WallClock

__all__ = ["ChunkVPartitioner", "ChunkEPartitioner"]


class ChunkVPartitioner(Partitioner):
    """Contiguous vertex ranges of (near-)equal vertex count.

    Parameters
    ----------
    order:
        Stream order; ``natural`` (vertex-id order) is what the real
        systems use because it preserves locality of adjacent ids.
    """

    name = "chunk-v"

    def __init__(self, *, order: str = "natural", seed: int | None = None) -> None:
        self._order = order
        self._seed = seed

    def _partition(
        self, graph: CSRGraph, num_parts: int, clock: WallClock
    ) -> tuple[PartitionAssignment, dict[str, Any]]:
        from repro.graph.stream import vertex_stream

        n = graph.num_vertices
        stream = vertex_stream(graph, self._order, rng=self._seed)
        # Position j of the stream goes to part ⌊j·k/n⌋ — equal-size slices.
        pos_part = (np.arange(n, dtype=np.int64) * num_parts // max(n, 1)).astype(np.int32)
        parts = np.empty(n, dtype=np.int32)
        parts[stream] = pos_part
        return PartitionAssignment(graph, parts, num_parts), {"order": self._order}


class ChunkEPartitioner(Partitioner):
    """Contiguous vertex ranges of (near-)equal out-arc count."""

    name = "chunk-e"

    def __init__(self, *, order: str = "natural", seed: int | None = None) -> None:
        self._order = order
        self._seed = seed

    def _partition(
        self, graph: CSRGraph, num_parts: int, clock: WallClock
    ) -> tuple[PartitionAssignment, dict[str, Any]]:
        from repro.graph.stream import vertex_stream

        n = graph.num_vertices
        stream = vertex_stream(graph, self._order, rng=self._seed)
        deg = graph.degrees[stream].astype(np.float64)
        total = deg.sum()
        if total == 0:
            # Edgeless graph: fall back to vertex chunking.
            pos_part = (np.arange(n, dtype=np.int64) * num_parts // max(n, 1)).astype(np.int32)
        else:
            # A vertex belongs to the part indicated by the arc mass
            # accumulated *before* it: "add to the current subgraph until
            # it reaches the balanced indicator" (Fig. 2b).
            cum_before = np.concatenate([[0.0], np.cumsum(deg)[:-1]])
            target = total / num_parts
            pos_part = np.minimum(
                (cum_before / target).astype(np.int32), num_parts - 1
            )
        parts = np.empty(n, dtype=np.int32)
        parts[stream] = pos_part
        return PartitionAssignment(graph, parts, num_parts), {"order": self._order}


register_partitioner("chunk-v", ChunkVPartitioner)
register_partitioner("chunk-e", ChunkEPartitioner)
