"""Serving SLO reports: canonical JSON + human-readable rendering.

A :class:`ServingReport` collects one :class:`~repro.serving.simulator.
ServingResult` summary per partitioner and serialises to a canonical
``serving-report/v1`` document — sorted keys, compact separators, pure
scalars — so two runs with the same seed produce **byte-identical**
report files. That byte-stability is the acceptance gate of the
serving layer and what lets CI diff two independent runs directly.
"""

from __future__ import annotations

import hashlib
import json

from repro.bench.report import Table
from repro.errors import ConfigurationError
from repro.serving.simulator import ServingConfig, ServingResult
from repro.serving.workload import WorkloadSpec

__all__ = ["ServingReport"]

REPORT_SCHEMA = "serving-report/v1"


class ServingReport:
    """SLO comparison across partitioners for one workload."""

    def __init__(
        self,
        spec: WorkloadSpec,
        config: ServingConfig,
        *,
        dataset: str = "",
        num_parts: int = 0,
        chaos: str = "",
    ) -> None:
        self.spec = spec
        self.config = config
        self.dataset = dataset
        self.num_parts = int(num_parts)
        self.chaos = chaos
        self.entries: dict[str, dict] = {}

    def add(self, partitioner: str, result: ServingResult) -> None:
        """Record one partitioner's serving outcome."""
        if partitioner in self.entries:
            raise ConfigurationError(f"duplicate report entry for {partitioner!r}")
        self.entries[partitioner] = result.summary()

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready document (entries keyed by partitioner name)."""
        return {
            "schema": REPORT_SCHEMA,
            "dataset": self.dataset,
            "num_parts": self.num_parts,
            "chaos": self.chaos,
            "workload": self.spec.to_dict(),
            "workload_digest": self.spec.digest(),
            "config": self.config.to_dict(),
            "config_digest": self.config.digest(),
            "entries": self.entries,
        }

    def to_json(self) -> str:
        """Canonical JSON — byte-identical for identical runs."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 of the canonical JSON."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    @classmethod
    def from_json(cls, text: str) -> "ServingReport":
        """Rehydrate a report document (schema tag required)."""
        doc = json.loads(text)
        if doc.get("schema") != REPORT_SCHEMA:
            raise ConfigurationError(
                f"unsupported report schema {doc.get('schema')!r}; "
                f"expected {REPORT_SCHEMA!r}"
            )
        spec = WorkloadSpec.from_json(json.dumps(doc["workload"]))
        config = ServingConfig.from_dict(doc["config"])
        report = cls(
            spec,
            config,
            dataset=doc.get("dataset", ""),
            num_parts=doc.get("num_parts", 0),
            chaos=doc.get("chaos", ""),
        )
        report.entries = {str(k): dict(v) for k, v in doc["entries"].items()}
        return report

    # -- rendering -----------------------------------------------------
    def table(self) -> Table:
        """SLO comparison table, rows in insertion order.

        Latency cells render ``-`` when the run completed nothing (the
        report stores ``null`` there); an availability column appears
        when any entry carries one (replicated runs).
        """
        with_avail = any("availability" in e for e in self.entries.values())
        headers = [
            "partitioner",
            "p50 ms",
            "p99 ms",
            "mean ms",
            "qps",
            "shed %",
            "hit %",
            "degraded",
        ]
        if with_avail:
            headers.insert(1, "avail %")
        table = Table(
            title=f"serving SLOs — {self.dataset or 'dataset'} × {self.num_parts} machines",
            headers=tuple(headers),
        )

        def ms(value: float | None) -> str:
            return "-" if value is None else f"{value * 1e3:.3f}"

        for name, e in self.entries.items():
            row = [
                name,
                ms(e["latency_p50"]),
                ms(e["latency_p99"]),
                ms(e["latency_mean"]),
                "-" if e["throughput"] is None else f"{e['throughput']:.0f}",
                f"{e['shed_rate'] * 100:.2f}",
                f"{e['cache_hit_rate'] * 100:.1f}",
                str(e["degraded_batches"] + e["cache_flushes"]),
            ]
            if with_avail:
                avail = e.get("availability")
                row.insert(1, "-" if avail is None else f"{avail * 100:.2f}")
            table.add_row(*row)
        return table

    def render(self) -> str:
        """Human-readable report for the CLI."""
        lines = [self.table().render()]
        lines.append(
            f"workload {self.spec.digest()[:12]}  config {self.config.digest()[:12]}"
            + (f"  chaos {self.chaos}" if self.chaos else "")
        )
        return "\n".join(lines)
