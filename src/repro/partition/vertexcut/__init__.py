"""Vertex-cut (edge) partitioners — the other family from §5.

The paper's related work splits partitioners into edge-cut (what BPart
and all its baselines are) and *vertex-cut* algorithms
[PowerGraph, HDRF, DBH, …], which "split the edge set into multiple
disjoint partitions, and cut the vertices" — every vertex incident to
edges in several parts is *replicated* there. This subpackage
implements the standard members so the two families can be compared on
the same graphs:

- :class:`~repro.partition.vertexcut.random_edge.RandomEdgePartitioner` —
  hash each edge (PowerGraph's default).
- :class:`~repro.partition.vertexcut.dbh.DBHPartitioner` — degree-based
  hashing: hash the *lower-degree* endpoint, replicating hubs (Xie et
  al., NeurIPS 2014).
- :class:`~repro.partition.vertexcut.grid.GridPartitioner` — 2-D grid
  constraint limiting each vertex to √k + √k − 1 candidate parts
  (GraphBuilder/PowerLyra style).
- :class:`~repro.partition.vertexcut.hdrf.HDRFPartitioner` — streaming
  High-Degree-Replicated-First scoring (Petroni et al., CIKM 2015).

Quality metric: the *replication factor* (average copies per vertex),
the vertex-cut analogue of the edge-cut ratio.
"""

from repro.partition.vertexcut.base import EdgePartition, EdgePartitioner, canonical_edges
from repro.partition.vertexcut.dbh import DBHPartitioner
from repro.partition.vertexcut.grid import GridPartitioner
from repro.partition.vertexcut.hdrf import HDRFPartitioner
from repro.partition.vertexcut.metrics import (
    edge_balance_bias,
    replication_factor,
    vertex_copies,
)
from repro.partition.vertexcut.random_edge import RandomEdgePartitioner

__all__ = [
    "EdgePartition",
    "EdgePartitioner",
    "canonical_edges",
    "RandomEdgePartitioner",
    "DBHPartitioner",
    "GridPartitioner",
    "HDRFPartitioner",
    "replication_factor",
    "vertex_copies",
    "edge_balance_bias",
]
