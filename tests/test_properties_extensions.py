"""Property-based tests for the extension modules."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import from_edges
from repro.graph.weights import EdgeWeights
from repro.partition import HashPartitioner
from repro.partition.refine import refine_assignment
from repro.partition.vertexcut import (
    DBHPartitioner,
    HDRFPartitioner,
    RandomEdgePartitioner,
    replication_factor,
)

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def graphs(draw, max_vertices=50, max_edges=150):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=1, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return from_edges(src, dst, n)


class TestVertexCutProperties:
    @given(graphs(), st.integers(1, 6), st.sampled_from([0, 1, 2]))
    @settings(max_examples=40, **COMMON)
    def test_edge_totality_and_replication_bounds(self, g, k, which):
        algo = [RandomEdgePartitioner(), DBHPartitioner(), HDRFPartitioner()][which]
        p = algo.partition(g, k)
        assert p.edge_counts.sum() == g.num_undirected_edges
        # a vertex with at least one edge has between 1 and min(k, deg) copies
        copies = p.copies
        deg_nonzero = g.degrees > 0
        assert (copies[deg_nonzero] >= 1).all()
        assert (copies <= np.minimum(k, np.maximum(g.degrees, 1))).all()
        if g.num_undirected_edges:
            assert 1.0 <= replication_factor(p) <= k

    @given(graphs())
    @settings(max_examples=30, **COMMON)
    def test_single_part_never_replicates(self, g):
        p = HDRFPartitioner().partition(g, 1)
        assert (p.copies[g.degrees > 0] == 1).all()


class TestWeightsProperties:
    @given(graphs(), st.floats(0.1, 10.0))
    @settings(max_examples=30, **COMMON)
    def test_uniform_weighted_degrees(self, g, w):
        ew = EdgeWeights.uniform(g, w)
        assert np.allclose(ew.weighted_degrees, w * g.degrees)

    @given(graphs(), st.integers(0, 2**31))
    @settings(max_examples=30, **COMMON)
    def test_random_weights_symmetric(self, g, seed):
        ew = EdgeWeights.random(g, rng=seed)
        assert ew.is_symmetric()


class TestRefineProperties:
    @given(graphs(), st.integers(2, 5))
    @settings(max_examples=30, **COMMON)
    def test_refine_invariants(self, g, k):
        k = min(k, g.num_vertices)
        a = HashPartitioner().partition(g, k).assignment
        r = refine_assignment(a, epsilon=0.3, rounds=2)
        # totality + conservation always hold
        assert r.vertex_counts.sum() == g.num_vertices
        assert r.edge_counts.sum() == g.num_edges
        # cut never increases
        from repro.partition.metrics import edge_cut_ratio

        assert edge_cut_ratio(g, r.parts) <= edge_cut_ratio(g, a.parts) + 1e-12


class TestTransformProperties:
    @given(graphs())
    @settings(max_examples=30, **COMMON)
    def test_component_sizes_partition_vertices(self, g):
        from repro.graph.transform import connected_components_sizes

        sizes = connected_components_sizes(g)
        assert sizes.sum() == g.num_vertices
        assert (sizes >= 1).all()

    @given(graphs(), st.integers(0, 5))
    @settings(max_examples=30, **COMMON)
    def test_kcore_is_subgraph_with_min_degree(self, g, k):
        from repro.graph.transform import kcore_subgraph

        t = kcore_subgraph(g, k)
        if t.graph.num_vertices:
            assert (t.graph.degrees >= k).all()

    @given(graphs(), st.integers(0, 2**31))
    @settings(max_examples=30, **COMMON)
    def test_relabel_preserves_degree_multiset(self, g, seed):
        from repro.graph.transform import relabel

        rng = np.random.default_rng(seed)
        t = relabel(g, rng.permutation(g.num_vertices))
        assert np.array_equal(np.sort(t.graph.degrees), np.sort(g.degrees))
