"""FaultPlan DSL — a declarative, deterministic description of faults.

A :class:`FaultPlan` lists *what goes wrong and when* during one BSP
job, in engine-superstep coordinates:

- :class:`Crash` — machine ``machine`` fails during superstep
  ``superstep`` (its work that superstep is lost and must be recovered);
- :class:`Straggler` — a transient slowdown: machine ``machine``'s
  compute is multiplied by ``factor`` for supersteps
  ``[start, start + duration)``;
- :class:`DegradedLink` — the directed link ``src → dst`` runs at
  ``bandwidth_scale`` of nominal bandwidth (and ``latency_scale`` of
  nominal latency) for a superstep window;
- :class:`CheckpointPolicy` — checkpoint every ``interval`` supersteps
  (0 = never); the *cost* of each checkpoint is derived from per-machine
  state size by :class:`~repro.cluster.faults.checkpoint.CheckpointCostModel`.

Plans are plain frozen dataclasses with a canonical JSON form
(:meth:`FaultPlan.to_json` / :meth:`FaultPlan.from_json`) and a stable
:meth:`FaultPlan.digest` that the artifact cache folds into experiment
keys — a cached fault-free run can never be replayed for a faulty
config. :meth:`FaultPlan.sample` draws a random-but-reproducible plan
from a seed via :func:`repro.utils.rng.derive_rng`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.utils.rng import derive_rng

__all__ = [
    "Crash",
    "Straggler",
    "DegradedLink",
    "CheckpointPolicy",
    "FaultPlan",
    "RECOVERY_STRATEGIES",
]

#: recognised recovery strategies (see :mod:`repro.cluster.faults.recovery`).
RECOVERY_STRATEGIES = ("restart", "redistribute")

PLAN_JSON_FORMAT = "fault-plan/v1"


@dataclass(frozen=True)
class Crash:
    """Machine ``machine`` fails during engine superstep ``superstep``."""

    machine: int
    superstep: int

    def to_dict(self) -> dict:
        return {"machine": int(self.machine), "superstep": int(self.superstep)}


@dataclass(frozen=True)
class Straggler:
    """Transient compute slowdown over a superstep window.

    ``factor`` multiplies the machine's compute seconds for supersteps
    ``start <= t < start + duration`` (2.0 = twice as slow).
    """

    machine: int
    start: int
    duration: int = 1
    factor: float = 2.0

    def active_at(self, superstep: int) -> bool:
        return self.start <= superstep < self.start + self.duration

    def to_dict(self) -> dict:
        return {
            "machine": int(self.machine),
            "start": int(self.start),
            "duration": int(self.duration),
            "factor": float(self.factor),
        }


@dataclass(frozen=True)
class DegradedLink:
    """Directed link ``src → dst`` degraded over a superstep window.

    ``duration=None`` means "until the end of the run". Bandwidth on the
    link is scaled by ``bandwidth_scale`` (< 1 = slower); the barrier
    latency paid by the two endpoints is scaled by ``latency_scale``.
    """

    src: int
    dst: int
    start: int = 0
    duration: int | None = None
    bandwidth_scale: float = 0.5
    latency_scale: float = 1.0

    def active_at(self, superstep: int) -> bool:
        if superstep < self.start:
            return False
        return self.duration is None or superstep < self.start + self.duration

    def to_dict(self) -> dict:
        return {
            "src": int(self.src),
            "dst": int(self.dst),
            "start": int(self.start),
            "duration": None if self.duration is None else int(self.duration),
            "bandwidth_scale": float(self.bandwidth_scale),
            "latency_scale": float(self.latency_scale),
        }


@dataclass(frozen=True)
class CheckpointPolicy:
    """Checkpoint cadence: every ``interval`` supersteps (0 = never)."""

    interval: int = 0

    def due_after(self, superstep: int) -> bool:
        """Whether a checkpoint follows engine superstep ``superstep``."""
        return self.interval > 0 and (superstep + 1) % self.interval == 0

    def to_dict(self) -> dict:
        return {"interval": int(self.interval)}


@dataclass(frozen=True)
class FaultPlan:
    """The full fault schedule for one run (empty by default)."""

    crashes: tuple[Crash, ...] = ()
    stragglers: tuple[Straggler, ...] = ()
    degraded_links: tuple[DegradedLink, ...] = ()
    checkpoint: CheckpointPolicy = field(default_factory=CheckpointPolicy)
    recovery: str = "redistribute"
    seed: int = 0

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if self.recovery not in RECOVERY_STRATEGIES:
            raise ConfigurationError(
                f"recovery must be one of {RECOVERY_STRATEGIES}, got {self.recovery!r}"
            )
        if self.checkpoint.interval < 0:
            raise ConfigurationError("checkpoint interval must be >= 0")
        for c in self.crashes:
            if c.superstep < 0:
                raise ConfigurationError(f"crash superstep must be >= 0, got {c.superstep}")
        seen = set()
        for c in self.crashes:
            if c.machine in seen:
                raise ConfigurationError(f"machine {c.machine} crashes more than once")
            seen.add(c.machine)
        for s in self.stragglers:
            if s.duration <= 0:
                raise ConfigurationError("straggler duration must be positive")
            if s.factor <= 0:
                raise ConfigurationError("straggler factor must be positive")
        for l in self.degraded_links:
            if l.bandwidth_scale <= 0 or l.latency_scale <= 0:
                raise ConfigurationError("link scales must be positive")
            if l.src == l.dst:
                raise ConfigurationError("degraded link endpoints must differ")

    # ------------------------------------------------------------------
    @property
    def is_zero_fault(self) -> bool:
        """True when the plan perturbs nothing (no events, no checkpoints)."""
        return (
            not self.crashes
            and not self.stragglers
            and not self.degraded_links
            and self.checkpoint.interval == 0
        )

    @property
    def needs_state(self) -> bool:
        """Whether simulating this plan requires per-machine state sizes
        (crashes or checkpoints ⇒ a graph + assignment must be bound)."""
        return bool(self.crashes) or self.checkpoint.interval > 0

    def validate_for(self, num_machines: int) -> None:
        """Check every referenced machine id against the cluster size."""
        for c in self.crashes:
            if not 0 <= c.machine < num_machines:
                raise ConfigurationError(f"crash machine {c.machine} outside cluster")
        if len(self.crashes) >= num_machines:
            raise ConfigurationError("plan crashes every machine; no survivors")
        for s in self.stragglers:
            if not 0 <= s.machine < num_machines:
                raise ConfigurationError(f"straggler machine {s.machine} outside cluster")
        for l in self.degraded_links:
            if not (0 <= l.src < num_machines and 0 <= l.dst < num_machines):
                raise ConfigurationError(f"degraded link ({l.src},{l.dst}) outside cluster")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": PLAN_JSON_FORMAT,
            "crashes": [c.to_dict() for c in self.crashes],
            "stragglers": [s.to_dict() for s in self.stragglers],
            "degraded_links": [l.to_dict() for l in self.degraded_links],
            "checkpoint": self.checkpoint.to_dict(),
            "recovery": self.recovery,
            "seed": int(self.seed),
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace) — digest input."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        fmt = payload.get("format", PLAN_JSON_FORMAT)
        if fmt != PLAN_JSON_FORMAT:
            raise ConfigurationError(f"unsupported fault-plan format {fmt!r}")
        return cls(
            crashes=tuple(
                Crash(machine=int(c["machine"]), superstep=int(c["superstep"]))
                for c in payload.get("crashes", [])
            ),
            stragglers=tuple(
                Straggler(
                    machine=int(s["machine"]),
                    start=int(s["start"]),
                    duration=int(s.get("duration", 1)),
                    factor=float(s.get("factor", 2.0)),
                )
                for s in payload.get("stragglers", [])
            ),
            degraded_links=tuple(
                DegradedLink(
                    src=int(l["src"]),
                    dst=int(l["dst"]),
                    start=int(l.get("start", 0)),
                    duration=None if l.get("duration") is None else int(l["duration"]),
                    bandwidth_scale=float(l.get("bandwidth_scale", 0.5)),
                    latency_scale=float(l.get("latency_scale", 1.0)),
                )
                for l in payload.get("degraded_links", [])
            ),
            checkpoint=CheckpointPolicy(
                interval=int(payload.get("checkpoint", {}).get("interval", 0))
            ),
            recovery=str(payload.get("recovery", "redistribute")),
            seed=int(payload.get("seed", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """SHA-256 over the canonical JSON — the cache-key half of the
        fault spec (folded into experiment digests)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def with_recovery(self, strategy: str) -> "FaultPlan":
        """The same plan under a different recovery strategy."""
        return replace(self, recovery=strategy)

    # ------------------------------------------------------------------
    @classmethod
    def sample(
        cls,
        num_machines: int,
        *,
        seed: int,
        horizon: int = 4,
        num_crashes: int = 1,
        num_stragglers: int = 1,
        num_degraded_links: int = 0,
        checkpoint_interval: int = 2,
        recovery: str = "redistribute",
        straggler_factor: float = 3.0,
    ) -> "FaultPlan":
        """Draw a reproducible random plan.

        All randomness flows from ``seed`` through
        :func:`repro.utils.rng.derive_rng`, so the same arguments always
        produce the same plan (and hence the same digest).
        """
        if num_machines <= 1:
            raise ConfigurationError("sampling a fault plan needs >= 2 machines")
        if num_crashes >= num_machines:
            raise ConfigurationError("cannot crash every machine")
        rng = derive_rng(seed, 0xFA17)
        machines = rng.permutation(num_machines)
        crashes = tuple(
            Crash(machine=int(machines[i]), superstep=int(rng.integers(1, max(2, horizon))))
            for i in range(num_crashes)
        )
        stragglers = tuple(
            Straggler(
                machine=int(rng.integers(0, num_machines)),
                start=int(rng.integers(0, max(1, horizon - 1))),
                duration=int(rng.integers(1, 3)),
                factor=float(straggler_factor),
            )
            for _ in range(num_stragglers)
        )
        links = []
        for _ in range(num_degraded_links):
            src = int(rng.integers(0, num_machines))
            dst = int(rng.integers(0, num_machines))
            if src == dst:
                dst = (dst + 1) % num_machines
            links.append(
                DegradedLink(
                    src=src,
                    dst=dst,
                    start=int(rng.integers(0, max(1, horizon - 1))),
                    duration=int(rng.integers(1, horizon + 1)),
                    bandwidth_scale=float(0.25 + 0.5 * rng.random()),
                )
            )
        return cls(
            crashes=crashes,
            stragglers=stragglers,
            degraded_links=tuple(links),
            checkpoint=CheckpointPolicy(interval=checkpoint_interval),
            recovery=recovery,
            seed=int(seed),
        )
