"""End-to-end integration tests: generate → partition → run → account.

These exercise the full pipeline the way the paper's evaluation does,
asserting the cross-module invariants that no unit test can see.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.workloads import run_app, run_walk_job
from repro.cluster import BSPCluster
from repro.engines.gemini import ConnectedComponents, GeminiEngine, PageRank
from repro.engines.knightking import DeepWalk, WalkEngine
from repro.graph import load_dataset, social_graph
from repro.partition import (
    balance_report,
    bias,
    edge_cut_ratio,
    get_partitioner,
)

PARTITIONERS = ("chunk-v", "chunk-e", "fennel", "hash", "bpart")


@pytest.fixture(scope="module")
def g():
    return load_dataset("twitter", scale=0.15, seed=5)


@pytest.fixture(scope="module")
def assignments(g):
    return {
        name: get_partitioner(name, seed=5).partition(g, 8).assignment
        for name in PARTITIONERS
    }


class TestPaperHeadlines:
    """The paper's headline claims, asserted end-to-end."""

    def test_bpart_two_dimensional_balance(self, assignments):
        rep = balance_report(assignments["bpart"])
        assert rep.vertex_bias < 0.1
        assert rep.edge_bias < 0.1

    def test_one_dimensional_schemes_skew_other_dimension(self, assignments):
        assert bias(assignments["chunk-v"].edge_counts) > 3 * bias(
            assignments["bpart"].edge_counts
        )
        assert bias(assignments["chunk-e"].vertex_counts) > 3 * bias(
            assignments["bpart"].vertex_counts
        )

    def test_bpart_cut_between_fennel_and_hash(self, g, assignments):
        cuts = {n: edge_cut_ratio(g, a.parts) for n, a in assignments.items()}
        assert cuts["fennel"] < cuts["bpart"] < cuts["hash"] + 0.01

    def test_bpart_fastest_on_walks(self, g, assignments):
        runtimes = {
            n: run_walk_job(g, a, app_name="deepwalk", walkers_per_vertex=5, seed=5).runtime
            for n, a in assignments.items()
        }
        assert runtimes["bpart"] == min(runtimes.values())

    def test_bpart_less_waiting_than_chunkers(self, g, assignments):
        ratios = {
            n: run_walk_job(g, a, app_name="deepwalk", walkers_per_vertex=5, seed=5)
            .ledger.waiting_ratio
            for n, a in assignments.items()
        }
        assert ratios["bpart"] < ratios["chunk-v"]
        assert ratios["bpart"] < ratios["chunk-e"]
        assert ratios["bpart"] < ratios["fennel"]

    def test_bpart_beats_hash_on_iteration_apps(self, g, assignments):
        t_hash = run_app("pagerank", g, assignments["hash"], seed=5).runtime
        t_bpart = run_app("pagerank", g, assignments["bpart"], seed=5).runtime
        assert t_bpart < t_hash


class TestCrossModuleConsistency:
    def test_walk_messages_bounded_by_steps(self, g, assignments):
        for name, a in assignments.items():
            res = run_walk_job(g, a, app_name="deepwalk", walkers_per_vertex=1, seed=5)
            assert res.total_messages <= res.total_steps

    def test_walk_message_rate_tracks_cut_ratio(self, g, assignments):
        """More cut edges ⇒ more transmitted walkers (approximately).

        Hash (87.5% cut) must transmit more than Fennel (lowest cut)."""
        rates = {}
        for name in ("fennel", "hash"):
            res = run_walk_job(
                g, assignments[name], app_name="deepwalk", walkers_per_vertex=2, seed=5
            )
            rates[name] = res.total_messages / res.total_steps
        assert rates["fennel"] < rates["hash"]

    def test_gemini_results_partition_invariant(self, g, assignments):
        engines = {}
        for name in ("chunk-v", "bpart"):
            eng = GeminiEngine(BSPCluster(8))
            engines[name] = eng.run(g, assignments[name], PageRank(5)).values
        assert np.allclose(engines["chunk-v"], engines["bpart"])

    def test_ledger_iterations_match_engine(self, g, assignments):
        eng = GeminiEngine(BSPCluster(8))
        res = eng.run(g, assignments["bpart"], ConnectedComponents())
        assert res.ledger.num_iterations == res.iterations

    def test_walk_compute_load_tracks_edge_counts(self, g, assignments):
        """First-iteration walker steps per machine ∝ walkers per machine;
        later iterations drift toward edge-heavy machines (the paper's
        Figure 4 mechanism)."""
        a = assignments["chunk-v"]
        res = run_walk_job(g, a, app_name="deepwalk", walkers_per_vertex=5, seed=5)
        first = res.steps_matrix[0]
        vertices = a.vertex_counts
        # walkers start uniformly: iteration-0 steps ≈ 5·|V_i| (exactly,
        # minus the few walkers stuck on zero-degree vertices)
        assert np.all(first <= 5 * vertices)
        assert first.sum() > 0.95 * 5 * vertices.sum()
        last = res.steps_matrix[-1]
        edges = a.edge_counts
        # by the last iteration the load correlates with edge mass
        assert np.corrcoef(last, edges)[0, 1] > 0.5


class TestScaleRobustness:
    @pytest.mark.parametrize("k", [3, 5, 12])
    def test_bpart_arbitrary_part_counts(self, k):
        g = social_graph(2000, 12.0, 2.2, rng=6)
        a = get_partitioner("bpart", seed=6).partition(g, k).assignment
        assert len(np.unique(a.parts)) == k
        assert bias(a.vertex_counts) < 0.2
        assert bias(a.edge_counts) < 0.2

    def test_full_pipeline_on_all_datasets(self):
        for ds in ("livejournal", "twitter", "friendster"):
            g = load_dataset(ds, scale=0.08, seed=7)
            a = get_partitioner("bpart", seed=7).partition(g, 4).assignment
            res = run_walk_job(g, a, app_name="ppr", walkers_per_vertex=1, seed=7)
            assert res.total_steps > 0
            assert res.ledger.num_iterations >= 1
