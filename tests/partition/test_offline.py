"""Unit tests for the offline comparators: multilevel and GD."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph import grid_graph, ring_graph, social_graph
from repro.partition import (
    GDPartitioner,
    HashPartitioner,
    MultilevelPartitioner,
    bias,
    edge_cut_ratio,
)


@pytest.fixture(scope="module")
def g():
    return social_graph(2500, 14.0, 2.2, rng=20)


class TestMultilevel:
    def test_vertex_balance_within_slack(self, g):
        a = MultilevelPartitioner(slack=1.05).partition(g, 8).assignment
        # bias <= slack-1 within rounding effects
        assert bias(a.vertex_counts) < 0.10

    def test_edges_left_imbalanced_on_skewed_graph(self, g):
        # the §4.2 point: offline vertex-balanced partitioners do not
        # balance edges on scale-free graphs
        a = MultilevelPartitioner().partition(g, 8).assignment
        assert bias(a.edge_counts) > 0.15

    def test_cut_below_hash_on_structured_graph(self):
        g = grid_graph(40, 40)
        ml = MultilevelPartitioner(seed=1).partition(g, 4).assignment
        h = HashPartitioner().partition(g, 4).assignment
        assert edge_cut_ratio(g, ml.parts) < edge_cut_ratio(g, h.parts) / 2

    def test_all_vertices_assigned(self, g):
        a = MultilevelPartitioner().partition(g, 6).assignment
        assert a.vertex_counts.sum() == g.num_vertices
        assert (a.vertex_counts > 0).all()

    def test_small_graph_no_coarsening(self):
        g = ring_graph(30)
        a = MultilevelPartitioner(coarsest_size=100).partition(g, 3).assignment
        assert a.vertex_counts.sum() == 30

    def test_clock_phases(self, g):
        res = MultilevelPartitioner().partition(g, 4)
        assert {"coarsen", "initial", "refine"} <= set(res.clock.segments)


class TestGD:
    def test_two_dimensional_balance(self, g):
        a = GDPartitioner(seed=1).partition(g, 8).assignment
        assert bias(a.vertex_counts) < 0.1
        assert bias(a.edge_counts) < 0.35  # looser: heuristic rounding

    def test_power_of_two_only(self, g):
        with pytest.raises(ConfigurationError):
            GDPartitioner().partition(g, 6)

    def test_bisection_exact_vertex_split(self, g):
        a = GDPartitioner(seed=1).partition(g, 2).assignment
        v = a.vertex_counts
        assert abs(int(v[0]) - int(v[1])) <= 1

    def test_cut_on_ring_better_than_random(self):
        g = ring_graph(256)
        gd = GDPartitioner(seed=3, iterations=120).partition(g, 2).assignment
        h = HashPartitioner().partition(g, 2).assignment
        assert edge_cut_ratio(g, gd.parts) < edge_cut_ratio(g, h.parts)

    def test_all_parts_populated(self, g):
        a = GDPartitioner(seed=1).partition(g, 4).assignment
        assert (a.vertex_counts > 0).all()

    def test_deterministic(self, g):
        a = GDPartitioner(seed=5).partition(g, 4).assignment
        b = GDPartitioner(seed=5).partition(g, 4).assignment
        assert np.array_equal(a.parts, b.parts)
