"""§3.3 — inter-piece edge connectivity at 64 pieces (Friendster).

Minimum pairwise arc count between the 64 weighted pieces stays far
above zero, so combining never disconnects a subgraph.
"""


def test_connectivity(run_paper_experiment):
    result = run_paper_experiment("connectivity")
    assert result.tables or result.series
