"""Record per-kernel streaming-loop timings to BENCH_hotpaths.json.

Runs the ``test_stream_partition_pass`` workload (10k-vertex social
graph, k = 8) under every registered kernel backend, best-of-N wall
clock, and appends one entry to ``BENCH_hotpaths.json`` at the repo
root. The file is the perf trajectory for the streaming hot path: each
PR that touches the kernels re-runs this script so regressions show up
as a new entry, not a silent drift.

Usage::

    PYTHONPATH=src python benchmarks/record_kernel_baseline.py
    PYTHONPATH=src python benchmarks/record_kernel_baseline.py --repeats 7
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.graph import social_graph
from repro.partition._streamcore import default_alpha, stream_partition
from repro.partition.kernels import available_kernels, get_kernel

ROOT = Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_hotpaths.json"

WORKLOAD = {
    "bench": "test_stream_partition_pass",
    "graph": "social_graph(10000, 16.0, 2.2, rng=1)",
    "num_parts": 8,
    "passes": 1,
}


def time_kernel(g, kernel: str, repeats: int) -> float:
    """Best-of-``repeats`` seconds for one full streaming pass."""
    weights = np.ones(g.num_vertices)
    alpha = default_alpha(g, 8)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        stream_partition(g, 8, vertex_weights=weights, alpha=alpha, kernel=kernel)
        best = min(best, time.perf_counter() - start)
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5, help="best-of repeat count")
    args = parser.parse_args()

    g = social_graph(10_000, 16.0, 2.2, rng=1)
    kernels = available_kernels()
    timings: dict[str, float] = {}
    for kernel in kernels:
        # Warm-up outside the timed region (first numba call compiles).
        time_kernel(g, kernel, 1)
        timings[kernel] = time_kernel(g, kernel, args.repeats)
        print(f"{kernel:12s} {timings[kernel] * 1e3:8.2f} ms")

    scalar = timings["scalar"]
    speedups = {k: scalar / t for k, t in timings.items() if k != "scalar"}
    for k, s in sorted(speedups.items()):
        print(f"{k:12s} {s:5.2f}x vs scalar")

    # Telemetry overhead on the hot loop (the tentpole's < 2% budget):
    # instrumentation records aggregates after the kernel, never inside
    # the per-vertex loop, so enabled-mode cost is a handful of series
    # lookups per streaming pass. Off/on runs are interleaved so machine
    # drift cancels instead of masquerading as overhead.
    auto = get_kernel("auto").name
    off = float("inf")
    on = float("inf")
    telemetry.reset()
    # Alternate which mode goes first in each pair: cache/frequency
    # drift then biases both modes equally instead of whichever ran
    # second, and the best-of floor is order-independent.
    for i in range(max(args.repeats * 4, 20)):
        for flag in ((False, True) if i % 2 == 0 else (True, False)):
            telemetry.set_enabled(flag)
            t = time_kernel(g, auto, 1)
            if flag:
                on = min(on, t)
            else:
                off = min(off, t)
    telemetry.set_enabled(False)
    overhead_pct = (on - off) / off * 100.0
    print(
        f"telemetry    off {off * 1e3:.2f} ms, on {on * 1e3:.2f} ms "
        f"({overhead_pct:+.2f}% on kernel={auto})"
    )

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "workload": WORKLOAD,
        "auto_resolves_to": get_kernel("auto").name,
        "repeats": args.repeats,
        "seconds": {k: round(t, 6) for k, t in timings.items()},
        "speedup_vs_scalar": {k: round(s, 2) for k, s in speedups.items()},
        "telemetry_overhead": {
            "kernel": auto,
            "off_seconds": round(off, 6),
            "on_seconds": round(on, 6),
            "overhead_pct": round(overhead_pct, 2),
        },
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    history = []
    if OUTPUT.exists():
        history = json.loads(OUTPUT.read_text(encoding="utf-8")).get("entries", [])
    history.append(entry)
    OUTPUT.write_text(
        json.dumps({"entries": history}, indent=1) + "\n", encoding="utf-8"
    )
    print(f"recorded to {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
