"""Pluggable backends for the streaming-assignment inner loop.

Importing this package registers every backend importable in the
current environment:

``scalar``
    The original per-vertex NumPy loop — the bit-exact reference.
``incremental``
    Same semantics, O(1)/vertex penalty maintenance and a
    delta-updated neighbour counter; ~4× faster at the paper's ``k``.
``buffered``
    Chunked vectorised CSR gather with exact intra-chunk fixups;
    fastest pure-NumPy backend (~5×).
``numba``
    JIT-compiled incremental loop; registered only when numba is
    installed, otherwise ``get_kernel("numba")`` falls back to
    ``incremental`` with a one-time warning and a
    ``kernels.numba_fallbacks`` telemetry increment.
``parallel``
    Worker-process chunk scoring over shared memory with exact in-order
    resolution (:mod:`repro.parallel`); honours ``jobs=``/``REPRO_JOBS``
    and degrades to ``buffered`` at ``jobs=1``.

``get_kernel("auto")`` — the default everywhere a ``kernel=`` knob is
exposed — picks ``numba`` when available and ``incremental`` otherwise;
all shipped backends produce identical assignments, so the knob trades
throughput only (see ``tests/partition/test_kernels.py``).
"""

from repro.partition.kernels.base import (
    KERNEL_CHOICES,
    KernelBackend,
    available_kernels,
    get_kernel,
    register_kernel,
    resolve_kernel_name,
)
from repro.partition.kernels import scalar as _scalar  # noqa: F401 (registers)
from repro.partition.kernels import incremental as _incremental  # noqa: F401
from repro.partition.kernels import buffered as _buffered  # noqa: F401
from repro.partition.kernels import numba_backend as _numba_backend  # noqa: F401
from repro.partition.kernels import parallel_backend as _parallel_backend  # noqa: F401
from repro.partition.kernels.numba_backend import HAVE_NUMBA

__all__ = [
    "KernelBackend",
    "KERNEL_CHOICES",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "resolve_kernel_name",
    "HAVE_NUMBA",
]
