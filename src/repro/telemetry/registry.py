"""Process-wide metrics registry: counters, gauges, histograms, timers.

One accounting system for the whole pipeline. Before this module the
repository kept three disjoint ledgers — :class:`~repro.utils.timing.WallClock`
segments inside partitioners, :class:`~repro.bench.artifacts.CacheStats`
counters inside the artifact store, and the BSP
:class:`~repro.cluster.ledger.TimingLedger` — none of which could be
read in one place. Every layer now *emits into* this registry (guarded
by the module flag in :mod:`repro.telemetry`, so the default is a
strict no-op) and the registry exports everything at once.

Metric taxonomy and the determinism contract:

- :class:`Counter` — monotonically non-decreasing totals (vertices
  streamed, cache hits, walker hops, crash events). **Deterministic**:
  the same job always produces the same values.
- :class:`Gauge` — last-write-wins level readings (per-layer combine
  bias, saturated part count). **Deterministic**.
- :class:`Histogram` — fixed-bucket distributions of *simulated* or
  structural quantities (barrier wait seconds, active-arc fractions).
  **Deterministic** — never feed wall-clock durations into one.
- :class:`TimerMetric` — accumulated **wall-clock** seconds. Explicitly
  non-deterministic; the canonical export segregates timers (and spans)
  under a ``"nondeterministic"`` key so byte-stable artifact pipelines
  can keep hashing the deterministic remainder.

Spans (:meth:`MetricsRegistry.span`) are lightweight wall-clock trace
intervals that export into the existing chrome-trace pipeline
(:mod:`repro.cluster.trace`).
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "BoundedHistogram",
    "TimerMetric",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_BUCKETS",
    "log_buckets",
    "metric_key",
]

#: format tag embedded in every snapshot; bump on layout changes.
TELEMETRY_FORMAT = "telemetry/v1"

#: default histogram upper bounds (seconds-flavoured; +inf is implicit).
DEFAULT_BUCKETS = (
    0.0001,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)


def log_buckets(lo: float, hi: float, per_decade: int = 4) -> tuple[float, ...]:
    """Fixed log-spaced bucket upper bounds covering ``[lo, hi]``.

    ``per_decade`` buckets per factor of 10, rounded to 6 significant
    digits so the bounds (and therefore every JSON export keyed on
    them) are reproducible across platforms. The result always starts
    at ``lo`` and ends at a bound ``>= hi``; +inf overflow stays
    implicit as in :class:`Histogram`.
    """
    if not (0.0 < lo < hi):
        raise ConfigurationError(
            f"log_buckets needs 0 < lo < hi, got lo={lo}, hi={hi}"
        )
    if per_decade < 1:
        raise ConfigurationError(f"per_decade must be >= 1, got {per_decade}")
    ratio = 10.0 ** (1.0 / per_decade)
    bounds: list[float] = []
    edge = float(lo)
    while True:
        bounds.append(float(f"{edge:.6g}"))
        if bounds[-1] >= hi:
            break
        edge *= ratio
    return tuple(bounds)


def metric_key(name: str, labels: tuple[tuple[str, object], ...]) -> str:
    """Canonical ``name{label="value",...}`` identity of one series."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class _Metric:
    """Shared identity plumbing for all metric kinds."""

    __slots__ = ("name", "labels")
    kind = "metric"

    def __init__(self, name: str, labels: tuple[tuple[str, object], ...]) -> None:
        self.name = name
        self.labels = labels

    @property
    def key(self) -> str:
        return metric_key(self.name, self.labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.key} = {self.as_dict()!r})"


class Counter(_Metric):
    """Monotonically non-decreasing total (int or float increments)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, name: str, labels: tuple) -> None:
        super().__init__(name, labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.key} cannot decrease (inc({amount}))"
            )
        self.value += amount

    def as_dict(self):
        return self.value


class Gauge(_Metric):
    """Last-write-wins level reading."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self, name: str, labels: tuple) -> None:
        super().__init__(name, labels)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def as_dict(self):
        return self.value


class Histogram(_Metric):
    """Fixed-bucket distribution with count/sum/min/max.

    Bucket bounds are upper edges (``le`` semantics, +inf implicit) and
    are fixed at series creation — later ``histogram()`` lookups ignore
    a differing ``buckets=`` argument, keeping the series well-defined.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "min", "max")
    kind = "histogram"

    def __init__(self, name: str, labels: tuple, buckets=DEFAULT_BUCKETS) -> None:
        super().__init__(name, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ConfigurationError(f"histogram {name} needs at least one bucket")
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +inf overflow
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def as_dict(self) -> dict:
        out = {
            "count": self.count,
            "sum": self.sum,
            "buckets": {repr(b): c for b, c in zip(self.buckets, self.bucket_counts)},
            "overflow": self.bucket_counts[-1],
        }
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        return out


class BoundedHistogram(Histogram):
    """Histogram over a *bounded*, log-spaced domain with quantile reads.

    The serving layer records latency distributions, and a latency
    distribution needs what the plain :class:`Histogram` does not give:

    - **log-spaced buckets** — tail quantiles (p99) of heavy-tailed
      latencies need resolution across decades, not linear steps;
    - **bounded memory** — the bucket list is fixed at creation from
      ``(lo, hi, per_decade)``, so recording a million observations
      costs the same as recording ten;
    - **deterministic quantiles** — :meth:`quantile` reads the bucket
      edges, a pure function of the counts, so two identical runs
      export identical values.

    Observations below ``lo`` land in the first bucket, above ``hi`` in
    the +inf overflow; ``count``/``sum``/``min``/``max`` stay exact.
    """

    __slots__ = ("lo", "hi", "per_decade")
    kind = "bounded_histogram"

    def __init__(
        self,
        name: str,
        labels: tuple,
        *,
        lo: float = 1e-5,
        hi: float = 60.0,
        per_decade: int = 4,
    ) -> None:
        super().__init__(name, labels, buckets=log_buckets(lo, hi, per_decade))
        self.lo = float(lo)
        self.hi = float(hi)
        self.per_decade = int(per_decade)

    def quantile(self, q: float) -> float:
        """Upper bucket edge containing the ``q``-quantile (0 < q <= 1).

        Returns 0.0 while empty. Observations in the overflow bucket
        report the exact maximum seen — the tail must never be clipped
        to ``hi`` silently.
        """
        if not (0.0 < q <= 1.0):
            raise ConfigurationError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            cumulative += n
            if cumulative >= rank:
                return bound
        return self.max

    def as_dict(self) -> dict:
        out = super().as_dict()
        out["lo"] = self.lo
        out["hi"] = self.hi
        out["per_decade"] = self.per_decade
        return out


class TimerMetric(_Metric):
    """Accumulated wall-clock seconds (count + total).

    The only metric kind allowed to hold wall-clock values; exported
    under the ``"nondeterministic"`` key of the canonical snapshot.
    """

    __slots__ = ("count", "seconds")
    kind = "timer"

    def __init__(self, name: str, labels: tuple) -> None:
        super().__init__(name, labels)
        self.count = 0
        self.seconds = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.seconds += float(seconds)

    def time(self) -> "_TimerContext":
        """Context manager adding the block's elapsed wall time."""
        return _TimerContext(self)

    def as_dict(self) -> dict:
        return {"count": self.count, "seconds": self.seconds}


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: TimerMetric) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._timer.add(time.perf_counter() - self._start)


class _SpanContext:
    __slots__ = ("_registry", "_name", "_args", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str, args: dict) -> None:
        self._registry = registry
        self._name = name
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_SpanContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        end = time.perf_counter()
        self._registry.add_span(
            self._name, self._start, end - self._start, **self._args
        )


_KINDS = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
    "bounded_histogram": BoundedHistogram,
    "timer": TimerMetric,
}


class MetricsRegistry:
    """Get-or-create registry of labelled metric series plus spans.

    A series is identified by ``(name, sorted labels)``; requesting the
    same identity always returns the same object, and requesting it as a
    different kind raises :class:`~repro.errors.ConfigurationError`.
    Creation is lock-protected; updates on the returned objects are
    plain attribute arithmetic (safe under CPython for the counting
    workloads here, and never on a per-vertex hot path).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    # -- creation ------------------------------------------------------
    def _series(self, cls, name: str, labels: dict, **ctor_kwargs):
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(name, key[1], **ctor_kwargs)
                    self._metrics[key] = metric
        if type(metric) is not cls:
            raise ConfigurationError(
                f"metric {metric.key!r} already registered as {metric.kind}, "
                f"requested as {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._series(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._series(Gauge, name, labels)

    def histogram(self, name: str, *, buckets=None, **labels) -> Histogram:
        if buckets is None:
            return self._series(Histogram, name, labels)
        return self._series(Histogram, name, labels, buckets=buckets)

    def bounded_histogram(
        self,
        name: str,
        *,
        lo: float = 1e-5,
        hi: float = 60.0,
        per_decade: int = 4,
        **labels,
    ) -> BoundedHistogram:
        """Log-spaced bounded histogram (latency distributions).

        Like :meth:`histogram`, the bucket layout is fixed by the first
        creation of the series; later lookups with different bounds
        return the existing series unchanged.
        """
        return self._series(
            BoundedHistogram, name, labels, lo=lo, hi=hi, per_decade=per_decade
        )

    def timer(self, name: str, **labels) -> TimerMetric:
        return self._series(TimerMetric, name, labels)

    # -- spans ---------------------------------------------------------
    def span(self, name: str, **args) -> _SpanContext:
        """Context manager recording one wall-clock trace interval."""
        return _SpanContext(self, name, args)

    def add_span(self, name: str, start: float, duration: float, **args) -> None:
        """Record a span from explicit perf-counter readings."""
        self._spans.append(
            {
                "name": name,
                "ts": float(start) - self._epoch,
                "dur": float(duration),
                "args": args,
            }
        )

    @property
    def spans(self) -> list[dict]:
        """Recorded spans (shared list; ``ts`` is seconds since reset)."""
        return self._spans

    # -- introspection -------------------------------------------------
    def metrics(self) -> list:
        """All series, sorted by canonical key."""
        return sorted(self._metrics.values(), key=lambda m: m.key)

    def snapshot(self, *, include_nondeterministic: bool = False) -> dict:
        """Canonical dict form of the registry.

        Deterministic content (counters, gauges, histograms) lives at
        the top level; wall-clock material (timers, spans) appears only
        under ``"nondeterministic"`` and only when asked for — cached
        artifacts and byte-stability checks consume the default form.
        """
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        timers: dict[str, dict] = {}
        for m in self.metrics():
            if m.kind == "counter":
                counters[m.key] = m.as_dict()
            elif m.kind == "gauge":
                gauges[m.key] = m.as_dict()
            elif m.kind in ("histogram", "bounded_histogram"):
                histograms[m.key] = m.as_dict()
            else:
                timers[m.key] = m.as_dict()
        out = {
            "format": TELEMETRY_FORMAT,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
        if include_nondeterministic:
            out["nondeterministic"] = {
                "timers": timers,
                "spans": [dict(s) for s in self._spans],
            }
        return out

    def reset(self) -> None:
        """Drop every series and span; restart the span epoch."""
        self._metrics: dict[tuple, _Metric] = {}
        self._spans: list[dict] = []
        self._epoch = time.perf_counter()


class _NullMetric:
    """Accepts every metric mutation and does nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def add(self, seconds: float) -> None:
        pass

    def time(self) -> "_NullContext":
        return _NULL_CONTEXT


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_METRIC = _NullMetric()
_NULL_CONTEXT = _NullContext()


class NullRegistry:
    """Disabled-mode stand-in: same surface, every operation a no-op.

    Returned by :func:`repro.telemetry.active` when telemetry is off,
    so instrumented code that does not bother with its own ``enabled()``
    guard still costs only a couple of attribute lookups.
    """

    def counter(self, name: str, **labels) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, **labels) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, *, buckets=None, **labels) -> _NullMetric:
        return _NULL_METRIC

    def bounded_histogram(
        self, name: str, *, lo: float = 1e-5, hi: float = 60.0, per_decade: int = 4, **labels
    ) -> _NullMetric:
        return _NULL_METRIC

    def timer(self, name: str, **labels) -> _NullMetric:
        return _NULL_METRIC

    def span(self, name: str, **args) -> _NullContext:
        return _NULL_CONTEXT

    def add_span(self, name: str, start: float, duration: float, **args) -> None:
        pass

    @property
    def spans(self) -> list[dict]:
        return []

    def metrics(self) -> list:
        return []

    def snapshot(self, *, include_nondeterministic: bool = False) -> dict:
        out = {
            "format": TELEMETRY_FORMAT,
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        if include_nondeterministic:
            out["nondeterministic"] = {"timers": {}, "spans": []}
        return out

    def reset(self) -> None:
        pass
