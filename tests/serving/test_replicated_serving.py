"""Replicated serving: failover, hedging, recovery, byte parity."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.graph import social_graph
from repro.partition.base import get_partitioner
from repro.resilience import ChaosPlan, ChaosRule, install_plan
from repro.serving import (
    SITE_HEARTBEAT_DROP,
    SITE_REPLICA_CRASH,
    ServingConfig,
    ServingReport,
    ServingSimulator,
    WorkloadSpec,
)

GOLDEN = Path(__file__).parent / "data" / "golden_serving_report.json"


@pytest.fixture(scope="module")
def graph():
    return social_graph(1500, 10.0, 2.2, rng=11)


@pytest.fixture(scope="module")
def assignment(graph):
    return get_partitioner("bpart", seed=0).partition(graph, 4).assignment


@pytest.fixture(scope="module")
def trace(graph):
    return WorkloadSpec(users=300, duration=0.5, rate=1500.0, seed=2).generate(graph)


def crash_plan(key="m1:h5"):
    return ChaosPlan(
        seed=7,
        rules=(
            ChaosRule(site=SITE_REPLICA_CRASH, kind="exception", match=key, rate=1.0),
        ),
    )


def run(assignment, trace, config, plan=None, seed=3):
    install_plan(plan)
    try:
        return ServingSimulator(assignment, config, seed=seed).run(trace)
    finally:
        install_plan(None)


class TestGoldenParity:
    """replication_factor=1 must reproduce pre-replication bytes."""

    def test_k1_report_matches_golden_bytes(self, graph, trace):
        spec = WorkloadSpec(users=300, duration=0.5, rate=1500.0, seed=2)
        report = ServingReport(
            spec, ServingConfig(), dataset="social-1500", num_parts=4
        )
        for algo in ("chunk-v", "bpart", "hash"):
            asg = get_partitioner(algo, seed=0).partition(graph, 4).assignment
            report.add(algo, ServingSimulator(asg, seed=3).run(trace))
        golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert json.loads(report.to_json()) == golden

    def test_default_config_digest_has_no_replication_block(self):
        doc = ServingConfig().to_dict()
        assert "replication" not in doc
        explicit = ServingConfig(replication_factor=1, hedge_after=0.0)
        assert explicit.digest() == ServingConfig().digest()
        assert "replication" in ServingConfig(replication_factor=2).to_dict()

    def test_k1_summary_has_no_replication_keys(self, assignment, trace):
        summary = ServingSimulator(assignment, seed=3).run(trace).summary()
        assert "availability" not in summary
        assert "replication" not in summary

    def test_config_from_dict_round_trips_replication(self):
        cfg = ServingConfig(replication_factor=3, hedge_after=0.004, dead_after=6)
        again = ServingConfig.from_dict(cfg.to_dict())
        assert again == cfg
        assert ServingConfig.from_dict(ServingConfig().to_dict()) == ServingConfig()


class TestFailover:
    def test_k2_availability_beats_k1_under_crash(self, assignment, trace):
        k1 = run(assignment, trace, ServingConfig(replication_factor=1), crash_plan())
        k2 = run(assignment, trace, ServingConfig(replication_factor=2), crash_plan())
        assert k1.crashes == k2.crashes == 1
        assert k2.availability() > k1.availability()
        assert k1.unavailable_shed > 0  # no surviving replica at K=1
        assert k2.unavailable_shed == 0
        assert int(k2.shed.sum()) < int(k1.shed.sum())

    def test_crash_walks_the_ledger_and_restores_factor(self, assignment, trace):
        result = run(
            assignment, trace, ServingConfig(replication_factor=2), crash_plan()
        )
        assert result.health_transitions == {
            "dead->recovering": 1,
            "healthy->suspect": 1,
            "recovering->healthy": 1,
            "suspect->dead": 1,
        }
        assert result.restored
        assert len(result.recovery_seconds) == 1
        assert result.recovery_seconds[0] > 0
        assert result.rereplication_bytes > 0
        assert result.rereplication_transfers > 0
        # ledger rows are time-ordered [time, machine, old, new, cause]
        times = [row[0] for row in result.health_ledger]
        assert times == sorted(times)
        assert all(row[1] == 1 for row in result.health_ledger)

    def test_crashed_machine_serves_nothing_while_down(self, assignment, trace):
        result = run(
            assignment, trace, ServingConfig(replication_factor=2), crash_plan()
        )
        crash_time = 5 * ServingConfig().heartbeat_interval  # key m1:h5
        healed = [row[0] for row in result.health_ledger if row[3] == "healthy"]
        assert len(healed) == 1
        done = ~result.shed & (result.machine_of_query == 1)
        completion = trace.times + result.latency
        downtime = done & (completion > crash_time) & (completion < healed[0])
        assert done.any()  # machine 1 did serve before the crash
        assert not downtime.any()  # and nothing while it was down
        assert result.redispatched > 0  # the stranded queries moved

    def test_same_seed_is_byte_identical(self, assignment, trace):
        cfg = ServingConfig(replication_factor=2)
        a = run(assignment, trace, cfg, crash_plan())
        b = run(assignment, trace, cfg, crash_plan())
        assert json.dumps(a.summary(), sort_keys=True) == json.dumps(
            b.summary(), sort_keys=True
        )
        assert a.health_ledger == b.health_ledger
        np.testing.assert_array_equal(a.latency, b.latency)
        np.testing.assert_array_equal(a.machine_of_query, b.machine_of_query)

    def test_plan_digest_recorded(self, assignment, trace):
        result = run(assignment, trace, ServingConfig(replication_factor=2))
        assert len(result.plan_digest) == 64
        k3 = run(assignment, trace, ServingConfig(replication_factor=3))
        assert k3.plan_digest != result.plan_digest


class TestHedging:
    def test_hedge_bounds_the_failover_spike(self, assignment, trace):
        plain = run(
            assignment, trace, ServingConfig(replication_factor=2), crash_plan()
        )
        hedged = run(
            assignment,
            trace,
            ServingConfig(replication_factor=2, hedge_after=0.005),
            crash_plan(),
        )
        assert hedged.hedges > 0
        assert hedged.hedge_wins > 0
        # the detection-gap spike is cut to roughly the hedge budget
        assert float(hedged.completed_latencies()[-1]) < float(
            plain.completed_latencies()[-1]
        )

    def test_hedging_alone_triggers_replicated_loop(self, assignment, trace):
        result = run(
            assignment, trace, ServingConfig(replication_factor=2, hedge_after=0.001)
        )
        assert result.replicated
        assert result.completed == result.num_queries


class TestHeartbeatDrops:
    def test_drops_cause_false_positive_fencing_and_heal(self, assignment, trace):
        plan = ChaosPlan(
            seed=7,
            rules=(
                ChaosRule(
                    site=SITE_HEARTBEAT_DROP, kind="exception", match="m2:h", rate=0.7
                ),
            ),
        )
        result = run(assignment, trace, ServingConfig(replication_factor=2), plan)
        assert result.heartbeat_drops > 0
        assert result.crashes == 0  # nothing actually died
        assert result.health_transitions.get("healthy->suspect", 0) > 0
        # single-beat recovery and/or full fencing cycles, all healed
        assert result.restored

    def test_chaos_at_new_sites_engages_replicated_loop_even_at_k1(
        self, assignment, trace
    ):
        result = run(assignment, trace, ServingConfig(), crash_plan())
        assert result.replicated
        assert result.replication_factor == 1
        assert result.crashes == 1


class TestEmptyCompletionGuards:
    """A 100%-shed drill serialises null, not a fake zero latency."""

    def _all_shed_result(self, assignment, trace):
        result = ServingSimulator(assignment, seed=3).run(trace)
        result.shed = np.ones_like(result.shed)
        result.latency = np.full_like(result.latency, np.nan)
        return result

    def test_quantiles_and_mean_are_nan(self, assignment, trace):
        result = self._all_shed_result(assignment, trace)
        assert np.isnan(result.latency_quantile(0.99))
        assert np.isnan(result.mean_latency())
        assert np.isnan(result.throughput)
        assert result.completed == 0

    def test_summary_serialises_null(self, assignment, trace):
        result = self._all_shed_result(assignment, trace)
        summary = result.summary()
        for key in (
            "latency_p50",
            "latency_p99",
            "latency_mean",
            "latency_max",
            "throughput",
        ):
            assert summary[key] is None
        text = json.dumps(summary, sort_keys=True)
        assert "NaN" not in text and "null" in text
        assert json.loads(text)["latency_p99"] is None

    def test_report_renders_dashes_for_null(self, assignment, trace):
        spec = WorkloadSpec(users=300, duration=0.5, rate=1500.0, seed=2)
        report = ServingReport(spec, ServingConfig(), dataset="x", num_parts=4)
        report.add("bpart", self._all_shed_result(assignment, trace))
        text = report.table().render()
        assert "-" in text
