"""Buffered streaming kernel: chunked vectorised overlap gather.

Processes the stream in chunks of ``B`` vertices (Chhabra et al.'s
buffered-streaming idea, 2024). For each chunk, the neighbour-part
overlap of *all* chunk members is computed with one vectorised CSR
gather plus a single flat ``bincount`` over ``chunk_pos·k + part``
keys — amortising the NumPy dispatch overhead the scalar loop pays per
vertex across ``B`` vertices.

Chunk members are then resolved sequentially. The gathered overlap is a
snapshot from the chunk boundary, so it is blind to assignments made
*inside* the chunk; left uncorrected this costs real quality (≈ 25–35 %
worse cuts on the 10k-vertex social micro-bench, because early chunks
place the hubs with no signal). Instead of accepting the approximation,
the resolver patches the snapshot exactly: intra-chunk edges (a
``B/n``-fraction of all edges) are extracted from the same gather, and
each vertex pulls the *current* part of its already-resolved
chunk-mates before scoring. That restores the scalar reference's
semantics bit-for-bit — the sequence of (count, penalty) pairs fed to
the argmax is identical — while keeping the heavy gather vectorised.
The ``kernel="buffered"`` knob therefore changes throughput only, never
assignments; the parity suite holds it to the same standard as
``incremental``.
"""

from __future__ import annotations

import numpy as np

from repro.partition.kernels.base import KernelBackend, pow_like_numpy, register_kernel
from repro.partition.kernels.incremental import single_incremental

__all__ = ["BACKEND", "DEFAULT_CHUNK"]

#: Chunk size ``B``. Large enough to amortise the gather's fixed cost,
#: small enough that the ``B·k`` overlap table stays cache-resident.
DEFAULT_CHUNK = 256

_NEG_INF = float("-inf")


def _dense_gather(indptr, indices):
    """Adjacency gather over in-RAM CSR arrays: the native path for
    :class:`~repro.graph.csr.CSRGraph`. Sharded graphs supply their own
    shard-grouped equivalent (``ShardedCSRGraph.gather_block``)."""

    def gather(chunk):
        lens = indptr[chunk + 1] - indptr[chunk]
        total = int(lens.sum())
        if total == 0:
            return lens, indices[:0]
        first = np.concatenate(([0], np.cumsum(lens)[:-1]))
        slots = np.repeat(indptr[chunk] - first, lens) + np.arange(total)
        return lens, indices[slots]

    return gather


def _chunk_overlap(gather, parts, posmap, chunk, k):
    """Vectorised snapshot overlap + intra-chunk pull lists for one chunk.

    ``gather(chunk)`` returns ``(lens, nbrs)`` — per-vertex degrees and
    the concatenated neighbour lists in chunk order; everything else is
    representation-agnostic. Returns ``(overlap, pulls, num_assigned)``
    where ``overlap[i][p]`` counts ``chunk[i]``'s neighbours assigned to
    part ``p`` as of the chunk boundary, ``pulls[i]`` lists earlier
    chunk positions adjacent to ``i`` (or ``None``), and
    ``num_assigned[i]`` is the row sum.
    """
    B = chunk.size
    lens, nbrs = gather(chunk)
    total = int(np.asarray(lens).sum())
    if total == 0:
        return [[0] * k for _ in range(B)], [None] * B, [0] * B
    owner = np.repeat(np.arange(B, dtype=np.int64), lens)
    nbr_parts = parts[nbrs]
    valid = nbr_parts >= 0
    flat = np.bincount(owner[valid] * k + nbr_parts[valid], minlength=B * k)
    table = flat.reshape(B, k)
    num_assigned = table.sum(axis=1).tolist()
    overlap = table.tolist()

    pulls: list[list[int] | None] = [None] * B
    nbr_pos = posmap[nbrs]
    intra = np.nonzero(nbr_pos >= 0)[0]
    if intra.size:
        for i, j in zip(owner[intra].tolist(), nbr_pos[intra].tolist()):
            if j < i:  # only already-resolved chunk-mates can diverge
                if pulls[i] is None:
                    pulls[i] = [j]
                else:
                    pulls[i].append(j)
    return overlap, pulls, num_assigned


def fennel_buffered(
    indptr: np.ndarray,
    indices: np.ndarray,
    stream: np.ndarray,
    parts: np.ndarray,
    loads: np.ndarray,
    weights: np.ndarray,
    *,
    alpha: float,
    gamma: float,
    capacity: float,
    passes: int,
    chunk_size: int = DEFAULT_CHUNK,
    gather=None,
) -> None:
    if gather is None:
        gather = _dense_gather(indptr, indices)
    n = parts.shape[0]
    k = loads.shape[0]
    gm1 = gamma - 1.0
    ag = alpha * gamma
    weights_l = weights.tolist()
    parts_l = parts.tolist()
    loads_l = loads.tolist()
    penalty = [ag * pow_like_numpy(x, gm1) for x in loads_l]
    saturated = [x >= capacity for x in loads_l]
    num_saturated = sum(saturated)
    posmap = np.full(n, -1, dtype=np.int64)

    for _pass in range(passes):
        for begin in range(0, n, chunk_size):
            chunk = stream[begin : begin + chunk_size]
            B = chunk.size
            posmap[chunk] = np.arange(B)
            overlap, pulls, _ = _chunk_overlap(gather, parts, posmap, chunk, k)
            posmap[chunk] = -1
            chunk_l = chunk.tolist()
            snapshot = [parts_l[v] for v in chunk_l]
            for i in range(B):
                v = chunk_l[i]
                current = parts_l[v]
                if current >= 0:
                    # Re-streaming: release v's load before re-scoring.
                    released = loads_l[current] - weights_l[v]
                    loads_l[current] = released
                    penalty[current] = ag * pow_like_numpy(released, gm1)
                    if saturated[current] and released < capacity:
                        saturated[current] = False
                        num_saturated -= 1
                row = overlap[i]
                pull = pulls[i]
                if pull is not None:
                    # Patch the snapshot with chunk-mates resolved since
                    # the chunk boundary — this is what makes the chunked
                    # resolution exact rather than approximate.
                    for j in pull:
                        old = snapshot[j]
                        new = parts_l[chunk_l[j]]
                        if old != new:
                            if old >= 0:
                                row[old] -= 1
                            row[new] += 1
                if num_saturated == k:
                    choice = 0
                    best_load = loads_l[0]
                    for p in range(1, k):
                        if loads_l[p] < best_load:
                            best_load = loads_l[p]
                            choice = p
                else:
                    choice = -1
                    best = _NEG_INF
                    for p in range(k):
                        if saturated[p]:
                            continue
                        s = row[p] - penalty[p]
                        if s > best:
                            best = s
                            choice = p
                parts_l[v] = choice
                grown = loads_l[choice] + weights_l[v]
                loads_l[choice] = grown
                penalty[choice] = ag * pow_like_numpy(grown, gm1)
                if not saturated[choice] and grown >= capacity:
                    saturated[choice] = True
                    num_saturated += 1
            parts[chunk] = np.fromiter(
                (parts_l[v] for v in chunk_l), dtype=parts.dtype, count=B
            )

    loads[:] = loads_l


def ldg_buffered(
    indptr: np.ndarray,
    indices: np.ndarray,
    stream: np.ndarray,
    parts: np.ndarray,
    loads: np.ndarray,
    *,
    capacity: float,
    chunk_size: int = DEFAULT_CHUNK,
    gather=None,
) -> None:
    if gather is None:
        gather = _dense_gather(indptr, indices)
    n = parts.shape[0]
    k = loads.shape[0]
    parts_l = parts.tolist()
    loads_l = loads.tolist()
    weight = [1.0 - x / capacity for x in loads_l]
    saturated = [x >= capacity for x in loads_l]
    num_saturated = sum(saturated)
    posmap = np.full(n, -1, dtype=np.int64)

    for begin in range(0, n, chunk_size):
        chunk = stream[begin : begin + chunk_size]
        B = chunk.size
        posmap[chunk] = np.arange(B)
        overlap, pulls, num_assigned = _chunk_overlap(gather, parts, posmap, chunk, k)
        posmap[chunk] = -1
        chunk_l = chunk.tolist()
        for i in range(B):
            v = chunk_l[i]
            row = overlap[i]
            assigned = num_assigned[i]
            pull = pulls[i]
            if pull is not None:
                for j in pull:
                    # LDG is single-pass: chunk-mates were unassigned at
                    # the snapshot, so every pull is a pure addition.
                    row[parts_l[chunk_l[j]]] += 1
                    assigned += 1
            if num_saturated == k:
                choice = 0
                best_load = loads_l[0]
                for p in range(1, k):
                    if loads_l[p] < best_load:
                        best_load = loads_l[p]
                        choice = p
            else:
                choice = -1
                best = _NEG_INF
                if assigned:
                    for p in range(k):
                        if saturated[p]:
                            continue
                        s = row[p] * weight[p]
                        if s > best:
                            best = s
                            choice = p
                else:
                    for p in range(k):  # empty overlap → fill least loaded
                        if saturated[p]:
                            continue
                        if weight[p] > best:
                            best = weight[p]
                            choice = p
            parts_l[v] = choice
            grown = loads_l[choice] + 1.0
            loads_l[choice] = grown
            weight[choice] = 1.0 - grown / capacity
            if not saturated[choice] and grown >= capacity:
                saturated[choice] = True
                num_saturated += 1
        parts[chunk] = np.fromiter(
            (parts_l[v] for v in chunk_l), dtype=parts.dtype, count=B
        )

    loads[:] = loads_l


BACKEND = KernelBackend(
    name="buffered",
    fennel=fennel_buffered,
    ldg=ldg_buffered,
    single=single_incremental,
    exact=True,
    description=f"chunked CSR gather + flat bincount (B={DEFAULT_CHUNK}), exact fixups",
)
register_kernel(BACKEND)
