"""Experiment registry and runner.

Every table and figure of the paper has one experiment module under
:mod:`repro.bench.experiments`. Each registers a function taking an
:class:`ExperimentConfig` and returning an :class:`ExperimentResult`
holding rendered tables/series. The CLI (``python -m repro``) and the
pytest benchmarks both go through :func:`run_experiment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bench.report import BarChart, Series, Table
from repro.errors import ConfigurationError

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "register_experiment",
    "run_experiment",
    "available_experiments",
    "experiment_description",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments.

    Attributes
    ----------
    scale: dataset scale multiplier (1.0 ≈ tens of thousands of
           vertices; raise it when more runtime is acceptable).
    seed:  experiment seed — drives graph generation and walks.
    """

    scale: float = 1.0
    seed: int = 1


@dataclass
class ExperimentResult:
    """Rendered output of one experiment."""

    experiment_id: str
    title: str
    tables: list[Table] = field(default_factory=list)
    series: list[Series] = field(default_factory=list)
    charts: list[BarChart] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serialisable form: rendered blocks plus the raw data
        (tuple keys become '/'-joined strings)."""

        def _key(k):
            return "/".join(str(x) for x in k) if isinstance(k, tuple) else str(k)

        def _val(v):
            if hasattr(v, "tolist"):
                return v.tolist()
            if isinstance(v, tuple):
                return list(v)
            return v

        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "tables": [t.render() for t in self.tables],
            "charts": [c.render() for c in self.charts],
            "series": [s.render() for s in self.series],
            "notes": list(self.notes),
            "data": {_key(k): _val(v) for k, v in self.data.items()},
        }

    def render(self) -> str:
        parts = [f"=== {self.experiment_id}: {self.title} ==="]
        for t in self.tables:
            parts.append(t.render())
        for c in self.charts:
            parts.append(c.render())
        for s in self.series:
            parts.append(s.render())
        for n in self.notes:
            parts.append(f"note: {n}")
        return "\n\n".join(parts)


_REGISTRY: dict[str, tuple[str, Callable[[ExperimentConfig], ExperimentResult]]] = {}


def register_experiment(
    experiment_id: str, title: str
) -> Callable[[Callable[[ExperimentConfig], ExperimentResult]], Callable]:
    """Decorator registering an experiment under ``experiment_id``."""

    def deco(fn: Callable[[ExperimentConfig], ExperimentResult]) -> Callable:
        _REGISTRY[experiment_id] = (title, fn)
        return fn

    return deco


def run_experiment(
    experiment_id: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """Run a registered experiment by id (e.g. ``"fig10"``)."""
    _ensure_loaded()
    if experiment_id not in _REGISTRY:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: {available_experiments()}"
        )
    _, fn = _REGISTRY[experiment_id]
    return fn(config if config is not None else ExperimentConfig())


def available_experiments() -> list[str]:
    """Sorted experiment ids."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def experiment_description(experiment_id: str) -> str:
    _ensure_loaded()
    return _REGISTRY[experiment_id][0]


def _ensure_loaded() -> None:
    # Experiment modules self-register on import.
    import repro.bench.experiments  # noqa: F401
