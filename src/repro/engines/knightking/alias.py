"""Alias-method sampling (Walker 1977).

KnightKing's static-transition walks sample weighted neighbours in O(1)
via alias tables built per vertex at preprocessing time.
:class:`AliasTable` is the single-distribution primitive;
:class:`VertexAliasIndex` packs one table per vertex into two flat
CSR-aligned arrays so a whole walker batch samples weighted neighbours
with a handful of vectorised operations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.utils.rng import as_rng

__all__ = ["AliasTable", "VertexAliasIndex"]


@dataclass(frozen=True)
class AliasTable:
    """O(1) categorical sampler built in O(n).

    Attributes
    ----------
    prob:  per-bucket acceptance probability.
    alias: per-bucket fallback category.
    """

    prob: np.ndarray
    alias: np.ndarray

    @classmethod
    def build(cls, weights) -> "AliasTable":
        """Construct from non-negative weights (need not be normalised)."""
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise ConfigurationError("alias table needs a non-empty 1-D weight array")
        if (w < 0).any():
            raise ConfigurationError("alias weights must be non-negative")
        total = w.sum()
        if total == 0:
            raise ConfigurationError("alias weights must not all be zero")
        n = w.size
        scaled = w * (n / total)
        prob = np.ones(n)
        alias = np.arange(n)
        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = scaled[l] - (1.0 - scaled[s])
            (small if scaled[l] < 1.0 else large).append(l)
        # Leftovers are exactly 1.0 up to float error.
        for i in small + large:
            prob[i] = 1.0
        return cls(prob=prob, alias=alias)

    def sample(self, size: int, rng=None) -> np.ndarray:
        """Draw ``size`` category ids."""
        rng = as_rng(rng)
        n = self.prob.size
        buckets = rng.integers(0, n, size=size)
        accept = rng.random(size) < self.prob[buckets]
        return np.where(accept, buckets, self.alias[buckets])


class VertexAliasIndex:
    """Per-vertex alias tables over a weighted graph, flattened to two
    CSR-aligned arrays.

    ``prob[s]`` and ``alias[s]`` describe the alias bucket of slot ``s``
    (``graph.indptr[v] <= s < graph.indptr[v+1]`` for vertex ``v``);
    ``alias`` holds *absolute* slot ids so sampling needs no per-vertex
    offset arithmetic. Build cost is O(m); KnightKing does exactly this
    preprocessing for its static-transition walks.
    """

    __slots__ = ("graph", "prob", "alias")

    def __init__(self, graph: CSRGraph, prob: np.ndarray, alias: np.ndarray) -> None:
        self.graph = graph
        self.prob = prob
        self.alias = alias

    @classmethod
    def build(cls, graph: CSRGraph, weights) -> "VertexAliasIndex":
        """Build from an :class:`~repro.graph.weights.EdgeWeights` (or a
        raw slot-aligned weight array)."""
        values = weights.values if hasattr(weights, "values") else np.asarray(weights, dtype=np.float64)
        if values.shape != (graph.num_edges,):
            raise ConfigurationError(
                f"weights length {values.shape} != num arcs {graph.num_edges}"
            )
        prob = np.ones(graph.num_edges)
        alias = np.arange(graph.num_edges, dtype=np.int64)
        indptr = graph.indptr
        for v in range(graph.num_vertices):
            s, e = int(indptr[v]), int(indptr[v + 1])
            if e - s < 2:
                continue
            w = values[s:e]
            total = w.sum()
            if total <= 0:
                continue  # all-zero weights: sampling falls back to uniform
            table = AliasTable.build(w)
            prob[s:e] = table.prob
            alias[s:e] = table.alias + s
        return cls(graph, prob, alias)

    def sample(self, positions: np.ndarray, rng) -> tuple[np.ndarray, np.ndarray]:
        """Sample one weighted out-neighbour per walker.

        Returns ``(targets, dead_end)`` with the same contract as
        :func:`~repro.engines.knightking.transition.uniform_neighbor`.
        """
        rng = as_rng(rng)
        pos = np.asarray(positions, dtype=np.int64)
        graph = self.graph
        deg = graph.degrees[pos]
        dead = deg == 0
        offsets = (rng.random(pos.size) * deg).astype(np.int64)
        slots = graph.indptr[pos] + np.minimum(offsets, np.maximum(deg - 1, 0))
        slots[dead] = 0
        accept = rng.random(pos.size) < self.prob[slots]
        chosen = np.where(accept, slots, self.alias[slots])
        targets = graph.take_arcs(chosen).astype(np.int64) if graph.num_edges else pos.copy()
        targets[dead] = pos[dead]
        return targets, dead
