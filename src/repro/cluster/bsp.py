"""BSP cluster façade.

:class:`BSPCluster` binds a machine count, a :class:`CostModel` and a
:class:`NetworkModel`, and owns the run's :class:`TimingLedger` plus the
cumulative message count. Engines drive it superstep by superstep::

    cluster = BSPCluster(num_machines=8)
    cluster.begin_run()
    for each superstep:
        cluster.superstep(steps=..., edges=..., vertices=..., traffic=tm)
    ledger = cluster.ledger

The cluster also maps vertices to machines: machine ``i`` hosts the
vertices of part ``i``, i.e. partitions and machines are in one-to-one
correspondence as in Gemini/KnightKing.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cost import CostModel
from repro.cluster.ledger import TimingLedger
from repro.cluster.messages import TrafficMatrix
from repro.cluster.network import NetworkModel
from repro.errors import SimulationError

__all__ = ["BSPCluster"]


class BSPCluster:
    """A simulated cluster of ``num_machines`` identical machines."""

    def __init__(
        self,
        num_machines: int,
        *,
        cost_model: CostModel | None = None,
        network: NetworkModel | None = None,
        overlap: bool = False,
    ) -> None:
        if num_machines <= 0:
            raise SimulationError(f"num_machines must be positive, got {num_machines}")
        self._num_machines = int(num_machines)
        self._cost = cost_model if cost_model is not None else CostModel()
        self._network = network if network is not None else NetworkModel()
        self._overlap = bool(overlap)
        self._ledger: TimingLedger | None = None
        self._total_messages = 0

    # ------------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        return self._num_machines

    @property
    def cost_model(self) -> CostModel:
        return self._cost

    @property
    def network(self) -> NetworkModel:
        return self._network

    @property
    def ledger(self) -> TimingLedger:
        """The current (or last) run's ledger."""
        if self._ledger is None:
            raise SimulationError("no run started; call begin_run() first")
        return self._ledger

    @property
    def total_messages(self) -> int:
        """Cross-machine messages accumulated this run (Figure 5b)."""
        return self._total_messages

    # ------------------------------------------------------------------
    def begin_run(self) -> TimingLedger:
        """Reset the ledger and message counter for a new job."""
        self._ledger = TimingLedger(self._num_machines, overlap=self._overlap)
        self._total_messages = 0
        return self._ledger

    def superstep(
        self,
        *,
        steps: np.ndarray | None = None,
        edges: np.ndarray | None = None,
        vertices: np.ndarray | None = None,
        traffic: TrafficMatrix | None = None,
    ) -> None:
        """Record one BSP superstep.

        Parameters
        ----------
        steps, edges, vertices:
            Per-machine work counts (length-``M`` arrays; ``None`` = 0).
        traffic:
            Cross-machine messages of this superstep (``None`` = silent
            superstep, only barrier latency).
        """
        if self._ledger is None:
            raise SimulationError("no run started; call begin_run() first")
        m = self._num_machines
        zero = np.zeros(m)
        compute = self._cost.compute_seconds(
            steps=zero if steps is None else steps,
            edges=zero if edges is None else edges,
            vertices=zero if vertices is None else vertices,
        )
        if traffic is None:
            traffic = TrafficMatrix(m)
        elif traffic.num_machines != m:
            raise SimulationError("traffic matrix size != cluster size")
        comm = self._network.comm_seconds(traffic.sent, traffic.received)
        self._ledger.record(np.asarray(compute, dtype=np.float64), comm)
        self._total_messages += traffic.total

    def __repr__(self) -> str:
        return f"BSPCluster(machines={self._num_machines})"
