"""Extension ablations — re-streaming passes, comm/compute overlap, and
heterogeneous (straggler) machines.

System-level design sweeps beyond the paper's evaluation; see
DESIGN.md's ablation index.
"""


def test_sysablation(run_paper_experiment):
    result = run_paper_experiment("sysablation")
    assert result.tables or result.series
