"""GD: 2-D balanced bisection via projected gradient descent.

The paper's related-work section cites GD (Avdiukhin, Pupyrev &
Yaroslavtsev, VLDB 2019) as the other scheme achieving two-dimensional
balance — at the cost of being "very time-consuming and only partition
a graph into power of two subgraphs". This module implements that
family as an extension baseline so the trade-off can be measured:

- Relax the bisection indicator to ``x ∈ [−1, 1]^n`` and minimise the
  quadratic cut ``½·xᵀLx`` by gradient descent (sparse mat-vec via
  SciPy).
- After every step, project onto the intersection of the two balance
  hyperplanes ``Σ x_i = 0`` (vertices) and ``Σ d_i x_i = 0`` (edges),
  then clip to the box (alternating projections).
- Round by sweeping vertices in ``x`` order into the first half, then
  run a degree-aware swap repair to tighten edge balance.
- Recurse for ``k = 2^t`` parts.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.partition.assignment import PartitionAssignment
from repro.partition.base import Partitioner, register_partitioner
from repro.utils.rng import as_rng
from repro.utils.timing import WallClock
from repro.utils.validation import check_positive

__all__ = ["GDPartitioner"]


def _project_balance(x: np.ndarray, d: np.ndarray, rounds: int = 4) -> np.ndarray:
    """Alternating projection onto {Σx=0, Σdx=0} ∩ [−1, 1]^n.

    The two hyperplane normals (1 and d) are orthogonalised once; each
    round removes both components then clips to the box.
    """
    n = x.size
    ones = np.full(n, 1.0 / np.sqrt(n))
    d2 = d - d.dot(ones) * ones
    norm = np.linalg.norm(d2)
    d2 = d2 / norm if norm > 0 else None
    for _ in range(rounds):
        x = x - x.dot(ones) * ones
        if d2 is not None:
            x = x - x.dot(d2) * d2
        np.clip(x, -1.0, 1.0, out=x)
    return x


def _bisect(
    adj: sp.csr_matrix,
    degrees: np.ndarray,
    rng,
    *,
    iterations: int,
    lr: float,
) -> np.ndarray:
    """One 2-D balanced bisection; returns a boolean side mask."""
    n = adj.shape[0]
    if n == 1:
        return np.zeros(1, dtype=bool)
    d = degrees.astype(np.float64)
    x = _project_balance(rng.uniform(-0.5, 0.5, size=n), d)
    for _ in range(iterations):
        grad = d * x - adj.dot(x)  # ∇(½ xᵀLx) = Lx
        gnorm = np.linalg.norm(grad)
        if gnorm == 0:
            break
        # Descend on −cut: we *minimise* cut, so step along −grad.
        x = _project_balance(x - lr * grad / gnorm * np.sqrt(n), d)

    order = np.argsort(-x, kind="stable")
    side0 = np.zeros(n, dtype=bool)
    side0[order[: n // 2]] = True  # exact vertex balance

    # Degree-aware swap repair: move edge mass across the median without
    # touching vertex counts.
    e_target = d.sum() / 2.0
    e0 = d[side0].sum()
    idx0 = order[: n // 2][::-1]  # part-0 vertices nearest the boundary first
    idx1 = order[n // 2 :]
    i = j = 0
    max_swaps = max(16, n // 8)
    swaps = 0
    while abs(e0 - e_target) > max(1.0, 0.01 * e_target) and swaps < max_swaps:
        if e0 > e_target:
            # Need to export degree from side 0: swap a heavy 0-vertex
            # with a light 1-vertex.
            while i < idx0.size and j < idx1.size and d[idx0[i]] <= d[idx1[j]]:
                i += 1
            if i >= idx0.size or j >= idx1.size:
                break
            u, v = idx0[i], idx1[j]
        else:
            while i < idx0.size and j < idx1.size and d[idx0[i]] >= d[idx1[j]]:
                i += 1
            if i >= idx0.size or j >= idx1.size:
                break
            u, v = idx0[i], idx1[j]
        side0[u], side0[v] = False, True
        e0 += d[v] - d[u]
        i += 1
        j += 1
        swaps += 1
    return side0


class GDPartitioner(Partitioner):
    """Recursive projected-gradient 2-D balanced bisection.

    Parameters
    ----------
    iterations: gradient steps per bisection.
    lr:         normalised step size.

    Raises
    ------
    ConfigurationError
        If ``num_parts`` is not a power of two (the method's structural
        limitation, which the paper calls out).
    """

    name = "gd"

    def __init__(self, *, iterations: int = 60, lr: float = 0.05, seed: int = 0) -> None:
        check_positive("iterations", iterations)
        check_positive("lr", lr)
        self._iterations = int(iterations)
        self._lr = float(lr)
        self._seed = seed

    def _partition(
        self, graph: CSRGraph, num_parts: int, clock: WallClock
    ) -> tuple[PartitionAssignment, dict[str, Any]]:
        if num_parts & (num_parts - 1):
            raise ConfigurationError(
                f"GD supports only power-of-two part counts, got {num_parts}"
            )
        rng = as_rng(self._seed)
        n = graph.num_vertices
        adj = sp.csr_matrix(
            (np.ones(graph.num_edges), graph.indices, graph.indptr), shape=(n, n)
        )
        degrees = graph.degrees.astype(np.float64)
        parts = np.zeros(n, dtype=np.int32)

        def recurse(vertex_ids: np.ndarray, k: int, base: int) -> None:
            if k == 1 or vertex_ids.size <= 1:
                parts[vertex_ids] = base
                return
            sub = adj[vertex_ids][:, vertex_ids].tocsr()
            side0 = _bisect(
                sub, degrees[vertex_ids], rng, iterations=self._iterations, lr=self._lr
            )
            recurse(vertex_ids[side0], k // 2, base)
            recurse(vertex_ids[~side0], k // 2, base + k // 2)

        with clock.measure("bisect"):
            recurse(np.arange(n), num_parts, 0)
        return PartitionAssignment(graph, parts, num_parts), {"iterations": self._iterations}


register_partitioner("gd", GDPartitioner)
