"""Random-walk applications (the paper's five, §4.1)."""

from repro.engines.knightking.apps.base import WalkApp
from repro.engines.knightking.apps.deepwalk import DeepWalk
from repro.engines.knightking.apps.node2vec import Node2Vec
from repro.engines.knightking.apps.ppr import PPR
from repro.engines.knightking.apps.rwd import RWD
from repro.engines.knightking.apps.rwj import RWJ
from repro.engines.knightking.apps.weighted import WeightedWalk

__all__ = ["WalkApp", "PPR", "RWJ", "RWD", "DeepWalk", "Node2Vec", "WeightedWalk"]
