"""Shared helpers for experiment modules."""

from __future__ import annotations

from repro.bench.artifacts import cached_partition
from repro.bench.harness import ExperimentConfig
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset
from repro.partition.base import PartitionResult

__all__ = ["DATASET_ORDER", "graph_for", "partition_with"]

#: presentation order used by the paper's tables.
DATASET_ORDER = ("livejournal", "twitter", "friendster")


def graph_for(config: ExperimentConfig, dataset: str) -> CSRGraph:
    """Load a stand-in dataset at the experiment's scale and seed."""
    return load_dataset(dataset, scale=config.scale, seed=config.seed)


def partition_with(
    name: str,
    graph: CSRGraph,
    num_parts: int,
    seed: int = 0,
    *,
    bypass_cache: bool = False,
    **kwargs,
) -> PartitionResult:
    """Partition ``graph`` with the named algorithm.

    Routed through the content-addressed artifact cache
    (:mod:`repro.bench.artifacts`), so every figure reuses the same
    (dataset × partitioner × seed) assignment instead of recomputing
    it. Timing-measurement experiments pass ``bypass_cache=True``: they
    must report a freshly measured wall clock, never a replayed one.
    """
    return cached_partition(
        name, graph, num_parts, seed=seed, bypass=bypass_cache, **kwargs
    )
