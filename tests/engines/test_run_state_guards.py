"""Invalid-run-state guards: engines and clusters refuse impossible runs
with :class:`~repro.errors.SimulationError` instead of silent nonsense."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import BSPCluster
from repro.cluster.faults import FaultAwareCluster, FaultPlan
from repro.engines.gemini import GeminiEngine, PageRank
from repro.engines.knightking import WalkEngine
from repro.engines.knightking.apps import DeepWalk
from repro.errors import ConfigurationError, SimulationError
from repro.graph.builder import from_edges
from repro.partition import get_partitioner
from repro.partition.assignment import PartitionAssignment


def _empty_graph():
    return from_edges(np.array([], dtype=np.int64), np.array([], dtype=np.int64), 0)


def _assignment(graph, parts=2):
    if graph.num_vertices == 0:
        # Partitioners reject empty graphs outright; build the (empty)
        # assignment directly to reach the engine-level guards.
        return PartitionAssignment(graph, np.array([], dtype=np.int32), parts)
    return get_partitioner("hash").partition(graph, parts).assignment


class TestWalkEngineGuards:
    def test_empty_graph_rejected(self):
        g = _empty_graph()
        assignment = _assignment(g)
        engine = WalkEngine(BSPCluster(2))
        with pytest.raises(SimulationError, match="empty graph"):
            engine.run(g, assignment, DeepWalk())

    def test_empty_start_vertices_rejected(self, ring64):
        assignment = _assignment(ring64)
        engine = WalkEngine(BSPCluster(2))
        with pytest.raises(SimulationError, match="start_vertices is empty"):
            engine.run(
                ring64,
                assignment,
                DeepWalk(),
                start_vertices=np.array([], dtype=np.int64),
            )


class TestGeminiEngineGuards:
    def test_empty_graph_rejected(self):
        g = _empty_graph()
        assignment = _assignment(g)
        engine = GeminiEngine(BSPCluster(2))
        with pytest.raises(SimulationError, match="empty graph"):
            engine.run(g, assignment, PageRank(iterations=3))


class TestFaultClusterGuards:
    def test_crash_everything_plan_rejected_upfront(self, ring64):
        # A plan that crashes every machine is refused at construction.
        assignment = _assignment(ring64, parts=2)
        plan = FaultPlan.from_json(
            '{"crashes": [{"superstep": 0, "machine": 0},'
            ' {"superstep": 0, "machine": 1}], "recovery": "redistribute"}'
        )
        with pytest.raises(ConfigurationError, match="no survivors"):
            FaultAwareCluster(2, plan, graph=ring64, assignment=assignment)

    def test_superstep_after_total_cluster_loss(self, ring64):
        # Defensive guard: a cluster whose liveness mask is empty (a
        # state no valid plan reaches, since the last redistribute
        # raises first) refuses further supersteps instead of recording
        # all-zero iterations.
        assignment = _assignment(ring64, parts=2)
        cluster = FaultAwareCluster(2, graph=ring64, assignment=assignment)
        cluster.begin_run()
        cluster._alive[:] = False
        with pytest.raises(SimulationError, match="every machine has crashed"):
            cluster.superstep(steps=np.ones(2))
