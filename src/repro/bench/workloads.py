"""Canonical workloads matching the paper's experiment setup (§4.1).

Centralising the settings here keeps every experiment comparable:

- random-walk load/waiting experiments start ``5·|V|`` walkers, 4 steps;
- per-application runtime experiments start ``|V|`` walkers;
- PPR stops with probability 0.1 per step (length capped generously),
  RWJ jumps with probability 0.2, node2vec uses (p, q) = (2, 0.5);
- PageRank runs 10 iterations, Connected Components to convergence.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bench import artifacts
from repro.cluster import BSPCluster
from repro.cluster.faults import CheckpointCostModel, FaultAwareCluster, FaultPlan, FaultReport
from repro.cluster.ledger import TimingLedger
from repro.engines.gemini import ConnectedComponents, GeminiEngine, PageRank
from repro.engines.knightking import PPR, RWD, RWJ, DeepWalk, Node2Vec, WalkEngine
from repro.engines.knightking.engine import WalkResult
from repro.graph.csr import CSRGraph
from repro.partition.assignment import PartitionAssignment
from repro.partition.base import Partitioner, get_partitioner

__all__ = [
    "PAPER_PARTITIONERS",
    "ALL_APPS",
    "WALK_APPS",
    "ITERATION_APPS",
    "AppRun",
    "make_partitioners",
    "run_app",
    "run_walk_job",
    "run_serving_job",
    "run_fault_walk_job",
]

#: the four baselines + BPart, in the paper's presentation order.
PAPER_PARTITIONERS = ("chunk-v", "chunk-e", "fennel", "hash", "bpart")

#: the seven applications of §4.1, paper order.
WALK_APPS = ("ppr", "rwj", "rwd", "deepwalk", "node2vec")
ITERATION_APPS = ("pagerank", "cc")
ALL_APPS = WALK_APPS + ITERATION_APPS

#: generous cap for the geometric-length PPR walk (P[len > 60] < 2e-3
#: at stop probability 0.1).
PPR_STEP_CAP = 60

#: fixed walk length used throughout the paper's experiments.
WALK_STEPS = 4


@dataclass
class AppRun:
    """Outcome of one application on one partition."""

    app: str
    runtime: float
    messages: int
    waiting_ratio: float
    iterations: int


def make_partitioners(seed: int = 0) -> dict[str, Partitioner]:
    """Fresh instances of the paper's five partitioners."""
    return {name: get_partitioner(name, seed=seed) for name in PAPER_PARTITIONERS}


def _walk_app(name: str):
    if name == "ppr":
        return PPR(stop_prob=0.1), PPR_STEP_CAP
    if name == "rwj":
        return RWJ(jump_prob=0.2), WALK_STEPS
    if name == "rwd":
        return RWD(), WALK_STEPS
    if name == "deepwalk":
        return DeepWalk(), WALK_STEPS
    if name == "node2vec":
        return Node2Vec(p=2.0, q=0.5), WALK_STEPS
    raise KeyError(f"unknown walk app {name!r}")


def run_walk_job(
    graph: CSRGraph,
    assignment: PartitionAssignment,
    *,
    app_name: str = "deepwalk",
    walkers_per_vertex: int = 5,
    max_steps: int | None = None,
    seed: int = 0,
    mode: str = "step_sync",
):
    """Run one random-walk job; returns the engine's WalkResult.

    The simulated job is deterministic given its inputs, so its summary
    (ledger matrices, step counts, final positions) is a content-
    addressed artifact: repeated suite runs replay it from
    :mod:`repro.bench.artifacts` instead of re-simulating.
    """
    app, default_steps = _walk_app(app_name)
    steps = max_steps if max_steps is not None else default_steps
    key = artifacts.config_key(
        f"walk:{app_name}",
        {
            "walkers_per_vertex": int(walkers_per_vertex),
            "max_steps": int(steps),
            "seed": int(seed),
            "mode": mode,
            "app": artifacts.scalar_attrs(app),
        },
    )
    store = artifacts.get_store()
    use = artifacts.cache_enabled()
    fp = assignment.fingerprint()
    if use:
        payload = store.load("walk", fp, key)
        if payload is not None:
            return _walk_result_from_payload(payload, assignment.num_parts)

    cluster = BSPCluster(assignment.num_parts)
    engine = WalkEngine(cluster, seed=seed, mode=mode)
    result = engine.run(
        graph,
        assignment,
        app,
        walkers_per_vertex=walkers_per_vertex,
        max_steps=steps,
    )
    if use:
        store.store(
            "walk",
            fp,
            key,
            {
                "compute": result.ledger.compute_matrix,
                "comm": result.ledger.comm_matrix,
                "overlap": np.int64(result.ledger.overlap),
                "total_steps": np.int64(result.total_steps),
                "total_messages": np.int64(result.total_messages),
                "steps_matrix": result.steps_matrix,
                "final_positions": result.final_positions,
                "__result__": result,
            },
        )
    return result


def _walk_result_from_payload(payload: dict, num_machines: int) -> WalkResult:
    result = payload.get("__result__")
    if result is not None:
        return result
    ledger = TimingLedger(num_machines, overlap=bool(int(payload["overlap"])))
    for compute, comm in zip(np.asarray(payload["compute"]), np.asarray(payload["comm"])):
        ledger.record(compute, comm)
    result = WalkResult(
        ledger=ledger,
        total_steps=int(payload["total_steps"]),
        total_messages=int(payload["total_messages"]),
        steps_matrix=np.asarray(payload["steps_matrix"]),
        final_positions=np.asarray(payload["final_positions"]),
    )
    payload["__result__"] = result
    return result


def run_fault_walk_job(
    graph: CSRGraph,
    assignment: PartitionAssignment,
    plan: FaultPlan,
    *,
    app_name: str = "deepwalk",
    walkers_per_vertex: int = 5,
    max_steps: int | None = None,
    seed: int = 0,
    mode: str = "step_sync",
    checkpoint_cost: CheckpointCostModel | None = None,
) -> tuple[WalkResult, FaultReport]:
    """Run one walk job under a fault plan; returns (result, report).

    Same cache discipline as :func:`run_walk_job`, under the separate
    ``faultwalk`` kind: the canonical dict of the :class:`FaultPlan`
    (and the checkpoint cost model's knobs) is folded into the config
    digest, so two runs differing only in the injected faults are
    distinct artifacts. The replayed payload reconstructs the full
    extended ledger (events and active masks included) from its
    canonical JSON, so cached and fresh runs are byte-identical.
    """
    app, default_steps = _walk_app(app_name)
    steps = max_steps if max_steps is not None else default_steps
    ckpt = checkpoint_cost if checkpoint_cost is not None else CheckpointCostModel()
    key = artifacts.config_key(
        f"faultwalk:{app_name}",
        {
            "walkers_per_vertex": int(walkers_per_vertex),
            "max_steps": int(steps),
            "seed": int(seed),
            "mode": mode,
            "app": artifacts.scalar_attrs(app),
            "plan": plan.to_dict(),
            "checkpoint_cost": artifacts.scalar_attrs(ckpt),
        },
    )
    store = artifacts.get_store()
    use = artifacts.cache_enabled()
    fp = assignment.fingerprint()
    if use:
        payload = store.load("faultwalk", fp, key)
        if payload is not None:
            return _fault_walk_from_payload(payload)

    cluster = FaultAwareCluster(
        assignment.num_parts,
        plan,
        graph=graph,
        assignment=assignment,
        checkpoint_cost=ckpt,
    )
    engine = WalkEngine(cluster, seed=seed, mode=mode)
    result = engine.run(
        graph,
        assignment,
        app,
        walkers_per_vertex=walkers_per_vertex,
        max_steps=steps,
    )
    report = cluster.report()
    if use:
        store.store(
            "faultwalk",
            fp,
            key,
            {
                "ledger_json": np.array(result.ledger.to_json()),
                "report_json": np.array(json.dumps(report.as_dict(), sort_keys=True)),
                "total_steps": np.int64(result.total_steps),
                "total_messages": np.int64(result.total_messages),
                "steps_matrix": result.steps_matrix,
                "final_positions": result.final_positions,
                "__result__": result,
                "__report__": report,
            },
        )
    return result, report


def _fault_walk_from_payload(payload: dict) -> tuple[WalkResult, FaultReport]:
    result = payload.get("__result__")
    report = payload.get("__report__")
    if result is not None and report is not None:
        return result, report
    ledger = TimingLedger.from_json(str(payload["ledger_json"][()]))
    result = WalkResult(
        ledger=ledger,
        total_steps=int(payload["total_steps"]),
        total_messages=int(payload["total_messages"]),
        steps_matrix=np.asarray(payload["steps_matrix"]),
        final_positions=np.asarray(payload["final_positions"]),
    )
    report = FaultReport.from_dict(json.loads(str(payload["report_json"][()])))
    payload["__result__"] = result
    payload["__report__"] = report
    return result, report


def run_app(
    app_name: str,
    graph: CSRGraph,
    assignment: PartitionAssignment,
    *,
    walkers_per_vertex: int = 1,
    seed: int = 0,
) -> AppRun:
    """Run one of the seven §4.1 applications and report its timing."""
    if app_name in WALK_APPS:
        result = run_walk_job(
            graph,
            assignment,
            app_name=app_name,
            walkers_per_vertex=walkers_per_vertex,
            seed=seed,
        )
        return AppRun(
            app=app_name,
            runtime=result.runtime,
            messages=result.total_messages,
            waiting_ratio=result.ledger.waiting_ratio,
            iterations=result.num_supersteps,
        )
    if app_name == "pagerank":
        program: Callable = PageRank(iterations=10)
    elif app_name == "cc":
        program = ConnectedComponents()
    else:
        raise KeyError(f"unknown app {app_name!r}")

    # The Gemini simulation is deterministic, so the canonical-engine
    # AppRun summary is a (graph, assignment, app) artifact too.
    key = artifacts.config_key(
        f"apprun:{app_name}",
        {"seed": int(seed), "app": artifacts.scalar_attrs(program)},
    )
    store = artifacts.get_store()
    use = artifacts.cache_enabled()
    fp = assignment.fingerprint()
    if use:
        payload = store.load("apprun", fp, key)
        if payload is not None:
            return AppRun(
                app=app_name,
                runtime=float(payload["runtime"]),
                messages=int(payload["messages"]),
                waiting_ratio=float(payload["waiting_ratio"]),
                iterations=int(payload["iterations"]),
            )

    cluster = BSPCluster(assignment.num_parts)
    engine = GeminiEngine(cluster)
    result = engine.run(graph, assignment, program)
    run = AppRun(
        app=app_name,
        runtime=result.runtime,
        messages=result.total_messages,
        waiting_ratio=result.ledger.waiting_ratio,
        iterations=result.iterations,
    )
    if use:
        store.store(
            "apprun",
            fp,
            key,
            {
                "runtime": np.float64(run.runtime),
                "messages": np.int64(run.messages),
                "waiting_ratio": np.float64(run.waiting_ratio),
                "iterations": np.int64(run.iterations),
            },
        )
    return run


def run_serving_job(
    graph: CSRGraph,
    assignment: PartitionAssignment,
    *,
    spec=None,
    config=None,
    seed: int = 0,
):
    """Serve one workload over one partition; returns a ServingResult.

    Cached under the ``servetrace`` artifact kind. The cache key folds
    in the canonical workload and serving-config documents, the seed,
    *and the active chaos plan* — a degradation drill and a clean run
    of the same workload are distinct artifacts, never aliased. The
    replayed payload reconstructs the full :class:`ServingResult`
    (per-query latencies, per-machine counters, cache stats), so a
    cached run renders a byte-identical report.
    """
    from repro.resilience.chaos import active_plan
    from repro.serving.simulator import ServingConfig, ServingResult, ServingSimulator
    from repro.serving.workload import WorkloadSpec

    spec = spec if spec is not None else WorkloadSpec(seed=seed)
    config = config if config is not None else ServingConfig()
    plan = active_plan()
    key = artifacts.config_key(
        "serving",
        {
            "workload": spec.to_dict(),
            "config": config.to_dict(),
            "seed": int(seed),
            "chaos": plan.to_json() if plan is not None else "",
        },
    )
    store = artifacts.get_store()
    use = artifacts.cache_enabled()
    fp = assignment.fingerprint()
    if use:
        payload = store.load("servetrace", fp, key)
        if payload is not None:
            return _serving_from_payload(payload)

    trace = spec.generate(graph)
    result = ServingSimulator(assignment, config, seed=seed).run(trace)
    if use:
        meta = {
            "num_machines": result.num_machines,
            "duration": result.duration,
            "makespan": result.makespan,
            "cache_stats": result.cache_stats,
        }
        if result.replicated:
            # Replication extras ride in the meta doc; a legacy (K=1)
            # payload's meta bytes are unchanged.
            meta["replication"] = {
                "replication_factor": result.replication_factor,
                "plan_digest": result.plan_digest,
                "slo_seconds": result.slo_seconds,
                "crashes": result.crashes,
                "redispatched": result.redispatched,
                "unavailable_shed": result.unavailable_shed,
                "hedges": result.hedges,
                "hedge_wins": result.hedge_wins,
                "heartbeat_drops": result.heartbeat_drops,
                "rereplication_bytes": result.rereplication_bytes,
                "rereplication_transfers": result.rereplication_transfers,
                "health_ledger": result.health_ledger,
                "health_transitions": result.health_transitions,
                "recovery_seconds": result.recovery_seconds,
                "state_seconds": result.state_seconds,
                "restored": result.restored,
            }
        store.store(
            "servetrace",
            fp,
            key,
            {
                "meta_json": np.array(json.dumps(meta, sort_keys=True)),
                "latency": result.latency,
                "shed": result.shed,
                "kind": result.kind,
                "machine_of_query": result.machine_of_query,
                "queries": result.queries,
                "shed_per_machine": result.shed_per_machine,
                "batches": result.batches,
                "degraded_batches": result.degraded_batches,
                "cache_flushes": result.cache_flushes,
                "busy_seconds": result.busy_seconds,
                "messages": result.messages,
                "__result__": result,
            },
        )
    return result


def _serving_from_payload(payload: dict):
    from repro.serving.simulator import ServingResult

    result = payload.get("__result__")
    if result is not None:
        return result
    meta = json.loads(str(payload["meta_json"][()]))
    rep = meta.get("replication")
    extras = {}
    if rep is not None:
        extras = {
            "replicated": True,
            "replication_factor": int(rep["replication_factor"]),
            "plan_digest": str(rep["plan_digest"]),
            "slo_seconds": float(rep["slo_seconds"]),
            "crashes": int(rep["crashes"]),
            "redispatched": int(rep["redispatched"]),
            "unavailable_shed": int(rep["unavailable_shed"]),
            "hedges": int(rep["hedges"]),
            "hedge_wins": int(rep["hedge_wins"]),
            "heartbeat_drops": int(rep["heartbeat_drops"]),
            "rereplication_bytes": int(rep["rereplication_bytes"]),
            "rereplication_transfers": int(rep["rereplication_transfers"]),
            "health_ledger": list(rep["health_ledger"]),
            "health_transitions": dict(rep["health_transitions"]),
            "recovery_seconds": list(rep["recovery_seconds"]),
            "state_seconds": list(rep["state_seconds"]),
            "restored": bool(rep["restored"]),
        }
    result = ServingResult(
        num_machines=int(meta["num_machines"]),
        duration=float(meta["duration"]),
        latency=np.asarray(payload["latency"]),
        shed=np.asarray(payload["shed"]),
        kind=np.asarray(payload["kind"]),
        machine_of_query=np.asarray(payload["machine_of_query"]),
        queries=np.asarray(payload["queries"]),
        shed_per_machine=np.asarray(payload["shed_per_machine"]),
        batches=np.asarray(payload["batches"]),
        degraded_batches=np.asarray(payload["degraded_batches"]),
        cache_flushes=np.asarray(payload["cache_flushes"]),
        busy_seconds=np.asarray(payload["busy_seconds"]),
        messages=np.asarray(payload["messages"]),
        cache_stats=dict(meta["cache_stats"]),
        makespan=float(meta["makespan"]),
        **extras,
    )
    payload["__result__"] = result
    return result
