"""Unit tests for EdgeWeights."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import chung_lu, ring_graph
from repro.graph.weights import EdgeWeights


class TestConstruction:
    def test_uniform(self, triangle):
        w = EdgeWeights.uniform(triangle, 2.0)
        assert (w.values == 2.0).all()
        assert w.values.size == triangle.num_edges

    def test_length_check(self, triangle):
        with pytest.raises(GraphFormatError):
            EdgeWeights(triangle, np.ones(2))

    def test_negative_rejected(self, triangle):
        with pytest.raises(GraphFormatError):
            EdgeWeights(triangle, -np.ones(triangle.num_edges))

    def test_readonly(self, triangle):
        w = EdgeWeights.uniform(triangle)
        with pytest.raises(ValueError):
            w.values[0] = 5.0


class TestSymmetry:
    def test_random_is_symmetric(self):
        g = chung_lu(200, 6.0, rng=1)
        w = EdgeWeights.random(g, rng=2)
        assert w.is_symmetric()

    def test_random_in_range(self):
        g = ring_graph(50)
        w = EdgeWeights.random(g, low=0.2, high=0.3, rng=3)
        assert w.values.min() >= 0.2
        assert w.values.max() <= 0.3

    def test_degree_proportional_not_symmetric(self):
        from repro.graph import star_graph

        g = star_graph(5)
        w = EdgeWeights.degree_proportional(g)
        assert not w.is_symmetric()

    def test_uniform_is_symmetric(self, triangle):
        assert EdgeWeights.uniform(triangle).is_symmetric()


class TestAccessors:
    def test_of(self, triangle):
        w = EdgeWeights(triangle, np.arange(triangle.num_edges, dtype=float))
        assert np.array_equal(w.of(0), w.values[: triangle.degree(0)])

    def test_weighted_degrees(self, triangle):
        w = EdgeWeights.uniform(triangle, 3.0)
        assert np.allclose(w.weighted_degrees, 3.0 * triangle.degrees)

    def test_weighted_degrees_isolated(self, isolated_vertices):
        w = EdgeWeights.uniform(isolated_vertices)
        assert w.weighted_degrees[5] == 0.0

    def test_repr(self, triangle):
        assert "m=6" in repr(EdgeWeights.uniform(triangle))
