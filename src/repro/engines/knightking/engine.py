"""The KnightKing-like walker BSP engine.

Model (mirrors §2.1 and KnightKing's execution):

- Every walker lives on the machine hosting its current vertex.
- Per superstep, machines advance their local walkers; each executed
  *walker step* is one unit of compute charged to that machine (the
  paper characterises computing load exactly this way — Figure 4).
- A walker whose next vertex is on another machine is serialised into a
  message (a "message walk", Figure 5b's metric) and delivered at the
  next superstep.

Two synchronisation modes:

- ``step_sync`` (default) — one walk step per superstep, matching the
  paper's setting where 4-step walks take 4 iterations (Figures 4/12).
- ``greedy`` — a machine keeps advancing a walker until it terminates
  or leaves the machine (the "compute until no updates can be made"
  strategy of §2.1); supersteps then correspond to communication
  rounds.

Numerical semantics are exact: walks follow real edges with the app's
transition law, so traces are valid regardless of the partition — only
the *timing* depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.cluster.bsp import BSPCluster
from repro.cluster.ledger import TimingLedger
from repro.cluster.messages import TrafficMatrix
from repro.engines.knightking.walker import WalkerBatch
from repro.errors import ConfigurationError, SimulationError
from repro.graph.csr import CSRGraph
from repro.partition.assignment import PartitionAssignment
from repro.utils.rng import as_rng

__all__ = ["WalkEngine", "WalkResult"]

_MAX_SUPERSTEPS = 100_000


@dataclass
class WalkResult:
    """Outcome of one random-walk job."""

    ledger: TimingLedger
    total_steps: int
    total_messages: int
    steps_matrix: np.ndarray  # supersteps × machines walker-steps executed
    final_positions: np.ndarray
    paths: np.ndarray | None = field(default=None, repr=False)
    visit_counts: np.ndarray | None = field(default=None, repr=False)

    @property
    def runtime(self) -> float:
        """Simulated makespan in seconds."""
        return self.ledger.total_runtime

    @property
    def num_supersteps(self) -> int:
        return self.ledger.num_iterations


class WalkEngine:
    """Walker-centric BSP engine over a simulated cluster.

    Parameters
    ----------
    cluster:
        Machine count must equal the assignment's part count. Any object
        with the :class:`~repro.cluster.bsp.BSPCluster` superstep surface
        is accepted, e.g. :class:`~repro.cluster.faults.FaultAwareCluster`
        for fault-injected runs — engines never see the faults.
    mode:
        ``"step_sync"`` or ``"greedy"`` (see module docstring).
    record_paths:
        Store the full trace (walkers × steps+1 vertex ids, −1 padding).
        For tests and embeddings examples; memory scales with
        walkers × max_steps.
    track_visits:
        Accumulate a per-vertex visit counter (start vertices count as
        one visit). O(n) memory; the Monte-Carlo PPR estimation example
        is built on this.
    """

    def __init__(
        self,
        cluster: BSPCluster,
        *,
        mode: str = "step_sync",
        record_paths: bool = False,
        track_visits: bool = False,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if mode not in ("step_sync", "greedy"):
            raise ConfigurationError(f"mode must be step_sync|greedy, got {mode!r}")
        self._cluster = cluster
        self._mode = mode
        self._record = bool(record_paths)
        self._track_visits = bool(track_visits)
        self._visits: np.ndarray | None = None
        self._seed = seed

    # ------------------------------------------------------------------
    def run(
        self,
        graph: CSRGraph,
        assignment: PartitionAssignment,
        app,
        *,
        start_vertices: np.ndarray | None = None,
        walkers_per_vertex: int = 1,
        max_steps: int = 4,
    ) -> WalkResult:
        """Run ``app``'s walks to completion.

        Parameters
        ----------
        app:
            A :class:`~repro.engines.knightking.apps.base.WalkApp`.
        start_vertices:
            Explicit walker start vertices; default is
            ``walkers_per_vertex`` walkers on every vertex (the paper
            starts ``|V|`` or ``5·|V|`` walks).
        max_steps:
            Step cap per walker (the paper's fixed-length walks use 4).
        """
        if assignment.num_parts != self._cluster.num_machines:
            raise SimulationError(
                f"assignment has {assignment.num_parts} parts but cluster has "
                f"{self._cluster.num_machines} machines"
            )
        if max_steps <= 0:
            raise ConfigurationError(f"max_steps must be positive, got {max_steps}")
        rng = as_rng(self._seed)
        n = graph.num_vertices
        if n == 0:
            raise SimulationError("cannot run walks on an empty graph")
        if start_vertices is None:
            if walkers_per_vertex <= 0:
                raise ConfigurationError("walkers_per_vertex must be positive")
            start_vertices = np.tile(np.arange(n, dtype=np.int64), walkers_per_vertex)
        elif np.asarray(start_vertices).size == 0:
            raise SimulationError("no walkers to run: start_vertices is empty")
        batch = WalkerBatch.start_at(start_vertices)
        parts = assignment.parts.astype(np.int64)
        m = self._cluster.num_machines

        paths = None
        if self._record:
            paths = np.full((batch.num_walkers, max_steps + 1), -1, dtype=np.int64)
            paths[:, 0] = batch.pos
        self._visits = (
            np.bincount(batch.pos, minlength=n).astype(np.int64)
            if self._track_visits
            else None
        )

        self._cluster.begin_run()
        steps_rows: list[np.ndarray] = []
        supersteps = 0
        while batch.alive.any():
            supersteps += 1
            if supersteps > _MAX_SUPERSTEPS:  # pragma: no cover - defensive
                raise SimulationError("walk did not terminate (superstep cap hit)")
            if self._mode == "step_sync":
                steps_per_m, traffic = self._superstep_sync(
                    graph, parts, m, batch, app, rng, max_steps, paths
                )
            else:
                steps_per_m, traffic = self._superstep_greedy(
                    graph, parts, m, batch, app, rng, max_steps, paths
                )
            steps_rows.append(steps_per_m)
            self._cluster.superstep(steps=steps_per_m, traffic=traffic)

        steps_matrix = (
            np.stack(steps_rows) if steps_rows else np.zeros((0, m))
        )
        if telemetry.enabled():
            reg = telemetry.active()
            reg.counter("engine.walk.runs").inc()
            reg.counter("engine.walk.walkers").inc(batch.num_walkers)
            reg.counter("engine.walk.steps").inc(batch.total_steps)
            reg.counter("engine.walk.supersteps").inc(supersteps)
            reg.counter("engine.walk.messages").inc(self._cluster.total_messages)
            hist = reg.histogram(
                "engine.walk.steps_per_superstep",
                buckets=(1, 10, 100, 1_000, 10_000, 100_000, 1_000_000),
            )
            for row in steps_rows:
                hist.observe(float(row.sum()))
        return WalkResult(
            ledger=self._cluster.ledger,
            total_steps=batch.total_steps,
            total_messages=self._cluster.total_messages,
            steps_matrix=steps_matrix,
            final_positions=batch.pos.copy(),
            paths=paths,
            visit_counts=self._visits,
        )

    # ------------------------------------------------------------------
    def _advance(
        self,
        graph: CSRGraph,
        batch: WalkerBatch,
        idx: np.ndarray,
        app,
        rng,
        max_steps: int,
        paths: np.ndarray | None,
    ) -> np.ndarray:
        """Advance walkers ``idx`` one step in place.

        Returns the mask (over ``idx``) of walkers that actually moved —
        walkers that terminated in place (PPR stop, dead end) execute no
        step and are excluded from the load accounting.
        """
        new_pos, terminated = app.advance(
            graph, batch.pos[idx], batch.prev[idx], rng
        )
        moved = ~terminated
        moved_idx = idx[moved]
        batch.prev[moved_idx] = batch.pos[moved_idx]
        batch.pos[moved_idx] = new_pos[moved]
        batch.steps[moved_idx] += 1
        if paths is not None and moved_idx.size:
            paths[moved_idx, batch.steps[moved_idx]] = batch.pos[moved_idx]
        if self._visits is not None and moved_idx.size:
            self._visits += np.bincount(
                batch.pos[moved_idx], minlength=self._visits.size
            )
        batch.alive[idx[terminated]] = False
        batch.alive[moved_idx] &= batch.steps[moved_idx] < max_steps
        return moved

    def _superstep_sync(
        self, graph, parts, m, batch, app, rng, max_steps, paths
    ) -> tuple[np.ndarray, TrafficMatrix]:
        idx = np.nonzero(batch.alive)[0]
        home = parts[batch.pos[idx]]
        old_pos = batch.pos[idx].copy()
        moved = self._advance(graph, batch, idx, app, rng, max_steps, paths)
        steps_per_m = np.bincount(home[moved], minlength=m).astype(np.float64)
        # A walker is transmitted whenever its executed step lands on a
        # different machine — including its final step, since the walker
        # state (path tail) lives with its last vertex's host.
        src_m = parts[old_pos[moved]]
        dst_m = parts[batch.pos[idx[moved]]]
        traffic = TrafficMatrix.from_pairs(m, src_m, dst_m)
        return steps_per_m, traffic

    def _superstep_greedy(
        self, graph, parts, m, batch, app, rng, max_steps, paths
    ) -> tuple[np.ndarray, TrafficMatrix]:
        steps_per_m = np.zeros(m, dtype=np.float64)
        traffic = TrafficMatrix(m)
        # Walkers keep moving while they stay on their current machine.
        local = batch.alive.copy()
        while local.any():
            idx = np.nonzero(local)[0]
            home = parts[batch.pos[idx]]
            old_pos = batch.pos[idx].copy()
            moved = self._advance(graph, batch, idx, app, rng, max_steps, paths)
            steps_per_m += np.bincount(home[moved], minlength=m).astype(np.float64)
            crossed = np.zeros(idx.size, dtype=bool)
            crossed[moved] = parts[batch.pos[idx[moved]]] != parts[old_pos[moved]]
            if crossed.any():
                src_m = parts[old_pos[crossed]]
                dst_m = parts[batch.pos[idx[crossed]]]
                traffic += TrafficMatrix.from_pairs(m, src_m, dst_m)
            still = batch.alive[idx]
            local[idx[~still]] = False  # terminated or step-capped
            local[idx[crossed]] = False  # in transit until next superstep
        return steps_per_m, traffic
