"""Planted-partition churn scenarios for the repartition daemon.

A scenario is a *fully seeded* description of a long-running workload:
a planted-partition base graph (``num_groups`` ground-truth
communities), a shuffled arrival order, and a churn tail of seeded
edge insertions/deletions plus vertex departures/rejoins. Because every
stochastic choice derives from the scenario seed via
:func:`repro.utils.rng.derive_rng` with a distinct salt, two daemons
fed the same scenario see the same event stream byte for byte — the
foundation of the ledger-identity acceptance check.

The churn tail is community-respecting by default (new edges are drawn
inside a ground-truth group), so a good repartitioner should *hold* its
recovered-community quality under churn. With ``drift > 0`` a fraction
of inserts crosses groups, eroding the planted structure — the regime
where periodic full re-partitioning starts to pay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import hashlib
import json

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.generators import planted_partition
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive, check_probability

__all__ = ["ChurnEvent", "ChurnScenario"]


@dataclass(frozen=True)
class ChurnEvent:
    """One step of the daemon's input stream.

    ``kind`` is one of ``add_vertex`` (with ``neighbors`` — the full
    adjacency known at arrival time), ``remove_vertex``, ``add_edge``,
    ``remove_edge`` (with ``u``/``v`` endpoints).
    """

    kind: str
    u: int
    v: int = -1
    neighbors: tuple[int, ...] = ()

    def to_list(self) -> list:
        """Compact JSON-friendly form ``[kind, u, v, [nbrs...]]``."""
        return [self.kind, self.u, self.v, list(self.neighbors)]


@dataclass(frozen=True)
class ChurnScenario:
    """Seeded planted-partition workload: arrivals then a churn tail."""

    num_vertices: int = 2000
    num_groups: int = 4
    intra_degree: float = 8.0
    inter_degree: float = 1.0
    churn_events: int = 2000
    delete_frac: float = 0.25
    drift: float = 0.0
    seed: int = 0
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        check_positive("num_vertices", self.num_vertices)
        check_positive("num_groups", self.num_groups)
        check_probability("delete_frac", self.delete_frac)
        check_probability("drift", self.drift)
        if self.churn_events < 0:
            raise ConfigurationError(
                f"churn_events must be >= 0, got {self.churn_events}"
            )

    # -- ground truth ---------------------------------------------------
    def base(self):
        """``(graph, labels)`` of the planted base (memoised)."""
        if "base" not in self._cache:
            rng = derive_rng(self.seed, 0x5EED)
            self._cache["base"] = planted_partition(
                self.num_vertices,
                self.num_groups,
                intra_degree=self.intra_degree,
                inter_degree=self.inter_degree,
                rng=rng,
            )
        return self._cache["base"]

    def labels(self) -> np.ndarray:
        """Ground-truth community label per vertex id."""
        return self.base()[1]

    def _group_bounds(self, group: int) -> tuple[int, int]:
        """Contiguous id range ``[lo, hi)`` of a ground-truth group."""
        n, g = self.num_vertices, self.num_groups
        lo = int(np.searchsorted(self.labels(), group, side="left"))
        hi = int(np.searchsorted(self.labels(), group, side="right"))
        if lo == hi:  # defensive: labels are (v*g)//n, never empty
            lo, hi = 0, n
        return lo, hi

    # -- event stream ---------------------------------------------------
    def arrival_events(self) -> list[ChurnEvent]:
        """Seeded-shuffled arrival of every base vertex with its full
        base adjacency (streaming-ingest semantics)."""
        graph, _ = self.base()
        rng = derive_rng(self.seed, 0xA44)
        order = rng.permutation(self.num_vertices)
        return [
            ChurnEvent(
                kind="add_vertex",
                u=int(v),
                neighbors=tuple(int(w) for w in graph.neighbors(int(v))),
            )
            for v in order
        ]

    def churn_tail(self) -> list[ChurnEvent]:
        """The seeded churn tail after all arrivals.

        Maintained live against a mutable edge snapshot so deletions
        target edges that actually exist and re-inserts of a departed
        vertex carry its *current* adjacency. Vertex churn removes a
        random resident and rejoins it a few steps later, exercising
        the suspended-stub path of :class:`DynamicPartitioner`.
        """
        graph, labels = self.base()
        rng = derive_rng(self.seed, 0xC0DE)
        n = self.num_vertices
        # live undirected edge list with O(1) swap-delete
        edges: list[tuple[int, int]] = []
        index: dict[tuple[int, int], int] = {}
        adj: dict[int, set[int]] = {v: set() for v in range(n)}
        for u in range(n):
            for w in graph.neighbors(u):
                w = int(w)
                if u < w:
                    index[(u, w)] = len(edges)
                    edges.append((u, w))
                    adj[u].add(w)
                    adj[w].add(u)

        def _drop(u: int, w: int) -> None:
            key = (u, w) if u < w else (w, u)
            pos = index.pop(key)
            last = edges.pop()
            if pos < len(edges):
                edges[pos] = last
                index[last] = pos
            adj[key[0]].discard(key[1])
            adj[key[1]].discard(key[0])

        def _put(u: int, w: int) -> bool:
            key = (u, w) if u < w else (w, u)
            if key in index or u == w:
                return False
            index[key] = len(edges)
            edges.append(key)
            adj[key[0]].add(key[1])
            adj[key[1]].add(key[0])
            return True

        resident = list(range(n))
        resident_pos = {v: i for i, v in enumerate(resident)}
        departed: list[int] = []

        def _leave(v: int) -> None:
            pos = resident_pos.pop(v)
            last = resident.pop()
            if pos < len(resident):
                resident[pos] = last
                resident_pos[last] = pos
            departed.append(v)

        def _rejoin(v: int) -> None:
            departed.remove(v)
            resident_pos[v] = len(resident)
            resident.append(v)

        out: list[ChurnEvent] = []
        for _ in range(self.churn_events):
            roll = rng.random()
            if roll < 0.08 and resident and len(resident) > self.num_groups:
                # vertex departure
                v = resident[int(rng.integers(len(resident)))]
                _leave(v)
                out.append(ChurnEvent(kind="remove_vertex", u=v))
            elif roll < 0.16 and departed:
                # rejoin with the vertex's *current* adjacency
                v = departed[int(rng.integers(len(departed)))]
                _rejoin(v)
                out.append(
                    ChurnEvent(
                        kind="add_vertex",
                        u=v,
                        neighbors=tuple(sorted(adj[v])),
                    )
                )
            elif roll < 0.16 + (1.0 - 0.16) * self.delete_frac and edges:
                # deletions must name two *resident* endpoints, or the
                # daemon could not apply them
                for _attempt in range(16):
                    u, w = edges[int(rng.integers(len(edges)))]
                    if u in resident_pos and w in resident_pos:
                        _drop(u, w)
                        out.append(ChurnEvent(kind="remove_edge", u=u, v=w))
                        break
            else:
                # insert: within-group unless this draw drifts
                for _attempt in range(16):
                    u = resident[int(rng.integers(len(resident)))]
                    if rng.random() < self.drift:
                        w = int(rng.integers(n))
                    else:
                        lo, hi = self._group_bounds(int(labels[u]))
                        w = int(rng.integers(lo, hi))
                    if w != u and w in resident_pos and _put(u, w):
                        out.append(ChurnEvent(kind="add_edge", u=u, v=w))
                        break
        return out

    def events(self) -> list[ChurnEvent]:
        """The full daemon input: arrivals followed by the churn tail."""
        return self.arrival_events() + self.churn_tail()

    # -- identity -------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "num_vertices": self.num_vertices,
            "num_groups": self.num_groups,
            "intra_degree": self.intra_degree,
            "inter_degree": self.inter_degree,
            "churn_events": self.churn_events,
            "delete_frac": self.delete_frac,
            "drift": self.drift,
            "seed": self.seed,
        }

    def digest(self) -> str:
        """SHA-256 of the canonical parameter dict — the scenario id."""
        text = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()
