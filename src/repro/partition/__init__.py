"""Graph partitioners: the paper's BPart plus every compared baseline.

Streaming partitioners (one pass over a vertex stream):

- :class:`~repro.partition.chunk.ChunkVPartitioner` — contiguous vertex
  ranges, balanced ``|V_i|`` (Gemini, GridGraph).
- :class:`~repro.partition.chunk.ChunkEPartitioner` — contiguous ranges,
  balanced ``|E_i|`` (KnightKing, GraphChi).
- :class:`~repro.partition.hashp.HashPartitioner` — random vertex
  assignment (Pregel, Giraph).
- :class:`~repro.partition.fennel.FennelPartitioner` — score-based
  streaming with vertex-count balance (Tsourakakis et al., WSDM'14).
- :class:`~repro.partition.ldg.LDGPartitioner` — linear deterministic
  greedy (Stanton & Kliot, KDD'12), an extra baseline.
- :class:`~repro.partition.bpart.BPartPartitioner` — the paper's
  contribution: weighted two-dimensional balance indicator + multi-layer
  over-split-and-combine.

Offline comparators:

- :class:`~repro.partition.multilevel.MultilevelPartitioner` —
  Mt-KaHIP-style coarsen/partition/refine (§4.2 comparison).
- :class:`~repro.partition.gd.GDPartitioner` — projected-gradient 2-D
  balanced recursive bisection (related work, Avdiukhin et al.).
"""

from repro.partition.assignment import PartitionAssignment
from repro.partition.base import (
    PartitionResult,
    Partitioner,
    available_partitioners,
    get_partitioner,
    register_partitioner,
)
from repro.partition.bpart import BPartPartitioner
from repro.partition.chunk import ChunkEPartitioner, ChunkVPartitioner
from repro.partition.dynamic import DynamicPartitioner
from repro.partition.export import PartitionBundle, export_partition_bundles, load_partition_bundle
from repro.partition.combine import CombinePlan, combine_assignment, multi_layer_combine, pair_by_vertex_count
from repro.partition.fennel import FennelPartitioner
from repro.partition.gd import GDPartitioner
from repro.partition.hashp import HashPartitioner
from repro.partition.kernels import (
    KERNEL_CHOICES,
    KernelBackend,
    available_kernels,
    get_kernel,
)
from repro.partition.ldg import LDGPartitioner
from repro.partition.metrics import (
    BalanceReport,
    adjusted_rand_index,
    balance_report,
    bias,
    connectivity_matrix,
    edge_cut_ratio,
    jains_fairness,
    part_edge_counts,
    part_vertex_counts,
)
from repro.partition.multilevel import MultilevelPartitioner
from repro.partition.refine import refine_assignment
from repro.partition.spinner import SpinnerPartitioner
from repro.partition import vertexcut

__all__ = [
    "PartitionAssignment",
    "Partitioner",
    "PartitionResult",
    "get_partitioner",
    "register_partitioner",
    "available_partitioners",
    "ChunkVPartitioner",
    "ChunkEPartitioner",
    "HashPartitioner",
    "FennelPartitioner",
    "LDGPartitioner",
    "BPartPartitioner",
    "KernelBackend",
    "KERNEL_CHOICES",
    "available_kernels",
    "get_kernel",
    "MultilevelPartitioner",
    "SpinnerPartitioner",
    "vertexcut",
    "PartitionBundle",
    "export_partition_bundles",
    "load_partition_bundle",
    "refine_assignment",
    "DynamicPartitioner",
    "GDPartitioner",
    "CombinePlan",
    "pair_by_vertex_count",
    "combine_assignment",
    "multi_layer_combine",
    "BalanceReport",
    "balance_report",
    "adjusted_rand_index",
    "bias",
    "jains_fairness",
    "edge_cut_ratio",
    "connectivity_matrix",
    "part_vertex_counts",
    "part_edge_counts",
]
