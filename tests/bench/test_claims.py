"""Tests for the machine-checkable claims suite."""

from __future__ import annotations

import pytest

from repro.bench import ExperimentConfig, all_claims, check_claims
from repro.bench.claims import Claim


class TestClaims:
    def test_nine_claims_registered(self):
        claims = all_claims()
        assert len(claims) == 9
        assert [c.claim_id for c in claims] == [f"C{i}" for i in range(1, 10)]

    def test_all_hold_at_moderate_scale(self):
        results = check_claims(ExperimentConfig(scale=0.3, seed=1))
        failed = [r for r in results if not r.passed]
        assert not failed, "\n".join(r.render() for r in failed)

    def test_render_format(self):
        results = check_claims(
            ExperimentConfig(scale=0.1, seed=2),
            claims=[all_claims()[2]],  # the cheap hash-cut claim
        )
        out = results[0].render()
        assert out.startswith("[PASS]") or out.startswith("[FAIL]")
        assert "Table 3" in out

    def test_crashing_check_becomes_failure(self):
        def boom(config):
            raise RuntimeError("nope")

        claim = Claim("CX", "always crashes", "test", boom)
        results = check_claims(ExperimentConfig(scale=0.05), claims=[claim])
        assert not results[0].passed
        assert "RuntimeError" in results[0].evidence

    def test_cli_validate(self, capsys):
        from repro.cli import main

        code = main(["validate", "--scale", "0.3", "--seed", "1"])
        out = capsys.readouterr().out
        assert "claims hold" in out
        assert code == 0
