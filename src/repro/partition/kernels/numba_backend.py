"""Optional numba-JIT streaming kernel.

Auto-detected at import: when numba is installed, a compiled version of
the incremental algorithm (delta-maintained penalties, counter reset by
touched entries) registers under ``"numba"`` and becomes the ``"auto"``
default. When it is not — the common case for the slim test image —
this module registers nothing and :func:`~repro.partition.kernels.base.
get_kernel` resolves ``"numba"`` to ``"incremental"``, so a
``kernel="numba"`` knob never errors on a machine without the JIT. The
substitution is visible, not silent: :func:`note_missing_numba` warns
once per process and counts each fallback in
``kernels.numba_fallbacks`` telemetry.

The compiled loops operate on the NumPy arrays directly (no ``tolist``
mirrors) and use the same arithmetic order as the reference, so the
bit-exactness contract carries over; the parity suite runs against this
backend automatically whenever numba is importable.
"""

from __future__ import annotations

import numpy as np

from repro.partition.kernels.base import KernelBackend, register_kernel
from repro.partition.kernels.incremental import single_incremental

try:  # pragma: no cover - exercised only when numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover
    numba = None
    HAVE_NUMBA = False

__all__ = ["HAVE_NUMBA", "note_missing_numba"]

_WARNED_MISSING = False


def note_missing_numba() -> None:
    """Record one ``kernel="numba"`` request served by ``incremental``.

    Warns once per process — not per dispatch, which used to spam
    suites that resolve the kernel eagerly per partitioner — and bumps
    ``kernels.numba_fallbacks`` every time so telemetry shows which
    backend actually ran.
    """
    global _WARNED_MISSING
    from repro import telemetry

    if telemetry.enabled():
        telemetry.active().counter("kernels.numba_fallbacks").inc()
    if not _WARNED_MISSING:
        _WARNED_MISSING = True
        import warnings

        warnings.warn(
            "kernel='numba' requested but numba is not installed; "
            "using the 'incremental' backend (bit-identical, slower)",
            RuntimeWarning,
            stacklevel=4,
        )


if HAVE_NUMBA:  # pragma: no cover - exercised only when numba is installed

    @numba.njit(cache=True)
    def _pow_nb(base, exp):
        if base == 0.0:
            if exp > 0.0:
                return 0.0
            if exp == 0.0:
                return 1.0
            return np.inf
        return base**exp

    @numba.njit(cache=True)
    def _fennel_nb(indptr, indices, stream, parts, loads, weights, alpha, gamma, capacity, passes):
        k = loads.shape[0]
        gm1 = gamma - 1.0
        ag = alpha * gamma
        penalty = np.empty(k, dtype=np.float64)
        for i in range(k):
            penalty[i] = ag * _pow_nb(loads[i], gm1)
        saturated = np.zeros(k, dtype=np.bool_)
        num_saturated = 0
        for i in range(k):
            if loads[i] >= capacity:
                saturated[i] = True
                num_saturated += 1
        counts = np.zeros(k, dtype=np.int64)
        touched = np.empty(k, dtype=np.int64)
        for _pass in range(passes):
            for s in range(stream.shape[0]):
                v = stream[s]
                current = parts[v]
                if current >= 0:
                    released = loads[current] - weights[v]
                    loads[current] = released
                    penalty[current] = ag * _pow_nb(released, gm1)
                    if saturated[current] and released < capacity:
                        saturated[current] = False
                        num_saturated -= 1
                ntouched = 0
                for e in range(indptr[v], indptr[v + 1]):
                    p = parts[indices[e]]
                    if p >= 0:
                        if counts[p] == 0:
                            touched[ntouched] = p
                            ntouched += 1
                        counts[p] += 1
                if num_saturated == k:
                    choice = 0
                    best_load = loads[0]
                    for i in range(1, k):
                        if loads[i] < best_load:
                            best_load = loads[i]
                            choice = i
                else:
                    choice = -1
                    best = -np.inf
                    for i in range(k):
                        if saturated[i]:
                            continue
                        sc = counts[i] - penalty[i]
                        if sc > best:
                            best = sc
                            choice = i
                for t in range(ntouched):
                    counts[touched[t]] = 0
                parts[v] = choice
                grown = loads[choice] + weights[v]
                loads[choice] = grown
                penalty[choice] = ag * _pow_nb(grown, gm1)
                if not saturated[choice] and grown >= capacity:
                    saturated[choice] = True
                    num_saturated += 1

    @numba.njit(cache=True)
    def _ldg_nb(indptr, indices, stream, parts, loads, capacity):
        k = loads.shape[0]
        weight = np.empty(k, dtype=np.float64)
        for i in range(k):
            weight[i] = 1.0 - loads[i] / capacity
        saturated = np.zeros(k, dtype=np.bool_)
        num_saturated = 0
        for i in range(k):
            if loads[i] >= capacity:
                saturated[i] = True
                num_saturated += 1
        counts = np.zeros(k, dtype=np.int64)
        touched = np.empty(k, dtype=np.int64)
        for s in range(stream.shape[0]):
            v = stream[s]
            ntouched = 0
            num_assigned = 0
            for e in range(indptr[v], indptr[v + 1]):
                p = parts[indices[e]]
                if p >= 0:
                    if counts[p] == 0:
                        touched[ntouched] = p
                        ntouched += 1
                    counts[p] += 1
                    num_assigned += 1
            if num_saturated == k:
                choice = 0
                best_load = loads[0]
                for i in range(1, k):
                    if loads[i] < best_load:
                        best_load = loads[i]
                        choice = i
            else:
                choice = -1
                best = -np.inf
                if num_assigned > 0:
                    for i in range(k):
                        if saturated[i]:
                            continue
                        sc = counts[i] * weight[i]
                        if sc > best:
                            best = sc
                            choice = i
                else:
                    for i in range(k):
                        if saturated[i]:
                            continue
                        if weight[i] > best:
                            best = weight[i]
                            choice = i
            for t in range(ntouched):
                counts[touched[t]] = 0
            parts[v] = choice
            grown = loads[choice] + 1.0
            loads[choice] = grown
            weight[choice] = 1.0 - grown / capacity
            if not saturated[choice] and grown >= capacity:
                saturated[choice] = True
                num_saturated += 1

    def fennel_numba(indptr, indices, stream, parts, loads, weights, *, alpha, gamma, capacity, passes):
        _fennel_nb(
            indptr,
            indices,
            stream,
            parts,
            loads,
            weights,
            float(alpha),
            float(gamma),
            float(capacity),
            int(passes),
        )

    def ldg_numba(indptr, indices, stream, parts, loads, *, capacity):
        _ldg_nb(indptr, indices, stream, parts, loads, float(capacity))

    register_kernel(
        KernelBackend(
            name="numba",
            fennel=fennel_numba,
            ldg=ldg_numba,
            # Per-call JIT dispatch overhead dwarfs one k-length scoring
            # decision; the pure-Python single is faster here.
            single=single_incremental,
            exact=True,
            description="numba-JIT compiled incremental loop",
        )
    )
