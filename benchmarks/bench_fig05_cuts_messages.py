"""Figure 5 — edge cuts and total message walks (Twitter, 8 parts).

Cut ratios per partitioner plus the number of transmitted walkers
for the canonical walk job; Chunk-E/Hash ~90% cuts, >2x Fennel's messages.
"""


def test_fig05(run_paper_experiment):
    result = run_paper_experiment("fig05")
    assert result.tables or result.series
