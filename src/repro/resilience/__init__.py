"""Resilient-execution policy layer for the real pipeline.

The BSP *simulator* models cluster faults (:mod:`repro.cluster.faults`);
this package is about the faults the repository's **own** execution
paths hit: worker processes that die or hang under the suite runner,
artifact-store I/O that fails or returns corrupted files, and multi-GB
edge streams with malformed lines. Three building blocks:

- :mod:`repro.resilience.policy` — :class:`RetryPolicy` (exponential
  backoff with *seeded, deterministic* jitter), :class:`Timeout`, and a
  :class:`CircuitBreaker` that converts "the pool keeps dying" into a
  deliberate degradation to serial execution.
- :mod:`repro.resilience.chaos` — a deterministic fault-injection
  harness. A seeded :class:`ChaosPlan` decides purely from
  ``(seed, site, key, attempt)`` whether to kill the worker, raise, fail
  I/O, corrupt a file, or hang — independent of scheduling order, so
  chaos runs are exactly reproducible and CI can assert result parity
  with a clean run.
- :mod:`repro.resilience.journal` — a crash-safe append-only JSONL
  journal (``flush`` + ``fsync`` per record, torn trailing lines
  tolerated on read) backing ``repro-bench all --resume``.

Everything reports through :mod:`repro.telemetry` (``resilience.*`` and
``chaos.*`` counters) and costs nothing when unused: no plan installed
means one dict lookup per potential injection site.
"""

from __future__ import annotations

from repro.resilience.chaos import (
    ChaosError,
    ChaosPlan,
    ChaosRule,
    active_plan,
    install_plan,
    known_sites,
    maybe_inject,
    register_site,
)
from repro.resilience.journal import JsonlJournal
from repro.resilience.policy import (
    CircuitBreaker,
    RetryPolicy,
    Timeout,
    call_with_retry,
    hash_unit,
)

__all__ = [
    "RetryPolicy",
    "Timeout",
    "CircuitBreaker",
    "call_with_retry",
    "hash_unit",
    "ChaosError",
    "ChaosPlan",
    "ChaosRule",
    "active_plan",
    "install_plan",
    "known_sites",
    "maybe_inject",
    "register_site",
    "JsonlJournal",
]
