"""Vertex stream orderings for streaming partitioners.

Streaming partitioners (Chunk-V, Fennel, BPart, LDG, Hash) consume
vertices one at a time in some order. The order matters: Fennel's
original paper shows random order is robust while adversarial orders
degrade quality, and BFS/DFS orders (the order a crawler discovers a
web graph) are the friendliest. This module produces ordering arrays;
the partitioners simply iterate them.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.utils.rng import as_rng

__all__ = ["vertex_stream", "STREAM_ORDERS"]

STREAM_ORDERS = ("natural", "random", "bfs", "dfs", "degree", "degree_desc")


def vertex_stream(graph: CSRGraph, order: str = "natural", *, rng=None) -> np.ndarray:
    """Return a permutation of ``[0, n)`` in the requested stream order.

    Orders
    ------
    ``natural``      vertex-id order (what Chunk-V assumes: adjacent ids
                     are adjacent in the stream).
    ``random``       uniform shuffle.
    ``bfs`` / ``dfs``  traversal order from vertex 0, restarting at the
                     smallest unvisited vertex per component.
    ``degree``       ascending degree; ``degree_desc`` descending (the
                     adversarial hubs-first case).
    """
    n = graph.num_vertices
    if order == "natural":
        return np.arange(n, dtype=np.int64)
    if order == "random":
        return as_rng(rng).permutation(n).astype(np.int64)
    if order == "degree":
        return np.argsort(graph.degrees, kind="stable").astype(np.int64)
    if order == "degree_desc":
        return np.argsort(-graph.degrees, kind="stable").astype(np.int64)
    if order in ("bfs", "dfs"):
        return _traversal_order(graph, depth_first=(order == "dfs"))
    raise ConfigurationError(f"unknown stream order {order!r}; choose from {STREAM_ORDERS}")


def _traversal_order(graph: CSRGraph, *, depth_first: bool) -> np.ndarray:
    """BFS/DFS visit order covering every component."""
    n = graph.num_vertices
    visited = np.zeros(n, dtype=bool)
    out = np.empty(n, dtype=np.int64)
    pos = 0
    for start in range(n):
        if visited[start]:
            continue
        # deque gives O(1) at both ends; a list's pop(0) is O(frontier),
        # which made BFS quadratic on long-frontier graphs.
        frontier = deque((start,))
        visited[start] = True
        while frontier:
            v = frontier.pop() if depth_first else frontier.popleft()
            out[pos] = v
            pos += 1
            # neighbors() rather than a raw indices slice: sharded graphs
            # serve it from the vertex's shard without a global array.
            nbrs = graph.neighbors(v)
            new = nbrs[~visited[nbrs]]
            if new.size:
                # np.unique: a vertex may appear twice in nbrs' unvisited
                # mask within this step (parallel arcs already deduped,
                # but two new neighbours can repeat across pushes).
                new = np.unique(new)
                visited[new] = True
                frontier.extend(int(x) for x in new)
    return out
