"""Micro-benchmarks of the library's hot paths.

Unlike the experiment benches (single-shot jobs), these run under
pytest-benchmark's statistical timing and track the per-operation
throughput of the kernels everything else is built on: the streaming
score loop, the reduceat gather, walker stepping, and cut accounting.
Useful for catching performance regressions in the vectorised cores.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engines.gemini.vertex_program import neighbor_sum
from repro.engines.knightking.transition import arcs_exist, uniform_neighbor
from repro.graph import social_graph
from repro.partition._streamcore import default_alpha, stream_partition
from repro.partition.kernels import available_kernels
from repro.partition.ldg import LDGPartitioner
from repro.partition.metrics import edge_cut_ratio


@pytest.fixture(scope="module")
def g():
    return social_graph(10_000, 16.0, 2.2, rng=1)


def test_stream_partition_pass(benchmark, g):
    """One Fennel-style streaming pass over 10k vertices (auto kernel)."""
    weights = np.ones(g.num_vertices)
    alpha = default_alpha(g, 8)
    benchmark(
        stream_partition,
        g,
        8,
        vertex_weights=weights,
        alpha=alpha,
    )


@pytest.mark.parametrize("kernel", available_kernels())
def test_stream_partition_kernel(benchmark, g, kernel):
    """The same pass per backend — the speedup ledger the kernel layer
    is accountable to (see BENCH_hotpaths.json for the recorded trail)."""
    weights = np.ones(g.num_vertices)
    alpha = default_alpha(g, 8)
    benchmark(
        stream_partition,
        g,
        8,
        vertex_weights=weights,
        alpha=alpha,
        kernel=kernel,
    )


@pytest.mark.parametrize("kernel", available_kernels())
def test_ldg_kernel(benchmark, g, kernel):
    """LDG served by the shared kernel layer, per backend."""
    benchmark(lambda: LDGPartitioner(kernel=kernel).partition(g, 8))


def test_neighbor_sum_gather(benchmark, g):
    """The reduceat-over-CSR gather used by every iteration app."""
    values = np.random.default_rng(0).random(g.num_vertices)
    benchmark(neighbor_sum, g, values)


def test_walker_step_batch(benchmark, g):
    """One vectorised uniform step for 50k walkers."""
    rng = np.random.default_rng(1)
    pos = rng.integers(0, g.num_vertices, size=50_000)
    benchmark(uniform_neighbor, g, pos, rng)


def test_arcs_exist_batch(benchmark, g):
    """Batched binary-search adjacency test (node2vec's inner check)."""
    rng = np.random.default_rng(2)
    src = rng.integers(0, g.num_vertices, size=50_000)
    dst = rng.integers(0, g.num_vertices, size=50_000)
    benchmark(arcs_exist, g, src, dst)


def test_edge_cut_accounting(benchmark, g):
    """Cut-ratio computation over all arcs."""
    parts = np.arange(g.num_vertices) % 8
    benchmark(edge_cut_ratio, g, parts)
