"""Machine-checkable paper claims.

EXPERIMENTS.md records paper-vs-measured numbers; this module turns the
paper's *qualitative* claims — the statements that must hold for the
reproduction to count — into executable checks. ``repro-bench
validate`` runs them all and prints PASS/FAIL per claim, giving a
one-command answer to "does this reproduction still reproduce?".

Each claim runs on freshly generated stand-ins at the requested scale,
so the suite doubles as an end-to-end regression gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bench.harness import ExperimentConfig
from repro.bench.workloads import run_app, run_walk_job
from repro.graph.datasets import load_dataset
from repro.bench.artifacts import get_assignment
from repro.partition.metrics import bias, edge_cut_ratio, jains_fairness

__all__ = ["Claim", "ClaimResult", "all_claims", "check_claims"]


@dataclass(frozen=True)
class Claim:
    """One falsifiable statement from the paper."""

    claim_id: str
    statement: str
    source: str  # paper section/figure
    check: Callable[[ExperimentConfig], tuple[bool, str]]


@dataclass(frozen=True)
class ClaimResult:
    claim: Claim
    passed: bool
    evidence: str

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.claim.claim_id} ({self.claim.source}): " \
               f"{self.claim.statement}\n       {self.evidence}"


def _partitions(config: ExperimentConfig, dataset: str, k: int):
    g = load_dataset(dataset, scale=config.scale, seed=config.seed)
    return g, {
        name: get_assignment(g, name, num_parts=k, seed=config.seed)
        for name in ("chunk-v", "chunk-e", "fennel", "hash", "bpart")
    }


def _c1_two_dimensional_balance(config):
    worst = 0.0
    for dataset in ("livejournal", "twitter", "friendster"):
        g = load_dataset(dataset, scale=config.scale, seed=config.seed)
        for k in (4, 8, 16):
            a = get_assignment(g, "bpart", num_parts=k, seed=config.seed)
            worst = max(worst, bias(a.vertex_counts), bias(a.edge_counts))
    return worst < 0.1, f"worst BPart bias over 9 (graph, k) cells: {worst:.4f} (< 0.1)"


def _c2_one_dimensional_skew(config):
    g, parts = _partitions(config, "twitter", 8)
    cv = bias(parts["chunk-v"].edge_counts)
    ce = bias(parts["chunk-e"].vertex_counts)
    fe = bias(parts["fennel"].edge_counts)
    ok = min(cv, ce, fe) > 1.0
    return ok, f"chunk-v edge bias {cv:.2f}, chunk-e vertex bias {ce:.2f}, fennel edge bias {fe:.2f} (all > 1)"


def _c3_hash_cut(config):
    g, parts = _partitions(config, "twitter", 8)
    cut = edge_cut_ratio(g, parts["hash"].parts)
    return abs(cut - 7 / 8) < 0.02, f"hash cut {cut:.4f} ≈ 7/8"


def _c4_cut_ordering(config):
    results = {}
    for dataset in ("livejournal", "twitter", "friendster"):
        g, parts = _partitions(config, dataset, 8)
        cuts = {n: edge_cut_ratio(g, a.parts) for n, a in parts.items()}
        results[dataset] = cuts["fennel"] < cuts["bpart"] < cuts["hash"] + 0.01
    ok = all(results.values())
    return ok, f"fennel < bpart < hash per dataset: {results}"


def _c5_fairness_stability(config):
    g = load_dataset("twitter", scale=config.scale, seed=config.seed)
    worst = 1.0
    tested = []
    dmax = int(g.degrees.max()) if g.num_vertices else 0
    for k in (8, 32, 128):
        # Granularity gate: no partitioner can balance edges once a
        # single hub exceeds half a part's edge budget. At full dataset
        # scale every k here is feasible; at reduced scales infeasible
        # k's are skipped rather than reported as (unfixable) failures.
        if k > g.num_vertices or dmax > 0.5 * g.num_edges / k:
            continue
        tested.append(k)
        a = get_assignment(g, "bpart", num_parts=k, seed=config.seed)
        worst = min(worst, jains_fairness(a.vertex_counts), jains_fairness(a.edge_counts))
    return worst > 0.99, (
        f"worst BPart fairness over feasible k {tested}: {worst:.4f} (> 0.99)"
    )


def _c6_waiting_reduction(config):
    g, parts = _partitions(config, "friendster", 8)
    ratios = {}
    for name in ("chunk-v", "chunk-e", "fennel", "bpart"):
        walk = run_walk_job(
            g, parts[name], app_name="deepwalk", walkers_per_vertex=5, seed=config.seed
        )
        ratios[name] = walk.ledger.waiting_ratio
    ok = all(ratios["bpart"] < ratios[n] for n in ("chunk-v", "chunk-e", "fennel"))
    pretty = {n: round(r, 3) for n, r in ratios.items()}
    return ok, f"waiting ratios {pretty}: bpart lowest"


def _c7_runtime_wins(config):
    g, parts = _partitions(config, "twitter", 8)
    losses = []
    for app in ("deepwalk", "pagerank"):
        runtimes = {
            name: run_app(app, g, a, seed=config.seed).runtime
            for name, a in parts.items()
        }
        if runtimes["bpart"] != min(runtimes.values()):
            losses.append(app)
    return not losses, f"bpart fastest on deepwalk+pagerank (losses: {losses or 'none'})"


def _c8_inverse_proportionality(config):
    from repro.partition.bpart import weighted_stream_partition

    g = load_dataset("twitter", scale=config.scale, seed=config.seed)
    pieces = weighted_stream_partition(g, 16, c=0.5)
    vc = np.bincount(pieces, minlength=16)
    ec = np.bincount(pieces, weights=g.degrees, minlength=16)
    corr = float(np.corrcoef(vc, ec)[0, 1])
    return corr < -0.5, f"corr(|Vi|, |Ei|) at 16 weighted pieces: {corr:.3f} (< −0.5)"


def _c9_connectivity(config):
    from repro.partition.bpart import weighted_stream_partition
    from repro.partition.metrics import connectivity_matrix

    g = load_dataset("friendster", scale=config.scale, seed=config.seed)
    k = min(64, g.num_vertices // 4)
    pieces = weighted_stream_partition(g, k, c=0.5)
    conn = connectivity_matrix(g, pieces, k)
    off = conn[~np.eye(k, dtype=bool)]
    return int((off == 0).sum()) == 0, (
        f"min inter-piece arcs at {k} pieces: {int(off.min())} (no empty pairs)"
    )


def all_claims() -> list[Claim]:
    """The paper's core claims, in presentation order."""
    return [
        Claim("C1", "BPart is balanced in both dimensions (bias < 0.1)", "Fig 10", _c1_two_dimensional_balance),
        Claim("C2", "1-D balanced schemes skew the other dimension (bias > 1)", "Fig 3/6", _c2_one_dimensional_skew),
        Claim("C3", "Hash cuts (k−1)/k of all edges", "Table 3", _c3_hash_cut),
        Claim("C4", "Cut ordering Fennel < BPart < Hash", "Table 3", _c4_cut_ordering),
        Claim("C5", "BPart fairness ≈ 1 up to 128 subgraphs", "Fig 11", _c5_fairness_stability),
        Claim("C6", "BPart has the lowest BSP waiting ratio", "Fig 13", _c6_waiting_reduction),
        Claim("C7", "BPart is fastest end-to-end (walks and PageRank)", "Fig 14", _c7_runtime_wins),
        Claim("C8", "Weighted pieces are inversely proportional in |V|/|E|", "Fig 8", _c8_inverse_proportionality),
        Claim("C9", "Over-split pieces stay pairwise connected", "§3.3", _c9_connectivity),
    ]


def check_claims(
    config: ExperimentConfig | None = None, *, claims: list[Claim] | None = None
) -> list[ClaimResult]:
    """Run all (or the given) claims; never raises on claim failure."""
    config = config if config is not None else ExperimentConfig()
    results = []
    for claim in claims if claims is not None else all_claims():
        try:
            passed, evidence = claim.check(config)
        except Exception as exc:  # a crashed check is a failed claim
            passed, evidence = False, f"check raised {type(exc).__name__}: {exc}"
        results.append(ClaimResult(claim=claim, passed=passed, evidence=evidence))
    return results
