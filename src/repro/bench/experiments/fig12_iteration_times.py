"""Figure 12 — per-machine computation time per iteration (Friendster, 8 machines).

Random walk job (5|V| walks × 4 steps). The paper shows Fennel/Chunk-V/
Chunk-E with highly imbalanced per-iteration compute times and BPart
nearly flat across machines in every iteration.
"""

from __future__ import annotations

from repro.bench.experiments._common import graph_for, partition_with
from repro.bench.harness import ExperimentConfig, ExperimentResult, register_experiment
from repro.bench.report import Table
from repro.bench.workloads import run_walk_job
from repro.partition.metrics import bias

ALGOS = ("chunk-v", "chunk-e", "fennel", "bpart")
K = 8


@register_experiment("fig12", "Per-machine compute time per iteration (Friendster, 8 machines)")
def run(config: ExperimentConfig) -> ExperimentResult:
    g = graph_for(config, "friendster")
    result = ExperimentResult(
        "fig12", "Per-machine compute time per iteration (Friendster, 8 machines)"
    )
    table = Table(
        "Compute microseconds per machine per iteration (simulated)",
        ["algorithm", "iteration"] + [f"M{i}" for i in range(K)] + ["bias"],
        note="1-D algorithms: large gaps every iteration; BPart: flat",
    )
    for name in ALGOS:
        a = partition_with(name, g, K, seed=config.seed).assignment
        walk = run_walk_job(
            g, a, app_name="deepwalk", walkers_per_vertex=5, seed=config.seed
        )
        compute = walk.ledger.compute_matrix
        for it in range(compute.shape[0]):
            table.add_row(
                name, it, *[float(x) * 1e6 for x in compute[it]], bias(compute[it])
            )
        result.data[name] = compute.tolist()
    result.tables.append(table)
    return result
