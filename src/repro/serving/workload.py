"""Deterministic request-workload generation for the serving layer.

The serving simulator is open-loop: users issue queries at a fixed
aggregate Poisson rate regardless of how the cluster is coping, which
is the regime where tail latency actually reveals partition quality
(closed-loop clients self-throttle and hide the queues). The workload
has the two statistical features that make partitioning matter:

- **Zipf popularity over degree rank.** Hot vertices are hubs, so the
  machines hosting hub-heavy parts absorb a disproportionate share of
  the traffic *and* each of their queries touches more edges — exactly
  the compounding imbalance BPart's two-dimensional balancing targets.
- **Community-biased locality.** A fraction of each user's queries
  lands in a small id-window around their home vertex. The synthetic
  datasets embed community structure in id-locality (see
  :func:`repro.graph.generators.social_graph`), so contiguous
  partitioners keep a user's session on one machine while hash scatters
  it.

Everything is a pure function of (spec, graph): the spec serialises to
a canonical ``workload/v1`` JSON document with a SHA-256 digest, and
:meth:`WorkloadSpec.generate` derives all randomness from the spec's
seed via :func:`repro.utils.rng.derive_rng`. Same spec + same graph ⇒
byte-identical trace arrays.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive

__all__ = ["WorkloadSpec", "QueryTrace", "KIND_KHOP", "KIND_WALK"]

WORKLOAD_SCHEMA = "workload/v1"

#: query kinds, stored as a compact uint8 column in the trace.
KIND_KHOP = 0
KIND_WALK = 1

# Salts for the independent stochastic stages of generation.
_SALT_ARRIVALS = 0x5E41
_SALT_USERS = 0x5E42
_SALT_HOMES = 0x5E43
_SALT_TARGETS = 0x5E44
_SALT_KINDS = 0x5E45


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of one serving workload.

    Attributes
    ----------
    users:       number of simulated users (each with a Zipf-drawn home
                 vertex).
    duration:    simulated seconds of traffic.
    rate:        aggregate arrival rate, queries/second (open loop).
    zipf_s:      Zipf exponent of vertex popularity over degree rank
                 (s > 1 concentrates traffic on hubs).
    locality:    probability a query targets the user's community
                 window rather than a fresh popularity draw.
    window_frac: community window half-width as a fraction of ``n``.
    walk_frac:   fraction of queries that are short random walks; the
                 rest are k-hop neighbourhood reads.
    khop:        neighbourhood radius of read queries (1 or 2).
    khop_cap:    max sampled hop-1 neighbours expanded at hop 2.
    walk_steps:  steps per walk query.
    seed:        master seed; all generation randomness derives from it.
    """

    users: int = 2000
    duration: float = 2.0
    rate: float = 4000.0
    zipf_s: float = 1.1
    locality: float = 0.6
    window_frac: float = 0.02
    walk_frac: float = 0.3
    khop: int = 2
    khop_cap: int = 64
    walk_steps: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("users", self.users)
        check_positive("duration", self.duration)
        check_positive("rate", self.rate)
        check_positive("zipf_s", self.zipf_s)
        check_positive("window_frac", self.window_frac)
        check_positive("khop_cap", self.khop_cap)
        check_positive("walk_steps", self.walk_steps)
        for name in ("locality", "walk_frac"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
        if self.khop not in (1, 2):
            raise ConfigurationError(f"khop must be 1 or 2, got {self.khop!r}")

    # -- canonical serialisation ---------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready form with the schema tag."""
        return {
            "schema": WORKLOAD_SCHEMA,
            "users": int(self.users),
            "duration": float(self.duration),
            "rate": float(self.rate),
            "zipf_s": float(self.zipf_s),
            "locality": float(self.locality),
            "window_frac": float(self.window_frac),
            "walk_frac": float(self.walk_frac),
            "khop": int(self.khop),
            "khop_cap": int(self.khop_cap),
            "walk_steps": int(self.walk_steps),
            "seed": int(self.seed),
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, compact separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 of the canonical JSON — the workload's identity."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    @classmethod
    def from_json(cls, text: str) -> "WorkloadSpec":
        """Parse a ``workload/v1`` document (schema tag required)."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid workload JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise ConfigurationError("workload document must be a JSON object")
        schema = doc.pop("schema", None)
        if schema != WORKLOAD_SCHEMA:
            raise ConfigurationError(
                f"unsupported workload schema {schema!r}; expected {WORKLOAD_SCHEMA!r}"
            )
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(doc) - known
        if unknown:
            raise ConfigurationError(f"unknown workload fields: {sorted(unknown)}")
        return cls(**doc)

    # -- generation ----------------------------------------------------
    def generate(self, graph: CSRGraph) -> "QueryTrace":
        """Materialise the arrival trace for ``graph``.

        Deterministic given (spec, graph): every stage draws from its
        own salted generator, so changing one knob never perturbs the
        streams of the others.
        """
        n = graph.num_vertices
        if n == 0:
            raise ConfigurationError("cannot generate a workload on an empty graph")

        # Open-loop Poisson arrivals: exponential interarrivals, summed,
        # clipped to the duration. Oversample so truncation, not
        # exhaustion, decides the query count.
        rng = derive_rng(self.seed, _SALT_ARRIVALS)
        expect = self.rate * self.duration
        draw = int(np.ceil(expect + 6.0 * np.sqrt(expect + 1.0))) + 16
        gaps = rng.exponential(1.0 / self.rate, size=draw)
        times = np.cumsum(gaps)
        times = times[times < self.duration]
        q = times.size
        if q == 0:
            raise ConfigurationError(
                f"workload produced zero arrivals (rate={self.rate}, "
                f"duration={self.duration}); raise rate or duration"
            )

        # Popularity: Zipf over degree rank. argsort is made total by
        # the stable kind + index tiebreak, so equal-degree vertices
        # rank deterministically.
        order = np.argsort(-graph.degrees, kind="stable").astype(np.int64)
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-self.zipf_s)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]

        def zipf_vertices(generator: np.random.Generator, count: int) -> np.ndarray:
            idx = np.searchsorted(cdf, generator.random(count), side="left")
            return order[np.minimum(idx, n - 1)]

        homes = zipf_vertices(derive_rng(self.seed, _SALT_HOMES), self.users)

        user_rng = derive_rng(self.seed, _SALT_USERS)
        user = user_rng.integers(0, self.users, size=q).astype(np.int64)

        target_rng = derive_rng(self.seed, _SALT_TARGETS)
        vertex = zipf_vertices(target_rng, q)
        local = target_rng.random(q) < self.locality
        window = max(1, int(self.window_frac * n))
        offsets = target_rng.integers(-window, window + 1, size=q)
        near_home = np.clip(homes[user] + offsets, 0, n - 1)
        vertex = np.where(local, near_home, vertex).astype(np.int64)

        kind_rng = derive_rng(self.seed, _SALT_KINDS)
        kind = np.where(
            kind_rng.random(q) < self.walk_frac, KIND_WALK, KIND_KHOP
        ).astype(np.uint8)

        for arr in (times, user, vertex, kind):
            arr.setflags(write=False)
        return QueryTrace(spec=self, times=times, user=user, vertex=vertex, kind=kind)


@dataclass(frozen=True)
class QueryTrace:
    """Generated arrival trace: parallel columns, sorted by time."""

    spec: WorkloadSpec
    times: np.ndarray  # float64, strictly increasing arrival seconds
    user: np.ndarray  # int64 user id per query
    vertex: np.ndarray  # int64 target vertex per query
    kind: np.ndarray  # uint8 KIND_KHOP / KIND_WALK

    @property
    def num_queries(self) -> int:
        """Number of arrivals in the trace."""
        return int(self.times.size)

    def fingerprint(self) -> str:
        """Content hash over the spec digest and all trace columns."""
        h = hashlib.sha256()
        h.update(b"querytrace-v1:")
        h.update(self.spec.digest().encode("ascii"))
        for arr in (self.times, self.user, self.vertex, self.kind):
            h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()
