"""End-to-end resilience tests: chaos plans against the real pipeline.

Every test here follows the same pattern — run the suite (or the
artifact store) with a seeded fault-injection plan and assert that it
*completes with the same results* as a clean run, plus the expected
accounting (attempts, wall time, telemetry counters). The chaos plans
are deterministic, so these tests assert recovery, not luck.
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.bench.artifacts import get_store
from repro.bench.harness import ExperimentConfig
from repro.bench.runner import WORKER_CHAOS_SITE, config_digest, run_suite
from repro.resilience import ChaosPlan, ChaosRule, JsonlJournal, install_plan

TINY = ExperimentConfig(scale=0.05, seed=3)
IDS = ["fig03", "fig06"]


def _payloads(outcomes):
    return {o.experiment_id: o.payload() for o in outcomes}


_CLEAN: dict = {}


@pytest.fixture
def clean_payloads():
    """Fault-free reference results, memoised across tests.

    A plain function-scoped fixture (not module-scoped) so the clean run
    executes inside the hermetic cache/telemetry/chaos fixtures; the
    payload dicts themselves are deterministic and safe to share.
    """
    if not _CLEAN:
        _CLEAN.update(_payloads(run_suite(IDS, TINY, jobs=1)))
    return dict(_CLEAN)


class TestWorkerKillRecovery:
    def test_killed_worker_retries_to_parity(self, clean_payloads):
        install_plan(
            ChaosPlan(
                seed=1,
                rules=[
                    ChaosRule(
                        site=WORKER_CHAOS_SITE, kind="kill", match="fig03", max_fires=1
                    )
                ],
            )
        )
        outcomes = run_suite(IDS, TINY, jobs=2, retries=2)
        by_id = {o.experiment_id: o for o in outcomes}
        assert all(o.ok for o in outcomes), [o.error for o in outcomes]
        assert by_id["fig03"].attempts == 2  # killed once, then recovered
        assert by_id["fig06"].attempts == 1
        assert _payloads(outcomes) == clean_payloads

    def test_exhausted_retries_report_attempts_and_wall_time(self):
        telemetry.set_enabled(True)
        install_plan(
            ChaosPlan(
                rules=[
                    ChaosRule(
                        site=WORKER_CHAOS_SITE,
                        kind="kill",
                        match="fig03",
                        max_fires=999,
                    )
                ]
            )
        )
        outcomes = run_suite(IDS, TINY, jobs=2, retries=1, breaker_threshold=10)
        by_id = {o.experiment_id: o for o in outcomes}
        failed = by_id["fig03"]
        assert not failed.ok
        assert "fig03" in failed.error
        assert "worker died" in failed.error
        assert "attempt 2/2" in failed.error
        assert failed.wall_seconds > 0  # parent-measured, never 0.0
        assert failed.attempts == 2
        assert by_id["fig06"].ok
        reg = telemetry.registry()
        assert reg.counter("bench.runner.worker_deaths").value == 2
        assert reg.counter("bench.runner.requeues").value == 1


class TestHangTimeout:
    def test_hung_worker_is_killed_within_the_bound(self):
        telemetry.set_enabled(True)
        install_plan(
            ChaosPlan(
                rules=[
                    ChaosRule(
                        site=WORKER_CHAOS_SITE,
                        kind="hang",
                        match="fig03",
                        max_fires=999,
                        hang_seconds=120.0,
                    )
                ]
            )
        )
        outcomes = run_suite(
            IDS, TINY, jobs=2, timeout=3.0, retries=0, breaker_threshold=10
        )
        by_id = {o.experiment_id: o for o in outcomes}
        hung = by_id["fig03"]
        assert hung.timed_out
        assert not hung.ok
        assert "timed out after 3s" in hung.error
        assert "attempt 1/1" in hung.error
        assert 3.0 <= hung.wall_seconds < 60.0  # bounded, not the 120s hang
        assert by_id["fig06"].ok  # the hang never blocked its sibling
        assert telemetry.registry().counter("bench.runner.timeouts").value == 1

    def test_timeout_then_retry_recovers(self, clean_payloads):
        install_plan(
            ChaosPlan(
                rules=[
                    ChaosRule(
                        site=WORKER_CHAOS_SITE,
                        kind="hang",
                        match="fig06",
                        max_fires=1,
                        hang_seconds=120.0,
                    )
                ]
            )
        )
        outcomes = run_suite(
            IDS, TINY, jobs=2, timeout=3.0, retries=1, breaker_threshold=10
        )
        by_id = {o.experiment_id: o for o in outcomes}
        assert all(o.ok for o in outcomes), [o.error for o in outcomes]
        assert by_id["fig06"].attempts == 2
        assert _payloads(outcomes) == clean_payloads


class TestBreakerDegradation:
    def test_pool_that_keeps_dying_degrades_to_serial(self, clean_payloads):
        telemetry.set_enabled(True)
        install_plan(
            ChaosPlan(
                rules=[ChaosRule(site=WORKER_CHAOS_SITE, kind="kill", max_fires=999)]
            )
        )
        outcomes = run_suite(IDS, TINY, jobs=2, retries=2, breaker_threshold=2)
        # Every worker attempt dies; the breaker trips and the serial
        # in-process fallback (where the worker chaos site never fires)
        # still completes the whole suite with correct results.
        assert all(o.ok for o in outcomes), [o.error for o in outcomes]
        assert _payloads(outcomes) == clean_payloads
        reg = telemetry.registry()
        assert reg.counter("bench.runner.degraded").value == 1
        assert reg.counter("resilience.breaker_trips", site="bench.runner").value == 1
        assert reg.counter("bench.runner.worker_deaths").value >= 2


class TestJournalResume:
    def test_resume_skips_successful_records(self, tmp_path):
        telemetry.set_enabled(True)
        journal = JsonlJournal(tmp_path / "journal.jsonl")
        first = run_suite(["fig03"], TINY, journal=journal)
        assert first[0].ok

        second = run_suite(IDS, TINY, journal=journal, resume=True)
        by_id = {o.experiment_id: o for o in second}
        assert by_id["fig03"].resumed
        assert not by_id["fig06"].resumed
        assert by_id["fig03"].payload() == first[0].payload()
        assert by_id["fig03"].render() == first[0].render()
        assert telemetry.registry().counter("bench.runner.resumed").value == 1

    def test_resume_ignores_other_configs_and_failures(self, tmp_path):
        journal = JsonlJournal(tmp_path / "journal.jsonl")
        digest = config_digest(TINY)
        journal.append(
            {"experiment_id": "fig03", "config": "other-config", "ok": True}
        )
        journal.append(
            {"experiment_id": "fig06", "config": digest, "ok": False, "error": "x"}
        )
        outcomes = run_suite(IDS, TINY, journal=journal, resume=True)
        assert not any(o.resumed for o in outcomes)  # both re-ran
        assert all(o.ok for o in outcomes)

    def test_resume_after_torn_journal_line(self, tmp_path):
        journal = JsonlJournal(tmp_path / "journal.jsonl")
        run_suite(["fig03"], TINY, journal=journal)
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write('{"experiment_id": "fig06", "ok": tru')  # crash mid-append
        outcomes = run_suite(IDS, TINY, journal=journal, resume=True)
        by_id = {o.experiment_id: o for o in outcomes}
        assert by_id["fig03"].resumed
        assert by_id["fig06"].ok and not by_id["fig06"].resumed

    def test_journal_path_argument_is_coerced(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        run_suite(["fig03"], TINY, journal=str(path))
        records = JsonlJournal(path).records()
        assert len(records) == 1
        assert records[0]["experiment_id"] == "fig03"
        assert records[0]["ok"] is True
        assert records[0]["config"] == config_digest(TINY)
        assert records[0]["wall_seconds"] > 0


class TestArtifactChaos:
    def test_transient_load_ioerror_retries_to_a_hit(self, powerlaw_small):
        store = get_store()
        fp = powerlaw_small.fingerprint()
        store.store("partition", fp, "k1", {"parts": powerlaw_small.degrees})
        store._memory.clear()  # force the disk path
        install_plan(
            ChaosPlan(rules=[ChaosRule(site="artifacts.load", kind="ioerror")])
        )
        payload = store.load("partition", fp, "k1")
        assert payload is not None  # retried past the one-shot fault
        assert store.stats.hits >= 1

    def test_corrupted_file_degrades_to_recompute(self, powerlaw_small):
        store = get_store()
        fp = powerlaw_small.fingerprint()
        store.store("partition", fp, "k2", {"parts": powerlaw_small.degrees})
        store._memory.clear()
        path = store.path_for("partition", fp, "k2")
        install_plan(
            ChaosPlan(rules=[ChaosRule(site="artifacts.load", kind="corrupt")])
        )
        assert store.load("partition", fp, "k2") is None  # counted miss
        assert store.stats.errors >= 1
        assert not path.exists()  # corrupted file removed

    def test_persistent_store_ioerror_never_fatal(self, powerlaw_small):
        store = get_store()
        fp = powerlaw_small.fingerprint()
        install_plan(
            ChaosPlan(
                rules=[
                    ChaosRule(site="artifacts.store", kind="ioerror", max_fires=999)
                ]
            )
        )
        store.store("partition", fp, "k3", {"parts": powerlaw_small.degrees})
        assert store.stats.errors >= 1
        # The in-memory layer still serves the payload.
        assert store.load("partition", fp, "k3") is not None
