"""Experiment modules — one per paper table/figure. Importing this
package registers all of them with the harness."""

from repro.bench.experiments import (  # noqa: F401
    ablation_bpart,
    ablation_system,
    churn,
    connectivity,
    fig03_ratios,
    fig04_loads,
    fig05_cuts_messages,
    fig06_skew,
    fig08_weighted,
    fig10_bias,
    fig11_fairness,
    fault_recovery,
    fig12_iteration_times,
    fig13_waiting,
    fig14_apps,
    fig15_hash,
    multilevel_cmp,
    scaling,
    serving_availability,
    serving_slo,
    table2_overhead,
    table3_cuts,
    vertexcut_cmp,
)
