"""The churn experiment and the churnledger artifact kind."""

from __future__ import annotations

import pytest

from repro.bench import artifacts
from repro.bench.experiments.churn import run_daemon_ledger, scenario_for
from repro.bench.harness import ExperimentConfig, run_experiment
from repro.partition.repartition import ChurnScenario


@pytest.fixture(scope="module")
def scenario():
    return ChurnScenario(num_vertices=500, num_groups=2, churn_events=400, seed=3)


class TestChurnLedgerArtifact:
    def test_replay_returns_identical_bytes(self, scenario):
        fresh = run_daemon_ledger(scenario, num_parts=2, epoch_events=200, budget=16)
        store = artifacts.get_store()
        before = store.stats.by_kind.get("churnledger", {}).get("hits", 0)
        cached = run_daemon_ledger(scenario, num_parts=2, epoch_events=200, budget=16)
        assert store.stats.by_kind["churnledger"]["hits"] == before + 1
        assert cached.to_json() == fresh.to_json()

    def test_disk_replay_reconstructs_ledger(self, scenario):
        fresh = run_daemon_ledger(scenario, num_parts=2, epoch_events=200, budget=16)
        artifacts.reset_store()  # drop the in-memory layer
        cached = run_daemon_ledger(scenario, num_parts=2, epoch_events=200, budget=16)
        assert cached.to_json() == fresh.to_json()
        assert cached.digest() == fresh.digest()

    def test_daemon_config_is_part_of_the_key(self, scenario):
        a = run_daemon_ledger(scenario, num_parts=2, epoch_events=200, budget=16)
        b = run_daemon_ledger(scenario, num_parts=2, epoch_events=200, budget=8)
        assert a.to_json() != b.to_json()
        for rec in b.epochs:
            assert rec["migrations"] <= 8


class TestChurnExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("churn", ExperimentConfig(scale=0.25, seed=2))

    def test_reports_three_strategies(self, result):
        table = result.tables[0]
        strategies = {row[0] for row in table.rows}
        assert strategies == {"daemon", "hash", "bpart-full"}

    def test_acceptance_criteria_hold(self, result):
        ledger = result.data[("churn", "ledger")]
        daemon_ari = ledger["epochs"][-1]["ari_after"]
        assert daemon_ari > result.data[("churn", "hash_ari")]
        assert daemon_ari >= 0.9 * result.data[("churn", "bpart_ari")]
        assert "PASS" in result.notes[1] and "FAIL" not in result.notes[1]

    def test_budget_never_exceeded(self, result):
        ledger = result.data[("churn", "ledger")]
        for rec in ledger["epochs"]:
            assert rec["migrations"] <= rec["budget"]

    def test_scenario_scales_with_config(self):
        small = scenario_for(ExperimentConfig(scale=0.25, seed=2))
        big = scenario_for(ExperimentConfig(scale=1.0, seed=2))
        assert small.num_vertices < big.num_vertices
        assert small.seed == big.seed == 2
