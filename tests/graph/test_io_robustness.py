"""Robustness tests for the graph readers: malformed and truncated input."""

from __future__ import annotations

import gzip

import pytest

from repro import telemetry
from repro.errors import ConfigurationError, GraphFormatError
from repro.graph import ring_graph
from repro.graph.io import ParseIssue, read_edge_list, read_metis, write_metis


def _write(tmp_path, name, text):
    path = tmp_path / name
    if name.endswith(".gz"):
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write(text)
    else:
        path.write_text(text, encoding="utf-8")
    return path


class TestEdgeListOnError:
    BAD = "# comment\n0 1\nnot numbers\n1 2\n3\n-1 4\n2 0\n"

    def test_raise_mode_reports_path_and_lineno(self, tmp_path):
        path = _write(tmp_path, "bad.txt", self.BAD)
        with pytest.raises(GraphFormatError, match=rf"{path}:3: non-integer"):
            read_edge_list(path)

    def test_skip_mode_drops_bad_lines(self, tmp_path):
        telemetry.set_enabled(True)
        path = _write(tmp_path, "bad.txt", self.BAD)
        g = read_edge_list(path, on_error="skip")
        assert g.num_undirected_edges == 3  # 0-1, 1-2, 2-0 survive
        reg = telemetry.registry()
        assert reg.counter("graph.io.malformed_lines", mode="skip").value == 3

    def test_collect_mode_reports_what_was_dropped(self, tmp_path):
        path = _write(tmp_path, "bad.txt", self.BAD)
        issues: list[ParseIssue] = []
        g = read_edge_list(path, on_error="collect", errors=issues)
        assert g.num_undirected_edges == 3
        assert [i.lineno for i in issues] == [3, 5, 6]
        assert "non-integer" in issues[0].message
        assert "expected 'u v'" in issues[1].message
        assert "negative vertex id" in issues[2].message
        assert str(issues[0]).startswith(f"{path}:3:")

    def test_negative_id_raises_with_lineno(self, tmp_path):
        path = _write(tmp_path, "neg.txt", "0 1\n-2 3\n")
        with pytest.raises(GraphFormatError, match=r":2: negative vertex id"):
            read_edge_list(path)

    def test_gzip_round_trip_clean(self, tmp_path):
        path = _write(tmp_path, "ok.txt.gz", "0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_undirected_edges == 2

    def test_truncated_gzip_raise_mode(self, tmp_path):
        full = _write(tmp_path, "full.txt.gz", "0 1\n" * 500)
        cut = tmp_path / "cut.txt.gz"
        cut.write_bytes(full.read_bytes()[:-10])
        with pytest.raises(GraphFormatError, match="unreadable input"):
            read_edge_list(cut)

    def test_truncated_gzip_skip_mode_keeps_prefix(self, tmp_path):
        lines = "".join(f"{i} {i + 1}\n" for i in range(500))
        full = _write(tmp_path, "full.txt.gz", lines)
        cut = tmp_path / "cut.txt.gz"
        raw = full.read_bytes()
        cut.write_bytes(raw[: len(raw) // 2])
        issues: list[ParseIssue] = []
        g = read_edge_list(cut, on_error="collect", errors=issues)
        assert 0 < g.num_undirected_edges < 500  # the readable prefix
        assert len(issues) == 1
        assert "unreadable input" in issues[0].message

    def test_invalid_mode_rejected(self, tmp_path):
        path = _write(tmp_path, "ok.txt", "0 1\n")
        with pytest.raises(ConfigurationError, match="on_error"):
            read_edge_list(path, on_error="ignore")

    def test_collect_requires_errors_list(self, tmp_path):
        path = _write(tmp_path, "ok.txt", "0 1\n")
        with pytest.raises(ConfigurationError, match="errors"):
            read_edge_list(path, on_error="collect")


class TestMetisRobustness:
    def test_round_trip_still_works(self, tmp_path):
        g = ring_graph(12)
        path = tmp_path / "ring.metis"
        write_metis(g, path)
        h = read_metis(path)
        assert h.num_vertices == 12
        assert h.num_undirected_edges == g.num_undirected_edges

    def test_short_header_raises(self, tmp_path):
        path = _write(tmp_path, "g.metis", "5\n")
        with pytest.raises(GraphFormatError, match=r":1: bad METIS header"):
            read_metis(path)

    def test_non_integer_header_raises_with_location(self, tmp_path):
        path = _write(tmp_path, "g.metis", "five 4\n")
        with pytest.raises(GraphFormatError, match=r":1: non-integer METIS header"):
            read_metis(path)

    def test_negative_header_raises(self, tmp_path):
        path = _write(tmp_path, "g.metis", "3 -1\n\n\n\n")
        with pytest.raises(GraphFormatError, match=r":1: negative count"):
            read_metis(path)

    def test_non_integer_neighbor_raises_with_lineno(self, tmp_path):
        path = _write(tmp_path, "g.metis", "2 1\n2\nx\n")
        with pytest.raises(GraphFormatError, match=r":3: non-integer neighbor id 'x'"):
            read_metis(path)

    def test_zero_neighbor_rejected_as_zero_indexed(self, tmp_path):
        # A 0-indexed exporter: vertex ids 0/1 instead of 1/2.
        path = _write(tmp_path, "g.metis", "2 1\n1\n0\n")
        with pytest.raises(GraphFormatError, match=r":3: non-positive neighbor id 0"):
            read_metis(path)

    def test_header_edge_count_validated_against_body(self, tmp_path):
        # Header claims 5 edges; the body encodes one (two arcs).
        path = _write(tmp_path, "g.metis", "2 5\n2\n1\n")
        with pytest.raises(GraphFormatError, match="header claims 5 edges"):
            read_metis(path)

    def test_truncated_body_raise_mode(self, tmp_path):
        path = _write(tmp_path, "g.metis", "3 2\n2\n1 3\n")
        with pytest.raises(GraphFormatError, match="truncated: adjacency for vertex 2"):
            read_metis(path)

    def test_truncated_body_collect_mode_keeps_prefix(self, tmp_path):
        path = _write(tmp_path, "g.metis", "3 2\n2\n1 3\n")
        issues: list[ParseIssue] = []
        g = read_metis(path, on_error="collect", errors=issues)
        assert g.num_vertices == 3
        # Vertex 2's line is missing, so its arcs are missing too: both
        # the truncation and the resulting count mismatch are reported.
        assert any("truncated" in i.message for i in issues)
        assert any("header claims" in i.message for i in issues)

    def test_skip_mode_drops_bad_tokens(self, tmp_path):
        telemetry.set_enabled(True)
        path = _write(tmp_path, "g.metis", "2 1\n2 x\n1\n")
        g = read_metis(path, on_error="skip")
        assert g.num_undirected_edges == 1
        reg = telemetry.registry()
        assert reg.counter("graph.io.malformed_lines", mode="skip").value == 1
