"""Network timing model.

Models the paper's 56 Gbps Ethernet fabric with the standard
latency + size/bandwidth cost. Per superstep each machine's
communication time is the time to push its outgoing bytes onto the wire
plus the time to drain its incoming bytes, plus one synchronisation
latency — the full-duplex approximation used by most BSP cost analyses
(and consistent with how Gemini/KnightKing pipeline sends and
receives).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth network with fixed-size messages.

    Attributes
    ----------
    bandwidth:     usable bytes/second per machine NIC
                   (56 Gbps ≈ 7 GB/s raw; default assumes ~70 % goodput).
    latency:       per-superstep synchronisation latency in seconds.
    message_bytes: wire size of one message (a walker or one vertex
                   update, including headers).
    """

    bandwidth: float = 5e9
    latency: float = 50e-6
    message_bytes: int = 16

    def __post_init__(self) -> None:
        check_positive("bandwidth", self.bandwidth)
        check_nonnegative("latency", self.latency)
        check_positive("message_bytes", self.message_bytes)

    def request_cost(
        self, n_messages: np.ndarray | float, bytes_each: float | None = None
    ) -> np.ndarray | float:
        """Seconds to push ``n_messages`` of ``bytes_each`` onto the wire.

        The one wire-cost formula of the whole simulator — one latency
        plus serialisation time ``n · bytes / bandwidth`` — shared by
        the BSP barrier accounting (:meth:`comm_seconds`) and the
        request-serving layer, where a batched request pays the latency
        once over all its coalesced messages. ``bytes_each`` defaults to
        :attr:`message_bytes`. Accepts a scalar or a per-machine array;
        note that zero messages still cost the latency — callers that
        send nothing must skip the call, not pass 0.
        """
        if bytes_each is None:
            bytes_each = self.message_bytes
        check_positive("bytes_each", bytes_each)
        n = np.asarray(n_messages, dtype=np.float64)
        if (n < 0).any():
            raise ConfigurationError(f"n_messages must be non-negative, got {n_messages!r}")
        cost = self.latency + n * float(bytes_each) / self.bandwidth
        return float(cost) if np.ndim(n_messages) == 0 else cost

    def comm_seconds(self, sent: np.ndarray, received: np.ndarray) -> np.ndarray:
        """Per-machine communication seconds for one superstep.

        Parameters
        ----------
        sent, received:
            Per-machine *message counts* (not bytes) for the superstep.
        """
        sent = np.asarray(sent, dtype=np.float64)
        received = np.asarray(received, dtype=np.float64)
        # Full-duplex approximation: the busy side dominates. Machines
        # that neither send nor receive still pay the barrier latency —
        # BSP synchronises everyone — which request_cost folds in.
        return self.request_cost(np.maximum(sent, received))
