"""Figure 3 — per-subgraph |V|/|E| ratios (Twitter, 4 parts).

Chunk-V and Fennel balance vertices while edges gap up to 8x;
Chunk-E balances edges while vertices gap up to 13x.
"""


def test_fig03(run_paper_experiment):
    result = run_paper_experiment("fig03")
    assert result.tables or result.series
