"""Multi-core streaming kernel: worker-scored chunks, exact resolution.

The streaming loop is inherently sequential — every assignment feeds the
next score — but the *expensive* part of the buffered kernel is not the
decision, it is gathering each chunk's neighbour-part overlap table.
This backend fans that scoring out over a
:class:`~repro.parallel.pool.WorkerPool` while the parent resolves
chunks strictly in stream order, and stays **bit-identical** to the
``buffered`` backend (hence to ``scalar``) via a window-masking
protocol:

- The parent shares ``stream``, the inverse permutation ``spos``
  (``spos[v]`` = v's stream position), the live ``parts`` vector and
  the adjacency (dense CSR arrays via shared memory; sharded graphs are
  re-opened from their spill directory, so shard pages are shared
  through the page cache) with every worker.
- A task is ``(chunk c, base f)`` where ``f`` is the last chunk the
  parent had resolved at dispatch time.  The worker counts only *safe*
  neighbours — stream positions outside chunks ``(f, c]`` — into the
  ``B×k`` overlap table, and reports the masked (window) neighbours as
  ``(owner, vertex, position)`` pull triples.  Safe positions are
  exactly the ones the parent cannot write while the task is in flight,
  so the racy shared read is race-free by construction.
- The parent patches each vertex's row at resolution time: a pull at a
  position already resolved this pass contributes its *current* part; a
  pull at a later position of the *same chunk* contributes the chunk's
  boundary snapshot.  That reproduces the buffered kernel's
  snapshot+fixup semantics exactly — the patched row is independent of
  ``f``, i.e. of worker scheduling.

The parent's own per-vertex loop is then the throughput ceiling
(Amdahl), so it takes a fast path: per chunk, the top-2 part scores
under the chunk-boundary penalty are precomputed vectorised, and a
vertex whose margin exceeds the worst-case penalty drift since the
boundary (``best − Δ_best > second − min Δ``, a strict bound) takes its
precomputed argmax in O(1) instead of re-scoring all ``k`` parts.  The
bound is conservative, so every fast-path decision equals the exact
loop's; anything marginal (ties, pulls, saturation, NaN/inf penalties,
re-stream passes) drops to the verbatim buffered slow path.

``jobs <= 1``, unavailable shared memory, or a failed spawn delegate to
:func:`~repro.partition.kernels.buffered.fennel_buffered` unchanged; a
worker death mid-run continues serially from the current frontier
(counted in ``parallel.fallbacks``) — the output is identical either
way.
"""

from __future__ import annotations

import numpy as np

from repro.parallel import (
    SharedArrayPool,
    WorkerCrash,
    WorkerPool,
    attach_array,
    note_fallback,
    resolve_jobs,
    shm_available,
)
from repro.partition.kernels.base import KernelBackend, pow_like_numpy, register_kernel
from repro.partition.kernels.buffered import (
    _dense_gather,
    fennel_buffered,
    ldg_buffered,
)
from repro.partition.kernels.incremental import single_incremental

__all__ = ["BACKEND", "DEFAULT_PARALLEL_CHUNK", "fennel_parallel", "ldg_parallel"]

#: Chunk size for the parallel backend. Larger than the buffered
#: default: each task must amortise a pipe round-trip, and the exactness
#: protocol holds for any chunk size.
DEFAULT_PARALLEL_CHUNK = 1024

#: In-flight tasks per worker. Two keeps every worker busy while the
#: parent resolves, without letting stale-base windows grow.
_PIPELINE_DEPTH = 2

_NEG_INF = float("-inf")

_SCORE_TASK = "repro.partition.kernels.parallel_backend:_score_task"


# ----------------------------------------------------------------------
# Scoring (runs in workers; also the parent's serial-fallback scorer)
# ----------------------------------------------------------------------
def _score_chunk(gather, stream, spos, parts, c, base, chunk_size, k):
    """Overlap table + window pulls for chunk ``c`` scored at base ``f``.

    Returns ``(table, pull_owner, pull_vertex, pull_pos)``: ``table`` is
    the ``b×k`` count of *safe* assigned neighbours, and the pull arrays
    list every neighbour occurrence whose stream position lies in the
    masked window ``(f·B, (c+1)·B)`` — the parent resolves those against
    live state.
    """
    chunk = stream[c * chunk_size : (c + 1) * chunk_size]
    b = chunk.size
    lens, nbrs = gather(chunk)
    total = int(np.asarray(lens).sum())
    empty = np.empty(0, dtype=np.int64)
    if total == 0:
        return np.zeros((b, k), dtype=np.int64), empty, empty, empty
    owner = np.repeat(np.arange(b, dtype=np.int64), lens)
    nbrs = np.asarray(nbrs).astype(np.int64, copy=False)
    nbr_pos = spos[nbrs]
    window = (nbr_pos >= (base + 1) * chunk_size) & (nbr_pos < (c + 1) * chunk_size)
    safe = np.nonzero(~window)[0]
    nbr_parts = parts[nbrs[safe]].astype(np.int64, copy=False)
    valid = nbr_parts >= 0
    flat = np.bincount(owner[safe[valid]] * k + nbr_parts[valid], minlength=b * k)
    table = flat.reshape(b, k)
    widx = np.nonzero(window)[0]
    return table, owner[widx], nbrs[widx], nbr_pos[widx]


def _score_task(payload, state):  # pragma: no cover - runs in worker process
    """Worker task: open the session on first use, then score one chunk."""
    sessions = state.setdefault("kernel_sessions", {})
    sess = sessions.get(payload["sid"])
    if sess is None:
        setup = payload["setup"]
        sess = {
            "chunk_size": int(setup["chunk_size"]),
            "k": int(setup["k"]),
            "stream": attach_array(setup["stream"], state),
            "spos": attach_array(setup["spos"], state),
            "parts": attach_array(setup["parts"], state),
        }
        if setup["kind"] == "dense":
            sess["gather"] = _dense_gather(
                attach_array(setup["indptr"], state),
                attach_array(setup["indices"], state),
            )
        else:
            from repro.graph.sharded import ShardedCSRGraph

            graph = ShardedCSRGraph(setup["spill_dir"], validate=False)
            sess["graph"] = graph
            sess["gather"] = graph.gather_block
        sessions[payload["sid"]] = sess
    return _score_chunk(
        sess["gather"],
        sess["stream"],
        sess["spos"],
        sess["parts"],
        payload["c"],
        payload["base"],
        sess["chunk_size"],
        sess["k"],
    )


def _group_pulls(pull_owner, pull_vertex, pull_pos):
    """Pull triples → dict mapping chunk offset to ``(position, vertex)``."""
    if pull_owner.size == 0:
        return None
    pulls: dict[int, list] = {}
    for i, u, pu in zip(pull_owner.tolist(), pull_vertex.tolist(), pull_pos.tolist()):
        entry = pulls.get(i)
        if entry is None:
            pulls[i] = [(pu, u)]
        else:
            entry.append((pu, u))
    return pulls


# ----------------------------------------------------------------------
# Parent-side pipeline
# ----------------------------------------------------------------------
def _run_parallel(resolver, setup_extra, stream, parts, jobs, chunk_size, k):
    """Dispatch chunks round-robin, resolve strictly in stream order.

    ``resolver`` owns the sequential scoring state; its
    ``resolve_chunk(c, chunk, table, pulls, sh_parts)`` applies one
    chunk and publishes assignments into the shared parts vector.  On
    worker death the pipeline drops to in-process scoring (base = c−1)
    and continues from the same frontier — the resolver never notices.
    """
    n = stream.shape[0]
    num_chunks = -(-n // chunk_size)
    spos = np.empty(n, dtype=np.int64)
    spos[stream] = np.arange(n, dtype=np.int64)
    stream64 = stream.astype(np.int64, copy=False)

    with SharedArrayPool() as shm:
        pool = None
        try:
            setup = {
                "chunk_size": chunk_size,
                "k": k,
                "stream": shm.share("stream", stream64),
                "spos": shm.share("spos", spos),
                "parts": shm.share("parts", parts),
            }
            setup.update(setup_extra(shm))
            pool = WorkerPool(jobs)
        except (OSError, ValueError):
            note_fallback("kernel.setup")
            pool = None
        if pool is not None:
            sh_parts = shm.array("parts")
            sh_stream = shm.array("stream")
            sh_spos = shm.array("spos")
        else:
            sh_parts, sh_stream, sh_spos = parts, stream64, spos
        try:
            gather = resolver.gather
            sent = [False] * jobs
            window = jobs * _PIPELINE_DEPTH
            sid = id(resolver)
            for _ in range(resolver.passes):
                resolver.begin_pass()
                frontier = -1
                next_c = 0
                while frontier < num_chunks - 1:
                    c = frontier + 1
                    result = None
                    if pool is not None:
                        try:
                            while (
                                next_c < num_chunks
                                and next_c - frontier <= window
                            ):
                                payload = {"sid": sid, "c": next_c, "base": frontier}
                                widx = next_c % jobs
                                if not sent[widx]:
                                    payload["setup"] = setup
                                    sent[widx] = True
                                pool.submit(next_c, _SCORE_TASK, payload)
                                next_c += 1
                            result = pool.recv(c)
                        except WorkerCrash:
                            pool.close()
                            pool = None
                            note_fallback("kernel.crash")
                    if result is None:
                        result = _score_chunk(
                            gather, sh_stream, sh_spos, sh_parts,
                            c, c - 1, chunk_size, k,
                        )
                    table, po, pv, pp = result
                    chunk = sh_stream[c * chunk_size : (c + 1) * chunk_size]
                    resolver.resolve_chunk(
                        c * chunk_size, chunk, table, _group_pulls(po, pv, pp), sh_parts
                    )
                    frontier = c
        finally:
            if pool is not None:
                pool.close()
        parts[:] = sh_parts


class _FennelResolver:
    """Sequential chunk resolution with the fast-path argmax bound.

    Owns the scalar Fennel state (loads, penalties, saturation) across
    chunks and passes; ``resolve_chunk`` is semantically the buffered
    kernel's inner loop with window pulls patched in.
    """

    def __init__(
        self, gather, parts, loads, weights, *, alpha, gamma, capacity, passes
    ):
        self.gather = gather
        self.passes = int(passes)
        self._gm1 = gamma - 1.0
        self._ag = alpha * gamma
        self._capacity = capacity
        self._weights_l = weights.tolist()
        self._parts_l = parts.tolist()
        self._loads_l = loads.tolist()
        self._penalty = [self._ag * pow_like_numpy(x, self._gm1) for x in self._loads_l]
        self._saturated = [x >= capacity for x in self._loads_l]
        self._num_saturated = sum(self._saturated)
        # The O(1) fast path models pass-1 dynamics only (nothing to
        # release); re-stream passes and pre-assigned inputs use the
        # exact slow path throughout.
        self._fast_ok = not any(p >= 0 for p in self._parts_l)
        self._pass_index = -1

    @property
    def loads(self):
        return self._loads_l

    def begin_pass(self) -> None:
        self._pass_index += 1

    def resolve_chunk(self, chunk_start, chunk, table, pulls, sh_parts) -> None:
        b = chunk.size
        chunk_l = chunk.tolist()
        parts_l = self._parts_l
        loads_l = self._loads_l
        weights_l = self._weights_l
        penalty = self._penalty
        saturated = self._saturated
        capacity = self._capacity
        ag, gm1 = self._ag, self._gm1
        k = len(loads_l)
        snapshot = [parts_l[v] for v in chunk_l]

        fast = self._fast_ok and self._pass_index == 0 and self._num_saturated == 0
        if fast:
            pstart = penalty[:]
            scores = table - np.asarray(pstart)
            best = scores.argmax(axis=1)
            rows = np.arange(b)
            bestv = scores[rows, best]
            scores[rows, best] = _NEG_INF
            second = scores.max(axis=1) if k > 1 else np.full(b, _NEG_INF)
            best_l = best.tolist()
            bestv_l = bestv.tolist()
            second_l = second.tolist()
            delta = [0.0] * k
            dmin = 0.0
            dmin_idx = 0

        for i in range(b):
            v = chunk_l[i]
            pull = pulls.get(i) if pulls is not None else None
            if fast and pull is None and self._num_saturated == 0:
                choice = best_l[i]
                if bestv_l[i] - delta[choice] > second_l[i] - dmin:
                    parts_l[v] = choice
                    grown = loads_l[choice] + weights_l[v]
                    loads_l[choice] = grown
                    penalty[choice] = ag * pow_like_numpy(grown, gm1)
                    if grown >= capacity:
                        saturated[choice] = True
                        self._num_saturated += 1
                    d = penalty[choice] - pstart[choice]
                    delta[choice] = d
                    if d < dmin:
                        dmin = d
                        dmin_idx = choice
                    elif choice == dmin_idx:
                        dmin = min(delta)
                        dmin_idx = delta.index(dmin)
                    continue
            current = parts_l[v]
            if current >= 0:
                released = loads_l[current] - weights_l[v]
                loads_l[current] = released
                penalty[current] = ag * pow_like_numpy(released, gm1)
                if saturated[current] and released < capacity:
                    saturated[current] = False
                    self._num_saturated -= 1
            row = table[i].tolist()
            if pull is not None:
                P = chunk_start + i
                for pu, u in pull:
                    pp = parts_l[u] if pu < P else snapshot[pu - chunk_start]
                    if pp >= 0:
                        row[pp] += 1
            if self._num_saturated == k:
                choice = 0
                best_load = loads_l[0]
                for p in range(1, k):
                    if loads_l[p] < best_load:
                        best_load = loads_l[p]
                        choice = p
            else:
                choice = -1
                best_s = _NEG_INF
                for p in range(k):
                    if saturated[p]:
                        continue
                    s = row[p] - penalty[p]
                    if s > best_s:
                        best_s = s
                        choice = p
            parts_l[v] = choice
            grown = loads_l[choice] + weights_l[v]
            loads_l[choice] = grown
            penalty[choice] = ag * pow_like_numpy(grown, gm1)
            if not saturated[choice] and grown >= capacity:
                saturated[choice] = True
                self._num_saturated += 1
            if fast:
                d = penalty[choice] - pstart[choice]
                delta[choice] = d
                if d < dmin:
                    dmin = d
                    dmin_idx = choice
                elif choice == dmin_idx:
                    dmin = min(delta)
                    dmin_idx = delta.index(dmin)
        sh_parts[chunk] = np.fromiter(
            (parts_l[v] for v in chunk_l), dtype=sh_parts.dtype, count=b
        )


class _LDGResolver:
    """Sequential LDG resolution over worker-scored chunks (single-pass;
    mirrors :func:`~repro.partition.kernels.buffered.ldg_buffered`)."""

    passes = 1

    def __init__(self, gather, parts, loads, *, capacity):
        self.gather = gather
        self._capacity = capacity
        self._parts_l = parts.tolist()
        self._loads_l = loads.tolist()
        self._weight = [1.0 - x / capacity for x in self._loads_l]
        self._saturated = [x >= capacity for x in self._loads_l]
        self._num_saturated = sum(self._saturated)

    @property
    def loads(self):
        return self._loads_l

    def begin_pass(self) -> None:
        pass

    def resolve_chunk(self, chunk_start, chunk, table, pulls, sh_parts) -> None:
        b = chunk.size
        chunk_l = chunk.tolist()
        parts_l = self._parts_l
        loads_l = self._loads_l
        weight = self._weight
        saturated = self._saturated
        capacity = self._capacity
        k = len(loads_l)
        snapshot = [parts_l[v] for v in chunk_l]
        num_assigned = table.sum(axis=1).tolist()
        for i in range(b):
            v = chunk_l[i]
            row = table[i].tolist()
            assigned = num_assigned[i]
            pull = pulls.get(i) if pulls is not None else None
            if pull is not None:
                P = chunk_start + i
                for pu, u in pull:
                    pp = parts_l[u] if pu < P else snapshot[pu - chunk_start]
                    if pp >= 0:
                        row[pp] += 1
                        assigned += 1
            if self._num_saturated == k:
                choice = 0
                best_load = loads_l[0]
                for p in range(1, k):
                    if loads_l[p] < best_load:
                        best_load = loads_l[p]
                        choice = p
            else:
                choice = -1
                best = _NEG_INF
                if assigned:
                    for p in range(k):
                        if saturated[p]:
                            continue
                        s = row[p] * weight[p]
                        if s > best:
                            best = s
                            choice = p
                else:
                    for p in range(k):
                        if saturated[p]:
                            continue
                        if weight[p] > best:
                            best = weight[p]
                            choice = p
            parts_l[v] = choice
            grown = loads_l[choice] + 1.0
            loads_l[choice] = grown
            weight[choice] = 1.0 - grown / capacity
            if not saturated[choice] and grown >= capacity:
                saturated[choice] = True
                self._num_saturated += 1
        sh_parts[chunk] = np.fromiter(
            (parts_l[v] for v in chunk_l), dtype=sh_parts.dtype, count=b
        )


def _make_setup_extra(indptr, indices, graph):
    """How workers see the adjacency: shm segments (dense) or a re-open
    of the spill directory (sharded)."""
    if graph is not None and hasattr(graph, "spill_dir"):
        def setup_extra(shm):
            return {"kind": "sharded", "spill_dir": str(graph.spill_dir)}
    else:
        def setup_extra(shm):
            return {
                "kind": "dense",
                "indptr": shm.share("indptr", indptr),
                "indices": shm.share("indices", indices),
            }
    return setup_extra


def fennel_parallel(
    indptr,
    indices,
    stream,
    parts,
    loads,
    weights,
    *,
    alpha: float,
    gamma: float,
    capacity: float,
    passes: int,
    chunk_size: int = DEFAULT_PARALLEL_CHUNK,
    gather=None,
    graph=None,
    jobs: int | None = None,
) -> None:
    jobs = resolve_jobs(jobs)
    sharded = graph is not None and hasattr(graph, "spill_dir")
    if jobs <= 1 or not shm_available() or not (sharded or indptr is not None):
        if jobs > 1:
            note_fallback("kernel.no_shm")
        fennel_buffered(
            indptr, indices, stream, parts, loads, weights,
            alpha=alpha, gamma=gamma, capacity=capacity, passes=passes,
            gather=gather,
        )
        return
    if gather is None:
        gather = _dense_gather(indptr, indices)
    resolver = _FennelResolver(
        gather, parts, loads, weights,
        alpha=alpha, gamma=gamma, capacity=capacity, passes=passes,
    )
    _run_parallel(
        resolver,
        _make_setup_extra(indptr, indices, graph),
        stream, parts, jobs, int(chunk_size), loads.shape[0],
    )
    loads[:] = resolver.loads


def ldg_parallel(
    indptr,
    indices,
    stream,
    parts,
    loads,
    *,
    capacity: float,
    chunk_size: int = DEFAULT_PARALLEL_CHUNK,
    gather=None,
    graph=None,
    jobs: int | None = None,
) -> None:
    jobs = resolve_jobs(jobs)
    sharded = graph is not None and hasattr(graph, "spill_dir")
    if jobs <= 1 or not shm_available() or not (sharded or indptr is not None):
        if jobs > 1:
            note_fallback("kernel.no_shm")
        ldg_buffered(
            indptr, indices, stream, parts, loads,
            capacity=capacity, gather=gather,
        )
        return
    if gather is None:
        gather = _dense_gather(indptr, indices)
    resolver = _LDGResolver(gather, parts, loads, capacity=capacity)
    _run_parallel(
        resolver,
        _make_setup_extra(indptr, indices, graph),
        stream, parts, jobs, int(chunk_size), loads.shape[0],
    )
    loads[:] = resolver.loads


BACKEND = KernelBackend(
    name="parallel",
    fennel=fennel_parallel,
    ldg=ldg_parallel,
    single=single_incremental,
    exact=True,
    description=(
        f"worker-scored chunks (B={DEFAULT_PARALLEL_CHUNK}) over shared memory, "
        "exact in-order resolution; serial fallback = buffered"
    ),
)
register_kernel(BACKEND)
