"""Partition-aware block cache: LRU mechanics and telemetry counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serving import PartitionAwareCache


def test_validation():
    with pytest.raises(ConfigurationError):
        PartitionAwareCache(0)
    with pytest.raises(ConfigurationError):
        PartitionAwareCache(2, block_size=0)
    with pytest.raises(ConfigurationError):
        PartitionAwareCache(2, capacity=-1)


def test_cold_miss_then_hit():
    cache = PartitionAwareCache(1, block_size=4, capacity=8)
    fetched = cache.touch(0, np.array([0, 1, 2, 3]))  # one block
    assert fetched == 1
    assert cache.misses[0] == 4 and cache.hits[0] == 0
    fetched = cache.touch(0, np.array([2, 3]))
    assert fetched == 0
    assert cache.hits[0] == 2
    assert cache.hit_rate(0) == pytest.approx(2 / 6)


def test_per_vertex_counting_within_one_call():
    cache = PartitionAwareCache(1, block_size=4, capacity=8)
    # 3 vertices in block 0, 1 in block 1, both cold: 4 misses, 2 fetches.
    assert cache.touch(0, np.array([0, 1, 2, 4])) == 2
    assert cache.misses[0] == 4
    assert cache.miss_blocks[0] == 2


def test_lru_eviction_order():
    cache = PartitionAwareCache(1, block_size=1, capacity=2)
    cache.touch(0, np.array([10]))
    cache.touch(0, np.array([20]))
    cache.touch(0, np.array([10]))  # refresh 10 → 20 is now LRU
    cache.touch(0, np.array([30]))  # evicts 20
    assert cache.evictions[0] == 1
    assert cache.touch(0, np.array([10])) == 0  # still resident
    assert cache.touch(0, np.array([20])) == 1  # was evicted


def test_capacity_respected():
    cache = PartitionAwareCache(1, block_size=1, capacity=3)
    cache.touch(0, np.arange(100))
    assert cache.resident_blocks(0) == 3
    assert cache.evictions[0] == 97


def test_machines_isolated():
    cache = PartitionAwareCache(2, block_size=1, capacity=4)
    cache.touch(0, np.array([1, 2]))
    assert cache.touch(1, np.array([1, 2])) == 2  # cold on machine 1
    assert cache.hits[1] == 0


def test_flush():
    cache = PartitionAwareCache(1, block_size=1, capacity=8)
    cache.touch(0, np.array([1, 2, 3]))
    assert cache.flush(0) == 3
    assert cache.resident_blocks(0) == 0
    assert cache.flushes[0] == 1
    assert cache.touch(0, np.array([1])) == 1  # cold again


def test_empty_touch_is_noop():
    cache = PartitionAwareCache(1)
    assert cache.touch(0, np.array([], dtype=np.int64)) == 0
    assert cache.hit_rate() == 0.0


def test_stats_shape():
    cache = PartitionAwareCache(2, block_size=2, capacity=4)
    cache.touch(0, np.array([0, 1, 2]))
    cache.touch(0, np.array([0]))
    stats = cache.stats()
    assert stats == {
        "hits": 1,
        "misses": 3,
        "miss_blocks": 2,
        "evictions": 0,
        "flushes": 0,
        "hit_rate": 0.25,
    }


def test_reset_clears_without_counting_a_flush():
    cache = PartitionAwareCache(2, block_size=1, capacity=8)
    cache.touch(0, np.array([1, 2, 3]))
    assert cache.reset(0) == 3
    assert cache.resident_blocks(0) == 0
    assert cache.flushes[0] == 0  # recovery cold-start, not chaos
    assert cache.touch(0, np.array([1])) == 1  # cold again


# --- property-based: LRU invariants under interleaved chaos ----------

from hypothesis import given, settings
from hypothesis import strategies as st

# An op stream mixing batch touches, chaos flushes, and recovery
# resets — the exact interleaving the replicated simulator produces
# around a failover (flush on serving.cache chaos, reset after
# re-replication).
_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("touch"),
            st.integers(0, 1),
            st.lists(st.integers(0, 199), min_size=1, max_size=12),
        ),
        st.tuples(st.just("flush"), st.integers(0, 1)),
        st.tuples(st.just("reset"), st.integers(0, 1)),
    ),
    max_size=60,
)


def _apply(ops, *, block_size=4, capacity=6):
    cache = PartitionAwareCache(2, block_size=block_size, capacity=capacity)
    observed = []
    for op in ops:
        if op[0] == "touch":
            observed.append(cache.touch(op[1], np.asarray(op[2], dtype=np.int64)))
        elif op[0] == "flush":
            observed.append(cache.flush(op[1]))
        else:
            observed.append(cache.reset(op[1]))
    return cache, observed


class TestCacheProperties:
    @settings(max_examples=80, deadline=None)
    @given(ops=_OPS)
    def test_size_bound_holds_under_any_interleaving(self, ops):
        cache, _ = _apply(ops)
        for m in (0, 1):
            assert 0 <= cache.resident_blocks(m) <= cache.capacity

    @settings(max_examples=80, deadline=None)
    @given(ops=_OPS, extra=st.integers(0, 199))
    def test_hit_after_insert_within_capacity(self, ops, extra):
        cache, _ = _apply(ops)
        # touching a vertex makes its block resident: an immediate
        # re-touch of the same vertex is always a hit.
        cache.touch(0, np.array([extra]))
        hits_before = int(cache.hits[0])
        fetched = cache.touch(0, np.array([extra]))
        assert fetched == 0
        assert int(cache.hits[0]) == hits_before + 1

    @settings(max_examples=80, deadline=None)
    @given(ops=_OPS)
    def test_eviction_order_is_lru(self, ops):
        # Reference model: an ordered list with move-to-end on hit,
        # evict-from-front on overflow, per machine.
        cache, _ = _apply(ops)
        model = [[], []]
        for op in ops:
            if op[0] == "touch":
                m = op[1]
                blocks = sorted(set(v // cache.block_size for v in op[2]))
                for b in blocks:
                    if b in model[m]:
                        model[m].remove(b)
                    model[m].append(b)
                while len(model[m]) > cache.capacity:
                    model[m].pop(0)
            else:
                model[op[1]] = []
        for m in (0, 1):
            assert list(cache._blocks[m]) == model[m]

    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS)
    def test_same_op_stream_gives_identical_counter_sequences(self, ops):
        cache_a, seq_a = _apply(ops)
        cache_b, seq_b = _apply(ops)
        assert seq_a == seq_b
        assert cache_a.stats() == cache_b.stats()
        assert cache_a.hits.tolist() == cache_b.hits.tolist()
        assert cache_a.evictions.tolist() == cache_b.evictions.tolist()

    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS)
    def test_stats_are_consistent(self, ops):
        cache, observed = _apply(ops)
        stats = cache.stats()
        touches = [o for op, o in zip(ops, observed) if op[0] == "touch"]
        assert stats["miss_blocks"] == sum(touches)
        total = stats["hits"] + stats["misses"]
        assert stats["hit_rate"] == (stats["hits"] / total if total else 0.0)
