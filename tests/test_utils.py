"""Unit tests for the utils package."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils import (
    Timer,
    WallClock,
    as_rng,
    check_fraction,
    check_nonnegative,
    check_positive,
    check_probability,
    derive_rng,
    spawn_rngs,
    splitmix64,
)
from repro.utils.rng import hash_u64


class TestRng:
    def test_as_rng_from_int(self):
        a, b = as_rng(42), as_rng(42)
        assert a.integers(0, 1000) == b.integers(0, 1000)

    def test_as_rng_passthrough(self):
        g = np.random.default_rng(1)
        assert as_rng(g) is g

    def test_as_rng_none(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_derive_rng_independent(self):
        a = derive_rng(7, 1)
        b = derive_rng(7, 2)
        assert a.integers(0, 2**31) != b.integers(0, 2**31)

    def test_derive_rng_deterministic(self):
        assert derive_rng(7, 3).integers(0, 2**31) == derive_rng(7, 3).integers(0, 2**31)

    def test_spawn_rngs(self):
        rngs = spawn_rngs(9, 4)
        assert len(rngs) == 4
        draws = {int(r.integers(0, 2**31)) for r in rngs}
        assert len(draws) == 4  # overwhelmingly likely distinct

    def test_splitmix_array(self):
        x = np.arange(10, dtype=np.uint64)
        y = splitmix64(x)
        assert y.shape == x.shape
        assert len(np.unique(y)) == 10

    def test_hash_u64_seed_sensitivity(self):
        v = np.arange(100, dtype=np.uint64)
        assert not np.array_equal(hash_u64(v, 0), hash_u64(v, 1))

    def test_hash_u64_roughly_uniform(self):
        v = np.arange(80_000, dtype=np.uint64)
        parts = hash_u64(v, 3) % np.uint64(8)
        counts = np.bincount(parts.astype(int), minlength=8)
        assert counts.min() > 0.9 * counts.max()


class TestTiming:
    def test_timer_measures(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_wallclock_accumulates(self):
        clock = WallClock()
        with clock.measure("a"):
            pass
        with clock.measure("a"):
            pass
        clock.add("b", 1.5)
        assert clock.segments["b"] == 1.5
        assert clock.segments["a"] >= 0
        assert clock.total == pytest.approx(clock.segments["a"] + 1.5)


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ConfigurationError):
            check_positive("x", 0)

    def test_check_nonnegative(self):
        check_nonnegative("x", 0)
        with pytest.raises(ConfigurationError):
            check_nonnegative("x", -1)

    def test_check_probability(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)
        with pytest.raises(ConfigurationError):
            check_probability("p", 1.01)

    def test_check_fraction(self):
        check_fraction("f", 1.0)
        with pytest.raises(ConfigurationError):
            check_fraction("f", 0.0)

    def test_error_names_parameter(self):
        with pytest.raises(ConfigurationError, match="myparam"):
            check_positive("myparam", -3)
