"""Serving SLO reports: canonical bytes, roundtrip, rendering."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.graph import social_graph
from repro.partition.base import get_partitioner
from repro.serving import ServingConfig, ServingReport, ServingSimulator, WorkloadSpec


@pytest.fixture(scope="module")
def populated():
    graph = social_graph(1200, 8.0, 2.2, rng=21)
    spec = WorkloadSpec(users=150, duration=0.3, rate=800.0, seed=6)
    trace = spec.generate(graph)
    config = ServingConfig()
    report = ServingReport(spec, config, dataset="livejournal", num_parts=4)
    for name in ("chunk-v", "hash"):
        assignment = get_partitioner(name, seed=0).partition(graph, 4).assignment
        report.add(name, ServingSimulator(assignment, config, seed=6).run(trace))
    return report


def test_duplicate_entry_rejected(populated):
    with pytest.raises(ConfigurationError, match="duplicate"):
        populated.add("hash", None)


def test_canonical_bytes_stable(populated):
    assert populated.to_json() == populated.to_json()
    assert populated.digest() == populated.digest()


def test_roundtrip_preserves_bytes(populated):
    text = populated.to_json()
    again = ServingReport.from_json(text)
    assert again.to_json() == text
    assert again.entries == populated.entries
    assert again.spec == populated.spec
    assert again.config == populated.config


def test_from_json_rejects_wrong_schema(populated):
    bad = populated.to_json().replace("serving-report/v1", "serving-report/v0")
    with pytest.raises(ConfigurationError, match="schema"):
        ServingReport.from_json(bad)


def test_render_lists_partitioners(populated):
    text = populated.render()
    assert "chunk-v" in text and "hash" in text
    assert "p99" in text
    assert populated.spec.digest()[:12] in text


def test_document_carries_identities(populated):
    doc = populated.to_dict()
    assert doc["schema"] == "serving-report/v1"
    assert doc["workload_digest"] == populated.spec.digest()
    assert doc["config_digest"] == populated.config.digest()
    assert doc["dataset"] == "livejournal"
    assert set(doc["entries"]) == {"chunk-v", "hash"}
    for entry in doc["entries"].values():
        assert entry["latency_p99"] >= entry["latency_p50"] > 0
