"""Monte-Carlo personalized PageRank on the simulated cluster.

The PPR application (§4.1) is not just a benchmark: the visit
frequencies of many α-terminated walks from a seed *estimate the
seed's PPR vector* (Fogaras et al., 2005). This example runs the
estimator on the KnightKing-like engine with visit tracking, computes
the exact PPR vector by power iteration, and reports the estimation
quality — demonstrating that the distributed simulation preserves
numerical semantics end-to-end.

Usage::

    python examples/ppr_estimation.py
"""

from __future__ import annotations

import numpy as np

from repro import graph, partition
from repro.cluster import BSPCluster
from repro.engines.knightking import PPR, WalkEngine


def exact_ppr(g, seed_vertex: int, alpha: float, iterations: int = 200) -> np.ndarray:
    """Power-iteration PPR: p = α·e_s + (1 − α)·P^T p."""
    n = g.num_vertices
    deg = np.maximum(g.degrees, 1)
    p = np.zeros(n)
    p[seed_vertex] = 1.0
    from repro.engines.gemini.vertex_program import neighbor_sum

    for _ in range(iterations):
        contrib = p / deg
        spread = neighbor_sum(g, contrib)
        new = (1 - alpha) * spread
        new[seed_vertex] += alpha * 1.0 + (1 - alpha) * p[g.degrees == 0].sum()
        if np.abs(new - p).sum() < 1e-12:
            p = new
            break
        p = new
    return p / p.sum()


def main() -> None:
    alpha = 0.15
    seed_vertex = 0
    g = graph.livejournal_like(scale=0.2, seed=13)
    a = partition.get_partitioner("bpart", seed=13).partition(g, 4).assignment
    print(f"graph: {graph.summarize(g)}; seed vertex {seed_vertex}\n")

    truth = exact_ppr(g, seed_vertex, alpha)
    top_true = np.argsort(-truth)[:20]

    for num_walks in (1_000, 10_000, 100_000):
        engine = WalkEngine(BSPCluster(4), seed=99, track_visits=True)
        starts = np.full(num_walks, seed_vertex, dtype=np.int64)
        res = engine.run(
            g,
            a,
            PPR(stop_prob=alpha),
            start_vertices=starts,
            max_steps=100,
        )
        estimate = res.visit_counts / res.visit_counts.sum()
        top_est = np.argsort(-estimate)[:20]
        overlap = len(set(top_true.tolist()) & set(top_est.tolist()))
        l1 = np.abs(estimate - truth).sum()
        print(
            f"walks={num_walks:>7,}  L1 error={l1:.4f}  "
            f"top-20 overlap={overlap}/20  supersteps={res.num_supersteps}"
        )

    print("\nestimate converges to the exact PPR vector as walks grow —")
    print("the partition changes only the timing ledger, never the answer.")


if __name__ == "__main__":
    main()
