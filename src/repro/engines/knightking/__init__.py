"""KnightKing-like walker-centric BSP random walk engine."""

from repro.engines.knightking.alias import AliasTable, VertexAliasIndex
from repro.engines.knightking.apps import PPR, RWD, RWJ, DeepWalk, Node2Vec, WalkApp, WeightedWalk
from repro.engines.knightking.corpus import read_walk_corpus, write_walk_corpus
from repro.engines.knightking.engine import WalkEngine, WalkResult
from repro.engines.knightking.transition import arcs_exist, uniform_neighbor
from repro.engines.knightking.walker import WalkerBatch

__all__ = [
    "WalkEngine",
    "WalkResult",
    "WalkerBatch",
    "WalkApp",
    "PPR",
    "RWJ",
    "RWD",
    "DeepWalk",
    "Node2Vec",
    "AliasTable",
    "VertexAliasIndex",
    "WeightedWalk",
    "uniform_neighbor",
    "arcs_exist",
    "read_walk_corpus",
    "write_walk_corpus",
]
