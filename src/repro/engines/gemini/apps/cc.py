"""Connected Components via min-label propagation.

Every vertex starts with its own id as label and repeatedly adopts the
minimum label in its closed neighbourhood; convergence (an iteration
with no change) labels each component by its smallest vertex id. This is
the HCC formulation used in Pregel-family systems, and the algorithm the
paper runs on Gemini "until convergence".
"""

from __future__ import annotations

import numpy as np

from repro.engines.gemini.vertex_program import VertexProgram, neighbor_min
from repro.graph.csr import CSRGraph

__all__ = ["ConnectedComponents"]


class ConnectedComponents(VertexProgram):
    """Min-label propagation; converges in O(diameter) iterations."""

    name = "connected-components"

    def __init__(self, max_iterations: int | None = None) -> None:
        if max_iterations is not None:
            self.max_iterations = int(max_iterations)
        else:
            self.max_iterations = 10_000  # effectively "until convergence"

    def initialize(self, graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
        n = graph.num_vertices
        return np.arange(n, dtype=np.float64), np.ones(n, dtype=bool)

    def iterate(
        self, graph: CSRGraph, state: np.ndarray, active: np.ndarray, iteration: int
    ) -> tuple[np.ndarray, np.ndarray]:
        nbr = neighbor_min(graph, state, default=np.inf)
        new_state = np.minimum(state, nbr)
        changed = new_state < state
        # Frontier semantics: a vertex participates next round if its
        # label changed or a neighbour's did. Using the changed set keeps
        # the accounting sparse as components settle.
        if changed.any():
            next_active = np.zeros_like(active)
            next_active[changed] = True
            # Neighbours of changed vertices must re-check their minima.
            changed_ids = np.nonzero(changed)[0]
            for v in changed_ids if changed_ids.size < 1024 else ():
                next_active[graph.neighbors(v)] = True
            if changed_ids.size >= 1024:
                # Vectorised scatter for large frontiers.
                starts = graph.indptr[changed_ids]
                ends = graph.indptr[changed_ids + 1]
                total = int((ends - starts).sum())
                if total:
                    gathered = np.concatenate(
                        [graph.indices[s:e] for s, e in zip(starts, ends)]
                    )
                    next_active[gathered] = True
        else:
            next_active = np.zeros_like(active)
        return new_state, next_active
