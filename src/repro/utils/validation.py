"""Parameter validation helpers.

Small, uniform checks used across the public API so user mistakes fail
fast with a :class:`~repro.errors.ConfigurationError` naming the
offending parameter, instead of surfacing later as a cryptic NumPy
broadcasting error deep in a hot loop.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_probability",
    "check_fraction",
]


def check_positive(name: str, value: float) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    """Require ``value >= 0``."""
    if not value >= 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Require ``0 <= value <= 1`` (inclusive both ends)."""
    if not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must be a probability in [0, 1], got {value!r}")


def check_fraction(name: str, value: float) -> None:
    """Require ``0 < value <= 1`` — a nonzero fraction of a whole."""
    if not (0.0 < value <= 1.0):
        raise ConfigurationError(f"{name} must be in (0, 1], got {value!r}")
