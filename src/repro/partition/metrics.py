"""Balance and cut metrics (§4.1 of the paper).

- ``Bias = (max(x) − mean(x)) / mean(x)`` — chosen because BSP iteration
  time is set by the *slowest* machine (Figure 10 plots this for both
  dimensions).
- ``Fairness = (Σ x)² / (n · Σ x²)`` — Jain's fairness index ∈ [1/n, 1]
  (Figure 11).
- ``edge_cut_ratio`` — cut arcs / total arcs (Table 3, Figure 5a).
- ``connectivity_matrix`` — arcs between each pair of parts, used by the
  §3.3 argument that combined pieces stay well connected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph
from repro.partition.assignment import PartitionAssignment

__all__ = [
    "adjusted_rand_index",
    "bias",
    "jains_fairness",
    "part_vertex_counts",
    "part_edge_counts",
    "edge_cut_ratio",
    "connectivity_matrix",
    "BalanceReport",
    "balance_report",
]


def bias(values) -> float:
    """``(max − mean) / mean`` of a non-negative sequence.

    0 means perfectly balanced; the paper reports up to ≈9 for the
    imbalanced dimension of 1-D algorithms and < 0.1 for BPart.
    """
    x = np.asarray(values, dtype=np.float64)
    if x.size == 0:
        raise PartitionError("bias of an empty sequence is undefined")
    mean = x.mean()
    if mean == 0:
        return 0.0
    return float((x.max() - mean) / mean)


def jains_fairness(values) -> float:
    """Jain's fairness index ``(Σx)² / (n·Σx²)`` ∈ [1/n, 1]."""
    x = np.asarray(values, dtype=np.float64)
    if x.size == 0:
        raise PartitionError("fairness of an empty sequence is undefined")
    sq_sum = float((x * x).sum())
    if sq_sum == 0:
        return 1.0  # all-zero loads are (vacuously) perfectly fair
    total = float(x.sum())
    return total * total / (x.size * sq_sum)


def adjusted_rand_index(labels_true, labels_pred) -> float:
    """Adjusted Rand index between two labelings of the same items.

    Permutation-invariant agreement, chance-corrected to 0 for random
    labelings and 1 for identical partitions (Hubert & Arabie 1985) —
    the recovered-community quality signal the planted-partition churn
    scenarios track. Degenerate single-cluster/all-singleton pairs where
    the expected index equals the maximum return 1.0 by convention.
    """
    a = np.asarray(labels_true).ravel()
    b = np.asarray(labels_pred).ravel()
    if a.size != b.size:
        raise PartitionError(
            f"label vectors disagree in length: {a.size} vs {b.size}"
        )
    if a.size == 0:
        raise PartitionError("ARI of empty labelings is undefined")
    _, ai = np.unique(a, return_inverse=True)
    _, bi = np.unique(b, return_inverse=True)
    n_a = int(ai.max()) + 1
    n_b = int(bi.max()) + 1
    contingency = np.bincount(ai * n_b + bi, minlength=n_a * n_b).reshape(n_a, n_b)

    def _comb2(x: np.ndarray) -> float:
        x = x.astype(np.float64)
        return float((x * (x - 1.0) / 2.0).sum())

    sum_ij = _comb2(contingency)
    sum_a = _comb2(contingency.sum(axis=1))
    sum_b = _comb2(contingency.sum(axis=0))
    total = a.size * (a.size - 1.0) / 2.0
    expected = sum_a * sum_b / total if total else 0.0
    max_index = 0.5 * (sum_a + sum_b)
    if max_index == expected:
        return 1.0
    return float((sum_ij - expected) / (max_index - expected))


def _check_parts(parts: np.ndarray, num_parts: int | None) -> np.ndarray:
    """Validate a raw assignment vector once, with a useful error.

    Without this, ``-1`` (the streaming kernels' "unassigned" marker)
    or an id ≥ ``num_parts`` either raises an opaque ``ValueError``
    inside ``np.bincount`` or silently widens/mis-shapes the result.
    """
    parts = np.asarray(parts)
    if parts.size == 0:
        return parts
    lo = int(parts.min())
    hi = int(parts.max())
    if lo < 0:
        raise PartitionError(
            f"assignment contains unassigned/negative part ids "
            f"(min id {lo}); every vertex must have a part in [0, k)"
        )
    if num_parts is not None and hi >= num_parts:
        raise PartitionError(
            f"assignment contains part id {hi} but num_parts={num_parts}; "
            f"ids must lie in [0, {num_parts})"
        )
    return parts


def part_vertex_counts(parts: np.ndarray, num_parts: int) -> np.ndarray:
    """``|V_i|`` from a raw assignment vector."""
    parts = _check_parts(parts, num_parts)
    return np.bincount(parts, minlength=num_parts).astype(np.int64)


def part_edge_counts(graph: CSRGraph, parts: np.ndarray, num_parts: int) -> np.ndarray:
    """``|E_i|`` (arcs stored per part) from a raw assignment vector."""
    parts = _check_parts(parts, num_parts)
    return np.bincount(
        parts, weights=graph.degrees, minlength=num_parts
    ).astype(np.int64)


def edge_cut_ratio(graph: CSRGraph, parts: np.ndarray) -> float:
    """Fraction of arcs whose endpoints lie in different parts.

    For symmetrised undirected storage this equals the fraction of
    undirected edges cut, which is what Table 3 reports.
    """
    parts = _check_parts(parts, None)
    if parts.size != graph.num_vertices:
        raise PartitionError("assignment length != num_vertices")
    if graph.num_edges == 0:
        return 0.0
    # Accumulate the cut count one block at a time so sharded graphs
    # never materialise the full edge array (dense graphs yield a single
    # zero-copy block, so this is the old edge_array scan there).
    cut = 0
    for start, stop, local, idx in graph.iter_blocks():
        src_parts = np.repeat(parts[start:stop], np.diff(local))
        cut += int(np.count_nonzero(src_parts != parts[idx]))
    return cut / graph.num_edges


def connectivity_matrix(graph: CSRGraph, parts: np.ndarray, num_parts: int) -> np.ndarray:
    """``k × k`` matrix of arc counts between part pairs.

    ``M[i, j]`` counts arcs from a vertex in part ``i`` to a vertex in
    part ``j``; the diagonal holds internal arcs. Symmetric for
    undirected graphs. §3.3 checks ``min_{i≠j} M[i, j]`` is large.
    """
    parts = _check_parts(parts, num_parts).astype(np.int64)
    if parts.size != graph.num_vertices:
        raise PartitionError("assignment length != num_vertices")
    counts = np.zeros(num_parts * num_parts, dtype=np.int64)
    for start, stop, local, idx in graph.iter_blocks():
        src_parts = np.repeat(parts[start:stop], np.diff(local))
        flat = src_parts * num_parts + parts[idx]
        counts += np.bincount(flat, minlength=num_parts * num_parts)
    return counts.reshape(num_parts, num_parts)


@dataclass(frozen=True)
class BalanceReport:
    """All paper balance metrics for one partition, in one place."""

    num_parts: int
    vertex_counts: np.ndarray
    edge_counts: np.ndarray
    vertex_bias: float
    edge_bias: float
    vertex_fairness: float
    edge_fairness: float
    cut_ratio: float

    def __str__(self) -> str:
        return (
            f"k={self.num_parts} "
            f"bias(V)={self.vertex_bias:.4f} bias(E)={self.edge_bias:.4f} "
            f"fair(V)={self.vertex_fairness:.4f} fair(E)={self.edge_fairness:.4f} "
            f"cut={self.cut_ratio:.4f}"
        )


def balance_report(assignment: PartitionAssignment) -> BalanceReport:
    """Compute the full :class:`BalanceReport` for an assignment."""
    v = assignment.vertex_counts
    e = assignment.edge_counts
    return BalanceReport(
        num_parts=assignment.num_parts,
        vertex_counts=v,
        edge_counts=e,
        vertex_bias=bias(v),
        edge_bias=bias(e),
        vertex_fairness=jains_fairness(v),
        edge_fairness=jains_fairness(e),
        cut_ratio=edge_cut_ratio(assignment.graph, assignment.parts),
    )
