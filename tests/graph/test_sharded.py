"""Out-of-core sharded CSR: builder round-trips, representation parity,
torn-shard recovery, and the blockwise iteration contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.errors import GraphFormatError
from repro.graph import (
    from_edges,
    open_sharded,
    read_edge_list,
    read_edge_list_sharded,
    read_metis,
    read_metis_sharded,
    social_edge_batches,
    social_graph,
    spill_csr,
    write_edge_list,
    write_metis,
)
from repro.graph.sharded import META_NAME, ShardedCSRBuilder, _shard_paths
from repro.partition import available_kernels, get_partitioner
from repro.partition._streamcore import default_alpha, stream_partition

ALGOS = ("fennel", "bpart", "ldg", "hash", "chunk-v")


@pytest.fixture
def dense():
    return social_graph(1500, 9.0, 2.3, rng=7)


@pytest.fixture
def sharded(dense, tmp_path):
    return spill_csr(dense, tmp_path / "shards", shard_size=256)


def _random_edges(rng, n, m):
    r = np.random.default_rng(rng)
    return r.integers(0, n, size=m), r.integers(0, n, size=m)


# ----------------------------------------------------------------------
# Builder round-trip
# ----------------------------------------------------------------------
class TestBuilder:
    def test_batched_build_matches_from_edges(self, tmp_path):
        n, m = 3000, 40000
        src, dst = _random_edges(3, n, m)
        reference = from_edges(src, dst, n)
        builder = ShardedCSRBuilder(tmp_path / "b", num_vertices=n, shard_size=400)
        for lo in range(0, m, 1111):  # deliberately awkward batch size
            builder.add_edges(src[lo : lo + 1111], dst[lo : lo + 1111])
        graph = builder.finalize()
        assert graph.fingerprint() == reference.fingerprint()
        assert graph.num_edges == reference.num_edges
        assert graph == reference and reference == graph
        assert np.array_equal(graph.degrees, reference.degrees)
        # no bucket temp files survive finalize
        assert not list((tmp_path / "b").glob("bucket-*.tmp"))

    def test_self_loops_and_duplicates_dropped(self, tmp_path):
        builder = ShardedCSRBuilder(tmp_path / "b", num_vertices=4, shard_size=2)
        builder.add_edge(0, 1)
        builder.add_edge(1, 0)  # duplicate after symmetrisation
        builder.add_edge(2, 2)  # self loop
        builder.add_edge(2, 3)
        graph = builder.finalize()
        assert graph == from_edges([0, 1, 2, 2], [1, 0, 2, 3], 4)
        assert graph.num_edges == 4  # (0,1),(1,0),(2,3),(3,2)

    def test_inferred_num_vertices(self, tmp_path):
        builder = ShardedCSRBuilder(tmp_path / "b", shard_size=4)
        builder.add_edge(0, 9)
        graph = builder.finalize()
        assert graph.num_vertices == 10

    def test_rejects_bad_input(self, tmp_path):
        builder = ShardedCSRBuilder(tmp_path / "b", num_vertices=5)
        with pytest.raises(GraphFormatError):
            builder.add_edges([0, 1], [2])
        with pytest.raises(GraphFormatError):
            builder.add_edges([-1], [2])
        with pytest.raises(GraphFormatError):
            builder.add_edges([0], [5])  # id >= num_vertices
        builder.finalize()
        with pytest.raises(GraphFormatError):
            builder.add_edge(0, 1)
        with pytest.raises(GraphFormatError):
            builder.finalize()

    def test_abort_removes_buckets(self, tmp_path):
        builder = ShardedCSRBuilder(tmp_path / "b", num_vertices=100, shard_size=10)
        builder.add_edges(*_random_edges(1, 100, 500))
        assert list((tmp_path / "b").glob("bucket-*.tmp"))
        builder.abort()
        assert not list((tmp_path / "b").glob("bucket-*.tmp"))

    def test_empty_graph(self, tmp_path):
        graph = ShardedCSRBuilder(tmp_path / "b", num_vertices=0).finalize()
        assert graph.num_vertices == 0 and graph.num_edges == 0
        assert list(graph.iter_blocks()) == []


# ----------------------------------------------------------------------
# Read-API parity with the dense twin
# ----------------------------------------------------------------------
class TestReadParity:
    def test_fingerprint_and_equality(self, dense, sharded):
        assert sharded.fingerprint() == dense.fingerprint()
        assert sharded == dense and dense == sharded

    def test_structure(self, dense, sharded):
        assert sharded.num_vertices == dense.num_vertices
        assert sharded.num_edges == dense.num_edges
        assert sharded.num_undirected_edges == dense.num_undirected_edges
        assert np.array_equal(sharded.degrees, dense.degrees)
        assert np.array_equal(sharded.indptr, dense.indptr)

    def test_neighbors_and_has_edge(self, dense, sharded):
        for v in (0, 255, 256, 511, 1499):
            assert np.array_equal(sharded.neighbors(v), dense.neighbors(v))
        u = int(np.argmax(dense.degrees))
        w = int(dense.neighbors(u)[0])
        assert sharded.has_edge(u, w) and not sharded.has_edge(u, u)
        with pytest.raises(IndexError):
            sharded.neighbors(1500)

    def test_indices_property_raises(self, sharded):
        with pytest.raises(GraphFormatError):
            _ = sharded.indices

    def test_iter_blocks_contract(self, dense, sharded):
        for block_size in (None, 100, 256, 257, 10_000):
            covered = 0
            chunks = []
            for start, stop, local, idx in sharded.iter_blocks(block_size):
                assert start == covered and stop > start
                assert local[0] == 0 and local[-1] == idx.size
                # shard-aligned: a block never spans a shard boundary
                assert start // 256 == (stop - 1) // 256
                expect = dense.indices[dense.indptr[start] : dense.indptr[stop]]
                assert np.array_equal(idx, expect)
                chunks.append(idx)
                covered = stop
            assert covered == sharded.num_vertices
            assert np.array_equal(np.concatenate(chunks), dense.indices)

    def test_gather_block(self, dense, sharded):
        rng = np.random.default_rng(11)
        chunk = rng.permutation(1500)[:600]  # arbitrary order, cross-shard
        lens, nbrs = sharded.gather_block(chunk)
        assert np.array_equal(lens, dense.degrees[chunk])
        expect = np.concatenate([dense.neighbors(int(v)) for v in chunk])
        assert np.array_equal(nbrs, expect)

    def test_take_arcs(self, dense, sharded):
        rng = np.random.default_rng(12)
        slots = rng.integers(0, dense.num_edges, size=(7, 33))
        assert np.array_equal(sharded.take_arcs(slots), dense.indices[slots])

    def test_iter_edges(self, tmp_path):
        dense = social_graph(64, 4.0, 2.3, rng=2)
        sharded = spill_csr(dense, tmp_path / "tiny", shard_size=16)
        assert list(sharded.iter_edges()) == list(dense.iter_edges())


# ----------------------------------------------------------------------
# Kernel + partitioner parity (the acceptance bit-identity requirement)
# ----------------------------------------------------------------------
class TestPartitionParity:
    def test_all_registered_kernels(self, dense, sharded):
        weights = np.ones(dense.num_vertices)
        alpha = default_alpha(dense, 6)
        for kernel in available_kernels():
            a = stream_partition(
                dense, 6, vertex_weights=weights, alpha=alpha, kernel=kernel
            )
            b = stream_partition(
                sharded, 6, vertex_weights=weights, alpha=alpha, kernel=kernel
            )
            assert np.array_equal(a, b), f"kernel {kernel!r} diverged"

    @pytest.mark.parametrize("algo", ALGOS)
    def test_all_partitioners(self, algo, dense, sharded):
        # Direct calls, not cached_partition: the representations share
        # fingerprints, so the cache would serve one result for both and
        # hide any divergence.
        a = get_partitioner(algo, seed=3).partition(dense, 6)
        b = get_partitioner(algo, seed=3).partition(sharded, 6)
        assert np.array_equal(a.assignment.parts, b.assignment.parts)

    def test_metrics_parity(self, dense, sharded):
        from repro.partition.metrics import connectivity_matrix, edge_cut_ratio

        parts = get_partitioner("fennel", seed=3).partition(dense, 6).assignment.parts
        assert edge_cut_ratio(sharded, parts) == edge_cut_ratio(dense, parts)
        assert np.array_equal(
            connectivity_matrix(sharded, parts, 6),
            connectivity_matrix(dense, parts, 6),
        )


# ----------------------------------------------------------------------
# Torn-shard detection and recovery
# ----------------------------------------------------------------------
class TestTornShards:
    def test_corrupt_shard_file_detected(self, sharded, tmp_path):
        _, indices_path = _shard_paths(sharded.spill_dir, 2)
        indices_path.write_bytes(b"this is not an npz archive")
        with pytest.raises(GraphFormatError, match="shard"):
            open_sharded(sharded.spill_dir)

    def test_truncated_shard_file_detected(self, sharded):
        _, indices_path = _shard_paths(sharded.spill_dir, 1)
        data = indices_path.read_bytes()
        indices_path.write_bytes(data[: len(data) // 2])
        with pytest.raises(GraphFormatError, match="truncated|torn"):
            open_sharded(sharded.spill_dir)

    def test_missing_meta_is_not_a_graph(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(GraphFormatError, match="missing"):
            open_sharded(tmp_path / "empty")

    def test_corrupt_meta_detected(self, sharded):
        (sharded.spill_dir / META_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(GraphFormatError, match="metadata"):
            open_sharded(sharded.spill_dir)

    def test_interrupted_build_leaves_no_meta(self, tmp_path):
        builder = ShardedCSRBuilder(tmp_path / "b", num_vertices=50, shard_size=10)
        builder.add_edges(*_random_edges(4, 50, 200))
        # simulated crash before finalize: no meta.json was ever written
        assert not (tmp_path / "b" / META_NAME).exists()
        with pytest.raises(GraphFormatError):
            open_sharded(tmp_path / "b")

    def test_dataset_autorebuild_after_torn_spill(self, tmp_path, monkeypatch):
        from repro.graph.datasets import DATASETS

        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path / "spill"))
        monkeypatch.setenv("REPRO_SPILL_THRESHOLD", "1000")
        spec = DATASETS["livejournal"]
        graph = spec.generate(scale=0.05, seed=1)
        assert graph.num_vertices > 0
        fp = graph.fingerprint()
        # tear a shard, then reload: the spec detects the damage and rebuilds
        _, indices_path = _shard_paths(graph.spill_dir, 0)
        indices_path.write_bytes(b"this is not an npz archive")
        rebuilt = spec.generate(scale=0.05, seed=1)
        rebuilt.validate()
        assert rebuilt.fingerprint() == fp


# ----------------------------------------------------------------------
# Auto-spill + streaming loaders
# ----------------------------------------------------------------------
class TestAutoSpillAndIO:
    def test_dataset_spills_over_threshold(self, tmp_path, monkeypatch):
        from repro.graph.datasets import DATASETS
        from repro.graph.sharded import ShardedCSRGraph

        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path / "spill"))
        monkeypatch.setenv("REPRO_SPILL_THRESHOLD", "1000")
        graph = DATASETS["livejournal"].generate(scale=0.05, seed=2)
        assert isinstance(graph, ShardedCSRGraph)
        # reopening reuses the existing spill directory
        again = DATASETS["livejournal"].generate(scale=0.05, seed=2)
        assert again.spill_dir == graph.spill_dir
        assert again.fingerprint() == graph.fingerprint()

    def test_dataset_stays_dense_below_threshold(self, tmp_path, monkeypatch):
        from repro.graph.csr import CSRGraph
        from repro.graph.datasets import DATASETS

        monkeypatch.setenv("REPRO_SPILL_THRESHOLD", "0")  # disables auto-spill
        graph = DATASETS["livejournal"].generate(scale=0.05, seed=2)
        assert isinstance(graph, CSRGraph)

    def test_edge_list_streaming_parity(self, dense, tmp_path):
        path = tmp_path / "graph.txt"
        write_edge_list(dense, path)
        a = read_edge_list(path)
        b = read_edge_list_sharded(path, tmp_path / "el-shards", shard_size=300)
        assert b.fingerprint() == a.fingerprint() == dense.fingerprint()

    def test_metis_streaming_parity(self, dense, tmp_path):
        path = tmp_path / "graph.metis"
        write_metis(dense, path)
        a = read_metis(path)
        b = read_metis_sharded(path, tmp_path / "metis-shards", shard_size=300)
        assert b.fingerprint() == a.fingerprint() == dense.fingerprint()


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
class TestShardedTelemetry:
    def test_counters_recorded_when_enabled(self, dense, tmp_path):
        telemetry.set_enabled(True)
        telemetry.reset()
        sharded = spill_csr(dense, tmp_path / "t", shard_size=256)
        for _ in sharded.iter_blocks():
            pass
        snap = telemetry.registry().snapshot()
        counters = snap["counters"]
        assert counters["graph.sharded.spill_writes"] > 0
        assert counters["graph.sharded.bytes_mapped"] > 0
        assert counters["graph.sharded.block_reads"] == sharded.num_shards

    def test_silent_when_disabled(self, dense, tmp_path):
        assert not telemetry.enabled()
        sharded = spill_csr(dense, tmp_path / "t", shard_size=256)
        for _ in sharded.iter_blocks():
            pass
        sharded.gather_block(np.arange(100))
        assert telemetry.registry().metrics() == []


# ----------------------------------------------------------------------
# Parallel finalize
# ----------------------------------------------------------------------
class TestParallelFinalize:
    """finalize(jobs=N) must be a pure throughput knob: same files,
    same fingerprint, graceful degradation on torn input."""

    def _build(self, directory, jobs):
        n, m = 2000, 30000
        src, dst = _random_edges(9, n, m)
        builder = ShardedCSRBuilder(directory, num_vertices=n, shard_size=300)
        for lo in range(0, m, 7000):
            builder.add_edges(src[lo : lo + 7000], dst[lo : lo + 7000])
        return builder.finalize(jobs=jobs)

    def test_bit_identical_output_files(self, tmp_path):
        import hashlib

        serial = self._build(tmp_path / "serial", 1)
        parallel = self._build(tmp_path / "parallel", 3)
        assert parallel.fingerprint() == serial.fingerprint()

        def digest(graph):
            out = {}
            for path in sorted(graph.spill_dir.iterdir()):
                out[path.name] = hashlib.sha256(path.read_bytes()).hexdigest()
            return out

        assert digest(parallel) == digest(serial)

    def test_no_bucket_files_left(self, tmp_path):
        graph = self._build(tmp_path / "p", 2)
        assert not list(graph.spill_dir.glob("bucket-*.tmp"))

    def test_torn_bucket_surfaces_real_error(self, tmp_path):
        builder = ShardedCSRBuilder(tmp_path / "b", num_vertices=60, shard_size=16)
        builder.add_edges(*_random_edges(4, 60, 300))
        for fh in builder._buckets.values():
            fh.flush()
        bucket = next((tmp_path / "b").glob("bucket-*.tmp"))
        bucket.write_bytes(b"\x00" * 12)  # not a whole int64 pair
        with pytest.raises(GraphFormatError, match="torn"):
            builder.finalize(jobs=2)


# ----------------------------------------------------------------------
# LRU / evictions
# ----------------------------------------------------------------------
class TestShardLRU:
    def test_evictions_counted_and_bounded(self, dense, tmp_path):
        telemetry.set_enabled(True)
        telemetry.reset()
        spill_csr(dense, tmp_path / "lru", shard_size=128)
        sharded = open_sharded(tmp_path / "lru", max_open_shards=3)
        rng = np.random.default_rng(0)
        for _ in range(40):
            sharded.gather_block(rng.integers(0, dense.num_vertices, 64))
            assert len(sharded._open) <= 3
        counters = telemetry.registry().snapshot()["counters"]
        assert counters["graph.sharded.evictions"] > 0
        # Every shard load is either still mapped or was evicted.
        loads = counters["graph.sharded.bytes_mapped"]
        assert loads > 0

    def test_lru_bound_survives_interleaved_access(self, dense, tmp_path):
        spill_csr(dense, tmp_path / "lru2", shard_size=128)
        sharded = open_sharded(tmp_path / "lru2", max_open_shards=2)
        for block in sharded.iter_blocks():
            sharded.gather_block(np.arange(50))
            sharded.take_arcs(np.arange(0, sharded.num_edges, 97))
            assert len(sharded._open) <= 2
        # results still correct after heavy eviction churn
        assert sharded.fingerprint() == dense.fingerprint()

    def test_evictions_silent_when_disabled(self, dense, tmp_path):
        assert not telemetry.enabled()
        spill_csr(dense, tmp_path / "lru3", shard_size=128)
        sharded = open_sharded(tmp_path / "lru3", max_open_shards=1)
        for _ in sharded.iter_blocks():
            pass
        assert telemetry.registry().metrics() == []
