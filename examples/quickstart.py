"""Quickstart: partition a scale-free graph and compare balance.

Runs the paper's five partitioners on a Twitter-like synthetic graph,
prints the two-dimensional balance report for each, and times a
simulated PageRank job on the best and worst partitions.

Usage::

    python examples/quickstart.py [scale]
"""

from __future__ import annotations

import sys

from repro import graph, partition
from repro.bench.workloads import run_app


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    g = graph.twitter_like(scale=scale, seed=42)
    print(f"graph: {graph.summarize(g)}\n")

    print(f"{'algorithm':10s} {'bias(V)':>8s} {'bias(E)':>8s} {'cut':>7s} {'seconds':>8s}")
    assignments = {}
    for name in ("chunk-v", "chunk-e", "fennel", "hash", "bpart"):
        result = partition.get_partitioner(name, seed=42).partition(g, 8)
        report = partition.balance_report(result.assignment)
        assignments[name] = result.assignment
        print(
            f"{name:10s} {report.vertex_bias:8.4f} {report.edge_bias:8.4f} "
            f"{report.cut_ratio:7.4f} {result.elapsed:8.3f}"
        )

    print("\nsimulated PageRank (10 iterations, 8 machines):")
    for name in ("chunk-v", "bpart"):
        run = run_app("pagerank", g, assignments[name], seed=42)
        print(
            f"  {name:10s} runtime={run.runtime * 1e3:8.3f} ms  "
            f"messages={run.messages:,}  waiting={run.waiting_ratio:.1%}"
        )


if __name__ == "__main__":
    main()
