"""Walk-app interface.

A walk app defines one transition law. :meth:`WalkApp.advance` receives
the *active batch* (positions, previous positions) and returns the next
vertex of each walker plus a termination mask; the engine handles step
caps, machine accounting, and message generation.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["WalkApp"]


class WalkApp(abc.ABC):
    """One random-walk transition law."""

    #: report name (matches the paper's application labels).
    name: str = "walk"

    @abc.abstractmethod
    def advance(
        self,
        graph: CSRGraph,
        positions: np.ndarray,
        previous: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compute one step for a batch of walkers.

        Parameters
        ----------
        positions: current vertex per walker.
        previous:  previous vertex per walker (−1 before the first step).
        rng:       the engine's generator (single stream ⇒ reproducible).

        Returns
        -------
        (targets, terminated):
            Next vertex per walker, and a mask of walkers that stop *in
            place this step* (termination draw, dead end). Terminated
            walkers' target values are ignored.
        """
