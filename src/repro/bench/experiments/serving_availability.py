"""Availability vs replication factor under a seeded crash drill.

The robustness question the SLO experiment cannot answer: when a
machine actually *dies* mid-traffic, how much of the query stream still
completes within budget? This experiment serves the same workload at
K ∈ {1, 2, 3} replicas per partition under a targeted
``serving.replica.crash`` drill (one machine fails at a fixed heartbeat
tick) and reports availability (fraction of arrivals answered within
the SLO), p99, shed rate, recovery time, and re-replication bytes.

K=1 shows the cost of no redundancy — every query homed on the dead
machine is shed until recovery completes. K≥2 should hold availability
near 1.0: the router fails over to surviving replicas, stranded
queries are re-dispatched at drain, and the dead machine re-enters
through ``recovering`` once its blocks are re-fetched. The hedged
variant additionally bounds the detection-gap latency spike.
Everything is deterministic per seed — the table is byte-stable.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentConfig, ExperimentResult, register_experiment
from repro.bench.report import BarChart, Table
from repro.bench.workloads import run_serving_job
from repro.bench.experiments._common import graph_for, partition_with
from repro.resilience.chaos import ChaosPlan, ChaosRule, active_plan, install_plan
from repro.serving import (
    SITE_REPLICA_CRASH,
    ServingConfig,
    ServingReport,
    WorkloadSpec,
)

__all__ = ["crash_drill_plan", "serving_availability"]

_DATASET = "livejournal"
_NUM_PARTS = 8
_FACTORS = (1, 2, 3)
_PARTITIONER = "bpart"


def crash_drill_plan() -> ChaosPlan:
    """Kill machine 1 at heartbeat tick 5, deterministically."""
    return ChaosPlan(
        seed=1,
        rules=(
            ChaosRule(
                site=SITE_REPLICA_CRASH, kind="exception", match="m1:h5", rate=1.0
            ),
        ),
    )


@register_experiment(
    "serving_availability",
    "Availability vs replication factor under a seeded machine-crash drill",
)
def serving_availability(config: ExperimentConfig) -> ExperimentResult:
    graph = graph_for(config, _DATASET)
    spec = WorkloadSpec(duration=1.0, seed=config.seed)
    assignment = partition_with(
        _PARTITIONER, graph, _NUM_PARTS, seed=config.seed
    ).assignment

    chaos = crash_drill_plan()
    results = {}
    reports = {}
    prev = active_plan()
    try:
        install_plan(chaos)
        for factor in _FACTORS:
            serving = ServingConfig(replication_factor=factor)
            report = ServingReport(
                spec,
                serving,
                dataset=_DATASET,
                num_parts=_NUM_PARTS,
                chaos="replica-crash",
            )
            result = run_serving_job(
                graph, assignment, spec=spec, config=serving, seed=config.seed
            )
            report.add(_PARTITIONER, result)
            results[factor] = result
            reports[factor] = report
        # Hedged variant at K=2: the detection gap bounded by a hedge.
        hedged_cfg = ServingConfig(replication_factor=2, hedge_after=0.005)
        hedged = run_serving_job(
            graph, assignment, spec=spec, config=hedged_cfg, seed=config.seed
        )
    finally:
        install_plan(prev)

    table = Table(
        title=f"availability vs replication — {_PARTITIONER} × {_NUM_PARTS} "
        "machines, crash at tick 5",
        headers=(
            "K",
            "avail %",
            "p99 ms",
            "max ms",
            "shed %",
            "redispatched",
            "recovery s",
            "rerepl KiB",
        ),
    )
    for factor in _FACTORS:
        r = results[factor]
        p99 = r.latency_quantile(0.99)
        lat = r.completed_latencies()
        recovery = r.recovery_seconds[0] if r.recovery_seconds else 0.0
        table.add_row(
            str(factor),
            f"{r.availability() * 100:.3f}",
            f"{p99 * 1e3:.3f}" if p99 == p99 else "-",
            f"{float(lat[-1]) * 1e3:.3f}" if lat.size else "-",
            f"{r.shed_rate * 100:.3f}",
            str(r.redispatched),
            f"{recovery:.4f}",
            f"{r.rereplication_bytes / 1024:.1f}",
        )

    hedge_table = Table(
        title="hedged requests at K=2 (hedge_after=5ms)",
        headers=("variant", "avail %", "max ms", "hedges", "hedge wins"),
    )
    for label, r in (("failover only", results[2]), ("hedged", hedged)):
        lat = r.completed_latencies()
        hedge_table.add_row(
            label,
            f"{r.availability() * 100:.3f}",
            f"{float(lat[-1]) * 1e3:.3f}" if lat.size else "-",
            str(r.hedges),
            str(r.hedge_wins),
        )

    chart = BarChart(title="availability under crash (%, higher is better)")
    for factor in _FACTORS:
        chart.add(f"K={factor}", results[factor].availability() * 100)

    restored = all(results[f].restored for f in _FACTORS)
    return ExperimentResult(
        experiment_id="serving_availability",
        title="Replicated serving under a machine-crash drill",
        tables=[table, hedge_table],
        charts=[chart],
        notes=[
            "crash injected at serving.replica.crash key m1:h5; detection "
            "via missed heartbeats, drain re-dispatches stranded queries, "
            "recovery re-replicates the dead machine's blocks",
            "replication factor restored before trace end: "
            + ("yes" if restored else "NO"),
            f"workload {spec.digest()[:12]}, replica plans "
            + ", ".join(
                f"K={f}:{results[f].plan_digest[:10]}" for f in _FACTORS if f > 1
            ),
        ],
        data={
            ("report", f"k{factor}"): reports[factor].to_dict()
            for factor in _FACTORS
        },
    )
