"""Out-of-core scale sweep: peak RSS + throughput, dense vs sharded.

``repro-bench scale`` measures what the sharded substrate actually buys:
for a range of vertex counts (default 2^17 … 2^21) it runs one *cell*
per (representation, kernel) in a **fresh subprocess** — building the
graph and Fennel-partitioning it — and records the child's
``ru_maxrss`` peak together with partition throughput (vertices/sec).
A subprocess per cell is the only honest way to compare peaks: within
one process the allocator never returns freed arena pages, so a dense
cell would inflate every later sharded reading.

Cells:

- ``dense`` × kernel (``incremental``, ``buffered``) — in-RAM
  ``social_graph`` build + ``stream_partition``;
- ``sharded`` — the same distribution streamed through
  :func:`~repro.graph.generators.social_edge_batches` into a
  :class:`~repro.graph.sharded.ShardedCSRBuilder`, partitioned straight
  off the memory-mapped shards.

Every invocation also runs an in-process **parity control**: a small
graph is spilled with :func:`~repro.graph.sharded.spill_csr` and all
five partitioners must produce bit-identical assignments on both
representations. ``--demo`` runs the acceptance workload (2^20
vertices, d̄ = 32 → ≈ 16.8 M edges) and asserts the sharded peak stays
under 40 % of the dense peak. ``--cores 1 2 4`` sweeps the parallel
kernel's worker count on one dense cell and records the speedup curve
against the jobs=1 buffered baseline. ``--demo-oom`` runs the
larger-than-RAM demonstration: a graph whose dense CSR exceeds a hard
``RLIMIT_AS`` budget — the dense control cell must die of
``MemoryError`` while the sharded build (parallel finalize) and
partition complete inside the same budget. ``--record`` appends the
results to ``BENCH_hotpaths.json`` / ``BENCH_suite.json``.

Cell subprocesses are hermetic: the parent snapshots the repro
environment knobs (cache dir, spill dir, chaos plan, telemetry, jobs)
and re-applies them in the child before any repro import, so a sweep
behaves the same whether those knobs arrived via the environment or
were set programmatically in the parent.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing
import os
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

__all__ = ["main", "run_cell", "parity_control"]

DEFAULT_EXPONENTS = (17, 18, 19, 20, 21)
DEFAULT_AVG_DEGREE = 16.0
DEFAULT_PARTS = 8
DENSE_KERNELS = ("incremental", "buffered")
PARITY_ALGOS = ("fennel", "bpart", "ldg", "hash", "chunk-v")

#: Acceptance bound: sharded peak RSS / dense peak RSS on the demo cell.
DEMO_RSS_BOUND = 0.40

#: Environment knobs re-applied inside every cell subprocess, mirroring
#: how bench/runner.py keeps its workers hermetic: same cache, same
#: spill root, same chaos plan, same telemetry switch.
_PROPAGATED_ENV = (
    "REPRO_CACHE_DIR",
    "REPRO_NO_CACHE",
    "REPRO_SPILL_DIR",
    "REPRO_CHAOS",
    "REPRO_TELEMETRY",
    "REPRO_JOBS",
)

#: >RAM demonstration shape: the dense CSR (indptr int64 + indices
#: int32 ≈ 8n + 4·n·d̄ bytes ≈ 209 MB) does not fit the address-space
#: budget, while one finalize bucket + mapped shards do.
OOM_DEMO_VERTICES = 1 << 20
OOM_DEMO_DEGREE = 96.0
OOM_DEMO_BUDGET_MB = 352
#: 2^11-vertex shards keep the power-law hub shard's mapping (and its
#: finalize bucket) a small fraction of the graph; more shards would
#: exceed common open-fd limits, since the builder keeps one bucket
#: file handle per shard.
OOM_DEMO_SHARD = 1 << 11
#: Draws per generator batch in the demo — small enough that the batch
#: temporaries (sample + symmetrize + bucket sort) fit the budget.
OOM_DEMO_BATCH = 1 << 18


def _env_snapshot() -> dict:
    return {key: os.environ[key] for key in _PROPAGATED_ENV if key in os.environ}


def _checksum(parts: np.ndarray) -> str:
    """Short stable digest of an assignment, for cross-cell comparison."""
    return hashlib.sha256(np.ascontiguousarray(parts).tobytes()).hexdigest()[:16]


def _peak_rss_mb() -> float:
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _run_cell(
    kind: str,
    n: int,
    avg_degree: float,
    num_parts: int,
    seed: int,
    kernel: str,
    spill_dir: str | None,
    shard_size: int | None,
    jobs: int | None = None,
    mem_cap_mb: int | None = None,
    batch_size: int | None = None,
) -> dict:
    """Build + partition one cell; runs inside the child process."""
    if mem_cap_mb is not None:
        import resource

        cap = int(mem_cap_mb) * 2**20
        resource.setrlimit(resource.RLIMIT_AS, (cap, cap))

    from repro.graph import from_edges, social_edge_batches
    from repro.graph.sharded import DEFAULT_SHARD_SIZE, ShardedCSRBuilder
    from repro.partition._streamcore import default_alpha, stream_partition

    # Both representations consume the *same* batched edge stream, so
    # the resulting CSRs are arc-for-arc identical and the assignment
    # checksums must match across cells at every scale. (The realised
    # sample depends on batch_size, so cells compared by checksum must
    # share it; the >RAM demo shrinks it to keep batch temporaries
    # inside the RLIMIT_AS budget.)
    t0 = time.perf_counter()
    batches = social_edge_batches(
        n, avg_degree, 2.3, rng=seed, batch_size=batch_size or (1 << 20)
    )
    if kind == "dense":
        chunks = [np.stack([s, d]) for s, d in batches]
        graph = from_edges(
            np.concatenate([c[0] for c in chunks]),
            np.concatenate([c[1] for c in chunks]),
            n,
        )
        del chunks
    else:
        builder = ShardedCSRBuilder(
            spill_dir, num_vertices=n, shard_size=shard_size or DEFAULT_SHARD_SIZE
        )
        for src, dst in batches:
            builder.add_edges(src, dst)
        graph = builder.finalize(jobs=jobs)
        if mem_cap_mb is not None:
            # Streaming passes never revisit a shard before the next
            # pass, so a deep LRU only pins dead mappings — and under
            # RLIMIT_AS mapped hub shards are budget spent. Reopen
            # with the minimum useful depth.
            from repro.graph import open_sharded

            del graph
            graph = open_sharded(spill_dir, max_open_shards=2)
    build_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parts = stream_partition(
        graph,
        num_parts,
        vertex_weights=np.ones(graph.num_vertices),
        alpha=default_alpha(graph, num_parts),
        kernel=kernel,
        jobs=jobs,
    )
    partition_s = time.perf_counter() - t0
    # What a dense CSR of this graph occupies: the denominator of the
    # "well under dense RAM" claim (indptr int64 + indices int32).
    csr_mb = ((n + 1) * 8 + graph.num_edges * 4) / 2**20
    if kernel == "parallel" or (kernel == "auto" and (jobs or 1) > 1):
        effective_kernel = "parallel"
    elif kind == "dense":
        effective_kernel = kernel
    else:
        effective_kernel = "buffered"
    report = {
        "kind": kind,
        "kernel": effective_kernel,
        "num_vertices": n,
        "num_arcs": int(graph.num_edges),
        "num_parts": num_parts,
        "seed": seed,
        "jobs": jobs or 1,
        "build_seconds": round(build_s, 3),
        "partition_seconds": round(partition_s, 3),
        "vertices_per_sec": round(n / partition_s) if partition_s > 0 else None,
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "csr_mb": round(csr_mb, 1),
        "checksum": _checksum(parts),
    }
    if mem_cap_mb is not None:
        report["mem_cap_mb"] = int(mem_cap_mb)
    return report


def _cell_entry(queue, kwargs: dict, env: dict | None = None) -> None:  # pragma: no cover
    # Re-apply the parent's repro knobs before the first repro import,
    # so module-level env reads (cache dir, telemetry, chaos) see them.
    for key, value in (env or {}).items():
        os.environ[key] = value
    try:
        queue.put(_run_cell(**kwargs))
    except MemoryError:
        queue.put({"error": "MemoryError", "kind": kwargs["kind"]})
    except BaseException as exc:  # report, don't hang the parent
        queue.put({"error": f"{type(exc).__name__}: {exc}", "kind": kwargs["kind"]})


def run_cell(
    kind: str,
    n: int,
    avg_degree: float,
    num_parts: int,
    seed: int,
    kernel: str = "incremental",
    spill_root: str | None = None,
    shard_size: int | None = None,
    jobs: int | None = None,
    mem_cap_mb: int | None = None,
    batch_size: int | None = None,
) -> dict:
    """Run one cell in a fresh subprocess and return its report dict.

    ``jobs`` feeds both the builder's parallel finalize and the
    partition stream; ``mem_cap_mb`` applies a hard ``RLIMIT_AS``
    inside the child (the >RAM demonstration's budget). Transient shard
    directories land under ``spill_root``, defaulting to the repo's
    spill-root policy (``$REPRO_SPILL_DIR`` > ``$REPRO_CACHE_DIR`` >
    ``~/.cache``) rather than ``$TMPDIR``.
    """
    spill_dir = None
    if kind == "sharded":
        if spill_root is None:
            from repro.graph.sharded import default_spill_root

            root = default_spill_root()
            root.mkdir(parents=True, exist_ok=True)
            spill_root = str(root)
        spill_dir = tempfile.mkdtemp(prefix=f"scale-n{n}-", dir=spill_root)
    ctx = multiprocessing.get_context("spawn")
    queue = ctx.SimpleQueue()
    kwargs = {
        "kind": kind,
        "n": n,
        "avg_degree": avg_degree,
        "num_parts": num_parts,
        "seed": seed,
        "kernel": kernel,
        "spill_dir": spill_dir,
        "shard_size": shard_size,
        "jobs": jobs,
        "mem_cap_mb": mem_cap_mb,
        "batch_size": batch_size,
    }
    proc = ctx.Process(target=_cell_entry, args=(queue, kwargs, _env_snapshot()))
    proc.start()
    proc.join()
    try:
        if not queue.empty():
            result = queue.get()
        else:
            result = {
                "error": f"cell process died (exit code {proc.exitcode})",
                "kind": kind,
            }
    finally:
        if spill_dir is not None:
            shutil.rmtree(spill_dir, ignore_errors=True)
    return result


def parity_control(seed: int = 1, *, n: int = 4096, num_parts: int = 6) -> dict:
    """Small in-process control: every partitioner must be bit-identical
    on the dense graph and its spilled twin."""
    from repro.graph import social_graph, spill_csr
    from repro.partition import get_partitioner

    dense = social_graph(n, 12.0, 2.3, rng=seed)
    tmp = tempfile.mkdtemp(prefix="scale-parity-")
    try:
        sharded = spill_csr(dense, tmp, shard_size=max(256, n // 8))
        outcome = {}
        for algo in PARITY_ALGOS:
            a = get_partitioner(algo, seed=seed).partition(dense, num_parts)
            b = get_partitioner(algo, seed=seed).partition(sharded, num_parts)
            outcome[algo] = bool(
                np.array_equal(a.assignment.parts, b.assignment.parts)
            )
        return outcome
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _append_entry(path: Path, entry: dict) -> None:
    payload = {"entries": []}
    if path.is_file():
        payload = json.loads(path.read_text(encoding="utf-8"))
    payload.setdefault("entries", []).append(entry)
    path.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-bench scale",
        description="Out-of-core scale sweep: peak RSS and vertices/sec "
        "per (representation, kernel) cell, each in a fresh subprocess.",
    )
    p.add_argument(
        "--scales",
        type=int,
        nargs="+",
        default=list(DEFAULT_EXPONENTS),
        metavar="EXP",
        help="log2 vertex counts to sweep (default: 17 … 21)",
    )
    p.add_argument("--avg-degree", type=float, default=DEFAULT_AVG_DEGREE)
    p.add_argument("--parts", type=int, default=DEFAULT_PARTS)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--mode",
        choices=["all", "sharded", "dense"],
        default="all",
        help="which representations to run ('sharded' lets CI sweep under "
        "a ulimit -v cap a dense build would blow through)",
    )
    p.add_argument(
        "--demo",
        action="store_true",
        help="acceptance demo: 2^20 vertices at d̄=32 (≈16.8M edges), "
        f"asserting sharded peak RSS < {DEMO_RSS_BOUND:.0%} of dense",
    )
    p.add_argument(
        "--demo-oom",
        action="store_true",
        help=">RAM demonstration: graph whose dense CSR "
        f"(≈{(OOM_DEMO_VERTICES + 1) * 8 / 2**20 + OOM_DEMO_VERTICES * OOM_DEMO_DEGREE * 4 / 2**20:.0f}MB) "
        f"exceeds a {OOM_DEMO_BUDGET_MB}MB RLIMIT_AS budget — the dense "
        "control must MemoryError while sharded build+partition complete",
    )
    p.add_argument(
        "--cores",
        type=int,
        nargs="+",
        default=None,
        metavar="JOBS",
        help="parallel-kernel cores sweep (e.g. 1 2 4 8): one dense cell "
        "per worker count at the largest --scales size, speedup recorded "
        "against the jobs=1 buffered baseline",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for every cell's build finalize and "
        "partition stream (default: $REPRO_JOBS or 1)",
    )
    p.add_argument(
        "--shard-size",
        type=int,
        default=None,
        help="vertices per shard for the sharded cells (default: 2^17; "
        "smaller shards shrink the finalize-time bucket sort, which "
        "dominates the sharded peak at small vertex counts)",
    )
    p.add_argument(
        "--spill-root",
        default=None,
        help="directory for the sweep's transient shard dirs (default: $TMPDIR)",
    )
    p.add_argument(
        "--record",
        action="store_true",
        help="append results to BENCH_hotpaths.json / BENCH_suite.json "
        "in the current directory",
    )
    return p


def _fmt(cell: dict) -> str:
    if "error" in cell:
        return f"    {cell['kind']:>8s}: FAILED — {cell['error']}"
    return (
        f"    {cell['kind']:>8s}/{cell['kernel']:<12s} "
        f"rss={cell['peak_rss_mb']:8.1f}MB  csr={cell['csr_mb']:7.1f}MB  "
        f"build={cell['build_seconds']:6.2f}s  "
        f"part={cell['partition_seconds']:6.2f}s  "
        f"{cell['vertices_per_sec']:>9,d} v/s  parts={cell['checksum']}"
    )


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    status = 0

    parity = parity_control(args.seed)
    ok = all(parity.values())
    print(f"parity control (n=4096, 5 partitioners, dense vs sharded): "
          f"{'all identical' if ok else f'MISMATCH {parity}'}")
    if not ok:
        status = 1

    sweep_cells: list[dict] = []
    for exp in args.scales:
        n = 1 << exp
        print(f"n = 2^{exp} = {n:,} (d̄≈{args.avg_degree:g}, k={args.parts})")
        cells: list[dict] = []
        if args.mode in ("all", "dense"):
            for kernel in DENSE_KERNELS:
                cells.append(
                    run_cell(
                        "dense", n, args.avg_degree, args.parts, args.seed,
                        kernel=kernel, jobs=args.jobs,
                    )
                )
        if args.mode in ("all", "sharded"):
            cells.append(
                run_cell(
                    "sharded", n, args.avg_degree, args.parts, args.seed,
                    spill_root=args.spill_root, shard_size=args.shard_size,
                    jobs=args.jobs,
                )
            )
        for cell in cells:
            cell["scale_exp"] = exp
            print(_fmt(cell))
            if "error" in cell:
                status = 1
        sweep_cells.extend(cells)

    cores_cells: list[dict] = []
    if args.cores:
        exp = max(args.scales)
        n = 1 << exp
        print(f"cores sweep: n = 2^{exp} = {n:,}, jobs ∈ {sorted(set(args.cores))}")
        baseline = run_cell(
            "dense", n, args.avg_degree, args.parts, args.seed,
            kernel="buffered", jobs=1,
        )
        baseline["scale_exp"] = exp
        baseline["sweep"] = "cores"
        print(_fmt(baseline))
        cores_cells.append(baseline)
        base_vps = baseline.get("vertices_per_sec")
        if "error" in baseline:
            status = 1
        for jobs in sorted(set(args.cores)):
            cell = run_cell(
                "dense", n, args.avg_degree, args.parts, args.seed,
                kernel="parallel", jobs=jobs,
            )
            cell["scale_exp"] = exp
            cell["sweep"] = "cores"
            cell["jobs"] = jobs
            if base_vps and cell.get("vertices_per_sec"):
                cell["speedup_vs_buffered_1"] = round(
                    cell["vertices_per_sec"] / base_vps, 3
                )
            print(_fmt(cell) + (
                f"  speedup={cell['speedup_vs_buffered_1']:.2f}x"
                if "speedup_vs_buffered_1" in cell else ""
            ))
            if "error" in cell:
                status = 1
            elif baseline.get("checksum") and cell["checksum"] != baseline["checksum"]:
                print(f"    MISMATCH: jobs={jobs} checksum differs from baseline")
                status = 1
            cores_cells.append(cell)

    oom_cells: list[dict] = []
    if args.demo_oom:
        n, deg, cap = OOM_DEMO_VERTICES, OOM_DEMO_DEGREE, OOM_DEMO_BUDGET_MB
        csr_mb = ((n + 1) * 8 + n * deg * 4) / 2**20
        print(
            f"demo-oom: n = {n:,}, d̄≈{deg:g}, dense CSR ≈{csr_mb:.0f}MB "
            f"vs RLIMIT_AS budget {cap}MB"
        )
        dense = run_cell(
            "dense", n, deg, args.parts, args.seed,
            kernel="incremental", mem_cap_mb=cap, batch_size=OOM_DEMO_BATCH,
        )
        # The partition stream stays on the explicit serial buffered
        # kernel: a parallel stream would re-open the sharded graph in
        # every worker, and under RLIMIT_AS each worker's mapped-shard
        # LRU competes with the same address-space budget. The
        # *finalize* is the parallel phase this demo exercises
        # (jobs=2 unless overridden) — pool workers inherit the cap
        # and each peaks at one bucket's bounded working set.
        sharded = run_cell(
            "sharded", n, deg, args.parts, args.seed,
            kernel="buffered",
            spill_root=args.spill_root,
            shard_size=args.shard_size or OOM_DEMO_SHARD,
            jobs=args.jobs or 2, mem_cap_mb=cap, batch_size=OOM_DEMO_BATCH,
        )
        for cell in (dense, sharded):
            cell["sweep"] = "oom_demo"
            print(_fmt(cell))
        oom_cells = [dense, sharded]
        dense_oomed = dense.get("error") == "MemoryError"
        sharded_ok = "error" not in sharded
        exceeds = sharded_ok and sharded["csr_mb"] > cap
        print(
            "demo-oom: dense control "
            + ("hit MemoryError as required" if dense_oomed else
               f"UNEXPECTEDLY {'succeeded' if 'error' not in dense else dense['error']}")
            + "; sharded "
            + (f"completed (graph {sharded['csr_mb']:.0f}MB > budget {cap}MB: "
               f"{'yes' if exceeds else 'NO'})" if sharded_ok
               else f"FAILED — {sharded.get('error')}")
        )
        oom_passed = dense_oomed and sharded_ok and exceeds
        if not oom_passed:
            status = 1

    demo_cells: list[dict] = []
    demo_ratio = None
    if args.demo:
        n, deg = 1 << 20, 32.0
        print(f"demo: n = {n:,}, d̄≈{deg:g} (≈{int(n * deg / 2):,} edges)")
        dense = run_cell("dense", n, deg, args.parts, args.seed, kernel="incremental")
        # 2^15-vertex shards: the sharded peak is one bucket's
        # sort working set at finalize, and the default 2^17 shard
        # size leaves only 8 jumbo buckets at this vertex count.
        sharded = run_cell(
            "sharded", n, deg, args.parts, args.seed,
            spill_root=args.spill_root,
            shard_size=args.shard_size or (1 << 15),
        )
        for cell in (dense, sharded):
            print(_fmt(cell))
        demo_cells = [dense, sharded]
        if "error" in dense or "error" in sharded:
            status = 1
        else:
            demo_ratio = sharded["peak_rss_mb"] / dense["peak_rss_mb"]
            same = dense["checksum"] == sharded["checksum"]
            print(
                f"demo: sharded/dense peak RSS = {demo_ratio:.3f} "
                f"(bound {DEMO_RSS_BOUND}), assignments "
                f"{'identical' if same else 'DIFFER'}"
            )
            if demo_ratio >= DEMO_RSS_BOUND or not same:
                status = 1

    if args.record:
        import platform

        stamp = time.strftime("%Y-%m-%dT%H:%M:%S+00:00", time.gmtime())
        try:
            cpus = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):  # pragma: no cover - non-linux
            cpus = os.cpu_count() or 1
        _append_entry(
            Path("BENCH_hotpaths.json"),
            {
                "timestamp": stamp,
                "workload": {
                    "bench": "scale_sweep",
                    "graph": "social_edge_batches/social_graph(2.3)",
                    "avg_degree": args.avg_degree,
                    "num_parts": args.parts,
                    "seed": args.seed,
                },
                "cells": sweep_cells + cores_cells + oom_cells + demo_cells,
                "parity_control": parity,
                "cpus_visible": cpus,
                "python": platform.python_version(),
                "numpy": np.__version__,
            },
        )
        entry = {
            "timestamp": stamp,
            "workload": "repro-bench scale",
            "scales": [f"2^{e}" for e in args.scales],
            "mode": args.mode,
            "parity_control_identical": ok,
            "cpus_visible": cpus,
            "python": platform.python_version(),
        }
        if args.cores:
            entry["cores_sweep"] = {
                str(c.get("jobs", 1)): c.get("speedup_vs_buffered_1")
                for c in cores_cells
                if c.get("sweep") == "cores" and c.get("kernel") == "parallel"
            }
        if oom_cells:
            entry["oom_demo_passed"] = oom_passed
            entry["oom_budget_mb"] = OOM_DEMO_BUDGET_MB
        if demo_ratio is not None:
            entry["demo_rss_ratio"] = round(demo_ratio, 3)
            entry["demo_rss_bound"] = DEMO_RSS_BOUND
        _append_entry(Path("BENCH_suite.json"), entry)
        print("recorded to BENCH_hotpaths.json / BENCH_suite.json")

    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
