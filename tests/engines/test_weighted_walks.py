"""Unit tests for weighted walks, the vertex alias index, and visit tracking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import BSPCluster
from repro.engines.knightking import (
    DeepWalk,
    VertexAliasIndex,
    WalkEngine,
    WeightedWalk,
)
from repro.errors import ConfigurationError
from repro.graph import chung_lu, from_edges, star_graph
from repro.graph.weights import EdgeWeights
from repro.partition import HashPartitioner


class TestVertexAliasIndex:
    def test_uniform_weights_match_uniform_sampling(self):
        g = star_graph(6)
        idx = VertexAliasIndex.build(g, EdgeWeights.uniform(g))
        rng = np.random.default_rng(0)
        targets, dead = idx.sample(np.zeros(30_000, dtype=np.int64), rng)
        assert not dead.any()
        counts = np.bincount(targets, minlength=7)[1:]
        assert counts.min() > 0.85 * counts.max()

    def test_biased_weights_shift_distribution(self):
        # vertex 0 with neighbours 1, 2; weight 9:1
        g = from_edges([0, 0], [1, 2], num_vertices=3)
        w = np.zeros(g.num_edges)
        # vertex 0's slots are [1, 2] in sorted order
        w[g.indptr[0]] = 9.0
        w[g.indptr[0] + 1] = 1.0
        w[g.indptr[1]] = 1.0
        w[g.indptr[2]] = 1.0
        idx = VertexAliasIndex.build(g, w)
        rng = np.random.default_rng(1)
        targets, _ = idx.sample(np.zeros(50_000, dtype=np.int64), rng)
        frac_1 = (targets == 1).mean()
        assert frac_1 == pytest.approx(0.9, abs=0.01)

    def test_dead_end(self, isolated_vertices):
        idx = VertexAliasIndex.build(
            isolated_vertices, EdgeWeights.uniform(isolated_vertices)
        )
        targets, dead = idx.sample(np.array([5]), np.random.default_rng(0))
        assert dead[0] and targets[0] == 5

    def test_zero_weight_vertex_falls_back_uniform(self):
        g = from_edges([0, 0], [1, 2], num_vertices=3)
        w = np.zeros(g.num_edges)  # all-zero weights
        idx = VertexAliasIndex.build(g, w)
        targets, dead = idx.sample(np.zeros(2000, dtype=np.int64), np.random.default_rng(2))
        assert not dead.any()
        assert set(np.unique(targets)) == {1, 2}

    def test_length_mismatch(self, triangle):
        with pytest.raises(ConfigurationError):
            VertexAliasIndex.build(triangle, np.ones(2))


class TestWeightedWalkApp:
    @pytest.fixture(scope="class")
    def setup(self):
        g = chung_lu(600, 8.0, rng=40)
        a = HashPartitioner().partition(g, 4).assignment
        return g, a

    def test_paths_follow_edges(self, setup):
        g, a = setup
        app = WeightedWalk(g, EdgeWeights.random(g, rng=41))
        engine = WalkEngine(BSPCluster(4), seed=42, record_paths=True)
        res = engine.run(g, a, app, walkers_per_vertex=1, max_steps=4)
        for row in res.paths[:100]:
            trace = row[row >= 0]
            for u, v in zip(trace[:-1], trace[1:]):
                assert g.has_edge(int(u), int(v))

    def test_degree_biased_weights_seek_hubs(self, setup):
        g, a = setup
        hub_app = WeightedWalk(g, EdgeWeights.degree_proportional(g))
        e1 = WalkEngine(BSPCluster(4), seed=43)
        r_hub = e1.run(g, a, hub_app, walkers_per_vertex=2, max_steps=4)
        e2 = WalkEngine(BSPCluster(4), seed=43)
        r_uni = e2.run(g, a, DeepWalk(), walkers_per_vertex=2, max_steps=4)
        deg = g.degrees
        assert deg[r_hub.final_positions].mean() > deg[r_uni.final_positions].mean()

    def test_wrong_graph_rejected(self, setup):
        g, a = setup
        other = chung_lu(100, 4.0, rng=44)
        app = WeightedWalk(other, EdgeWeights.uniform(other))
        engine = WalkEngine(BSPCluster(4), seed=45)
        with pytest.raises(ValueError):
            engine.run(g, a, app, walkers_per_vertex=1, max_steps=2)


class TestVisitTracking:
    def test_counts_match_paths(self):
        g = chung_lu(300, 6.0, rng=50)
        a = HashPartitioner().partition(g, 2).assignment
        engine = WalkEngine(BSPCluster(2), seed=51, record_paths=True, track_visits=True)
        res = engine.run(g, a, DeepWalk(), walkers_per_vertex=2, max_steps=5)
        expected = np.bincount(
            res.paths[res.paths >= 0].ravel(), minlength=g.num_vertices
        )
        assert np.array_equal(res.visit_counts, expected)

    def test_total_visits(self):
        g = chung_lu(300, 6.0, rng=52)
        a = HashPartitioner().partition(g, 2).assignment
        engine = WalkEngine(BSPCluster(2), seed=53, track_visits=True)
        res = engine.run(g, a, DeepWalk(), walkers_per_vertex=1, max_steps=3)
        # one visit per start + one per executed step
        assert res.visit_counts.sum() == g.num_vertices + res.total_steps

    def test_disabled_by_default(self):
        g = chung_lu(100, 4.0, rng=54)
        a = HashPartitioner().partition(g, 2).assignment
        engine = WalkEngine(BSPCluster(2), seed=55)
        res = engine.run(g, a, DeepWalk(), walkers_per_vertex=1, max_steps=2)
        assert res.visit_counts is None
