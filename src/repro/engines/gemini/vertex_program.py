"""Vertex-program interface and vectorised gather primitives.

A :class:`VertexProgram` describes one iterative graph algorithm in the
pull/gather style Gemini uses: per iteration every active vertex reads
its neighbours' state and produces a new value. The engine owns the BSP
accounting; programs own only the numerical semantics, expressed over
whole-graph NumPy arrays.

The two gather primitives, :func:`neighbor_sum` and :func:`neighbor_min`,
use the ``reduceat``-over-CSR trick: segment-reduce the permuted value
array at ``indptr`` starts. Zero-degree segments are handled by passing
only nonzero-degree starts — an empty CSR range never shifts the next
segment's boundary, so consecutive kept starts still delimit exactly one
vertex's neighbour list. This keeps every iteration free of Python-level
per-edge loops (the hpc-parallel guides' core rule).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["VertexProgram", "neighbor_sum", "neighbor_min"]


def neighbor_sum(graph: CSRGraph, values: np.ndarray, *, default: float = 0.0) -> np.ndarray:
    """For every vertex, Σ of ``values`` over its out-neighbours.

    Vertices with no neighbours get ``default``.
    """
    n = graph.num_vertices
    out = np.full(n, default, dtype=np.float64)
    if graph.num_edges == 0:
        return out
    # Blockwise so sharded graphs reduce one mapped shard at a time;
    # dense graphs yield a single zero-copy block (the old global path).
    for start, stop, local, idx in graph.iter_blocks():
        gathered = values[idx]
        nonzero = np.diff(local) > 0
        if not nonzero.any():
            continue
        starts = local[:-1][nonzero]
        out[start:stop][nonzero] = np.add.reduceat(gathered, starts)
    return out


def neighbor_min(graph: CSRGraph, values: np.ndarray, *, default: float = np.inf) -> np.ndarray:
    """For every vertex, min of ``values`` over its out-neighbours."""
    n = graph.num_vertices
    out = np.full(n, default, dtype=np.float64)
    if graph.num_edges == 0:
        return out
    for start, stop, local, idx in graph.iter_blocks():
        gathered = values[idx].astype(np.float64)
        nonzero = np.diff(local) > 0
        if not nonzero.any():
            continue
        starts = local[:-1][nonzero]
        out[start:stop][nonzero] = np.minimum.reduceat(gathered, starts)
    return out


class VertexProgram(abc.ABC):
    """One iterative vertex-centric algorithm.

    Subclasses define the numeric state and per-iteration transition;
    the engine queries ``max_iterations`` and stops early when
    :meth:`iterate` reports an empty frontier.
    """

    #: human-readable name used in reports.
    name: str = "program"

    #: hard iteration cap (PageRank: exactly 10 per the paper's canon;
    #: convergence programs: a safe upper bound).
    max_iterations: int = 100

    @abc.abstractmethod
    def initialize(self, graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(state, active_mask)`` for iteration 0."""

    @abc.abstractmethod
    def iterate(
        self, graph: CSRGraph, state: np.ndarray, active: np.ndarray, iteration: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """One superstep: return ``(new_state, next_active_mask)``.

        ``active`` is the frontier whose work is being accounted this
        superstep; the returned mask is next superstep's frontier (empty
        mask ⇒ converged).
        """
