"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
catching programming errors (``TypeError`` etc.) by accident.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "PartitionError",
    "ConfigurationError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """Raised when graph input data is malformed or inconsistent.

    Examples: an edge list referencing a vertex id out of range, a CSR
    ``indptr`` array that is not monotone, or an unreadable file format.
    """


class PartitionError(ReproError):
    """Raised when a partitioner cannot produce a valid partition.

    Examples: requesting more parts than vertices, an assignment vector
    with unassigned vertices, or a combining plan that does not cover
    every piece exactly once.
    """


class ConfigurationError(ReproError):
    """Raised for invalid user-supplied parameters.

    Examples: a weighting factor outside ``[0, 1]``, a non-positive
    number of machines, or a negative walk length.
    """


class SimulationError(ReproError):
    """Raised when the BSP cluster simulator reaches an invalid state.

    Examples: a message addressed to a machine outside the cluster, or
    a ledger queried for an iteration that never ran.
    """
