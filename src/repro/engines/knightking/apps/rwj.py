"""Random walk with jump (Hussein et al., CIKM 2018).

With probability ``jump_prob`` (paper: 0.2) the walker teleports to a
uniformly random vertex of the whole graph; otherwise it takes a uniform
neighbour step. Jumps rescue walkers from dead ends, so only a dead end
*without* a jump terminates.
"""

from __future__ import annotations

import numpy as np

from repro.engines.knightking.apps.base import WalkApp
from repro.engines.knightking.transition import uniform_neighbor
from repro.graph.csr import CSRGraph
from repro.utils.validation import check_probability

__all__ = ["RWJ"]


class RWJ(WalkApp):
    """Uniform step, teleporting with probability ``jump_prob``."""

    name = "rwj"

    def __init__(self, jump_prob: float = 0.2) -> None:
        check_probability("jump_prob", jump_prob)
        self.jump_prob = float(jump_prob)

    def advance(
        self,
        graph: CSRGraph,
        positions: np.ndarray,
        previous: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        k = positions.size
        jump = rng.random(k) < self.jump_prob
        targets, dead = uniform_neighbor(graph, positions, rng)
        if jump.any():
            targets = targets.copy()
            targets[jump] = rng.integers(0, graph.num_vertices, size=int(jump.sum()))
        return targets, dead & ~jump
