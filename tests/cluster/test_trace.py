"""Tests for the Chrome-tracing exporter (`repro.cluster.trace`)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cluster import TimingLedger, to_chrome_trace, write_chrome_trace
from repro.cluster.faults import CheckpointPolicy, Crash, FaultAwareCluster, FaultPlan
from repro.engines.knightking import DeepWalk, WalkEngine
from repro.graph import chung_lu
from repro.partition import get_partitioner


def _ledger():
    ledger = TimingLedger(3)
    ledger.record(np.array([1.0, 2.0, 3.0]), np.array([0.5, 0.0, 0.5]))
    ledger.record(np.array([2.0, 2.0, 2.0]), np.array([0.0, 1.0, 0.0]))
    return ledger


def _x_events(events):
    return [e for e in events if e["ph"] == "X"]


class TestToChromeTrace:
    def test_metadata_names_machines(self):
        events = to_chrome_trace(_ledger(), job_name="demo")
        meta = [e for e in events if e["ph"] == "M"]
        assert {"process_name"} == {e["name"] for e in meta if "tid" not in e}
        tracks = {e["tid"]: e["args"]["name"] for e in meta if "tid" in e}
        assert tracks == {0: "machine-0", 1: "machine-1", 2: "machine-2"}

    def test_per_machine_tracks_and_ordering(self):
        events = _x_events(to_chrome_trace(_ledger()))
        for machine in range(3):
            ts = [e["ts"] for e in events if e["tid"] == machine]
            assert ts == sorted(ts)
        assert {e["tid"] for e in events} == {0, 1, 2}

    def test_segments_fill_superstep_exactly(self):
        """compute + comm + wait spans [t0, t0 + duration] on every track."""
        ledger = _ledger()
        events = _x_events(to_chrome_trace(ledger))
        t0 = 0.0
        for step, it in enumerate(ledger.iterations):
            for machine in range(ledger.num_machines):
                segs = sorted(
                    (e for e in events if e["tid"] == machine and e["name"].endswith(f"[{step}]")),
                    key=lambda e: e["ts"],
                )
                assert segs[0]["ts"] == pytest.approx(t0 * 1e6)
                cursor = segs[0]["ts"]
                for e in segs:  # abutting, no overlap, no gap
                    assert e["ts"] == pytest.approx(cursor)
                    cursor = e["ts"] + e["dur"]
                assert cursor == pytest.approx((t0 + it.duration) * 1e6)
            t0 += it.duration

    def test_wait_segment_is_the_barrier_gap(self):
        ledger = _ledger()
        events = _x_events(to_chrome_trace(ledger))
        waits = [e for e in events if e["cat"] == "wait" and e["name"] == "wait[0]"]
        by_machine = {e["tid"]: e["dur"] for e in waits}
        # Machine 2 is the straggler of superstep 0: it has no wait event.
        assert 2 not in by_machine
        assert by_machine[0] == pytest.approx(2.0e6)
        assert by_machine[1] == pytest.approx(1.5e6)

    def test_zero_length_segments_dropped(self):
        events = _x_events(to_chrome_trace(_ledger()))
        assert all(e["dur"] > 0 for e in events)
        # Machine 1 had 0 comm in superstep 0.
        assert not any(e["name"] == "comm[0]" and e["tid"] == 1 for e in events)

    def test_event_markers_render_as_instants(self):
        ledger = _ledger()
        ledger.add_event("straggler", superstep=0, machine=1, factor=3.0)
        ledger.add_event("checkpoint", superstep=1, seconds=0.5)
        events = to_chrome_trace(ledger)
        inst = {e["name"]: e for e in events if e["ph"] == "i"}
        s = inst["straggler[0]"]
        assert s["tid"] == 1 and s["s"] == "t"
        assert s["ts"] == pytest.approx(0.0)  # start of its superstep
        assert s["args"]["factor"] == 3.0
        c = inst["checkpoint[1]"]
        assert c["s"] == "g"  # cluster-wide marker
        # Barrier events sit at the end of their superstep.
        durations = [it.duration for it in ledger.iterations]
        assert c["ts"] == pytest.approx(sum(durations) * 1e6)

    def test_out_of_range_event_pinned_to_end(self):
        ledger = _ledger()
        ledger.add_event("crash", superstep=99, machine=0)
        events = to_chrome_trace(ledger)
        inst = [e for e in events if e["ph"] == "i"]
        total = sum(it.duration for it in ledger.iterations)
        assert inst[0]["ts"] == pytest.approx(total * 1e6)


class TestFaultTrace:
    def test_fault_run_has_markers_and_masked_tracks(self):
        g = chung_lu(400, 8.0, 2.3, rng=4)
        a = get_partitioner("bpart", seed=1).partition(g, 4).assignment
        plan = FaultPlan(
            crashes=(Crash(machine=1, superstep=1),),
            checkpoint=CheckpointPolicy(interval=2),
            seed=3,
        )
        cluster = FaultAwareCluster(4, plan, graph=g, assignment=a)
        WalkEngine(cluster, seed=1).run(g, a, DeepWalk(), walkers_per_vertex=1, max_steps=3)
        events = to_chrome_trace(cluster.ledger)
        kinds = {e["cat"] for e in events if e["ph"] == "i"}
        assert {"crash", "recovery", "checkpoint"} <= kinds
        crash = next(e for e in events if e["ph"] == "i" and e["cat"] == "crash")
        assert crash["tid"] == 1
        # After the crash superstep, machine 1's track goes silent.
        last_iter = cluster.ledger.num_iterations - 1
        assert not any(
            e["ph"] == "X" and e["tid"] == 1 and e["name"].endswith(f"[{last_iter}]")
            for e in events
        )


class TestWriteChromeTrace:
    def test_file_round_trip(self, tmp_path):
        ledger = _ledger()
        ledger.add_event("crash", superstep=1, machine=2)
        path = tmp_path / "trace.json"
        write_chrome_trace(ledger, path, job_name="roundtrip")
        payload = json.loads(path.read_text())
        assert payload["traceEvents"] == to_chrome_trace(ledger, job_name="roundtrip")
