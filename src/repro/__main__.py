"""``python -m repro`` dispatches to the bench CLI."""

from repro.cli import main

raise SystemExit(main())
