"""Figure 10 — bias scatter: vertex bias vs edge bias, 3 graphs × {4,8,16}.

Each point is (vertex bias, edge bias) for one (algorithm, k). The paper:
vertex-balanced algorithms sit on the y-axis with edge bias up to 9.15,
edge-balanced algorithms on the x-axis with vertex bias up to 9.06, and
BPart hugs the origin (< 0.1 in both dimensions at every k).
"""

from __future__ import annotations

from repro.bench.experiments._common import DATASET_ORDER, graph_for, partition_with
from repro.bench.harness import ExperimentConfig, ExperimentResult, register_experiment
from repro.bench.report import Table
from repro.partition.metrics import bias

ALGOS = ("chunk-v", "chunk-e", "fennel", "bpart")
PART_COUNTS = (4, 8, 16)


@register_experiment("fig10", "Bias scatter for vertices and edges (3 graphs x {4,8,16} parts)")
def run(config: ExperimentConfig) -> ExperimentResult:
    result = ExperimentResult(
        "fig10", "Bias scatter for vertices and edges (3 graphs x {4,8,16} parts)"
    )
    for dataset in DATASET_ORDER:
        g = graph_for(config, dataset)
        table = Table(
            f"{dataset}: (vertex bias, edge bias)",
            ["algorithm", "k", "vertex bias", "edge bias"],
            note="BPart < 0.1 in both dims; 1-D algorithms grow with k (paper max ~9)",
        )
        for name in ALGOS:
            for k in PART_COUNTS:
                a = partition_with(name, g, k, seed=config.seed).assignment
                vb = bias(a.vertex_counts)
                eb = bias(a.edge_counts)
                table.add_row(name, k, vb, eb)
                result.data[(dataset, name, k)] = (vb, eb)
        result.tables.append(table)
    return result
