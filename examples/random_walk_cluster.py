"""Distributed random-walk workload on a simulated 8-machine cluster.

Reproduces the paper's motivating scenario (§2.3, Figure 4): start five
DeepWalk walkers per vertex for four steps and watch how the partition
shapes per-machine load and synchronisation waiting. Also demonstrates
the engine's two synchronisation modes.

Usage::

    python examples/random_walk_cluster.py [dataset] [machines]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import graph, partition
from repro.bench.workloads import run_walk_job
from repro.partition.metrics import bias


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "friendster"
    machines = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    g = graph.load_dataset(dataset, scale=0.5, seed=7)
    print(f"dataset={dataset} machines={machines}\n{graph.summarize(g)}\n")

    for name in ("chunk-v", "chunk-e", "fennel", "bpart"):
        a = partition.get_partitioner(name, seed=7).partition(g, machines).assignment
        walk = run_walk_job(g, a, app_name="deepwalk", walkers_per_vertex=5, seed=7)
        print(f"== {name} ==")
        print(f"  total steps: {walk.total_steps:,}   transmitted walkers: {walk.total_messages:,}")
        print(f"  waiting ratio: {walk.ledger.waiting_ratio:.1%}   runtime: {walk.runtime * 1e3:.3f} ms")
        for it, row in enumerate(walk.steps_matrix):
            cells = " ".join(f"{int(x):>8d}" for x in row)
            print(f"  iter {it}: {cells}   (bias {bias(row):.2f})")
        print()

    print("greedy local-computation mode (supersteps = communication rounds):")
    a = partition.get_partitioner("bpart", seed=7).partition(g, machines).assignment
    walk = run_walk_job(
        g, a, app_name="deepwalk", walkers_per_vertex=5, seed=7, mode="greedy"
    )
    print(
        f"  supersteps: {walk.num_supersteps} (vs 4 step-synchronous), "
        f"messages: {walk.total_messages:,}"
    )


if __name__ == "__main__":
    main()
