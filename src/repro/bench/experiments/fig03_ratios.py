"""Figure 3 — per-subgraph vertex/edge ratios at k = 4 (Twitter).

The paper shows Chunk-V and Fennel balancing |V_i| while |E_i| gaps
reach 8×, and Chunk-E balancing |E_i| while |V_i| gaps reach 13×.
"""

from __future__ import annotations

from repro.bench.experiments._common import graph_for, partition_with
from repro.bench.harness import ExperimentConfig, ExperimentResult, register_experiment
from repro.bench.report import Table

ALGOS = ("chunk-v", "chunk-e", "fennel")
K = 4


@register_experiment("fig03", "Vertex/edge ratios per subgraph (Twitter, 4 parts)")
def run(config: ExperimentConfig) -> ExperimentResult:
    g = graph_for(config, "twitter")
    result = ExperimentResult(
        "fig03",
        "Vertex/edge ratios per subgraph (Twitter, 4 parts)",
    )
    table = Table(
        "Share of |V| and |E| per subgraph",
        ["algorithm", "dim"] + [f"G{i}" for i in range(K)] + ["max/min"],
        note="Chunk-V/Fennel: |V| even, |E| gap up to 8x; Chunk-E: |E| even, |V| gap up to 13x",
    )
    for name in ALGOS:
        a = partition_with(name, g, K, seed=config.seed).assignment
        v = a.vertex_counts / g.num_vertices
        e = a.edge_counts / g.num_edges
        table.add_row(name, "V", *[float(x) for x in v], float(v.max() / max(v.min(), 1e-12)))
        table.add_row(name, "E", *[float(x) for x in e], float(e.max() / max(e.min(), 1e-12)))
        result.data[name] = {"vertex_ratio": v.tolist(), "edge_ratio": e.tolist()}
    result.tables.append(table)
    return result
