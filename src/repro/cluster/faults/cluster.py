"""FaultAwareCluster — a drop-in BSP cluster that injects faults.

The wrapper exposes the exact :class:`~repro.cluster.bsp.BSPCluster`
surface the engines drive (``num_machines`` / ``begin_run`` /
``superstep`` / ``ledger`` / ``total_messages``), so both the Gemini and
KnightKing engines run through it **unmodified**. Per engine superstep
it:

1. remaps each *logical* part's reported work onto the *physical*
   machines currently hosting it (identity until a ``redistribute``
   recovery moves state);
2. applies active straggler multipliers to per-machine compute;
3. prices communication through the network model, with per-pair
   degraded-link scaling;
4. records the superstep in the (extended) :class:`TimingLedger`;
5. fires scheduled crashes — inserting a *recovery superstep* whose
   cost is checkpoint restore + replay of the work lost since the last
   checkpoint, concentrated on the replacement (``restart``) or spread
   over survivors by their recovered share (``redistribute``);
6. inserts checkpoint supersteps on the plan's cadence, priced from
   per-machine ``|V_i|``/``|E_i|`` state by the
   :class:`~repro.cluster.faults.checkpoint.CheckpointCostModel`.

With a zero-fault plan every branch above is skipped and the arithmetic
follows :class:`BSPCluster` operation-for-operation, so the resulting
ledger is **bit-identical** to the baseline — the property the tests
pin down. Everything is deterministic: the same plan, seed, and job
always produce byte-identical ledgers and recovery assignments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cost import CostModel
from repro.cluster.faults.checkpoint import CheckpointCostModel
from repro.cluster.faults.plan import FaultPlan
from repro.cluster.faults.recovery import plan_redistribute, plan_restart
from repro.cluster.ledger import TimingLedger
from repro.cluster.messages import TrafficMatrix
from repro.cluster.network import NetworkModel
from repro.errors import ConfigurationError, SimulationError
from repro.graph.csr import CSRGraph
from repro.partition.assignment import PartitionAssignment
from repro.partition.metrics import bias

__all__ = ["FaultAwareCluster", "FaultReport"]


@dataclass
class FaultReport:
    """Post-run summary of what the plan did to the schedule."""

    num_machines: int
    runtime: float
    waiting_ratio: float
    #: waiting ratio over the iterations at/after the first crash
    #: (equals ``waiting_ratio`` when nothing crashed).
    degraded_waiting_ratio: float
    recovery_seconds: float
    checkpoint_seconds: float
    num_checkpoints: int
    crashes: list[dict] = field(default_factory=list)
    alive: list[bool] = field(default_factory=list)
    survivor_vertex_bias: float = 0.0
    survivor_edge_bias: float = 0.0
    survivor_vertex_max_dev: float = 0.0
    survivor_edge_max_dev: float = 0.0
    total_messages: int = 0

    def as_dict(self) -> dict:
        return {
            "num_machines": self.num_machines,
            "runtime": self.runtime,
            "waiting_ratio": self.waiting_ratio,
            "degraded_waiting_ratio": self.degraded_waiting_ratio,
            "recovery_seconds": self.recovery_seconds,
            "checkpoint_seconds": self.checkpoint_seconds,
            "num_checkpoints": self.num_checkpoints,
            "crashes": [dict(c) for c in self.crashes],
            "alive": list(self.alive),
            "survivor_vertex_bias": self.survivor_vertex_bias,
            "survivor_edge_bias": self.survivor_edge_bias,
            "survivor_vertex_max_dev": self.survivor_vertex_max_dev,
            "survivor_edge_max_dev": self.survivor_edge_max_dev,
            "total_messages": self.total_messages,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultReport":
        """Rebuild a report from :meth:`as_dict` (cache rehydration)."""
        return cls(
            num_machines=int(payload["num_machines"]),
            runtime=float(payload["runtime"]),
            waiting_ratio=float(payload["waiting_ratio"]),
            degraded_waiting_ratio=float(payload["degraded_waiting_ratio"]),
            recovery_seconds=float(payload["recovery_seconds"]),
            checkpoint_seconds=float(payload["checkpoint_seconds"]),
            num_checkpoints=int(payload["num_checkpoints"]),
            crashes=[dict(c) for c in payload.get("crashes", [])],
            alive=[bool(a) for a in payload.get("alive", [])],
            survivor_vertex_bias=float(payload.get("survivor_vertex_bias", 0.0)),
            survivor_edge_bias=float(payload.get("survivor_edge_bias", 0.0)),
            survivor_vertex_max_dev=float(payload.get("survivor_vertex_max_dev", 0.0)),
            survivor_edge_max_dev=float(payload.get("survivor_edge_max_dev", 0.0)),
            total_messages=int(payload.get("total_messages", 0)),
        )


def _max_dev(values: np.ndarray) -> float:
    """``max |x − mean| / mean`` — the symmetric balance deviation."""
    x = np.asarray(values, dtype=np.float64)
    if x.size == 0:
        return 0.0
    mean = x.mean()
    if mean == 0:
        return 0.0
    return float(np.abs(x - mean).max() / mean)


class FaultAwareCluster:
    """A :class:`BSPCluster`-compatible cluster executing a :class:`FaultPlan`.

    Parameters
    ----------
    num_machines:
        Cluster size — must equal the driving assignment's part count,
        exactly as for :class:`BSPCluster`.
    plan:
        The fault schedule. An empty/default plan reproduces the
        baseline cluster bit-for-bit.
    graph, assignment:
        The job's graph and partition. Required whenever the plan
        crashes machines or takes checkpoints (state sizes and the
        redistribute recovery need them); optional otherwise.
    checkpoint_cost:
        Pricing of checkpoint/restore I/O.
    """

    def __init__(
        self,
        num_machines: int,
        plan: FaultPlan | None = None,
        *,
        graph: CSRGraph | None = None,
        assignment: PartitionAssignment | None = None,
        cost_model: CostModel | None = None,
        network: NetworkModel | None = None,
        overlap: bool = False,
        checkpoint_cost: CheckpointCostModel | None = None,
    ) -> None:
        if num_machines <= 0:
            raise SimulationError(f"num_machines must be positive, got {num_machines}")
        self._num_machines = int(num_machines)
        self._plan = plan if plan is not None else FaultPlan()
        self._plan.validate_for(self._num_machines)
        self._cost = cost_model if cost_model is not None else CostModel()
        self._network = network if network is not None else NetworkModel()
        self._overlap = bool(overlap)
        self._ckpt = checkpoint_cost if checkpoint_cost is not None else CheckpointCostModel()
        if assignment is not None and assignment.num_parts != self._num_machines:
            raise SimulationError(
                f"assignment has {assignment.num_parts} parts but cluster has "
                f"{self._num_machines} machines"
            )
        if self._plan.needs_state and (graph is None or assignment is None):
            raise ConfigurationError(
                "plans with crashes or checkpoints need graph= and assignment= "
                "(state sizes drive checkpoint and recovery cost)"
            )
        self._graph = graph
        self._assignment = assignment
        self._crash_at: dict[int, list[int]] = {}
        for c in self._plan.crashes:
            self._crash_at.setdefault(c.superstep, []).append(c.machine)
        self._ledger: TimingLedger | None = None
        self._reset_run_state()

    # ------------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        return self._num_machines

    @property
    def cost_model(self) -> CostModel:
        return self._cost

    @property
    def network(self) -> NetworkModel:
        return self._network

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    @property
    def ledger(self) -> TimingLedger:
        if self._ledger is None:
            raise SimulationError("no run started; call begin_run() first")
        return self._ledger

    @property
    def total_messages(self) -> int:
        return int(round(self._messages))

    @property
    def alive(self) -> np.ndarray:
        """Current machine liveness mask (copy)."""
        return self._alive.copy()

    @property
    def hosting(self) -> np.ndarray | None:
        """Current physical vertex → machine vector (copy), if bound."""
        return None if self._hosting is None else self._hosting.copy()

    # ------------------------------------------------------------------
    def begin_run(self) -> TimingLedger:
        """Reset all run state (ledger, liveness, hosting, histories)."""
        self._ledger = TimingLedger(self._num_machines, overlap=self._overlap)
        self._reset_run_state()
        return self._ledger

    def _reset_run_state(self) -> None:
        m = self._num_machines
        self._messages = 0.0
        self._t = 0
        self._alive = np.ones(m, dtype=bool)
        self._share_v: np.ndarray | None = None  # None = identity
        self._share_e: np.ndarray | None = None
        self._since_ckpt: list[np.ndarray] = []
        self._num_checkpoints = 0
        self._checkpoint_seconds = 0.0
        self._recovery_seconds = 0.0
        self._crash_records: list[dict] = []
        self._first_crash_iter: int | None = None
        self._straggler_announced: set[int] = set()
        self._link_announced: set[int] = set()
        if self._assignment is not None:
            self._hosting = self._assignment.parts.astype(np.int64).copy()
            self._state_v = self._assignment.vertex_counts.astype(np.float64).copy()
            self._state_e = self._assignment.edge_counts.astype(np.float64).copy()
        else:
            self._hosting = None
            self._state_v = np.zeros(m)
            self._state_e = np.zeros(m)

    # ------------------------------------------------------------------
    def superstep(
        self,
        *,
        steps: np.ndarray | None = None,
        edges: np.ndarray | None = None,
        vertices: np.ndarray | None = None,
        traffic: TrafficMatrix | None = None,
    ) -> None:
        """Record one engine superstep, applying the plan at time ``t``."""
        if self._ledger is None:
            raise SimulationError("no run started; call begin_run() first")
        if not self._alive.any():
            raise SimulationError(
                "superstep requested but every machine has crashed "
                "(redistribute recovery left no survivors)"
            )
        m = self._num_machines
        t = self._t
        zero = np.zeros(m)
        if traffic is None:
            traffic = TrafficMatrix(m)
        elif traffic.num_machines != m:
            raise SimulationError("traffic matrix size != cluster size")

        identity = self._share_v is None
        if identity:
            compute = self._cost.compute_seconds(
                steps=zero if steps is None else steps,
                edges=zero if edges is None else edges,
                vertices=zero if vertices is None else vertices,
            )
            compute = np.asarray(compute, dtype=np.float64)
        else:
            # Logical part i's work lands on the machines hosting its
            # vertices/edges: walker steps and vertex updates follow the
            # vertex share, edge work follows the edge share.
            sv, se = self._share_v, self._share_e
            steps_p = zero if steps is None else sv.T @ np.asarray(steps, dtype=np.float64)
            verts_p = zero if vertices is None else sv.T @ np.asarray(vertices, dtype=np.float64)
            edges_p = zero if edges is None else se.T @ np.asarray(edges, dtype=np.float64)
            compute = np.asarray(
                self._cost.compute_seconds(steps=steps_p, edges=edges_p, vertices=verts_p),
                dtype=np.float64,
            )
            compute[~self._alive] = 0.0

        # Transient stragglers.
        for s in self._plan.stragglers:
            if s.active_at(t) and self._alive[s.machine]:
                compute[s.machine] *= s.factor
                if id(s) not in self._straggler_announced:
                    self._straggler_announced.add(id(s))
                    self._ledger.add_event(
                        "straggler",
                        superstep=self._ledger.num_iterations,
                        machine=s.machine,
                        factor=s.factor,
                        duration=s.duration,
                        engine_superstep=t,
                    )

        comm, cross_messages = self._comm_seconds(traffic, t, identity)
        if not identity:
            comm = np.where(self._alive, comm, 0.0)

        mask = None if bool(self._alive.all()) else self._alive.copy()
        self._ledger.record(compute, comm, active=mask)
        self._since_ckpt.append(np.asarray(compute, dtype=np.float64).copy())
        self._messages += cross_messages

        # Scheduled crashes fire at the barrier of their superstep.
        for machine in self._crash_at.get(t, ()):  # deterministic plan order
            if self._alive[machine]:
                self._handle_crash(machine, t)

        if self._plan.checkpoint.due_after(t):
            self._take_checkpoint(t)
        self._t += 1

    # ------------------------------------------------------------------
    def _comm_seconds(
        self, traffic: TrafficMatrix, t: int, identity: bool
    ) -> tuple[np.ndarray, float]:
        """Per-machine comm seconds + cross-machine message count."""
        links = [l for l in self._plan.degraded_links if l.active_at(t)]
        if identity:
            sent = traffic.sent
            received = traffic.received
            counts: np.ndarray | None = traffic.counts if links else None
            cross = float(traffic.total)
        else:
            sv = self._share_v
            counts = sv.T @ traffic.counts.astype(np.float64) @ sv
            sent = counts.sum(axis=1)
            received = counts.sum(axis=0)
            cross = float(counts.sum() - np.trace(counts))
        if not links:
            return np.asarray(self._network.comm_seconds(sent, received), dtype=np.float64), cross

        # Traffic crossing a degraded pair pays the slowdown on both
        # endpoints: model it as extra effective messages at nominal
        # bandwidth, then scale the endpoints' barrier latency.
        extra_sent = np.zeros(self._num_machines)
        extra_recv = np.zeros(self._num_machines)
        lat_scale = np.ones(self._num_machines)
        for l in links:
            if id(l) not in self._link_announced:
                self._link_announced.add(id(l))
                self._ledger.add_event(
                    "degraded-link",
                    superstep=self._ledger.num_iterations,
                    machine=l.src,
                    dst=l.dst,
                    bandwidth_scale=l.bandwidth_scale,
                    latency_scale=l.latency_scale,
                    engine_superstep=t,
                )
            pair = float(counts[l.src, l.dst])
            extra = pair * (1.0 / l.bandwidth_scale - 1.0)
            extra_sent[l.src] += extra
            extra_recv[l.dst] += extra
            lat_scale[l.src] = max(lat_scale[l.src], l.latency_scale)
            lat_scale[l.dst] = max(lat_scale[l.dst], l.latency_scale)
        comm = np.asarray(
            self._network.comm_seconds(
                np.asarray(sent, dtype=np.float64) + extra_sent,
                np.asarray(received, dtype=np.float64) + extra_recv,
            ),
            dtype=np.float64,
        )
        comm = comm + (lat_scale - 1.0) * self._network.latency
        return comm, cross

    # ------------------------------------------------------------------
    def _handle_crash(self, machine: int, t: int) -> None:
        """Insert the recovery superstep for a crash at engine step ``t``."""
        m = self._num_machines
        self._ledger.add_event(
            "crash",
            superstep=self._ledger.num_iterations - 1,
            machine=machine,
            engine_superstep=t,
            strategy=self._plan.recovery,
        )
        if self._first_crash_iter is None:
            self._first_crash_iter = self._ledger.num_iterations - 1
        # Work lost since the last checkpoint (including superstep t):
        # it is re-executed by whoever inherits the state.
        replay = float(sum(row[machine] for row in self._since_ckpt))
        lost_v = float(self._state_v[machine])
        lost_e = float(self._state_e[machine])

        recovery = np.zeros(m)
        if self._plan.recovery == "restart":
            outcome = plan_restart(m, machine)
            recovery[machine] = (
                float(self._ckpt.restore_seconds(lost_v, lost_e)) + replay
            )
        else:
            outcome = plan_redistribute(
                self._graph,
                self._hosting,
                m,
                machine,
                self._alive,
                seed=self._plan.seed,
            )
            self._alive[machine] = False
            self._hosting = outcome.hosting
            taken = outcome.share_v > 0
            restore = np.zeros(m)
            restore[taken] = np.asarray(
                self._ckpt.restore_seconds(
                    outcome.share_v[taken] * lost_v, outcome.share_e[taken] * lost_e
                ),
                dtype=np.float64,
            )
            recovery = restore + outcome.share_v * replay
            recovery[machine] = 0.0
            self._rebuild_state_and_shares()

        mask = None if bool(self._alive.all()) else self._alive.copy()
        it = self._ledger.record(recovery, np.zeros(m), active=mask)
        self._recovery_seconds += it.duration
        self._ledger.add_event(
            "recovery",
            superstep=self._ledger.num_iterations - 1,
            machine=machine,
            seconds=it.duration,
            strategy=outcome.strategy,
            replay_seconds=replay,
            engine_superstep=t,
        )
        self._crash_records.append(
            {
                "machine": int(machine),
                "engine_superstep": int(t),
                "strategy": outcome.strategy,
                "replay_seconds": replay,
                "recovery_seconds": float(it.duration),
            }
        )

    def _rebuild_state_and_shares(self) -> None:
        """Recompute hosted state and logical→physical work shares from
        the current hosting vector."""
        m = self._num_machines
        degrees = self._graph.degrees.astype(np.float64)
        self._state_v = np.bincount(self._hosting, minlength=m).astype(np.float64)
        self._state_e = np.bincount(self._hosting, weights=degrees, minlength=m)
        logical = self._assignment.parts.astype(np.int64)
        key = logical * m + self._hosting
        sv = np.bincount(key, minlength=m * m).astype(np.float64).reshape(m, m)
        se = np.bincount(key, weights=degrees, minlength=m * m).reshape(m, m)
        for share in (sv, se):
            totals = share.sum(axis=1)
            empty = totals == 0
            share[empty] = 0.0
            share[empty, np.flatnonzero(empty)] = 1.0  # no work ⇒ mapping moot
            totals[empty] = 1.0
            share /= totals[:, None]
        self._share_v = sv
        self._share_e = se

    def _take_checkpoint(self, t: int) -> None:
        m = self._num_machines
        ck = np.asarray(
            self._ckpt.checkpoint_seconds(self._state_v, self._state_e), dtype=np.float64
        )
        ck = np.where(self._alive, ck, 0.0)
        mask = None if bool(self._alive.all()) else self._alive.copy()
        it = self._ledger.record(ck, np.zeros(m), active=mask)
        self._checkpoint_seconds += it.duration
        self._num_checkpoints += 1
        self._ledger.add_event(
            "checkpoint",
            superstep=self._ledger.num_iterations - 1,
            seconds=it.duration,
            engine_superstep=t,
        )
        self._since_ckpt = []

    # ------------------------------------------------------------------
    def report(self) -> FaultReport:
        """Summarise the completed (or in-progress) run."""
        if self._ledger is None:
            raise SimulationError("no run started; call begin_run() first")
        alive = self._alive
        if self._first_crash_iter is not None:
            degraded = self._ledger.waiting_ratio_from(self._first_crash_iter)
        else:
            degraded = self._ledger.waiting_ratio
        surv_v = self._state_v[alive]
        surv_e = self._state_e[alive]
        has_state = self._assignment is not None
        return FaultReport(
            num_machines=self._num_machines,
            runtime=self._ledger.total_runtime,
            waiting_ratio=self._ledger.waiting_ratio,
            degraded_waiting_ratio=degraded,
            recovery_seconds=self._recovery_seconds,
            checkpoint_seconds=self._checkpoint_seconds,
            num_checkpoints=self._num_checkpoints,
            crashes=list(self._crash_records),
            alive=[bool(a) for a in alive],
            survivor_vertex_bias=bias(surv_v) if has_state and surv_v.size else 0.0,
            survivor_edge_bias=bias(surv_e) if has_state and surv_e.size else 0.0,
            survivor_vertex_max_dev=_max_dev(surv_v) if has_state else 0.0,
            survivor_edge_max_dev=_max_dev(surv_e) if has_state else 0.0,
            total_messages=self.total_messages,
        )

    def __repr__(self) -> str:
        return (
            f"FaultAwareCluster(machines={self._num_machines}, "
            f"crashes={len(self._plan.crashes)}, recovery={self._plan.recovery!r})"
        )
