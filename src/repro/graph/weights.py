"""Edge weights as a CSR-aligned companion array.

:class:`~repro.graph.csr.CSRGraph` stores topology only (like Gemini's
and KnightKing's base layouts). Weighted workloads — biased random
walks, weighted SSSP — attach an :class:`EdgeWeights` object whose
``values`` array aligns slot-for-slot with ``graph.indices``: the weight
of arc ``indices[i]`` (out of whatever vertex owns slot ``i``) is
``values[i]``.

For undirected graphs the helper constructors keep the two arcs of each
edge weight-symmetric, which random-walk reversibility arguments (and
the tests) rely on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.utils.rng import as_rng

__all__ = ["EdgeWeights"]


class EdgeWeights:
    """Non-negative per-arc weights aligned with ``graph.indices``."""

    __slots__ = ("_graph", "_values")

    def __init__(self, graph: CSRGraph, values: np.ndarray) -> None:
        values = np.ascontiguousarray(values, dtype=np.float64)
        if values.shape != (graph.num_edges,):
            raise GraphFormatError(
                f"weights length {values.shape} != num arcs {graph.num_edges}"
            )
        if values.size and values.min() < 0:
            raise GraphFormatError("edge weights must be non-negative")
        self._graph = graph
        self._values = values
        self._values.setflags(write=False)

    # ------------------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        return self._graph

    @property
    def values(self) -> np.ndarray:
        """Read-only weight array (length ``m``, slot-aligned)."""
        return self._values

    def of(self, v: int) -> np.ndarray:
        """Weights of ``v``'s out-arcs (zero-copy view)."""
        return self._values[self._graph.indptr[v] : self._graph.indptr[v + 1]]

    @property
    def weighted_degrees(self) -> np.ndarray:
        """Σ of out-arc weights per vertex."""
        g = self._graph
        out = np.zeros(g.num_vertices)
        if g.num_edges:
            nonzero = g.degrees > 0
            out[nonzero] = np.add.reduceat(self._values, g.indptr[:-1][nonzero])
        return out

    def is_symmetric(self, *, atol: float = 1e-12) -> bool:
        """Whether w(u→v) == w(v→u) for every stored arc pair.

        Only meaningful for symmetrised undirected graphs; O(m log d̄).
        """
        g = self._graph
        for u in range(g.num_vertices):
            nbrs = g.neighbors(u)
            w_uv = self.of(u)
            for j, v in enumerate(nbrs):
                rev = g.neighbors(int(v))
                i = int(np.searchsorted(rev, u))
                if i >= rev.size or rev[i] != u:
                    return False
                if abs(self.of(int(v))[i] - w_uv[j]) > atol:
                    return False
        return True

    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, graph: CSRGraph, value: float = 1.0) -> "EdgeWeights":
        """All arcs share one weight."""
        if value < 0:
            raise GraphFormatError("edge weights must be non-negative")
        return cls(graph, np.full(graph.num_edges, float(value)))

    @classmethod
    def random(
        cls, graph: CSRGraph, *, low: float = 0.5, high: float = 1.5, rng=None
    ) -> "EdgeWeights":
        """Uniform-random *symmetric* weights in ``[low, high]``.

        Each undirected edge draws one weight shared by both arcs, so
        the result passes :meth:`is_symmetric`.
        """
        if not (0 <= low <= high):
            raise GraphFormatError(f"need 0 <= low <= high, got {low}, {high}")
        rng = as_rng(rng)
        g = graph
        values = np.empty(g.num_edges)
        src, dst = g.edge_array()
        # One draw per unordered pair, assigned to both arcs. Key by the
        # canonical (min, max) pair and hash it into a reproducible
        # uniform via the drawn table.
        lo = np.minimum(src, dst).astype(np.int64)
        hi = np.maximum(src, dst).astype(np.int64)
        key = lo * np.int64(g.num_vertices) + hi
        uniq, inverse = np.unique(key, return_inverse=True)
        draws = rng.uniform(low, high, size=uniq.size)
        values[:] = draws[inverse]
        return cls(graph, values)

    @classmethod
    def degree_proportional(cls, graph: CSRGraph) -> "EdgeWeights":
        """w(u→v) = deg(v): walks become degree-biased (hub-seeking).

        Not symmetric by construction; useful for stressing the
        weighted-walk machinery.
        """
        return cls(graph, graph.degrees[graph.indices].astype(np.float64))

    def __repr__(self) -> str:
        if self._values.size == 0:
            return "EdgeWeights(empty)"
        return (
            f"EdgeWeights(m={self._values.size}, "
            f"range=[{self._values.min():.3g}, {self._values.max():.3g}])"
        )
