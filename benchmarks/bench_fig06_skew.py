"""Figure 6 — piece-size skew at 64 subgraphs (Chunk-V / Chunk-E).

The motivating observation: balancing one dimension leaves the other
highly skewed on scale-free graphs.
"""


def test_fig06(run_paper_experiment):
    result = run_paper_experiment("fig06")
    assert result.tables or result.series
