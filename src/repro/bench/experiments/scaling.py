"""Extension — scale-stability study.

The reproduction replaces billion-edge graphs with scaled stand-ins
(DESIGN.md §2), which is only sound if the reproduced quantities are
*stable in scale*. This experiment sweeps the stand-in size across an
order of magnitude and reports the metrics every figure relies on:
BPart's two-dimensional bias, the cut ordering, and the waiting-ratio
gap. Flat rows = the phenomena are scale-free over the sweep, so
shrinking the graphs preserved them.
"""

from __future__ import annotations

from repro.bench.experiments._common import partition_with
from repro.bench.harness import ExperimentConfig, ExperimentResult, register_experiment
from repro.bench.report import Table
from repro.bench.workloads import run_walk_job
from repro.graph.datasets import load_dataset
from repro.partition.metrics import bias, edge_cut_ratio

SCALES = (0.25, 0.5, 1.0, 2.0)
K = 8


@register_experiment("scaling", "Extension: metric stability across dataset scales")
def run(config: ExperimentConfig) -> ExperimentResult:
    result = ExperimentResult("scaling", "Extension: metric stability across dataset scales")
    table = Table(
        "Twitter stand-in at increasing scale (k = 8)",
        [
            "scale",
            "vertices",
            "bpart bias(V)",
            "bpart bias(E)",
            "bpart cut",
            "fennel cut",
            "hash cut",
            "wait chunk-v",
            "wait bpart",
        ],
        note="flat columns justify the scaled-stand-in substitution (DESIGN.md §2)",
    )
    for scale in SCALES:
        g = load_dataset("twitter", scale=scale * config.scale, seed=config.seed)
        assignments = {
            name: partition_with(name, g, K, seed=config.seed).assignment
            for name in ("chunk-v", "fennel", "hash", "bpart")
        }
        waits = {}
        for name in ("chunk-v", "bpart"):
            walk = run_walk_job(
                g,
                assignments[name],
                app_name="deepwalk",
                walkers_per_vertex=5,
                seed=config.seed,
            )
            waits[name] = walk.ledger.waiting_ratio
        bp = assignments["bpart"]
        table.add_row(
            scale,
            g.num_vertices,
            bias(bp.vertex_counts),
            bias(bp.edge_counts),
            edge_cut_ratio(g, bp.parts),
            edge_cut_ratio(g, assignments["fennel"].parts),
            edge_cut_ratio(g, assignments["hash"].parts),
            waits["chunk-v"],
            waits["bpart"],
        )
        result.data[scale] = {
            "bias_v": bias(bp.vertex_counts),
            "bias_e": bias(bp.edge_counts),
            "cut_bpart": edge_cut_ratio(g, bp.parts),
            "wait_gap": waits["chunk-v"] - waits["bpart"],
        }
    result.tables.append(table)
    return result
