"""Recovery strategies after a machine crash.

Two strategies, mirroring what real Gemini/KnightKing deployments do:

- ``restart`` — a standby machine takes the failed machine's place,
  loads the last checkpoint of its subgraph, and replays the supersteps
  executed since. Cluster membership is unchanged; the cost is
  concentrated on the replacement while everyone else waits at the
  barrier.
- ``redistribute`` — the failed machine's subgraph is re-spread across
  the survivors using BPart's combining logic
  (:mod:`repro.partition.combine`): the subgraph is over-split with the
  weighted streaming pass (Eq. 1's two-dimensional indicator), combined
  by the inverse-proportional smallest-|V|/largest-|V| pairing, and the
  resulting chunks are matched to survivors most-loaded ← lightest-chunk
  (the ⤨ pattern of Figure 9 applied across machines). A 2D-balanced
  input partition therefore yields a 2D-balanced post-recovery cluster —
  the property the fault experiments measure.

Both planners are pure and deterministic: the same inputs and seed give
byte-identical outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.graph.subgraph import extract_subgraph
from repro.partition.combine import combine_assignment, pair_by_vertex_count
from repro.utils.rng import derive_rng

__all__ = ["RecoveryOutcome", "plan_restart", "plan_redistribute"]


@dataclass(frozen=True)
class RecoveryOutcome:
    """Where the failed machine's state goes.

    Attributes
    ----------
    strategy:       ``"restart"`` or ``"redistribute"``.
    failed_machine: the crashed machine id.
    share_v:        length-``M`` fractions of the failed machine's
                    *vertices* each machine takes over (sums to 1 when
                    the failed machine hosted anything).
    share_e:        same for the failed machine's hosted arcs.
    hosting:        post-recovery vertex → machine vector (``None`` for
                    ``restart``, which keeps the hosting unchanged).
    """

    strategy: str
    failed_machine: int
    share_v: np.ndarray
    share_e: np.ndarray
    hosting: np.ndarray | None = None


def plan_restart(num_machines: int, failed: int) -> RecoveryOutcome:
    """A replacement machine replays the failed machine's full share."""
    share = np.zeros(num_machines)
    share[failed] = 1.0
    return RecoveryOutcome(
        strategy="restart",
        failed_machine=int(failed),
        share_v=share,
        share_e=share.copy(),
    )


def plan_redistribute(
    graph: CSRGraph,
    hosting: np.ndarray,
    num_machines: int,
    failed: int,
    alive: np.ndarray,
    *,
    seed: int = 0,
    oversplit: int = 2,
) -> RecoveryOutcome:
    """Re-spread the failed machine's subgraph across survivors.

    Parameters
    ----------
    graph:       the full job graph.
    hosting:     current vertex → machine vector (*physical* hosting,
                 which may already differ from the logical partition
                 after earlier recoveries).
    failed:      the machine that just crashed.
    alive:       boolean machine mask *before* marking ``failed`` dead.
    seed:        drives the over-splitting streaming pass; derived per
                 (seed, failed) so repeated crashes stay independent but
                 reproducible.
    oversplit:   pieces per survivor before combining (BPart's base of 2).
    """
    hosting = np.asarray(hosting)
    survivors = np.flatnonzero(alive & (np.arange(num_machines) != failed))
    if survivors.size == 0:
        raise SimulationError("no survivors to redistribute to")
    members = hosting == failed
    new_hosting = hosting.copy()
    share_v = np.zeros(num_machines)
    share_e = np.zeros(num_machines)
    n_failed = int(members.sum())
    if n_failed == 0:
        return RecoveryOutcome(
            strategy="redistribute",
            failed_machine=int(failed),
            share_v=share_v,
            share_e=share_e,
            hosting=new_hosting,
        )

    sub = extract_subgraph(graph, members)
    k = int(survivors.size)
    pieces = min(max(oversplit, 2) * k, n_failed)
    if pieces <= 1:
        piece_parts = np.zeros(n_failed, dtype=np.int32)
        cur = 1
    else:
        # BPart's phase-1 weighted streaming pass: pieces come out with
        # inversely proportional |V| / |E| distributions, which is what
        # makes the pairing below balance both dimensions at once.
        from repro.partition.bpart import weighted_stream_partition

        piece_parts = np.asarray(
            weighted_stream_partition(
                sub.graph,
                pieces,
                rng=int(derive_rng(seed, failed).integers(0, 2**31 - 1)),
            ),
            dtype=np.int32,
        )
        cur = pieces
    # Combine rounds (Figure 9's smallest-|V| ↔ largest-|V| pairing)
    # until at most one chunk per survivor remains.
    while cur > k:
        plan = pair_by_vertex_count(np.bincount(piece_parts, minlength=cur))
        piece_parts = combine_assignment(piece_parts, plan)
        cur = plan.num_merged

    degrees = graph.degrees
    chunk_v = np.bincount(piece_parts, minlength=cur).astype(np.float64)
    chunk_e = np.bincount(
        piece_parts, weights=degrees[sub.global_ids].astype(np.float64), minlength=cur
    )
    # Survivor loads before taking anything over; the ⤨ assignment pairs
    # the currently lightest survivor with the heaviest chunk.
    surv_load = np.bincount(
        hosting[hosting != failed], minlength=num_machines
    ).astype(np.float64)[survivors]
    surv_order = survivors[np.argsort(surv_load, kind="stable")]
    chunk_order = np.argsort(-chunk_v, kind="stable")

    total_v = float(chunk_v.sum())
    total_e = float(chunk_e.sum())
    for rank, chunk in enumerate(chunk_order):
        target = int(surv_order[rank % surv_order.size])
        new_hosting[sub.global_ids[piece_parts == chunk]] = target
        share_v[target] += chunk_v[chunk] / total_v if total_v else 0.0
        share_e[target] += chunk_e[chunk] / total_e if total_e else 0.0
    if total_e == 0.0:
        # An edgeless failed subgraph: route replay/restore shares by
        # vertices so they still sum to 1.
        share_e = share_v.copy()
    return RecoveryOutcome(
        strategy="redistribute",
        failed_machine=int(failed),
        share_v=share_v,
        share_e=share_e,
        hosting=new_hosting,
    )
