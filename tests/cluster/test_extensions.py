"""Tests for cluster extensions: heterogeneous machines, overlap mode."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import BSPCluster, CostModel, NetworkModel, TimingLedger
from repro.engines.gemini import GeminiEngine, PageRank
from repro.errors import ConfigurationError
from repro.graph import chung_lu
from repro.partition import BPartPartitioner, HashPartitioner


class TestHeterogeneousCores:
    def test_array_cores_scale_compute(self):
        cm = CostModel(step_cost=1e-6, edge_cost=0, vertex_cost=0, cores=[2, 1])
        t = cm.compute_seconds(steps=np.array([100.0, 100.0]))
        assert t[1] == pytest.approx(2 * t[0])

    def test_cores_tuple_normalised(self):
        cm = CostModel(cores=np.array([4, 8]))
        assert cm.cores == (4, 8)
        assert hash(cm)  # stays hashable (frozen dataclass)

    def test_invalid_cores(self):
        with pytest.raises(ConfigurationError):
            CostModel(cores=[4, 0])
        with pytest.raises(ConfigurationError):
            CostModel(cores=0)

    def test_straggler_dominates_waiting(self):
        """A quarter-speed machine makes even a perfectly balanced
        partition wait — heterogeneity the partitioner cannot fix.

        Uses a latency-free network so compute dominates the schedule
        (the default 50 µs barrier would mask the effect at test scale).
        """
        g = chung_lu(1500, 10.0, rng=70)
        a = BPartPartitioner(seed=70).partition(g, 4).assignment
        fast_net = NetworkModel(latency=0.0)
        uniform = BSPCluster(4, cost_model=CostModel(cores=48), network=fast_net)
        straggler = BSPCluster(
            4, cost_model=CostModel(cores=[48, 48, 48, 12]), network=fast_net
        )
        r_uniform = GeminiEngine(uniform).run(g, a, PageRank(5))
        r_straggler = GeminiEngine(straggler).run(g, a, PageRank(5))
        assert (
            r_straggler.ledger.waiting_ratio
            > r_uniform.ledger.waiting_ratio + 0.2
        )
        assert r_straggler.runtime > r_uniform.runtime


class TestOverlap:
    def test_busy_is_max_when_overlapped(self):
        ledger = TimingLedger(2, overlap=True)
        it = ledger.record(np.array([3.0, 1.0]), np.array([1.0, 4.0]))
        assert np.allclose(it.busy, [3.0, 4.0])
        assert it.duration == pytest.approx(4.0)

    def test_busy_is_sum_by_default(self):
        ledger = TimingLedger(2)
        it = ledger.record(np.array([3.0, 1.0]), np.array([1.0, 4.0]))
        assert np.allclose(it.busy, [4.0, 5.0])

    def test_overlap_never_slower(self):
        g = chung_lu(1000, 10.0, rng=71)
        a = HashPartitioner().partition(g, 4).assignment
        plain = GeminiEngine(BSPCluster(4)).run(g, a, PageRank(5))
        overlapped = GeminiEngine(BSPCluster(4, overlap=True)).run(g, a, PageRank(5))
        assert overlapped.runtime <= plain.runtime + 1e-15

    def test_overlap_gain_is_hidden_minimum(self):
        """Overlap hides min(compute, comm) per machine per iteration;
        on a comm-bound configuration the fractional gain equals the
        compute share, so the *lower-cut* partition (more compute-bound)
        gains at least as much as the cut-heavy one."""
        g = chung_lu(1500, 12.0, rng=72)
        slow_net = NetworkModel(bandwidth=5e7, latency=1e-6, message_bytes=64)
        gains = {}
        for name, part in (
            ("hash", HashPartitioner()),
            ("bpart", BPartPartitioner(seed=72)),
        ):
            a = part.partition(g, 4).assignment
            plain = GeminiEngine(BSPCluster(4, network=slow_net)).run(g, a, PageRank(5))
            over = GeminiEngine(BSPCluster(4, network=slow_net, overlap=True)).run(
                g, a, PageRank(5)
            )
            gains[name] = 1.0 - over.runtime / plain.runtime
        assert gains["hash"] > 0
        assert gains["bpart"] >= gains["hash"] - 1e-9

    def test_overlap_duration_is_max_of_components(self):
        g = chung_lu(600, 8.0, rng=73)
        a = HashPartitioner().partition(g, 4).assignment
        res = GeminiEngine(BSPCluster(4, overlap=True)).run(g, a, PageRank(3))
        ledger = res.ledger
        expected = sum(
            float(np.maximum(it.compute, it.comm).max()) for it in ledger.iterations
        )
        assert ledger.total_runtime == pytest.approx(expected)
