"""Unified observability for the repro pipeline.

The paper's entire argument is accounting — per-machine load, waiting
ratio, cut ratio — and the reproduction's layers each grew their own
ledger for it. This package is the single place they all report to:

- partitioner kernels (vertices streamed, throughput, saturated parts),
- the BPart combine driver (per-layer bias trajectories),
- both engines (messages, walker hops, active-arc fractions),
- the BSP/fault clusters (barrier waits, crash/recovery/checkpoint
  costs, via :class:`~repro.cluster.ledger.TimingLedger`),
- the bench cache and runner (hit ratios, per-experiment wall time).

**Telemetry is off by default and must cost nothing when off.** Every
instrumentation site is guarded by :func:`enabled` (a module-flag
read), and nothing is ever recorded from inside a per-vertex hot loop —
kernels report aggregates after the loop, so the enabled-mode overhead
on the streaming hot path stays under 2 % (``BENCH_hotpaths.json``
carries the measured number). Enable with ``REPRO_TELEMETRY=1``, the
CLI's ``--telemetry out.json``, or :func:`set_enabled`.

Determinism: counters, gauges, and histograms only ever receive
deterministic values (simulated seconds, counts, ratios), so the
default snapshot is byte-stable across identical runs. Wall-clock
material (timers, spans) lives in an explicitly ``nondeterministic``
section of the export — cache keys and stored artifacts never include
it, preserving the byte-stability guarantees of the artifact store.
"""

from __future__ import annotations

import os

from repro.telemetry.export import (
    render_table,
    spans_to_chrome_events,
    to_json,
    to_prometheus,
)
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    BoundedHistogram,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    TimerMetric,
    log_buckets,
    metric_key,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "BoundedHistogram",
    "TimerMetric",
    "log_buckets",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_BUCKETS",
    "metric_key",
    "enabled",
    "set_enabled",
    "registry",
    "active",
    "reset",
    "to_json",
    "to_prometheus",
    "spans_to_chrome_events",
    "render_table",
]

_ENV_ENABLE = "REPRO_TELEMETRY"

_REGISTRY = MetricsRegistry()
_NULL = NullRegistry()
_ENABLED = os.environ.get(_ENV_ENABLE, "").lower() in ("1", "true", "yes")


def enabled() -> bool:
    """Whether telemetry collection is on (the module flag).

    Instrumentation sites check this before touching the registry, so
    the disabled cost is one function call per *run*-level event — the
    per-vertex hot loops are never instrumented at all.
    """
    return _ENABLED


def set_enabled(flag: bool) -> None:
    """Turn collection on or off for this process."""
    global _ENABLED
    _ENABLED = bool(flag)


def registry() -> MetricsRegistry:
    """The process-wide registry (real even while disabled)."""
    return _REGISTRY


def active() -> MetricsRegistry | NullRegistry:
    """The registry when enabled, else the shared no-op registry."""
    return _REGISTRY if _ENABLED else _NULL


def reset() -> None:
    """Clear all recorded metrics and spans (tests, new jobs)."""
    _REGISTRY.reset()
