"""Extension ablations — re-streaming, comm/compute overlap, stragglers.

Three system-level sweeps beyond the paper's evaluation:

1. **Re-streaming passes** (Nishimura & Ugander): additional streaming
   passes over the full previous assignment tighten Fennel's and
   BPart's cuts at linear extra partitioning cost.
2. **Compute/communication overlap** (the §2.1 pipelining remark):
   overlapped supersteps hide ``min(compute, comm)``; measured on
   PageRank under Hash vs BPart.
3. **Heterogeneous machines**: one straggler machine with a fraction of
   the cores — imbalance no partitioner can repair, quantifying how
   much of the waiting ratio is *partition-induced* vs *hardware-
   induced*.
"""

from __future__ import annotations

from repro.bench.experiments._common import graph_for, partition_with
from repro.bench.harness import ExperimentConfig, ExperimentResult, register_experiment
from repro.bench.report import Table
from repro.cluster import BSPCluster, CostModel, NetworkModel
from repro.engines.gemini import GeminiEngine, PageRank
from repro.partition.metrics import bias, edge_cut_ratio

K = 8


@register_experiment("sysablation", "Extension ablations: restreaming, overlap, stragglers")
def run(config: ExperimentConfig) -> ExperimentResult:
    g = graph_for(config, "twitter")
    result = ExperimentResult(
        "sysablation", "Extension ablations: restreaming, overlap, stragglers"
    )

    t1 = Table(
        "Re-streaming passes (cut ratio / partition seconds)",
        ["algorithm", "passes", "cut ratio", "edge bias", "seconds"],
        note="extra passes tighten the cut at proportional extra cost",
    )
    for name in ("fennel", "bpart"):
        for passes in (1, 2, 3):
            res = partition_with(name, g, K, seed=config.seed, passes=passes)
            a = res.assignment
            t1.add_row(name, passes, edge_cut_ratio(g, a.parts), bias(a.edge_counts), res.elapsed)
            result.data[("restream", name, passes)] = edge_cut_ratio(g, a.parts)
    result.tables.append(t1)

    t2 = Table(
        "Comm/compute overlap (PageRank runtime, ms)",
        ["partition", "plain", "overlapped", "gain"],
        note="overlap hides min(compute, comm) per machine per superstep",
    )
    slow_net = NetworkModel(bandwidth=2e8, latency=10e-6, message_bytes=32)
    for name in ("hash", "bpart"):
        a = partition_with(name, g, K, seed=config.seed).assignment
        plain = GeminiEngine(BSPCluster(K, network=slow_net)).run(g, a, PageRank(10))
        over = GeminiEngine(BSPCluster(K, network=slow_net, overlap=True)).run(
            g, a, PageRank(10)
        )
        gain = 1.0 - over.runtime / plain.runtime
        t2.add_row(name, plain.runtime * 1e3, over.runtime * 1e3, gain)
        result.data[("overlap", name)] = gain
    result.tables.append(t2)

    t_refine = Table(
        "Balance-preserving refinement on BPart (k = 8)",
        ["stage", "cut ratio", "vertex bias", "edge bias"],
        note="FM-style moves inside the (1±ε) envelope trade residual balance slack for cut",
    )
    from repro.partition.refine import refine_assignment

    a0 = partition_with("bpart", g, K, seed=config.seed).assignment
    a1 = refine_assignment(a0, epsilon=0.1, rounds=5)
    for stage, a in (("bpart", a0), ("bpart + refine", a1)):
        t_refine.add_row(stage, edge_cut_ratio(g, a.parts), bias(a.vertex_counts), bias(a.edge_counts))
        result.data[("refine", stage)] = edge_cut_ratio(g, a.parts)
    result.tables.append(t_refine)

    t3 = Table(
        "Straggler machine (PageRank waiting ratio)",
        ["partition", "uniform cluster", "one machine at 1/4 cores"],
        note="hardware imbalance sets a waiting floor no partitioner can fix",
    )
    fast_net = NetworkModel(latency=0.0)
    cores_straggler = [48] * (K - 1) + [12]
    for name in ("chunk-v", "bpart"):
        a = partition_with(name, g, K, seed=config.seed).assignment
        uniform = GeminiEngine(
            BSPCluster(K, cost_model=CostModel(cores=48), network=fast_net)
        ).run(g, a, PageRank(10))
        straggler = GeminiEngine(
            BSPCluster(K, cost_model=CostModel(cores=cores_straggler), network=fast_net)
        ).run(g, a, PageRank(10))
        t3.add_row(name, uniform.ledger.waiting_ratio, straggler.ledger.waiting_ratio)
        result.data[("straggler", name)] = (
            uniform.ledger.waiting_ratio,
            straggler.ledger.waiting_ratio,
        )
    result.tables.append(t3)
    return result
