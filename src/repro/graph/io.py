"""Graph persistence: edge-list text, NumPy ``.npz`` binary, METIS.

The edge-list reader/writer handles the whitespace-separated ``u v``
format of SNAP/KONECT dumps (the paper's datasets are distributed that
way), the ``.npz`` format is the fast native round-trip, and the METIS
format enables interop with external multilevel partitioners.
"""

from __future__ import annotations

import gzip
import os
from pathlib import Path
from typing import IO

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph

__all__ = [
    "open_text",
    "read_edge_list",
    "write_edge_list",
    "read_npz",
    "write_npz",
    "read_metis",
    "write_metis",
]


def open_text(path: str | os.PathLike, mode: str = "r") -> IO[str]:
    """Open a text file, transparently un/compressing ``.gz`` paths.

    SNAP/KONECT distribute their edge lists gzipped; every text reader
    and writer here routes through this helper so ``graph.txt.gz`` works
    anywhere ``graph.txt`` does.
    """
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def read_edge_list(
    path: str | os.PathLike,
    *,
    directed: bool = False,
    comments: str = "#",
    num_vertices: int | None = None,
) -> CSRGraph:
    """Read a whitespace-separated ``u v`` edge list.

    Lines starting with ``comments`` (default ``#``, SNAP convention) and
    blank lines are skipped. Vertex ids must be non-negative integers.
    """
    src: list[int] = []
    dst: list[int] = []
    with open_text(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith(comments):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: non-integer vertex id") from exc
            src.append(u)
            dst.append(v)
    return from_edges(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        num_vertices,
        directed=directed,
    )


def write_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write every arc (undirected graphs: each edge once, ``u < v``)."""
    src, dst = graph.edge_array()
    if not graph.directed:
        keep = src < dst
        src, dst = src[keep], dst[keep]
    with open_text(path, "w") as fh:
        fh.write(f"# repro edge list: n={graph.num_vertices} directed={graph.directed}\n")
        np.savetxt(fh, np.column_stack([src, dst]), fmt="%d")


def write_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Binary CSR round-trip (compressed ``.npz``)."""
    np.savez_compressed(
        path,
        indptr=graph.indptr,
        indices=graph.indices,
        directed=np.array([graph.directed]),
    )


def read_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph written by :func:`write_npz`."""
    with np.load(path) as data:
        try:
            return CSRGraph(
                data["indptr"], data["indices"], directed=bool(data["directed"][0])
            )
        except KeyError as exc:
            raise GraphFormatError(f"{path}: missing array {exc}") from exc


def write_metis(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write the METIS/KaHIP format (1-indexed adjacency lines).

    METIS requires symmetric adjacency, so directed graphs are rejected.
    """
    if graph.directed:
        raise GraphFormatError("METIS format requires an undirected graph")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"{graph.num_vertices} {graph.num_undirected_edges}\n")
        for v in range(graph.num_vertices):
            fh.write(" ".join(str(int(u) + 1) for u in graph.neighbors(v)) + "\n")


def read_metis(path: str | os.PathLike) -> CSRGraph:
    """Read the METIS/KaHIP format written by :func:`write_metis`."""
    path = Path(path)
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline().split()
        if len(header) < 2:
            raise GraphFormatError(f"{path}: bad METIS header")
        n = int(header[0])
        src: list[int] = []
        dst: list[int] = []
        for v in range(n):
            line = fh.readline()
            if not line:
                raise GraphFormatError(f"{path}: truncated at vertex {v}")
            for tok in line.split():
                src.append(v)
                dst.append(int(tok) - 1)
    # The file stores both directions already; treat as directed arcs and
    # mark undirected so edge counting stays consistent.
    g = from_edges(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        n,
        directed=True,
    )
    return CSRGraph(g.indptr, g.indices, directed=False, validate=False)
