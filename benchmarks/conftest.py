"""Shared benchmark configuration.

Each benchmark runs one paper experiment once (``pedantic`` with a
single round — the experiments are deterministic end-to-end jobs, not
microbenchmarks) and prints the same rows/series the paper reports.

Scale defaults to 0.5 (≈ 8k–16k vertices per dataset) so the whole
suite finishes in minutes; set ``REPRO_BENCH_SCALE`` to grow it.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import ExperimentConfig, run_experiment


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return ExperimentConfig(
        scale=float(os.environ.get("REPRO_BENCH_SCALE", "0.5")),
        seed=int(os.environ.get("REPRO_BENCH_SEED", "1")),
    )


@pytest.fixture
def run_paper_experiment(benchmark, bench_config):
    """Run one experiment under pytest-benchmark, print its report, and
    persist the rendered rows to ``benchmarks/reports/<id>.txt`` (pytest
    captures stdout, so the file is the durable artifact)."""

    def _run(experiment_id: str):
        result = benchmark.pedantic(
            run_experiment, args=(experiment_id, bench_config), rounds=1, iterations=1
        )
        rendered = result.render()
        print()
        print(rendered)
        reports = Path(__file__).parent / "reports"
        reports.mkdir(exist_ok=True)
        (reports / f"{experiment_id}.txt").write_text(
            f"scale={bench_config.scale} seed={bench_config.seed}\n\n{rendered}\n",
            encoding="utf-8",
        )
        return result

    return _run
