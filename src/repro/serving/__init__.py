"""Request-serving traffic layer over the partitioned cluster.

The paper evaluates partitioners on *batch* analytics; this package
asks the production question instead: when the partitioned cluster
serves an online query stream — k-hop neighbourhood reads and short
random walks from millions of simulated users — what do the SLOs look
like per partitioner? A discrete-event simulator
(:mod:`~repro.serving.simulator`) drives an open-loop heavy-tailed
workload (:mod:`~repro.serving.workload`) through per-machine service
queues costed by the same cost/network models as the BSP engines, with
a partition-aware block cache (:mod:`~repro.serving.cache`) and
chaos-injection hooks for degradation drills. Results aggregate into
byte-stable SLO reports (:mod:`~repro.serving.report`).

Replication turns the layer self-healing: a deterministic replica
placement (:mod:`~repro.serving.replication`) puts each partition's
blocks on K machines with anti-affinity and 2D balance, a heartbeat
state machine (:mod:`~repro.serving.health`) walks failing machines
through ``healthy → suspect → dead → recovering → healthy``, and the
simulator fails over, hedges, and re-replicates across the plan.

Everything is deterministic: same seed ⇒ byte-identical report.
"""

from __future__ import annotations

from repro.serving.cache import PartitionAwareCache
from repro.serving.health import (
    DEAD,
    HEALTHY,
    RECOVERING,
    SUSPECT,
    HealthEvent,
    HealthMonitor,
)
from repro.serving.replication import ReplicaPlan, plan_replicas
from repro.serving.report import ServingReport
from repro.serving.simulator import (
    SITE_CACHE,
    SITE_HEARTBEAT_DROP,
    SITE_MACHINE,
    SITE_REPLICA_CRASH,
    ServingConfig,
    ServingResult,
    ServingSimulator,
)
from repro.serving.workload import KIND_KHOP, KIND_WALK, QueryTrace, WorkloadSpec

__all__ = [
    "WorkloadSpec",
    "QueryTrace",
    "KIND_KHOP",
    "KIND_WALK",
    "PartitionAwareCache",
    "ServingConfig",
    "ServingSimulator",
    "ServingResult",
    "ServingReport",
    "ReplicaPlan",
    "plan_replicas",
    "HealthMonitor",
    "HealthEvent",
    "HEALTHY",
    "SUSPECT",
    "DEAD",
    "RECOVERING",
    "SITE_MACHINE",
    "SITE_CACHE",
    "SITE_REPLICA_CRASH",
    "SITE_HEARTBEAT_DROP",
]
