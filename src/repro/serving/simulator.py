"""Discrete-event query-serving simulator over a partitioned cluster.

Drives a :class:`~repro.serving.workload.QueryTrace` against the
machines of a :class:`~repro.partition.assignment.PartitionAssignment`
on a virtual clock. Each query is routed to the machine owning its
target vertex; machines serve FIFO in coalesced batches, so a batch
pays the network latency once over all its remote reads — the
batching economics real serving systems rely on. Service time per
batch is costed with the same :class:`~repro.cluster.cost.CostModel`
and :class:`~repro.cluster.network.NetworkModel` the BSP engines use
(via :meth:`NetworkModel.request_cost`), which is what makes serving
SLOs comparable across partitioners: a hub-heavy part means longer
per-batch work, more remote reads across the cut, and a colder cache —
all three show up in the tail.

Admission control is a bounded per-machine queue with deterministic
shedding: an arrival finding the queue full is dropped and counted,
never retried (open-loop users do not back off).

Determinism contract: the event heap orders by ``(time, seq)`` where
arrival events take seqs ``0..q-1`` in trace order and completion
events draw from a counter starting at ``q`` — no float tie ever
decides an ordering. Walk randomness derives from
``derive_rng(seed, salt, machine, batch)``. Same (assignment, trace,
config, seed, chaos plan) ⇒ identical :class:`ServingResult`.

Chaos sites (see :mod:`repro.resilience.chaos`):

- ``serving.machine`` — an injected fault (``exception``/``ioerror``)
  degrades that batch by ``slowdown_factor`` (a straggling replica).
- ``serving.cache`` — an injected fault flushes the machine's block
  cache (cache-node restart / corruption), so subsequent batches pay
  cold-start fetches.

Keys are ``"m{machine}:b{batch}"``; rate-based rules therefore select
a deterministic subset of batches. Direct ``hang``/``kill`` kinds at
these sites act on the *host* process (real sleep / exit) — plans
aimed at the serving layer should use ``exception`` or ``ioerror``.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.cluster.cost import CostModel
from repro.cluster.network import NetworkModel
from repro.engines.knightking.transition import uniform_neighbor
from repro.errors import ConfigurationError
from repro.partition.assignment import PartitionAssignment
from repro.resilience.chaos import ChaosError, maybe_inject
from repro.serving.cache import PartitionAwareCache
from repro.serving.workload import KIND_KHOP, KIND_WALK, QueryTrace
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive

__all__ = ["ServingConfig", "ServingSimulator", "ServingResult"]

SERVING_SCHEMA = "serving/v1"

SITE_MACHINE = "serving.machine"
SITE_CACHE = "serving.cache"

_SALT_WALK = 0x5EAF


@dataclass(frozen=True)
class ServingConfig:
    """Serving-cluster knobs (the workload lives in ``WorkloadSpec``).

    Attributes
    ----------
    queue_limit:      max queries waiting per machine; beyond it,
                      arrivals are shed.
    batch_max:        max queries coalesced into one service batch.
    cache_blocks:     block capacity of each machine's LRU cache.
    cache_block_size: vertices per cache block.
    block_bytes:      wire size of one block fetch from storage.
    slowdown_factor:  service-time multiplier a ``serving.machine``
                      chaos hit applies to the afflicted batch.
    cost:             per-machine computation cost model.
    network:          latency/bandwidth wire model.
    """

    queue_limit: int = 64
    batch_max: int = 8
    cache_blocks: int = 256
    cache_block_size: int = 64
    block_bytes: int = 4096
    slowdown_factor: float = 4.0
    cost: CostModel = field(default_factory=CostModel)
    network: NetworkModel = field(default_factory=NetworkModel)

    def __post_init__(self) -> None:
        check_positive("queue_limit", self.queue_limit)
        check_positive("batch_max", self.batch_max)
        check_positive("cache_blocks", self.cache_blocks)
        check_positive("cache_block_size", self.cache_block_size)
        check_positive("block_bytes", self.block_bytes)
        if self.slowdown_factor < 1.0:
            raise ConfigurationError(
                f"slowdown_factor must be >= 1, got {self.slowdown_factor!r}"
            )

    def to_dict(self) -> dict:
        """JSON-ready form, cost/network knobs inlined."""
        cores = self.cost.cores
        return {
            "schema": SERVING_SCHEMA,
            "queue_limit": int(self.queue_limit),
            "batch_max": int(self.batch_max),
            "cache_blocks": int(self.cache_blocks),
            "cache_block_size": int(self.cache_block_size),
            "block_bytes": int(self.block_bytes),
            "slowdown_factor": float(self.slowdown_factor),
            "cost": {
                "step_cost": float(self.cost.step_cost),
                "edge_cost": float(self.cost.edge_cost),
                "vertex_cost": float(self.cost.vertex_cost),
                "cores": list(cores) if isinstance(cores, tuple) else int(cores),
            },
            "network": {
                "bandwidth": float(self.network.bandwidth),
                "latency": float(self.network.latency),
                "message_bytes": int(self.network.message_bytes),
            },
        }

    def digest(self) -> str:
        """SHA-256 of the canonical ``serving/v1`` JSON."""
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class ServingResult:
    """Outcome of one serving run.

    Per-query arrays align with the trace; ``latency`` is NaN for shed
    queries. Per-machine arrays have one entry per cluster machine.
    """

    num_machines: int
    duration: float
    latency: np.ndarray  # float64 seconds, NaN = shed
    shed: np.ndarray  # bool
    kind: np.ndarray  # uint8, copied from the trace
    machine_of_query: np.ndarray  # int64
    queries: np.ndarray  # int64 per machine (admitted)
    shed_per_machine: np.ndarray  # int64
    batches: np.ndarray  # int64
    degraded_batches: np.ndarray  # int64 (serving.machine chaos hits)
    cache_flushes: np.ndarray  # int64 (serving.cache chaos hits)
    busy_seconds: np.ndarray  # float64
    messages: np.ndarray  # int64 remote reads issued per machine
    cache_stats: dict
    makespan: float

    @property
    def num_queries(self) -> int:
        """Total arrivals (served + shed)."""
        return int(self.latency.size)

    @property
    def completed(self) -> int:
        """Queries that finished service."""
        return int(self.num_queries - self.shed.sum())

    @property
    def shed_rate(self) -> float:
        """Fraction of arrivals dropped by admission control."""
        return float(self.shed.sum() / self.latency.size) if self.latency.size else 0.0

    @property
    def throughput(self) -> float:
        """Completed queries per simulated second of offered traffic."""
        return self.completed / self.duration if self.duration else 0.0

    def completed_latencies(self) -> np.ndarray:
        """Sorted latencies of completed queries."""
        lat = self.latency[~self.shed]
        return np.sort(lat)

    def latency_quantile(self, q: float) -> float:
        """Nearest-rank quantile of completed latencies (0.0 if none)."""
        if not (0.0 < q <= 1.0):
            raise ConfigurationError(f"quantile must be in (0, 1], got {q!r}")
        lat = self.completed_latencies()
        if lat.size == 0:
            return 0.0
        rank = max(0, int(np.ceil(q * lat.size)) - 1)
        return float(lat[rank])

    def mean_latency(self) -> float:
        """Mean completed latency (0.0 if nothing completed)."""
        lat = self.completed_latencies()
        return float(lat.mean()) if lat.size else 0.0

    def summary(self) -> dict:
        """JSON-ready SLO summary (deterministic, byte-stable)."""
        return {
            "queries": self.num_queries,
            "completed": self.completed,
            "shed": int(self.shed.sum()),
            "shed_rate": self.shed_rate,
            "throughput": self.throughput,
            "latency_p50": self.latency_quantile(0.50),
            "latency_p90": self.latency_quantile(0.90),
            "latency_p99": self.latency_quantile(0.99),
            "latency_mean": self.mean_latency(),
            "latency_max": float(self.completed_latencies()[-1]) if self.completed else 0.0,
            "makespan": self.makespan,
            "messages": int(self.messages.sum()),
            "batches": int(self.batches.sum()),
            "degraded_batches": int(self.degraded_batches.sum()),
            "cache_flushes": int(self.cache_flushes.sum()),
            "cache_hit_rate": float(self.cache_stats.get("hit_rate", 0.0)),
            "busy_max": float(self.busy_seconds.max()) if self.num_machines else 0.0,
            "busy_mean": float(self.busy_seconds.mean()) if self.num_machines else 0.0,
        }


class ServingSimulator:
    """Event-driven serving run over one partition assignment."""

    def __init__(
        self,
        assignment: PartitionAssignment,
        config: ServingConfig | None = None,
        *,
        seed: int = 0,
    ) -> None:
        self.assignment = assignment
        self.config = config if config is not None else ServingConfig()
        self.seed = int(seed)

    # ------------------------------------------------------------------
    def run(self, trace: QueryTrace) -> ServingResult:
        """Serve the whole trace; returns the deterministic result."""
        cfg = self.config
        graph = self.assignment.graph
        parts = self.assignment.parts
        k = self.assignment.num_parts
        times = trace.times
        vertex = trace.vertex
        kinds = trace.kind
        q = trace.num_queries
        if vertex.size and int(vertex.max()) >= graph.num_vertices:
            raise ConfigurationError(
                "trace targets vertices outside the assigned graph"
            )

        machine_of_query = parts[vertex].astype(np.int64)
        self._trace = trace
        cache = PartitionAwareCache(
            k, block_size=cfg.cache_block_size, capacity=cfg.cache_blocks
        )

        latency = np.full(q, np.nan, dtype=np.float64)
        shed = np.zeros(q, dtype=bool)
        queries = np.zeros(k, dtype=np.int64)
        shed_pm = np.zeros(k, dtype=np.int64)
        batches = np.zeros(k, dtype=np.int64)
        degraded = np.zeros(k, dtype=np.int64)
        flushes = np.zeros(k, dtype=np.int64)
        busy_sec = np.zeros(k, dtype=np.float64)
        messages = np.zeros(k, dtype=np.int64)

        # Per-machine FIFO queues (head index instead of pop(0)).
        queue: list[list[int]] = [[] for _ in range(k)]
        head = [0] * k
        busy = [False] * k
        inflight: list[list[int]] = [[] for _ in range(k)]
        batch_seq = [0] * k
        makespan = 0.0

        # (time, seq, is_done, payload): arrivals carry their query
        # index with seqs 0..q-1; completions carry the machine id with
        # seqs from `next_seq`. Ties on time resolve by seq — total
        # order, no float comparisons beyond the clock itself.
        heap: list[tuple[float, int, int, int]] = [
            (float(times[i]), i, 0, i) for i in range(q)
        ]
        heapq.heapify(heap)
        next_seq = q

        def start_batch(m: int, now: float) -> None:
            nonlocal next_seq, makespan
            take = min(cfg.batch_max, len(queue[m]) - head[m])
            batch = queue[m][head[m] : head[m] + take]
            head[m] += take
            if head[m] > 4096 and head[m] * 2 > len(queue[m]):
                del queue[m][: head[m]]
                head[m] = 0
            svc = self._serve_batch(
                m, batch, batch_seq[m], cache, messages, degraded, flushes
            )
            batch_seq[m] += 1
            batches[m] += 1
            busy_sec[m] += svc
            busy[m] = True
            inflight[m] = batch
            done = now + svc
            makespan = max(makespan, done)
            heapq.heappush(heap, (done, next_seq, 1, m))
            next_seq += 1

        while heap:
            now, _, is_done, payload = heapq.heappop(heap)
            if is_done:
                m = payload
                for qi in inflight[m]:
                    latency[qi] = now - float(times[qi])
                inflight[m] = []
                busy[m] = False
                if len(queue[m]) > head[m]:
                    start_batch(m, now)
            else:
                qi = payload
                m = int(machine_of_query[qi])
                if len(queue[m]) - head[m] >= cfg.queue_limit:
                    shed[qi] = True
                    shed_pm[m] += 1
                    continue
                queue[m].append(qi)
                queries[m] += 1
                if not busy[m]:
                    start_batch(m, now)

        result = ServingResult(
            num_machines=k,
            duration=float(trace.spec.duration),
            latency=latency,
            shed=shed,
            kind=kinds.copy(),
            machine_of_query=machine_of_query,
            queries=queries,
            shed_per_machine=shed_pm,
            batches=batches,
            degraded_batches=degraded,
            cache_flushes=flushes,
            busy_seconds=busy_sec,
            messages=messages,
            cache_stats=cache.stats(),
            makespan=float(makespan),
        )
        self._record_telemetry(result)
        return result

    # ------------------------------------------------------------------
    def _serve_batch(
        self,
        m: int,
        batch: list[int],
        batch_id: int,
        cache: PartitionAwareCache,
        messages: np.ndarray,
        degraded: np.ndarray,
        flushes: np.ndarray,
    ) -> float:
        """Service seconds for one batch, with side-effect accounting."""
        cfg = self.config
        graph = self.assignment.graph
        parts = self.assignment.parts
        trace = self._trace
        idx = np.asarray(batch, dtype=np.int64)
        verts = trace.vertex[idx]
        kinds = trace.kind[idx]
        touched = [verts]
        edge_work = 0.0
        step_work = 0.0
        remote = 0

        # k-hop neighbourhood reads: hop-1 scans the full adjacency
        # (edge-balance shows up as work), message/cache/hop-2 effects
        # use a deterministic capped prefix of the neighbour list.
        for v in verts[kinds == KIND_KHOP].tolist():
            deg = int(graph.degrees[v])
            edge_work += deg
            if deg == 0:
                continue
            span = min(deg, trace.spec.khop_cap)
            start = int(graph.indptr[v])
            nbrs = graph.take_arcs(np.arange(start, start + span, dtype=np.int64)).astype(
                np.int64
            )
            remote += int(np.count_nonzero(parts[nbrs] != m))
            if trace.spec.khop == 2:
                edge_work += float(graph.degrees[nbrs].sum())
            touched.append(nbrs)

        # walk queries: advance KnightKing-style uniform transitions,
        # vectorised across the batch's walkers, RNG derived per
        # (seed, machine, batch) so runs replay bit-identically.
        walk_pos = verts[kinds == KIND_WALK]
        if walk_pos.size:
            wrng = derive_rng(self.seed, _SALT_WALK, m, batch_id)
            positions = walk_pos.copy()
            for _ in range(trace.spec.walk_steps):
                targets, dead = uniform_neighbor(graph, positions, wrng)
                alive = ~dead
                if not alive.any():
                    break
                positions = targets[alive]
                step_work += float(positions.size)
                remote += int(np.count_nonzero(parts[positions] != m))
                touched.append(positions)

        fetched = cache.touch(m, np.concatenate(touched))
        messages[m] += remote

        work = cfg.cost.compute_seconds(
            steps=step_work, edges=edge_work, vertices=float(len(batch))
        )
        svc = float(work[m]) if np.ndim(work) else float(work)
        if remote:
            svc += cfg.network.request_cost(remote)
        if fetched:
            svc += cfg.network.request_cost(fetched, cfg.block_bytes)

        key = f"m{m}:b{batch_id}"
        try:
            maybe_inject(SITE_CACHE, key)
        except (ChaosError, OSError):
            cache.flush(m)
            flushes[m] += 1
        try:
            maybe_inject(SITE_MACHINE, key)
        except (ChaosError, OSError):
            svc *= cfg.slowdown_factor
            degraded[m] += 1
        return svc

    # ------------------------------------------------------------------
    def _record_telemetry(self, result: ServingResult) -> None:
        """Aggregate metrics, recorded once after the event loop."""
        if not telemetry.enabled():
            return
        reg = telemetry.active()
        reg.counter("serving.queries").inc(result.num_queries)
        reg.counter("serving.shed").inc(int(result.shed.sum()))
        reg.counter("serving.batches").inc(int(result.batches.sum()))
        reg.counter("serving.messages").inc(int(result.messages.sum()))
        reg.counter("serving.degraded_batches").inc(int(result.degraded_batches.sum()))
        reg.counter("serving.cache_flushes").inc(int(result.cache_flushes.sum()))
        reg.counter("serving.cache.hits").inc(result.cache_stats["hits"])
        reg.counter("serving.cache.misses").inc(result.cache_stats["misses"])
        reg.gauge("serving.cache.hit_rate").set(result.cache_stats["hit_rate"])
        hist = reg.bounded_histogram("serving.latency_seconds")
        for value in result.completed_latencies().tolist():
            hist.observe(value)
