"""Incremental streaming kernel: O(1)/vertex penalty maintenance.

Same semantics as the ``scalar`` reference, bit-exactly, but the
per-vertex body never touches a ufunc:

- The balance penalty ``α·γ·W_i^{γ−1}`` is a function of part ``i``'s
  load alone, and an assignment changes at most two loads (the released
  part during re-streaming and the chosen part). So the penalty vector
  is *maintained* — only the changed entries are recomputed — instead
  of ``np.power`` over all ``k`` parts every vertex.
- Neighbour-part overlap is accumulated into a preallocated counter by
  delta (increment per assigned neighbour, reset only the touched
  entries afterwards) instead of a fresh ``np.bincount`` plus the two
  allocations of the ``assigned >= 0`` mask.
- Saturation (``load ≥ capacity``) is a monotone function of the load,
  so the excluded-part set is maintained the same way, replacing the
  per-vertex ``loads >= capacity`` scan.

All state lives in plain Python lists: for the paper's small ``k``
(≤ 64 pieces) list indexing beats NumPy scalar indexing by an order of
magnitude, which is where the ≥3× win over ``scalar`` comes from.
Arithmetic is performed in the same order on the same IEEE doubles as
the reference (`float.__pow__` and `np.power` both route to the
platform ``pow``), so assignments are identical, not merely close —
see ``tests/partition/test_kernels.py``.
"""

from __future__ import annotations

import numpy as np

from repro.partition.kernels.base import KernelBackend, pow_like_numpy, register_kernel

__all__ = ["BACKEND"]

_NEG_INF = float("-inf")


def fennel_incremental(
    indptr: np.ndarray,
    indices: np.ndarray,
    stream: np.ndarray,
    parts: np.ndarray,
    loads: np.ndarray,
    weights: np.ndarray,
    *,
    alpha: float,
    gamma: float,
    capacity: float,
    passes: int,
) -> None:
    k = loads.shape[0]
    gm1 = gamma - 1.0
    ag = alpha * gamma
    # Python-native mirrors of the hot state (lists index ~10× faster
    # than NumPy scalars from the interpreter).
    indptr_l = indptr.tolist()
    indices_l = indices.tolist()
    weights_l = weights.tolist()
    stream_l = stream.tolist()
    parts_l = parts.tolist()
    loads_l = loads.tolist()
    penalty = [ag * pow_like_numpy(x, gm1) for x in loads_l]
    saturated = [x >= capacity for x in loads_l]
    num_saturated = sum(saturated)
    counts = [0] * k

    for _pass in range(passes):
        for v in stream_l:
            current = parts_l[v]
            if current >= 0:
                # Re-streaming: release v's load before re-scoring.
                released = loads_l[current] - weights_l[v]
                loads_l[current] = released
                penalty[current] = ag * pow_like_numpy(released, gm1)
                if saturated[current] and released < capacity:
                    saturated[current] = False
                    num_saturated -= 1
            touched = []
            for u in indices_l[indptr_l[v] : indptr_l[v + 1]]:
                p = parts_l[u]
                if p >= 0:
                    if counts[p] == 0:
                        touched.append(p)
                    counts[p] += 1
            if num_saturated == k:
                # Everything saturated → least-loaded fallback.
                choice = 0
                best_load = loads_l[0]
                for i in range(1, k):
                    if loads_l[i] < best_load:
                        best_load = loads_l[i]
                        choice = i
            else:
                choice = -1
                best = _NEG_INF
                for i in range(k):
                    if saturated[i]:
                        continue
                    s = counts[i] - penalty[i]
                    if s > best:
                        best = s
                        choice = i
            for p in touched:
                counts[p] = 0
            parts_l[v] = choice
            grown = loads_l[choice] + weights_l[v]
            loads_l[choice] = grown
            penalty[choice] = ag * pow_like_numpy(grown, gm1)
            if not saturated[choice] and grown >= capacity:
                saturated[choice] = True
                num_saturated += 1

    parts[:] = parts_l
    loads[:] = loads_l


def ldg_incremental(
    indptr: np.ndarray,
    indices: np.ndarray,
    stream: np.ndarray,
    parts: np.ndarray,
    loads: np.ndarray,
    *,
    capacity: float,
) -> None:
    k = loads.shape[0]
    indptr_l = indptr.tolist()
    indices_l = indices.tolist()
    stream_l = stream.tolist()
    parts_l = parts.tolist()
    loads_l = loads.tolist()
    # LDG's remaining-capacity weight 1 − W_i/C depends on the load
    # alone; maintained exactly like the Fennel penalty.
    weight = [1.0 - x / capacity for x in loads_l]
    saturated = [x >= capacity for x in loads_l]
    num_saturated = sum(saturated)
    counts = [0] * k

    for v in stream_l:
        touched = []
        num_assigned = 0
        for u in indices_l[indptr_l[v] : indptr_l[v + 1]]:
            p = parts_l[u]
            if p >= 0:
                if counts[p] == 0:
                    touched.append(p)
                counts[p] += 1
                num_assigned += 1
        if num_saturated == k:
            choice = 0
            best_load = loads_l[0]
            for i in range(1, k):
                if loads_l[i] < best_load:
                    best_load = loads_l[i]
                    choice = i
        else:
            choice = -1
            best = _NEG_INF
            if num_assigned:
                for i in range(k):
                    if saturated[i]:
                        continue
                    s = counts[i] * weight[i]
                    if s > best:
                        best = s
                        choice = i
            else:
                for i in range(k):  # empty overlap → fill least loaded
                    if saturated[i]:
                        continue
                    if weight[i] > best:
                        best = weight[i]
                        choice = i
        for p in touched:
            counts[p] = 0
        parts_l[v] = choice
        grown = loads_l[choice] + 1.0
        loads_l[choice] = grown
        weight[choice] = 1.0 - grown / capacity
        if not saturated[choice] and grown >= capacity:
            saturated[choice] = True
            num_saturated += 1

    parts[:] = parts_l
    loads[:] = loads_l


def single_incremental(
    overlap: np.ndarray,
    loads: np.ndarray,
    *,
    alpha: float,
    gamma: float,
    capacity: float,
) -> int:
    k = loads.shape[0]
    gm1 = gamma - 1.0
    ag = alpha * gamma
    overlap_l = overlap.tolist()
    loads_l = loads.tolist()
    choice = -1
    best = _NEG_INF
    num_saturated = 0
    for i in range(k):
        if loads_l[i] >= capacity:
            num_saturated += 1
            continue
        s = overlap_l[i] - ag * pow_like_numpy(loads_l[i], gm1)
        if s > best:
            best = s
            choice = i
    if num_saturated == k:
        choice = 0
        best_load = loads_l[0]
        for i in range(1, k):
            if loads_l[i] < best_load:
                best_load = loads_l[i]
                choice = i
    return choice


BACKEND = KernelBackend(
    name="incremental",
    fennel=fennel_incremental,
    ldg=ldg_incremental,
    single=single_incremental,
    exact=True,
    description="delta-maintained penalties and counters, no per-vertex ufuncs",
)
register_kernel(BACKEND)
