"""Weighted (edge-biased) random walk.

KnightKing's static-transition walks pick neighbour ``y`` of ``cur``
with probability ``w(cur→y) / Σ w(cur→·)`` via precomputed alias tables
— the transition law of weighted DeepWalk and the building block of
heterogeneous-network embeddings. The alias index is built once at
construction (O(m)) and shared across all supersteps.
"""

from __future__ import annotations

import numpy as np

from repro.engines.knightking.alias import VertexAliasIndex
from repro.engines.knightking.apps.base import WalkApp
from repro.graph.csr import CSRGraph

__all__ = ["WeightedWalk"]


class WeightedWalk(WalkApp):
    """First-order walk with edge-weight-proportional transitions.

    Parameters
    ----------
    graph:
        The graph the walk will run on (the alias index binds to it;
        running the app on a different graph raises).
    weights:
        :class:`~repro.graph.weights.EdgeWeights` (or a raw slot-aligned
        array) over the same graph.
    """

    name = "weighted-walk"

    def __init__(self, graph: CSRGraph, weights) -> None:
        self._index = VertexAliasIndex.build(graph, weights)

    def advance(
        self,
        graph: CSRGraph,
        positions: np.ndarray,
        previous: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        if graph is not self._index.graph and graph != self._index.graph:
            raise ValueError("WeightedWalk used on a different graph than its alias index")
        return self._index.sample(positions, rng)
