"""Unit tests for cost and network models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import CostModel, NetworkModel
from repro.errors import ConfigurationError


class TestCostModel:
    def test_scalar_arithmetic(self):
        cm = CostModel(step_cost=1e-6, edge_cost=2e-6, vertex_cost=3e-6, cores=2)
        t = cm.compute_seconds(steps=10, edges=5, vertices=1)
        assert t == pytest.approx((10e-6 + 10e-6 + 3e-6) / 2)

    def test_array_broadcast(self):
        cm = CostModel(step_cost=1e-6, cores=1, edge_cost=0, vertex_cost=0)
        t = cm.compute_seconds(steps=np.array([1.0, 2.0, 0.0]))
        assert np.allclose(t, [1e-6, 2e-6, 0.0])

    def test_defaults_physical(self):
        cm = CostModel()
        # a billion walker-steps on one machine ~ a second of work
        assert 0.1 < cm.compute_seconds(steps=1e9) < 10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CostModel(step_cost=-1)
        with pytest.raises(ConfigurationError):
            CostModel(cores=0)


class TestNetworkModel:
    def test_latency_floor(self):
        nm = NetworkModel(latency=1e-3)
        t = nm.comm_seconds(np.zeros(4), np.zeros(4))
        assert np.allclose(t, 1e-3)

    def test_bandwidth_term(self):
        nm = NetworkModel(bandwidth=1e6, latency=0.0, message_bytes=100)
        t = nm.comm_seconds(np.array([1000.0]), np.array([0.0]))
        assert t[0] == pytest.approx(1000 * 100 / 1e6)

    def test_full_duplex_max(self):
        nm = NetworkModel(bandwidth=1e6, latency=0.0, message_bytes=1)
        t = nm.comm_seconds(np.array([10.0]), np.array([500.0]))
        assert t[0] == pytest.approx(500 / 1e6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkModel(bandwidth=0)
        with pytest.raises(ConfigurationError):
            NetworkModel(message_bytes=0)
