"""Figure 4 — per-machine computing load per iteration (random walk).

5 walks per vertex, 4 steps, Twitter, 4 machines. Load = number of
walking steps executed by each machine in each iteration. The paper
shows highly imbalanced loads for Chunk-V/Chunk-E/Fennel.
"""

from __future__ import annotations

from repro.bench.experiments._common import graph_for, partition_with
from repro.bench.harness import ExperimentConfig, ExperimentResult, register_experiment
from repro.bench.report import Table
from repro.bench.workloads import run_walk_job
from repro.partition.metrics import bias

ALGOS = ("chunk-v", "chunk-e", "fennel", "bpart")
K = 4


@register_experiment("fig04", "Computing load per machine per iteration (Twitter, 4 machines)")
def run(config: ExperimentConfig) -> ExperimentResult:
    g = graph_for(config, "twitter")
    result = ExperimentResult(
        "fig04", "Computing load per machine per iteration (Twitter, 4 machines)"
    )
    table = Table(
        "Walker steps per machine (5|V| walks, 4 steps)",
        ["algorithm", "iteration"] + [f"M{i}" for i in range(K)] + ["bias"],
        note="1-D balanced algorithms show up to multi-x load gaps in every iteration",
    )
    for name in ALGOS:
        a = partition_with(name, g, K, seed=config.seed).assignment
        walk = run_walk_job(
            g, a, app_name="deepwalk", walkers_per_vertex=5, seed=config.seed
        )
        for it in range(walk.steps_matrix.shape[0]):
            row = walk.steps_matrix[it]
            table.add_row(name, it, *[int(x) for x in row], bias(row))
        result.data[name] = walk.steps_matrix.tolist()
    result.tables.append(table)
    return result
