"""Figure 13 — waiting-time ratio at 4 and 8 machines.

Ratio = total barrier wait of all machines / (machines × makespan) for
a 5|V| × 4-step random walk job. The paper: up to 70 % for 1-D balanced
algorithms (means 45 % / 55 % at 4 / 8 machines), ~10–20 % for BPart.
"""

from __future__ import annotations

from repro.bench.experiments._common import DATASET_ORDER, graph_for, partition_with
from repro.bench.harness import ExperimentConfig, ExperimentResult, register_experiment
from repro.bench.report import BarChart, Table
from repro.bench.workloads import run_walk_job

ALGOS = ("chunk-v", "chunk-e", "fennel", "bpart")
MACHINE_COUNTS = (4, 8)


@register_experiment("fig13", "Waiting-time ratio of random walks (4 and 8 machines)")
def run(config: ExperimentConfig) -> ExperimentResult:
    result = ExperimentResult(
        "fig13", "Waiting-time ratio of random walks (4 and 8 machines)"
    )
    for m in MACHINE_COUNTS:
        table = Table(
            f"{m} machines: fraction of machine-time spent waiting",
            ["algorithm"] + list(DATASET_ORDER),
            note="1-D algorithms wait up to 70%; BPart ~10-20%",
        )
        for name in ALGOS:
            row = []
            for dataset in DATASET_ORDER:
                g = graph_for(config, dataset)
                a = partition_with(name, g, m, seed=config.seed).assignment
                walk = run_walk_job(
                    g, a, app_name="deepwalk", walkers_per_vertex=5, seed=config.seed
                )
                ratio = walk.ledger.waiting_ratio
                row.append(ratio)
                result.data[(m, name, dataset)] = ratio
            table.add_row(name, *row)
        result.tables.append(table)
        chart = BarChart(
            f"{m} machines: waiting ratio on Twitter",
            note="the paper's bars: tall for Chunk-V/Chunk-E/Fennel, short for BPart",
        )
        for name in ALGOS:
            chart.add(name, result.data[(m, name, "twitter")])
        result.charts.append(chart)
    return result
