"""Ablations over BPart's design choices (DESIGN.md §4).

Three sweeps on Twitter at k = 8:

1. **Weighting factor c** — c = 1 degenerates to Fennel (vertex-only
   balance), c = 0 to pure edge balance; the paper's empirical default
   is ½. The sweep shows why: both biases stay low only in the middle.
2. **Combine rounds** — 1 round (the paper's Figure 9 baseline) cannot
   absorb a hub-dominated outlier piece; 2–3 rounds can ("two or three
   rounds of combinations" per §3.3).
3. **Stream order** — streaming partitioners depend on the vertex
   stream; BPart's combining phase makes it robust across orders.
"""

from __future__ import annotations

from repro.bench.experiments._common import graph_for, partition_with
from repro.bench.harness import ExperimentConfig, ExperimentResult, register_experiment
from repro.bench.report import Table
from repro.partition.metrics import bias, edge_cut_ratio

K = 8


@register_experiment("ablation", "BPart ablations: c, combine rounds, stream order")
def run(config: ExperimentConfig) -> ExperimentResult:
    g = graph_for(config, "twitter")
    result = ExperimentResult("ablation", "BPart ablations: c, combine rounds, stream order")

    t1 = Table(
        "Weighting factor c (Eq. 1)",
        ["c", "vertex bias", "edge bias", "cut ratio"],
        note="c=1 ~ Fennel-style vertex balance, c=0 pure edge balance; c=1/2 balances both",
    )
    for c in (0.0, 0.25, 0.5, 0.75, 1.0):
        a = partition_with("bpart", g, K, seed=config.seed, c=c).assignment
        t1.add_row(c, bias(a.vertex_counts), bias(a.edge_counts), edge_cut_ratio(g, a.parts))
        result.data[("c", c)] = (bias(a.vertex_counts), bias(a.edge_counts))
    result.tables.append(t1)

    t2 = Table(
        "First-layer combine rounds (over-split factor 2^rounds)",
        ["rounds", "pieces", "vertex bias", "edge bias", "cut ratio"],
        note="1 round can leave a hub outlier; 2-3 rounds converge (paper §3.3)",
    )
    for rounds in (1, 2, 3):
        a = partition_with(
            "bpart", g, K, seed=config.seed, base_rounds=rounds, max_layers=1
        ).assignment
        t2.add_row(
            rounds,
            (2**rounds) * K,
            bias(a.vertex_counts),
            bias(a.edge_counts),
            edge_cut_ratio(g, a.parts),
        )
        result.data[("rounds", rounds)] = (bias(a.vertex_counts), bias(a.edge_counts))
    result.tables.append(t2)

    t3 = Table(
        "Vertex stream order",
        ["order", "vertex bias", "edge bias", "cut ratio"],
        note="balance holds across stream orders; cut varies with locality of the order",
    )
    for order in ("natural", "random", "bfs", "degree_desc"):
        a = partition_with("bpart", g, K, seed=config.seed, order=order).assignment
        t3.add_row(order, bias(a.vertex_counts), bias(a.edge_counts), edge_cut_ratio(g, a.parts))
        result.data[("order", order)] = (bias(a.vertex_counts), bias(a.edge_counts))
    result.tables.append(t3)
    return result
