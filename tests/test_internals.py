"""Tests for internals not exercised elsewhere: multilevel pieces,
GD projection, workload caps, BPart refine flag, adaptive thresholds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import chung_lu, ring_graph, social_graph
from repro.partition import BPartPartitioner, bias, edge_cut_ratio


class TestMultilevelInternals:
    def test_contract_merges_clusters(self):
        from repro.partition.multilevel import _contract

        g = ring_graph(6)
        indptr = g.indptr.astype(np.int64)
        indices = g.indices.astype(np.int64)
        ew = np.ones(indices.size)
        vw = np.ones(6)
        labels = np.array([0, 0, 1, 1, 2, 2])
        level = _contract(indptr, indices, ew, vw, labels)
        assert level.num_vertices == 3
        assert level.vweights.sum() == 6
        # contracted ring of 3 super-vertices: each pair connected
        assert level.indices.size == 6

    def test_contract_accumulates_edge_weights(self):
        from repro.partition.multilevel import _contract

        g = ring_graph(4)
        labels = np.array([0, 0, 1, 1])
        level = _contract(
            g.indptr.astype(np.int64),
            g.indices.astype(np.int64),
            np.ones(g.num_edges),
            np.ones(4),
            labels,
        )
        # two cut edges between the halves, in both directions
        assert level.eweights.sum() == 4
        assert level.eweights.max() == 2

    def test_label_propagation_respects_size_cap(self):
        from repro.partition.multilevel import _label_propagation

        g = chung_lu(300, 8.0, rng=130)
        labels = _label_propagation(
            g.indptr.astype(np.int64),
            g.indices.astype(np.int64),
            np.ones(g.num_edges),
            np.ones(g.num_vertices),
            max_cluster_weight=20.0,
            rng=np.random.default_rng(0),
        )
        _, counts = np.unique(labels, return_counts=True)
        assert counts.max() <= 20


class TestGDInternals:
    def test_projection_satisfies_constraints(self):
        from repro.partition.gd import _project_balance

        rng = np.random.default_rng(0)
        d = rng.uniform(1, 50, size=200)
        x = _project_balance(rng.uniform(-1, 1, size=200), d, rounds=30)
        assert abs(x.sum()) < 1.0  # near the Σx=0 plane after clipping
        assert abs((d * x).sum()) < d.sum() * 0.02
        assert x.min() >= -1.0 and x.max() <= 1.0


class TestWorkloadCaps:
    def test_ppr_respects_step_cap(self):
        from repro.bench.workloads import PPR_STEP_CAP, run_walk_job
        from repro.partition import HashPartitioner

        g = chung_lu(300, 8.0, rng=131)
        a = HashPartitioner().partition(g, 2).assignment
        res = run_walk_job(g, a, app_name="ppr", walkers_per_vertex=1, seed=131)
        assert res.num_supersteps <= PPR_STEP_CAP

    def test_fixed_length_apps_run_exactly_four(self):
        from repro.bench.workloads import run_walk_job
        from repro.partition import HashPartitioner

        g = chung_lu(300, 8.0, rng=132)
        a = HashPartitioner().partition(g, 2).assignment
        for app in ("rwj", "rwd", "deepwalk", "node2vec"):
            res = run_walk_job(g, a, app_name=app, walkers_per_vertex=1, seed=1)
            assert res.num_supersteps == 4, app


class TestBPartRefineFlag:
    def test_refine_reduces_cut_within_envelope(self):
        g = social_graph(3000, 14.0, 2.2, rng=133)
        plain = BPartPartitioner(seed=133).partition(g, 8)
        refined = BPartPartitioner(seed=133, refine=True).partition(g, 8)
        assert edge_cut_ratio(g, refined.assignment.parts) <= edge_cut_ratio(
            g, plain.assignment.parts
        )
        assert bias(refined.assignment.vertex_counts) < 0.11
        assert bias(refined.assignment.edge_counts) < 0.11
        assert refined.metadata.get("refined") is True
        assert "refine" in refined.clock.segments


class TestBarChart:
    def test_render(self):
        from repro.bench.report import BarChart

        c = BarChart("loads", width=10, note="x")
        c.add("a", 10.0)
        c.add("bb", 5.0)
        out = c.render()
        lines = out.splitlines()
        assert lines[0] == "loads"
        assert "██████████" in lines[1]  # full bar for the max
        assert "█████·····" in lines[2]
        assert "paper: x" in out

    def test_empty(self):
        from repro.bench.report import BarChart

        assert BarChart("t").render() == "t"

    def test_negative_rejected(self):
        from repro.bench.report import BarChart

        with pytest.raises(ValueError):
            BarChart("t").add("x", -1.0)


class TestResultSerialisation:
    def test_to_dict_roundtrips_json(self):
        import json

        from repro.bench import ExperimentConfig, run_experiment

        res = run_experiment("fig08", ExperimentConfig(scale=0.05, seed=3))
        payload = json.dumps(res.to_dict())
        back = json.loads(payload)
        assert back["experiment_id"] == "fig08"
        assert "corr" in back["data"]
