"""Figure 12 — per-machine compute seconds per iteration (Friendster).

Simulated per-iteration compute time on 8 machines; 1-D schemes gap
widely every iteration, BPart is flat.
"""


def test_fig12(run_paper_experiment):
    result = run_paper_experiment("fig12")
    assert result.tables or result.series
