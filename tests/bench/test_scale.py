"""The scale bench's cell runner: hermetic env propagation, dense vs
sharded vs parallel checksum parity, and the RLIMIT_AS budget plumbing
behind the >RAM demonstration."""

from __future__ import annotations

import pytest

from repro.bench.scale import _env_snapshot, run_cell
from repro.parallel import shm_available

N, DEG, PARTS, SEED = 3000, 6.0, 4, 7


class TestEnvSnapshot:
    def test_collects_only_set_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "0.25")
        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        snap = _env_snapshot()
        assert snap["REPRO_CHAOS"] == "0.25"
        assert snap["REPRO_JOBS"] == "3"
        assert "REPRO_NO_CACHE" not in snap

    def test_cache_dir_propagates(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert _env_snapshot()["REPRO_CACHE_DIR"] == str(tmp_path)


class TestRunCell:
    def test_dense_and_sharded_agree(self, tmp_path):
        dense = run_cell("dense", N, DEG, PARTS, SEED, kernel="buffered")
        sharded = run_cell(
            "sharded", N, DEG, PARTS, SEED,
            kernel="buffered", spill_root=str(tmp_path), shard_size=512,
        )
        assert "error" not in dense and "error" not in sharded
        assert dense["checksum"] == sharded["checksum"]
        assert dense["num_arcs"] == sharded["num_arcs"]

    @pytest.mark.skipif(not shm_available(), reason="no shared memory")
    def test_parallel_cell_matches_serial(self, tmp_path):
        base = run_cell("dense", N, DEG, PARTS, SEED, kernel="buffered")
        par = run_cell("dense", N, DEG, PARTS, SEED, kernel="parallel", jobs=2)
        assert "error" not in base and "error" not in par
        assert par["checksum"] == base["checksum"]
        assert par["kernel"] == "parallel" and par["jobs"] == 2

    def test_mem_cap_reported_and_enforced(self):
        # A budget far below the interpreter baseline must surface as a
        # MemoryError report, not a hung or dead cell.
        cell = run_cell(
            "dense", N, DEG, PARTS, SEED, kernel="incremental", mem_cap_mb=48
        )
        assert cell == {"error": "MemoryError", "kind": "dense"}
