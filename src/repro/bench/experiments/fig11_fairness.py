"""Figure 11 — Jain's fairness vs number of subgraphs (Twitter).

k ∈ {8, 16, 32, 64, 128}. The paper: BPart's fairness stays ≈ 1 in both
dimensions at every scale, while 1-D algorithms decay in their
unbalanced dimension.
"""

from __future__ import annotations

from repro.bench.experiments._common import graph_for, partition_with
from repro.bench.harness import ExperimentConfig, ExperimentResult, register_experiment
from repro.bench.report import Series, Table
from repro.partition.metrics import jains_fairness

ALGOS = ("chunk-v", "chunk-e", "fennel", "bpart")
PART_COUNTS = (8, 16, 32, 64, 128)


@register_experiment("fig11", "Jain's fairness vs number of subgraphs (Twitter)")
def run(config: ExperimentConfig) -> ExperimentResult:
    g = graph_for(config, "twitter")
    result = ExperimentResult("fig11", "Jain's fairness vs number of subgraphs (Twitter)")
    table = Table(
        "Jain's fairness of |Vi| and |Ei|",
        ["algorithm", "k", "fairness(V)", "fairness(E)"],
        note="BPart stays ~1.0 in both dimensions up to 128 subgraphs",
    )
    for name in ALGOS:
        sv = Series(f"{name}:fairness(V)")
        se = Series(f"{name}:fairness(E)")
        for k in PART_COUNTS:
            a = partition_with(name, g, k, seed=config.seed).assignment
            fv = jains_fairness(a.vertex_counts)
            fe = jains_fairness(a.edge_counts)
            table.add_row(name, k, fv, fe)
            sv.add(k, fv)
            se.add(k, fe)
            result.data[(name, k)] = (fv, fe)
        result.series.extend([sv, se])
    result.tables.append(table)
    return result
