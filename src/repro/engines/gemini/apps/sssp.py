"""Single-source shortest paths (Bellman–Ford style) vertex program.

:class:`~repro.graph.csr.CSRGraph` stores topology only, so edge weights
are supplied as a per-*target-degree-slot* array aligned with
``graph.indices`` (weight of arc ``indices[i]`` is ``weights[i]``), or
default to 1.0 — in which case SSSP coincides with BFS, a property the
tests exploit.
"""

from __future__ import annotations

import numpy as np

from repro.engines.gemini.vertex_program import VertexProgram
from repro.graph.csr import CSRGraph
from repro.utils.validation import check_nonnegative

__all__ = ["SSSP"]


class SSSP(VertexProgram):
    """Iterative relaxation SSSP from ``source`` with non-negative weights."""

    name = "sssp"
    max_iterations = 10_000

    def __init__(self, source: int = 0, weights: np.ndarray | None = None) -> None:
        check_nonnegative("source", source)
        self._source = int(source)
        self._weights = weights

    def initialize(self, graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
        n = graph.num_vertices
        if self._source >= n:
            raise ValueError(f"source {self._source} outside graph of {n} vertices")
        if self._weights is None:
            self._w = np.ones(graph.num_edges)
        else:
            w = np.asarray(self._weights, dtype=np.float64)
            if w.shape != (graph.num_edges,):
                raise ValueError(
                    f"weights must align with indices (length {graph.num_edges})"
                )
            if (w < 0).any():
                raise ValueError("SSSP requires non-negative weights")
            self._w = w
        dist = np.full(n, np.inf)
        dist[self._source] = 0.0
        active = np.zeros(n, dtype=bool)
        active[self._source] = True
        return dist, active

    def iterate(
        self, graph: CSRGraph, state: np.ndarray, active: np.ndarray, iteration: int
    ) -> tuple[np.ndarray, np.ndarray]:
        n = graph.num_vertices
        # Relax all arcs: candidate[v] = min over in-arcs (dist[u] + w(u,v)).
        # Symmetric storage means out-arcs of v are exactly its in-arcs
        # reversed, so gather over v's own slots with reversed roles:
        # dist[indices[i]] + w[i] relaxes *into* the slot owner.
        gathered = state[graph.indices] + self._w
        candidate = np.full(n, np.inf)
        nonzero = graph.degrees > 0
        starts = graph.indptr[:-1][nonzero]
        if graph.num_edges:
            candidate[nonzero] = np.minimum.reduceat(gathered, starts)
        new_state = np.minimum(state, candidate)
        next_active = new_state < state
        return new_state, next_active
