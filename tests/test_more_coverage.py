"""Additional coverage: engine mode corners, greedy-mode termination,
IO caveats, workload factory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import BSPCluster
from repro.engines.gemini import GeminiEngine, PageRank
from repro.engines.knightking import PPR, WalkEngine
from repro.graph import chung_lu, read_edge_list, write_edge_list
from repro.partition import HashPartitioner


class TestGreedyModeCorners:
    def test_ppr_terminations_in_greedy_mode(self):
        """Walkers that stop mid-greedy-run must not be advanced again."""
        g = chung_lu(400, 8.0, rng=150)
        a = HashPartitioner().partition(g, 2).assignment
        engine = WalkEngine(BSPCluster(2), seed=151, mode="greedy", record_paths=True)
        res = engine.run(g, a, PPR(stop_prob=0.3), walkers_per_vertex=1, max_steps=30)
        lengths = (res.paths >= 0).sum(axis=1) - 1
        assert lengths.max() <= 30
        assert res.total_steps == int(lengths.sum())

    def test_greedy_single_machine_one_superstep(self):
        """With one machine nothing ever crosses: the whole job is one
        superstep of local computation."""
        g = chung_lu(300, 8.0, rng=152)
        a = HashPartitioner().partition(g, 1).assignment
        engine = WalkEngine(BSPCluster(1), seed=153, mode="greedy")
        res = engine.run(g, a, PPR(stop_prob=0.2), walkers_per_vertex=1, max_steps=50)
        assert res.num_supersteps == 1
        assert res.total_messages == 0


class TestGeminiModeCorners:
    def test_pull_mode_single_part_no_traffic(self):
        g = chung_lu(300, 8.0, rng=154)
        a = HashPartitioner().partition(g, 1).assignment
        res = GeminiEngine(BSPCluster(1), mode="pull").run(g, a, PageRank(3))
        assert res.total_messages == 0

    def test_pull_compute_covers_all_edges(self):
        g = chung_lu(300, 8.0, rng=155)
        a = HashPartitioner().partition(g, 4).assignment
        res = GeminiEngine(BSPCluster(4), mode="pull").run(g, a, PageRank(2))
        cm = BSPCluster(4).cost_model
        expected = cm.compute_seconds(
            edges=np.bincount(a.parts, weights=g.degrees, minlength=4),
            vertices=a.vertex_counts.astype(float),
        )
        assert np.allclose(res.ledger.compute_matrix[0], expected)

    def test_adaptive_threshold_extremes(self):
        g = chung_lu(300, 8.0, rng=156)
        a = HashPartitioner().partition(g, 2).assignment
        always_pull = GeminiEngine(
            BSPCluster(2), mode="adaptive", dense_threshold=1e-9
        ).run(g, a, PageRank(2))
        assert set(always_pull.modes) == {"pull"}
        always_push = GeminiEngine(
            BSPCluster(2), mode="adaptive", dense_threshold=1.0
        ).run(g, a, PageRank(2))
        assert set(always_push.modes) == {"push"}


class TestIOCaveats:
    def test_trailing_isolated_vertices_need_num_vertices(self, tmp_path):
        """Edge-list text cannot express trailing isolated vertices; the
        reader's num_vertices override restores them."""
        from repro.graph import from_edges

        g = from_edges([0, 1], [1, 2], num_vertices=6)
        p = tmp_path / "g.txt"
        write_edge_list(g, p)
        lossy = read_edge_list(p)
        assert lossy.num_vertices == 3  # ids 3..5 are unrepresentable
        exact = read_edge_list(p, num_vertices=6)
        assert exact == g


class TestWorkloadFactory:
    def test_make_partitioners(self):
        from repro.bench.workloads import PAPER_PARTITIONERS, make_partitioners

        parts = make_partitioners(seed=7)
        assert set(parts) == set(PAPER_PARTITIONERS)
        for name, p in parts.items():
            assert p.name == name
