"""Figure 4 — per-machine computing load per iteration.

5|V| random walks x 4 steps on Twitter, 4 machines: the walker-step
load per machine per iteration, highly imbalanced for 1-D schemes.
"""


def test_fig04(run_paper_experiment):
    result = run_paper_experiment("fig04")
    assert result.tables or result.series
