"""Graph transformations: component extraction, filtering, reordering.

Real partitioning pipelines preprocess their inputs — keep the giant
component, drop low-degree noise, and *reorder vertex ids for locality*
(which is exactly what makes Chunk-V viable on crawled datasets). These
utilities provide those steps over :class:`~repro.graph.csr.CSRGraph`
and return both the transformed graph and the id mapping, so results
can be projected back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.graph.stream import vertex_stream
from repro.graph.subgraph import extract_subgraph

__all__ = [
    "TransformedGraph",
    "largest_connected_component",
    "filter_min_degree",
    "kcore_subgraph",
    "relabel",
    "locality_reorder",
    "connected_components_sizes",
]


@dataclass(frozen=True)
class TransformedGraph:
    """A transformed graph plus its id mapping.

    ``new_of_old[v]`` is v's id in the new graph (−1 if dropped);
    ``old_of_new`` maps back.
    """

    graph: CSRGraph
    new_of_old: np.ndarray
    old_of_new: np.ndarray


def _components(graph: CSRGraph) -> np.ndarray:
    """Component label per vertex (min vertex id in the component)."""
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    # Min-label propagation over all arcs until fixpoint; O(diameter)
    # vectorised rounds.
    while True:
        gathered = labels[indices]
        nbr_min = np.full(n, np.iinfo(np.int64).max)
        nonzero = graph.degrees > 0
        if graph.num_edges:
            np.minimum.reduceat(gathered, indptr[:-1][nonzero])
            nbr_min[nonzero] = np.minimum.reduceat(gathered, indptr[:-1][nonzero])
        new_labels = np.minimum(labels, nbr_min)
        if np.array_equal(new_labels, labels):
            return labels
        labels = new_labels


def connected_components_sizes(graph: CSRGraph) -> np.ndarray:
    """Sizes of all connected components, descending."""
    labels = _components(graph)
    _, counts = np.unique(labels, return_counts=True)
    return np.sort(counts)[::-1]


def largest_connected_component(graph: CSRGraph) -> TransformedGraph:
    """Induce the giant component (ties broken by smallest label)."""
    labels = _components(graph)
    uniq, counts = np.unique(labels, return_counts=True)
    giant = uniq[int(np.argmax(counts))]
    return _induce(graph, labels == giant)


def filter_min_degree(graph: CSRGraph, min_degree: int) -> TransformedGraph:
    """Keep vertices with degree ≥ ``min_degree`` (single shave, not
    iterated — use :func:`kcore_subgraph` for the fixpoint)."""
    if min_degree < 0:
        raise ConfigurationError(f"min_degree must be >= 0, got {min_degree}")
    return _induce(graph, graph.degrees >= min_degree)


def kcore_subgraph(graph: CSRGraph, k: int) -> TransformedGraph:
    """The k-core: repeatedly shave vertices of degree < ``k``."""
    if k < 0:
        raise ConfigurationError(f"k must be >= 0, got {k}")
    keep = np.ones(graph.num_vertices, dtype=bool)
    degrees = graph.degrees.astype(np.int64).copy()
    indptr, indices = graph.indptr, graph.indices
    while True:
        shave = keep & (degrees < k)
        if not shave.any():
            break
        keep &= ~shave
        # subtract shaved vertices' contributions from their neighbours
        for v in np.nonzero(shave)[0]:
            nbrs = indices[indptr[v] : indptr[v + 1]]
            np.subtract.at(degrees, nbrs, 1)
        degrees[shave] = 0
    return _induce(graph, keep)


def relabel(graph: CSRGraph, order: np.ndarray) -> TransformedGraph:
    """Renumber vertices so ``order[i]`` becomes vertex ``i``."""
    order = np.asarray(order, dtype=np.int64)
    n = graph.num_vertices
    if order.size != n or not np.array_equal(np.sort(order), np.arange(n)):
        raise ConfigurationError("order must be a permutation of all vertex ids")
    new_of_old = np.empty(n, dtype=np.int64)
    new_of_old[order] = np.arange(n)
    src, dst = graph.edge_array()
    from repro.graph.builder import from_edges

    # The stored arcs already include both directions for undirected
    # graphs, so rebuild as directed arcs and re-tag the flag.
    g = from_edges(
        new_of_old[src], new_of_old[dst], n, directed=True, dedup=False,
        drop_self_loops=False,
    )
    g = CSRGraph(g.indptr, g.indices, directed=graph.directed, validate=False)
    return TransformedGraph(graph=g, new_of_old=new_of_old, old_of_new=order)


def locality_reorder(graph: CSRGraph, *, order: str = "bfs", rng=None) -> TransformedGraph:
    """Renumber by a traversal order so neighbours get nearby ids.

    BFS renumbering is the classic locality booster: it turns *any*
    graph into one where contiguous chunking (Chunk-V/Chunk-E) cuts far
    fewer edges — the preprocessing real systems apply before chunked
    partitioning.
    """
    return relabel(graph, vertex_stream(graph, order, rng=rng))


def _induce(graph: CSRGraph, keep: np.ndarray) -> TransformedGraph:
    sub = extract_subgraph(graph, keep)
    n = graph.num_vertices
    new_of_old = np.full(n, -1, dtype=np.int64)
    new_of_old[sub.global_ids] = np.arange(sub.global_ids.size)
    return TransformedGraph(
        graph=sub.graph, new_of_old=new_of_old, old_of_new=sub.global_ids
    )
