"""Unit tests for BPart — the paper's contribution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph import social_graph
from repro.partition import (
    BPartPartitioner,
    ChunkEPartitioner,
    ChunkVPartitioner,
    bias,
    edge_cut_ratio,
    jains_fairness,
)
from repro.partition.bpart import bpart_vertex_weights, weighted_stream_partition


@pytest.fixture(scope="module")
def g():
    return social_graph(4000, 18.0, 2.1, rng=10)


class TestVertexWeights:
    def test_sum_equals_n(self, powerlaw_small):
        for c in (0.0, 0.3, 0.5, 1.0):
            w = bpart_vertex_weights(powerlaw_small, c)
            assert w.sum() == pytest.approx(powerlaw_small.num_vertices)

    def test_c_one_is_uniform(self, powerlaw_small):
        w = bpart_vertex_weights(powerlaw_small, 1.0)
        assert np.allclose(w, 1.0)

    def test_c_zero_proportional_to_degree(self, powerlaw_small):
        w = bpart_vertex_weights(powerlaw_small, 0.0)
        expected = powerlaw_small.degrees / powerlaw_small.avg_degree
        assert np.allclose(w, expected)

    def test_edgeless_graph(self):
        from repro.graph import from_edges

        g0 = from_edges([], [], num_vertices=5)
        assert np.allclose(bpart_vertex_weights(g0, 0.5), 1.0)


class TestPhase1:
    def test_inverse_proportionality(self, g):
        pieces = weighted_stream_partition(g, 16, c=0.5)
        vc = np.bincount(pieces, minlength=16)
        ec = np.bincount(pieces, weights=g.degrees, minlength=16)
        corr = np.corrcoef(vc, ec)[0, 1]
        assert corr < -0.5  # the Figure-8 property

    def test_skew_reduced_vs_chunking(self, g):
        pieces = weighted_stream_partition(g, 16, c=0.5)
        ec_w = np.bincount(pieces, weights=g.degrees, minlength=16)
        chunkv = ChunkVPartitioner().partition(g, 16).assignment
        assert bias(ec_w) < bias(chunkv.edge_counts)

    def test_invalid_c(self, g):
        with pytest.raises(ConfigurationError):
            weighted_stream_partition(g, 8, c=1.5)


class TestBPartFull:
    @pytest.mark.parametrize("k", [2, 4, 8, 16])
    def test_two_dimensional_balance(self, g, k):
        a = BPartPartitioner(seed=1).partition(g, k).assignment
        assert bias(a.vertex_counts) < 0.1, f"vertex bias at k={k}"
        assert bias(a.edge_counts) < 0.1, f"edge bias at k={k}"

    def test_fairness_close_to_one(self, g):
        a = BPartPartitioner(seed=1).partition(g, 8).assignment
        assert jains_fairness(a.vertex_counts) > 0.99
        assert jains_fairness(a.edge_counts) > 0.99

    def test_beats_chunkers_in_other_dimension(self, g):
        bp = BPartPartitioner(seed=1).partition(g, 8).assignment
        cv = ChunkVPartitioner().partition(g, 8).assignment
        ce = ChunkEPartitioner().partition(g, 8).assignment
        assert bias(bp.edge_counts) < bias(cv.edge_counts)
        assert bias(bp.vertex_counts) < bias(ce.vertex_counts)

    def test_cut_below_hash(self, g):
        from repro.partition import HashPartitioner

        bp = BPartPartitioner(seed=1).partition(g, 8).assignment
        h = HashPartitioner().partition(g, 8).assignment
        assert edge_cut_ratio(g, bp.parts) < edge_cut_ratio(g, h.parts)

    def test_non_power_of_two_parts(self, g):
        a = BPartPartitioner(seed=1).partition(g, 6).assignment
        assert len(np.unique(a.parts)) == 6
        assert bias(a.vertex_counts) < 0.15
        assert bias(a.edge_counts) < 0.15

    def test_metadata_trace(self, g):
        res = BPartPartitioner(seed=1).partition(g, 8)
        assert res.metadata["c"] == 0.5
        layers = res.metadata["layers"]
        assert 1 <= len(layers) <= 3
        assert layers[0]["pieces"] >= 8

    def test_clock_breakdown(self, g):
        res = BPartPartitioner(seed=1).partition(g, 8)
        segs = res.clock.segments
        assert "stream" in segs and "combine" in segs and "total" in segs
        assert res.elapsed == pytest.approx(segs["total"])

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            BPartPartitioner(c=-0.1)
        with pytest.raises(ConfigurationError):
            BPartPartitioner(balance_threshold=0.0)
        with pytest.raises(ValueError):
            BPartPartitioner(oversplit_base=1)

    def test_deterministic(self, g):
        a = BPartPartitioner(seed=2).partition(g, 8).assignment
        b = BPartPartitioner(seed=2).partition(g, 8).assignment
        assert np.array_equal(a.parts, b.parts)

    def test_c_extremes_degenerate(self, g):
        # c=1 behaves Fennel-like: vertices balanced; edge balance comes
        # only from the combining phase, so compare phase-1 behaviour.
        pieces_v = weighted_stream_partition(g, 16, c=1.0)
        vc = np.bincount(pieces_v, minlength=16)
        assert bias(vc) < 0.15
        pieces_e = weighted_stream_partition(g, 16, c=0.0)
        ec = np.bincount(pieces_e, weights=g.degrees, minlength=16)
        assert bias(ec) < 0.25
