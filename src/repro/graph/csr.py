"""Compressed-sparse-row graph storage.

:class:`CSRGraph` is the central data structure of the library. It holds
an adjacency structure in two NumPy arrays:

- ``indptr``  — ``int64`` array of length ``n + 1``; the out-neighbours of
  vertex ``v`` live in ``indices[indptr[v]:indptr[v + 1]]``.
- ``indices`` — ``int32`` (or ``int64`` for > 2^31 vertices) array of
  length ``m`` holding neighbour ids.

Undirected graphs are stored *symmetrised*: each undirected edge
``{u, v}`` occupies two arcs, ``u→v`` and ``v→u``. This matches how
Gemini and KnightKing lay out social graphs, and it means "the number of
edges of a subgraph" in the paper's sense — the out-edges travelling
with each assigned vertex — is simply the sum of out-degrees over the
subgraph's vertices.

All accessors return views, never copies, so iterating partitions over a
multi-million-arc graph allocates nothing (see the hpc-parallel guide:
"use views, not copies").
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator

import numpy as np

from repro.errors import GraphFormatError

__all__ = ["CSRGraph", "fingerprint_stream", "FINGERPRINT_CHUNK"]

#: Elements hashed per :func:`fingerprint_stream` update — bounds the
#: extra memory of fingerprinting to one int64 chunk (8 MiB) regardless
#: of graph size.
FINGERPRINT_CHUNK = 1 << 20


def _index_dtype(num_vertices: int) -> np.dtype:
    """Smallest integer dtype able to index ``num_vertices`` vertices."""
    return np.dtype(np.int32) if num_vertices <= np.iinfo(np.int32).max else np.dtype(np.int64)


def _hash_as_int64(h, array: np.ndarray, chunk: int = FINGERPRINT_CHUNK) -> None:
    """Feed ``array`` to ``h`` as int64 bytes, ``O(chunk)`` extra memory.

    Equivalent to ``h.update(ascontiguousarray(array, int64).tobytes())``
    but never materialises more than one chunk: already-int64 contiguous
    slices are hashed through a zero-copy memoryview, everything else is
    cast chunk by chunk.
    """
    for start in range(0, array.size, chunk):
        block = array[start : start + chunk]
        if block.dtype != np.int64 or not block.flags["C_CONTIGUOUS"]:
            block = np.ascontiguousarray(block, dtype=np.int64)
        h.update(memoryview(block))


def fingerprint_stream(
    directed: bool,
    num_vertices: int,
    indptr_chunks: Iterable[np.ndarray],
    indices_chunks: Iterable[np.ndarray],
) -> str:
    """Content hash of a CSR structure delivered as array chunks.

    The digest is byte-identical to hashing the concatenated global
    ``indptr`` followed by ``indices`` (as int64), so every graph
    representation — dense :class:`CSRGraph`, memory-mapped shards —
    that describes the same adjacency produces the same fingerprint and
    shares artifact-cache entries.
    """
    h = hashlib.sha256()
    h.update(b"csr-v1:")
    h.update(b"directed" if directed else b"undirected")
    h.update(np.int64(num_vertices).tobytes())
    for block in indptr_chunks:
        _hash_as_int64(h, block)
    for block in indices_chunks:
        _hash_as_int64(h, block)
    return h.hexdigest()


class CSRGraph:
    """Immutable CSR adjacency structure.

    Parameters
    ----------
    indptr:
        ``int64`` offsets array of length ``num_vertices + 1``. ``indptr[0]``
        must be 0 and the array must be non-decreasing.
    indices:
        Neighbour ids, length ``indptr[-1]``.
    directed:
        ``False`` (default) marks the graph as an undirected graph stored
        symmetrically; ``True`` marks a genuinely directed graph. The flag
        only affects edge *counting* (``num_undirected_edges``) and IO —
        the adjacency layout is identical.
    validate:
        When ``True`` (default), structural invariants are checked once at
        construction; disable for trusted internal callers on hot paths.
    """

    __slots__ = ("_indptr", "_indices", "_directed", "_degrees", "_fingerprint")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        directed: bool = False,
        validate: bool = True,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices)
        if indices.dtype not in (np.dtype(np.int32), np.dtype(np.int64)):
            indices = indices.astype(_index_dtype(max(indptr.size - 1, 1)))
        self._indptr = indptr
        self._indices = indices
        self._directed = bool(directed)
        self._degrees: np.ndarray | None = None
        self._fingerprint: str | None = None
        if validate:
            self.validate()
        # Freeze the backing arrays: CSRGraph is shared across partitioners
        # and engines, so accidental in-place mutation must fail loudly.
        self._indptr.setflags(write=False)
        self._indices.setflags(write=False)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`GraphFormatError`."""
        if self._indptr.ndim != 1 or self._indptr.size < 1:
            raise GraphFormatError("indptr must be a 1-D array of length >= 1")
        if self._indptr[0] != 0:
            raise GraphFormatError(f"indptr[0] must be 0, got {self._indptr[0]}")
        if np.any(np.diff(self._indptr) < 0):
            raise GraphFormatError("indptr must be non-decreasing")
        if self._indptr[-1] != self._indices.size:
            raise GraphFormatError(
                f"indptr[-1] ({self._indptr[-1]}) must equal len(indices) ({self._indices.size})"
            )
        n = self.num_vertices
        if self._indices.size and (
            self._indices.min() < 0 or self._indices.max() >= n
        ):
            raise GraphFormatError("indices reference vertex ids outside [0, num_vertices)")

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of stored arcs ``m`` (undirected edges count twice)."""
        return self._indices.size

    @property
    def num_undirected_edges(self) -> int:
        """Number of logical edges: ``m / 2`` for undirected graphs."""
        return self._indices.size if self._directed else self._indices.size // 2

    @property
    def directed(self) -> bool:
        """Whether the graph is genuinely directed."""
        return self._directed

    @property
    def indptr(self) -> np.ndarray:
        """Read-only CSR offsets array (length ``n + 1``)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Read-only neighbour array (length ``m``)."""
        return self._indices

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex (computed once, then cached)."""
        if self._degrees is None:
            deg = np.diff(self._indptr)
            deg.setflags(write=False)
            self._degrees = deg
        return self._degrees

    @property
    def avg_degree(self) -> float:
        """Average out-degree ``m / n`` (the paper's ``d̄``)."""
        n = self.num_vertices
        return float(self.num_edges) / n if n else 0.0

    def fingerprint(self) -> str:
        """Stable content hash of the adjacency structure (hex digest).

        Two graphs with equal ``indptr``/``indices`` contents and the
        same ``directed`` flag share a fingerprint regardless of how or
        when they were built — the indices dtype is normalised before
        hashing, so an ``int32`` and an ``int64`` encoding of the same
        graph hash identically. The digest is the graph half of the
        artifact-cache key (see :mod:`repro.bench.artifacts`); computed
        once, then cached on the instance (the arrays are frozen).
        """
        if self._fingerprint is None:
            # Chunked hashing: tobytes() + an int64 cast of indices would
            # transiently duplicate the whole edge array (3× peak on
            # int32 graphs); fingerprint_stream is O(chunk) extra memory.
            self._fingerprint = fingerprint_stream(
                self._directed, self.num_vertices, (self._indptr,), (self._indices,)
            )
        return self._fingerprint

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbours of ``v`` as a zero-copy view."""
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Out-degree of a single vertex."""
        return int(self._indptr[v + 1] - self._indptr[v])

    def edge_array(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(sources, targets)`` arrays covering every stored arc.

        ``sources`` is materialised with :func:`numpy.repeat`; ``targets``
        is the ``indices`` array itself (a view).
        """
        sources = np.repeat(
            np.arange(self.num_vertices, dtype=self._indices.dtype), self.degrees
        )
        return sources, self._indices

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Iterate ``(u, v)`` arcs. For tests and tiny graphs only."""
        for u in range(self.num_vertices):
            for v in self.neighbors(u):
                yield u, int(v)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether arc ``u→v`` exists (binary search; neighbours sorted)."""
        nbrs = self.neighbors(u)
        i = int(np.searchsorted(nbrs, v))
        return i < nbrs.size and nbrs[i] == v

    def take_arcs(self, slots: np.ndarray) -> np.ndarray:
        """Neighbour ids at global arc slots — ``indices[slots]``.

        The representation-neutral arc gather: walker engines address
        arcs by flat CSR slot, and this method is what
        :class:`~repro.graph.sharded.ShardedCSRGraph` overrides to serve
        the same slots from memory-mapped shards.
        """
        return self._indices[slots]

    def iter_blocks(
        self, block_size: int | None = None
    ) -> Iterator[tuple[int, int, np.ndarray, np.ndarray]]:
        """Yield ``(start, stop, local_indptr, indices_view)`` blocks.

        The blockwise scan contract shared with
        :class:`~repro.graph.sharded.ShardedCSRGraph`: vertices
        ``start ≤ v < stop`` have their neighbours in
        ``indices_view[local_indptr[v - start] : local_indptr[v - start + 1]]``.
        ``local_indptr`` has length ``stop - start + 1`` and starts at 0.

        For the in-RAM representation the default (no ``block_size``) is
        a single block built entirely from zero-copy views, so blockwise
        consumers pay nothing on dense graphs.
        """
        n = self.num_vertices
        if n == 0:
            return
        if block_size is None or block_size >= n:
            # indptr[0] == 0, so the global array is a valid local one.
            yield 0, n, self._indptr, self._indices
            return
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        for start in range(0, n, block_size):
            stop = min(start + block_size, n)
            base = int(self._indptr[start])
            local = self._indptr[start : stop + 1] - base
            yield start, stop, local, self._indices[base : base + int(local[-1])]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "CSRGraph":
        """Transposed graph (in-neighbours become out-neighbours).

        For symmetrised undirected graphs this is an equal graph.
        """
        n = self.num_vertices
        src, dst = self.edge_array()
        order = np.argsort(dst, kind="stable")
        new_indices = src[order]
        counts = np.bincount(dst, minlength=n)
        new_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=new_indptr[1:])
        return CSRGraph(new_indptr, new_indices, directed=self._directed, validate=False)

    def with_sorted_neighbors(self) -> "CSRGraph":
        """Copy with each neighbour list sorted ascending.

        Required by :meth:`has_edge` and by node2vec's rejection sampling
        (membership tests). Builders already sort; this is for graphs
        assembled manually.
        """
        indices = self._indices.copy()
        for v in range(self.num_vertices):
            s, e = self._indptr[v], self._indptr[v + 1]
            indices[s:e] = np.sort(indices[s:e])
        return CSRGraph(self._indptr, indices, directed=self._directed, validate=False)

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self._directed == other._directed
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        return (
            f"CSRGraph(n={self.num_vertices}, arcs={self.num_edges}, "
            f"{kind}, avg_degree={self.avg_degree:.2f})"
        )
