"""Canonical ``repartition-epoch/v1`` ledger.

The daemon's auditable output: one JSON document holding the scenario
and daemon configuration plus a record per restreaming epoch (moves,
gain, bias and cut before/after, recovered-community ARI when ground
truth is known). Serialisation follows the servetrace/fault-plan idiom
— sorted keys, compact separators, pure scalars — so two same-seed
daemon runs write **byte-identical** files, which is what lets the CI
``churn-smoke`` job ``cmp`` two independent runs directly. A SHA-256
digest of the canonical payload is embedded and re-verified on load.
"""

from __future__ import annotations

import hashlib
import json

from repro.errors import ConfigurationError

__all__ = ["LEDGER_SCHEMA", "RepartitionLedger"]

LEDGER_SCHEMA = "repartition-epoch/v1"


class RepartitionLedger:
    """Ordered epoch records plus the run's identifying configuration."""

    def __init__(
        self,
        *,
        num_parts: int,
        seed: int = 0,
        config: dict | None = None,
        scenario: dict | None = None,
    ) -> None:
        self.num_parts = int(num_parts)
        self.seed = int(seed)
        self.config = dict(config or {})
        self.scenario = dict(scenario or {})
        self.epochs: list[dict] = []

    def add_epoch(self, record: dict) -> None:
        self.epochs.append(dict(record))

    @property
    def total_migrations(self) -> int:
        return sum(e.get("migrations", 0) for e in self.epochs)

    # -- serialisation -------------------------------------------------
    def _payload(self) -> dict:
        return {
            "schema": LEDGER_SCHEMA,
            "num_parts": self.num_parts,
            "seed": self.seed,
            "config": self.config,
            "scenario": self.scenario,
            "epochs": self.epochs,
            "total_migrations": self.total_migrations,
        }

    def digest(self) -> str:
        """SHA-256 over the canonical payload (digest field excluded)."""
        text = json.dumps(self._payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        doc = self._payload()
        doc["digest"] = self.digest()
        return doc

    def to_json(self) -> str:
        """Canonical JSON — byte-identical for identical runs."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "RepartitionLedger":
        """Rehydrate and verify a ledger document."""
        doc = json.loads(text)
        if doc.get("schema") != LEDGER_SCHEMA:
            raise ConfigurationError(
                f"unsupported ledger schema {doc.get('schema')!r}; "
                f"expected {LEDGER_SCHEMA!r}"
            )
        ledger = cls(
            num_parts=doc["num_parts"],
            seed=doc.get("seed", 0),
            config=doc.get("config"),
            scenario=doc.get("scenario"),
        )
        ledger.epochs = [dict(e) for e in doc.get("epochs", [])]
        recorded = doc.get("digest")
        if recorded is not None and recorded != ledger.digest():
            raise ConfigurationError("ledger digest mismatch — corrupted document")
        return ledger

    def __repr__(self) -> str:
        return (
            f"RepartitionLedger(k={self.num_parts}, epochs={len(self.epochs)}, "
            f"migrations={self.total_migrations})"
        )
