"""Unit tests for balance/cut metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import from_edges, ring_graph
from repro.partition import (
    PartitionAssignment,
    balance_report,
    bias,
    connectivity_matrix,
    edge_cut_ratio,
    jains_fairness,
    part_edge_counts,
    part_vertex_counts,
)


class TestBias:
    def test_balanced_is_zero(self):
        assert bias([5, 5, 5, 5]) == 0.0

    def test_known_value(self):
        # max 9, mean 3 → (9-3)/3 = 2
        assert bias([1, 2, 9, 0]) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(PartitionError):
            bias([])

    def test_all_zero(self):
        assert bias([0, 0]) == 0.0

    def test_nonnegative(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert bias(rng.random(8)) >= 0


class TestFairness:
    def test_perfectly_fair(self):
        assert jains_fairness([3, 3, 3]) == pytest.approx(1.0)

    def test_completely_unfair(self):
        assert jains_fairness([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_bounds(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            x = rng.random(16)
            f = jains_fairness(x)
            assert 1 / 16 <= f <= 1.0 + 1e-12

    def test_all_zero_is_fair(self):
        assert jains_fairness([0, 0, 0]) == 1.0

    def test_empty_raises(self):
        with pytest.raises(PartitionError):
            jains_fairness([])


class TestCounts:
    def test_vertex_counts(self):
        parts = np.array([0, 1, 1, 2])
        assert list(part_vertex_counts(parts, 4)) == [1, 2, 1, 0]

    def test_edge_counts_sum_to_arcs(self, powerlaw_small):
        parts = np.arange(powerlaw_small.num_vertices) % 4
        ec = part_edge_counts(powerlaw_small, parts, 4)
        assert ec.sum() == powerlaw_small.num_edges


class TestEdgeCut:
    def test_no_cut_single_part(self, ring64):
        assert edge_cut_ratio(ring64, np.zeros(64, dtype=int)) == 0.0

    def test_ring_halves(self, ring64):
        parts = (np.arange(64) >= 32).astype(int)
        # contiguous halves of a ring cut exactly 2 of 64 edges
        assert edge_cut_ratio(ring64, parts) == pytest.approx(2 / 64)

    def test_alternating_ring_cuts_everything(self, ring64):
        parts = np.arange(64) % 2
        assert edge_cut_ratio(ring64, parts) == 1.0

    def test_empty_graph(self):
        g = from_edges([], [], num_vertices=3)
        assert edge_cut_ratio(g, np.zeros(3, dtype=int)) == 0.0

    def test_length_check(self, ring64):
        with pytest.raises(PartitionError):
            edge_cut_ratio(ring64, np.zeros(3, dtype=int))


class TestConnectivity:
    def test_matrix_sums_to_arcs(self, powerlaw_small):
        parts = np.arange(powerlaw_small.num_vertices) % 4
        m = connectivity_matrix(powerlaw_small, parts, 4)
        assert m.sum() == powerlaw_small.num_edges

    def test_symmetric_for_undirected(self, powerlaw_small):
        parts = np.arange(powerlaw_small.num_vertices) % 4
        m = connectivity_matrix(powerlaw_small, parts, 4)
        assert np.array_equal(m, m.T)

    def test_diagonal_counts_internal(self, ring64):
        parts = (np.arange(64) >= 32).astype(int)
        m = connectivity_matrix(ring64, parts, 2)
        assert m[0, 1] == 2  # two cut edges, one arc each direction
        assert m[0, 0] + m[1, 1] + m[0, 1] + m[1, 0] == ring64.num_edges


class TestBalanceReport:
    def test_consistency(self, powerlaw_small):
        parts = np.arange(powerlaw_small.num_vertices) % 8
        a = PartitionAssignment(powerlaw_small, parts, 8)
        rep = balance_report(a)
        assert rep.num_parts == 8
        assert rep.vertex_bias == pytest.approx(bias(a.vertex_counts))
        assert rep.edge_fairness == pytest.approx(jains_fairness(a.edge_counts))
        assert 0 <= rep.cut_ratio <= 1
        assert "bias(V)" in str(rep)


class TestAssignmentValidation:
    """Bad assignments must raise PartitionError with the offending
    range — not an opaque bincount ValueError or a mis-shaped matrix."""

    def test_unassigned_vertex_counts(self):
        with pytest.raises(PartitionError, match="negative"):
            part_vertex_counts(np.array([0, 1, -1, 2]), 4)

    def test_out_of_range_vertex_counts(self):
        with pytest.raises(PartitionError, match="num_parts=4"):
            part_vertex_counts(np.array([0, 1, 7, 2]), 4)

    def test_unassigned_edge_counts(self, powerlaw_small):
        parts = np.arange(powerlaw_small.num_vertices) % 4
        parts[0] = -1
        with pytest.raises(PartitionError, match="negative"):
            part_edge_counts(powerlaw_small, parts, 4)

    def test_out_of_range_edge_counts(self, powerlaw_small):
        parts = np.arange(powerlaw_small.num_vertices) % 4
        parts[0] = 4
        with pytest.raises(PartitionError, match="part id 4"):
            part_edge_counts(powerlaw_small, parts, 4)

    def test_connectivity_matrix_rejects_out_of_range(self, powerlaw_small):
        """Pre-validation, an id >= num_parts silently widened the flat
        bincount and reshape produced garbage (or raised ValueError)."""
        parts = np.arange(powerlaw_small.num_vertices) % 4
        parts[0] = 9
        with pytest.raises(PartitionError, match="part id 9"):
            connectivity_matrix(powerlaw_small, parts, 4)

    def test_connectivity_matrix_rejects_unassigned(self, powerlaw_small):
        parts = np.arange(powerlaw_small.num_vertices) % 4
        parts[0] = -1
        with pytest.raises(PartitionError, match="negative"):
            connectivity_matrix(powerlaw_small, parts, 4)

    def test_edge_cut_rejects_unassigned(self, ring64):
        parts = np.zeros(64, dtype=int)
        parts[5] = -1
        with pytest.raises(PartitionError, match="negative"):
            edge_cut_ratio(ring64, parts)

    def test_valid_assignment_unaffected(self, powerlaw_small):
        parts = np.arange(powerlaw_small.num_vertices) % 4
        assert part_vertex_counts(parts, 4).sum() == powerlaw_small.num_vertices
        assert connectivity_matrix(powerlaw_small, parts, 4).shape == (4, 4)

    def test_empty_assignment_ok(self):
        assert part_vertex_counts(np.array([], dtype=int), 3).tolist() == [0, 0, 0]


class TestAdjustedRandIndex:
    def test_identical_labelings(self):
        from repro.partition import adjusted_rand_index

        labels = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(labels, labels) == 1.0

    def test_permutation_invariant(self):
        from repro.partition import adjusted_rand_index

        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([2, 2, 0, 0, 1, 1])  # same partition, renamed
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_random_labels_near_zero(self):
        from repro.partition import adjusted_rand_index

        rng = np.random.default_rng(5)
        a = rng.integers(0, 4, size=5000)
        b = rng.integers(0, 4, size=5000)
        assert abs(adjusted_rand_index(a, b)) < 0.02

    def test_known_value(self):
        from repro.partition import adjusted_rand_index

        # Hubert & Arabie worked example family: one item swapped
        # between otherwise identical 2-cluster labelings.
        a = [0, 0, 0, 1, 1, 1]
        b = [0, 0, 1, 1, 1, 1]
        val = adjusted_rand_index(a, b)
        assert 0.0 < val < 1.0
        assert val == pytest.approx(adjusted_rand_index(b, a))

    def test_degenerate_single_cluster(self):
        from repro.partition import adjusted_rand_index

        assert adjusted_rand_index([0, 0, 0], [1, 1, 1]) == 1.0

    def test_all_singletons_vs_one_cluster(self):
        from repro.partition import adjusted_rand_index

        # expected == max index only when BOTH are degenerate; here the
        # chance-corrected agreement is 0.
        assert adjusted_rand_index([0, 1, 2, 3], [0, 0, 0, 0]) == pytest.approx(0.0)

    def test_length_mismatch_raises(self):
        from repro.partition import adjusted_rand_index

        with pytest.raises(PartitionError):
            adjusted_rand_index([0, 1], [0, 1, 2])

    def test_empty_raises(self):
        from repro.partition import adjusted_rand_index

        with pytest.raises(PartitionError):
            adjusted_rand_index([], [])

    def test_non_contiguous_label_ids(self):
        from repro.partition import adjusted_rand_index

        a = np.array([10, 10, 99, 99])
        b = np.array([-5, -5, 7, 7])
        assert adjusted_rand_index(a, b) == 1.0
