"""Partitioner interface and registry.

Every partitioner implements :meth:`Partitioner.partition` and returns a
:class:`PartitionResult` carrying the assignment, wall-clock breakdown
(Table 2 measures this), and algorithm-specific metadata such as BPart's
layer trace. The registry lets the bench harness and CLI look up
partitioners by the names the paper uses ("chunk-v", "fennel", …).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import telemetry
from repro.errors import ConfigurationError, PartitionError
from repro.graph.csr import CSRGraph
from repro.partition.assignment import PartitionAssignment
from repro.utils.timing import WallClock

__all__ = ["Partitioner", "PartitionResult", "register_partitioner", "get_partitioner", "available_partitioners"]


@dataclass
class PartitionResult:
    """Outcome of one partitioning run.

    Attributes
    ----------
    assignment: the vertex → part mapping with cached stats.
    clock:      wall-clock segments ("stream", "combine", …).
    metadata:   algorithm-specific extras (BPart: per-layer trace).
    """

    assignment: PartitionAssignment
    clock: WallClock = field(default_factory=WallClock)
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def elapsed(self) -> float:
        """Total partitioning wall-clock seconds (Table 2's metric).

        The base class always records a ``"total"`` segment wrapping the
        whole run; subclass segments ("stream", "combine") nest inside
        it and are a breakdown, not additional time.
        """
        segments = self.clock.segments
        return segments.get("total", self.clock.total)


class Partitioner(abc.ABC):
    """Base class: validates arguments, times the run, delegates to
    :meth:`_partition`."""

    #: registry name; subclasses set this (e.g. ``"bpart"``).
    name: str = "base"

    def partition(self, graph: CSRGraph, num_parts: int) -> PartitionResult:
        """Partition ``graph`` into ``num_parts`` parts.

        Raises :class:`PartitionError` for impossible requests (more
        parts than vertices) so downstream balance math never divides by
        an empty part set.
        """
        if num_parts <= 0:
            raise ConfigurationError(f"num_parts must be positive, got {num_parts}")
        if num_parts > max(graph.num_vertices, 1):
            raise PartitionError(
                f"cannot split {graph.num_vertices} vertices into {num_parts} parts"
            )
        clock = WallClock()
        if telemetry.enabled():
            reg = telemetry.active()
            with reg.span("partition", algo=self.name, k=int(num_parts)):
                with clock.measure("total"):
                    assignment, metadata = self._partition(graph, int(num_parts), clock)
            reg.counter("partition.runs", algo=self.name).inc()
            reg.counter("partition.vertices", algo=self.name).inc(graph.num_vertices)
            reg.timer("partition.run_seconds", algo=self.name).add(
                clock.segments.get("total", clock.total)
            )
        else:
            with clock.measure("total"):
                assignment, metadata = self._partition(graph, int(num_parts), clock)
        return PartitionResult(assignment=assignment, clock=clock, metadata=metadata)

    @abc.abstractmethod
    def _partition(
        self, graph: CSRGraph, num_parts: int, clock: WallClock
    ) -> tuple[PartitionAssignment, dict[str, Any]]:
        """Produce the assignment; subclasses may add clock segments."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


_REGISTRY: dict[str, Callable[..., Partitioner]] = {}


def register_partitioner(name: str, factory: Callable[..., Partitioner]) -> None:
    """Register a partitioner factory under ``name`` (lowercase)."""
    _REGISTRY[name.lower()] = factory


def get_partitioner(name: str, **kwargs) -> Partitioner:
    """Instantiate a registered partitioner by paper name.

    >>> get_partitioner("chunk-v").name
    'chunk-v'
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown partitioner {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key](**kwargs)


def available_partitioners() -> list[str]:
    """Sorted registry names."""
    return sorted(_REGISTRY)
