"""Hash partitioner (§2.2) — Pregel/Giraph's scheme.

Each vertex goes to ``hash(v) mod k``. Balanced in *both* dimensions in
expectation (each part receives a uniform random vertex sample, so both
``|V_i|`` and ``|E_i|`` concentrate around their means), but the cut is
terrible: a uniformly random endpoint pair lands in different parts with
probability ``(k−1)/k`` — 87.5 % at ``k = 8``, exactly the number the
paper observes (Table 3). This is the paper's Limitation #2.

Uses the splitmix64 integer mix rather than Python's ``hash`` so results
are stable across processes and runs.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.assignment import PartitionAssignment
from repro.partition.base import Partitioner, register_partitioner
from repro.utils.rng import hash_u64
from repro.utils.timing import WallClock

__all__ = ["HashPartitioner"]


class HashPartitioner(Partitioner):
    """Deterministic hashed vertex assignment.

    Parameters
    ----------
    seed:
        Mixed into the hash; two instances with different seeds give
        independent (but individually reproducible) assignments.
    """

    name = "hash"

    def __init__(self, *, seed: int = 0) -> None:
        self._seed = int(seed)

    def _partition(
        self, graph: CSRGraph, num_parts: int, clock: WallClock
    ) -> tuple[PartitionAssignment, dict[str, Any]]:
        ids = np.arange(graph.num_vertices, dtype=np.uint64)
        parts = (hash_u64(ids, self._seed) % np.uint64(num_parts)).astype(np.int32)
        return PartitionAssignment(graph, parts, num_parts), {"seed": self._seed}


register_partitioner("hash", HashPartitioner)
