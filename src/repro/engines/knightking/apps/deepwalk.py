"""DeepWalk truncated uniform random walk (Perozzi et al., KDD 2014).

First-order, unweighted, fixed length (the engine's ``max_steps`` cap).
Also the base transition reused by PPR/RWJ.
"""

from __future__ import annotations

import numpy as np

from repro.engines.knightking.apps.base import WalkApp
from repro.engines.knightking.transition import uniform_neighbor
from repro.graph.csr import CSRGraph

__all__ = ["DeepWalk"]


class DeepWalk(WalkApp):
    """Uniform neighbour step; dead ends terminate."""

    name = "deepwalk"

    def advance(
        self,
        graph: CSRGraph,
        positions: np.ndarray,
        previous: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        return uniform_neighbor(graph, positions, rng)
