"""Tests for the extended Gemini apps (LPA, k-core, triangles) and the
push/pull/adaptive execution modes."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.cluster import BSPCluster
from repro.engines.gemini import (
    BFS,
    ConnectedComponents,
    GeminiEngine,
    KCore,
    LabelPropagation,
    PageRank,
    TriangleCount,
)
from repro.errors import ConfigurationError
from repro.graph import chung_lu, complete_graph, grid_graph, path_graph, ring_graph
from repro.graph.convert import to_networkx
from repro.partition import HashPartitioner


def run(g, program, k=4, **engine_kwargs):
    a = HashPartitioner().partition(g, k).assignment
    return GeminiEngine(BSPCluster(k), **engine_kwargs).run(g, a, program)


class TestKCore:
    def test_matches_networkx(self):
        g = chung_lu(600, 8.0, rng=61)
        res = run(g, KCore())
        core = nx.core_number(to_networkx(g))
        for v in range(g.num_vertices):
            assert res.values[v] == core[v]

    def test_ring_is_2core(self, ring64):
        res = run(ring64, KCore(), k=2)
        assert (res.values == 2).all()

    def test_complete_graph(self, k5):
        res = run(k5, KCore(), k=2)
        assert (res.values == 4).all()

    def test_path_is_1core(self, path10):
        res = run(path10, KCore(), k=2)
        assert (res.values == 1).all()

    def test_isolated_vertex_is_0core(self, isolated_vertices):
        res = run(isolated_vertices, KCore(), k=2)
        assert res.values[5] == 0

    def test_monotone_convergence(self):
        # estimates never increase from the degree start
        g = chung_lu(300, 6.0, rng=62)
        assert (run(g, KCore(), k=2).values <= g.degrees).all()


class TestTriangles:
    def test_matches_networkx(self):
        g = chung_lu(500, 8.0, rng=63)
        res = run(g, TriangleCount())
        tri = nx.triangles(to_networkx(g))
        for v in range(g.num_vertices):
            assert round(res.values[v]) == tri[v]

    def test_complete_graph(self, k5):
        res = run(k5, TriangleCount(), k=2)
        # every vertex of K5 is in C(4,2) = 6 triangles
        assert (res.values == 6.0).all()
        assert TriangleCount.global_count(res.values) == 10

    def test_triangle_free(self, grid8x8):
        res = run(grid8x8, TriangleCount(), k=2)
        assert (res.values == 0).all()

    def test_single_superstep(self, k5):
        assert run(k5, TriangleCount(), k=2).iterations == 1


class TestLabelPropagation:
    def test_converges(self):
        g = chung_lu(400, 8.0, rng=64)
        res = run(g, LabelPropagation())
        assert res.iterations < LabelPropagation().max_iterations

    def test_clique_collapses_to_one_label(self, k5):
        res = run(k5, LabelPropagation(), k=2)
        assert len(np.unique(res.values)) == 1

    def test_disconnected_components_keep_distinct_labels(self, two_components):
        res = run(two_components, LabelPropagation(), k=2)
        labels_a = {res.values[v] for v in (0, 1, 2)}
        labels_b = {res.values[v] for v in (3, 4)}
        assert labels_a.isdisjoint(labels_b)

    def test_two_cliques_bridge(self):
        # two K5s joined by one edge → two communities
        from repro.graph import from_edges

        edges = []
        for i in range(5):
            for j in range(i + 1, 5):
                edges.append((i, j))
                edges.append((i + 5, j + 5))
        edges.append((0, 5))
        src, dst = zip(*edges)
        g = from_edges(src, dst, 10)
        res = run(g, LabelPropagation(), k=2)
        left = {res.values[v] for v in range(5)}
        right = {res.values[v] for v in range(5, 10)}
        assert len(left) == 1 and len(right) == 1 and left != right


class TestExecutionModes:
    def test_results_mode_invariant(self):
        g = chung_lu(500, 8.0, rng=65)
        values = {}
        for mode in ("push", "pull", "adaptive"):
            values[mode] = run(g, PageRank(5), mode=mode).values
        assert np.allclose(values["push"], values["pull"])
        assert np.allclose(values["push"], values["adaptive"])

    def test_push_cheaper_for_sparse_frontier(self):
        # BFS on a long path: tiny frontier each iteration
        g = path_graph(400)
        push = run(g, BFS(source=0), k=2, mode="push")
        pull = run(g, BFS(source=0), k=2, mode="pull")
        assert push.ledger.compute_matrix.sum() < pull.ledger.compute_matrix.sum()

    def test_pull_traffic_constant_per_iteration(self):
        g = chung_lu(500, 8.0, rng=66)
        res = run(g, PageRank(4), mode="pull")
        comm = res.ledger.comm_matrix
        assert np.allclose(comm, comm[0])

    def test_adaptive_switches_modes(self):
        # CC starts dense and sparsifies → expect pull then push
        g = chung_lu(800, 8.0, rng=67)
        res = run(g, ConnectedComponents(), mode="adaptive")
        assert res.modes[0] == "pull"
        assert "push" in res.modes

    def test_adaptive_all_dense_for_pagerank(self):
        g = chung_lu(400, 8.0, rng=68)
        res = run(g, PageRank(3), mode="adaptive")
        assert res.modes == ["pull", "pull", "pull"]

    def test_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            GeminiEngine(BSPCluster(2), mode="pushpull")

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            GeminiEngine(BSPCluster(2), dense_threshold=0.0)

    def test_modes_recorded(self):
        g = ring_graph(64)
        res = run(g, PageRank(3), k=2, mode="push")
        assert res.modes == ["push", "push", "push"]
