"""Table 3 — edge-cut ratio of all five partitioners at k = 8.

Paper values for reference:

==========  ===========  =======  ==========
algorithm   LiveJournal  Twitter  Friendster
==========  ===========  =======  ==========
Chunk-V     0.5758       0.7475   0.6592
Chunk-E     0.9033       0.9026   0.7645
Fennel      0.6491       0.3338   0.3565
Hash        0.8750       0.8749   0.8750
BPart       0.7331       0.6226   0.5301
==========  ===========  =======  ==========

Hash's (k−1)/k = 0.875 is exact by construction; the reproducible shape
is the ordering Fennel < BPart < Hash ≈ Chunk-E.
"""

from __future__ import annotations

from repro.bench.experiments._common import DATASET_ORDER, graph_for, partition_with
from repro.bench.harness import ExperimentConfig, ExperimentResult, register_experiment
from repro.bench.report import Table
from repro.partition.metrics import edge_cut_ratio

ALGOS = ("chunk-v", "chunk-e", "fennel", "hash", "bpart")
K = 8

PAPER_VALUES = {
    ("chunk-v", "livejournal"): 0.5758,
    ("chunk-v", "twitter"): 0.7475,
    ("chunk-v", "friendster"): 0.6592,
    ("chunk-e", "livejournal"): 0.9033,
    ("chunk-e", "twitter"): 0.9026,
    ("chunk-e", "friendster"): 0.7645,
    ("fennel", "livejournal"): 0.6491,
    ("fennel", "twitter"): 0.3338,
    ("fennel", "friendster"): 0.3565,
    ("hash", "livejournal"): 0.8750,
    ("hash", "twitter"): 0.8749,
    ("hash", "friendster"): 0.8750,
    ("bpart", "livejournal"): 0.7331,
    ("bpart", "twitter"): 0.6226,
    ("bpart", "friendster"): 0.5301,
}


@register_experiment("table3", "Edge-cut ratio (k = 8): measured vs paper")
def run(config: ExperimentConfig) -> ExperimentResult:
    result = ExperimentResult("table3", "Edge-cut ratio (k = 8): measured vs paper")
    table = Table(
        "Cut ratio: measured (paper)",
        ["algorithm"] + list(DATASET_ORDER),
        note="shape: Fennel < BPart < Hash ~ Chunk-E; Hash = (k-1)/k exactly",
    )
    for name in ALGOS:
        row = []
        for dataset in DATASET_ORDER:
            g = graph_for(config, dataset)
            a = partition_with(name, g, K, seed=config.seed).assignment
            measured = edge_cut_ratio(g, a.parts)
            result.data[(name, dataset)] = measured
            row.append(f"{measured:.4f} ({PAPER_VALUES[(name, dataset)]:.4f})")
        table.add_row(name, *row)
    result.tables.append(table)
    return result
