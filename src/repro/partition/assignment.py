"""Partition assignment vector with cached per-part statistics.

A partition of graph ``G`` into ``k`` parts is a vector ``parts`` of
length ``n`` with values in ``[0, k)``. :class:`PartitionAssignment`
wraps that vector together with the graph and lazily caches the two
quantities the whole paper revolves around: per-part vertex counts
``|V_i|`` and per-part edge counts ``|E_i|`` (the sum of out-degrees of
the part's vertices, i.e. the arcs each machine stores).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph

__all__ = ["PartitionAssignment"]


class PartitionAssignment:
    """An immutable vertex → part mapping plus derived statistics."""

    __slots__ = ("_graph", "_parts", "_num_parts", "_vcounts", "_ecounts")

    def __init__(self, graph: CSRGraph, parts: np.ndarray, num_parts: int) -> None:
        parts = np.ascontiguousarray(parts, dtype=np.int32)
        if parts.size != graph.num_vertices:
            raise PartitionError(
                f"assignment length {parts.size} != num_vertices {graph.num_vertices}"
            )
        if num_parts <= 0:
            raise PartitionError(f"num_parts must be positive, got {num_parts}")
        if parts.size and (parts.min() < 0 or parts.max() >= num_parts):
            raise PartitionError("part ids outside [0, num_parts)")
        self._graph = graph
        self._parts = parts
        self._parts.setflags(write=False)
        self._num_parts = int(num_parts)
        self._vcounts: np.ndarray | None = None
        self._ecounts: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        """The partitioned graph."""
        return self._graph

    @property
    def parts(self) -> np.ndarray:
        """Read-only part-id vector of length ``n``."""
        return self._parts

    @property
    def num_parts(self) -> int:
        """Number of parts ``k``."""
        return self._num_parts

    @property
    def vertex_counts(self) -> np.ndarray:
        """``|V_i|`` for every part (length ``k``)."""
        if self._vcounts is None:
            self._vcounts = np.bincount(self._parts, minlength=self._num_parts).astype(
                np.int64
            )
        return self._vcounts

    @property
    def edge_counts(self) -> np.ndarray:
        """``|E_i|`` — arcs stored by each part = Σ out-degree over V_i."""
        if self._ecounts is None:
            self._ecounts = np.bincount(
                self._parts, weights=self._graph.degrees, minlength=self._num_parts
            ).astype(np.int64)
        return self._ecounts

    def vertices_of(self, part: int) -> np.ndarray:
        """Vertex ids assigned to ``part``."""
        return np.nonzero(self._parts == part)[0]

    def relabel(self, mapping: np.ndarray, num_parts: int) -> "PartitionAssignment":
        """Apply ``old part id → new part id`` (the combining phase).

        ``mapping`` has length ``self.num_parts``; the result has
        ``num_parts`` parts.
        """
        mapping = np.asarray(mapping, dtype=np.int32)
        if mapping.size != self._num_parts:
            raise PartitionError(
                f"mapping length {mapping.size} != num_parts {self._num_parts}"
            )
        return PartitionAssignment(self._graph, mapping[self._parts], num_parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartitionAssignment):
            return NotImplemented
        return (
            self._num_parts == other._num_parts
            and self._graph == other._graph
            and np.array_equal(self._parts, other._parts)
        )

    def __hash__(self) -> int:  # pragma: no cover
        return id(self)

    def __repr__(self) -> str:
        v, e = self.vertex_counts, self.edge_counts
        return (
            f"PartitionAssignment(k={self._num_parts}, "
            f"|V_i|∈[{v.min()},{v.max()}], |E_i|∈[{e.min()},{e.max()}])"
        )
