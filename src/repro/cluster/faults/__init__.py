"""Deterministic fault injection and recovery for the BSP simulator.

The paper's central claim is that two-dimensional balance removes the
straggler machine that dominates barrier waiting (Figure 13). This
package extends the test of that claim from a *perfect* cluster to a
*failing* one: machines crash, slow down transiently, links degrade,
checkpoints cost I/O proportional to per-machine state — and recovery
cost depends directly on how balanced the redistributed load is, which
is exactly what BPart optimises.

- :mod:`~repro.cluster.faults.plan` — the :class:`FaultPlan` DSL
  (crashes, stragglers, degraded links, checkpoint cadence) with a
  canonical JSON form and cache digest;
- :mod:`~repro.cluster.faults.checkpoint` — the
  :class:`CheckpointCostModel` pricing checkpoint/restore I/O from
  ``|V_i|`` + ``|E_i|`` state sizes;
- :mod:`~repro.cluster.faults.recovery` — ``restart`` and
  ``redistribute`` recovery planners, the latter reusing BPart's
  combining logic so balanced inputs recover into balanced clusters;
- :mod:`~repro.cluster.faults.cluster` — :class:`FaultAwareCluster`,
  the drop-in :class:`~repro.cluster.bsp.BSPCluster` replacement that
  both engines drive unmodified.
"""

from repro.cluster.faults.checkpoint import CheckpointCostModel
from repro.cluster.faults.cluster import FaultAwareCluster, FaultReport
from repro.cluster.faults.plan import (
    CheckpointPolicy,
    Crash,
    DegradedLink,
    FaultPlan,
    Straggler,
)
from repro.cluster.faults.recovery import (
    RecoveryOutcome,
    plan_redistribute,
    plan_restart,
)

__all__ = [
    "CheckpointCostModel",
    "CheckpointPolicy",
    "Crash",
    "DegradedLink",
    "FaultAwareCluster",
    "FaultPlan",
    "FaultReport",
    "RecoveryOutcome",
    "Straggler",
    "plan_redistribute",
    "plan_restart",
]
