"""Unit tests for graph IO round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    chung_lu,
    read_edge_list,
    read_metis,
    read_npz,
    write_edge_list,
    write_metis,
    write_npz,
)
from repro.graph.builder import from_edges


@pytest.fixture
def sample():
    return chung_lu(200, 6.0, rng=11)


class TestEdgeList:
    def test_roundtrip(self, sample, tmp_path):
        p = tmp_path / "g.txt"
        write_edge_list(sample, p)
        g = read_edge_list(p, num_vertices=sample.num_vertices)
        assert g == sample

    def test_comments_and_blanks_skipped(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# header\n\n0 1\n1 2\n")
        g = read_edge_list(p)
        assert g.num_undirected_edges == 2

    def test_malformed_line(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(p)

    def test_non_integer(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(p)

    def test_directed_roundtrip(self, tmp_path):
        g = from_edges([0, 1, 2], [1, 2, 0], directed=True)
        p = tmp_path / "d.txt"
        write_edge_list(g, p)
        g2 = read_edge_list(p, directed=True, num_vertices=3)
        assert g2 == g


class TestNpz:
    def test_roundtrip(self, sample, tmp_path):
        p = tmp_path / "g.npz"
        write_npz(sample, p)
        assert read_npz(p) == sample

    def test_directed_flag_preserved(self, tmp_path):
        g = from_edges([0], [1], directed=True)
        p = tmp_path / "d.npz"
        write_npz(g, p)
        assert read_npz(p).directed

    def test_missing_arrays(self, tmp_path):
        p = tmp_path / "bad.npz"
        np.savez(p, foo=np.arange(3))
        with pytest.raises(GraphFormatError):
            read_npz(p)


class TestMetis:
    def test_roundtrip(self, sample, tmp_path):
        p = tmp_path / "g.metis"
        write_metis(sample, p)
        g = read_metis(p)
        assert g == sample

    def test_directed_rejected(self, tmp_path):
        g = from_edges([0], [1], directed=True)
        with pytest.raises(GraphFormatError):
            write_metis(g, tmp_path / "x.metis")

    def test_truncated_file(self, tmp_path):
        p = tmp_path / "g.metis"
        p.write_text("3 2\n2\n")
        with pytest.raises(GraphFormatError):
            read_metis(p)

    def test_header_counts(self, sample, tmp_path):
        p = tmp_path / "g.metis"
        write_metis(sample, p)
        n, m = map(int, p.read_text().splitlines()[0].split())
        assert n == sample.num_vertices
        assert m == sample.num_undirected_edges


class TestGzip:
    def test_gz_roundtrip(self, sample, tmp_path):
        p = tmp_path / "g.txt.gz"
        write_edge_list(sample, p)
        g = read_edge_list(p, num_vertices=sample.num_vertices)
        assert g == sample

    def test_gz_actually_compressed(self, sample, tmp_path):
        import gzip

        p = tmp_path / "g.txt.gz"
        write_edge_list(sample, p)
        with open(p, "rb") as fh:
            assert fh.read(2) == b"\x1f\x8b"  # gzip magic
        with gzip.open(p, "rt") as fh:
            assert fh.readline().startswith("#")
