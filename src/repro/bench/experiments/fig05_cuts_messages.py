"""Figure 5 — edge-cut ratio and total message walks (Twitter, 8 parts).

(a) fraction of cut edges per partitioner; (b) number of walker
transmissions for a 5|V| × 4-step random walk job. The paper: Chunk-E
and Hash ≈ 90 % cuts and > 2× Fennel's transmitted walks.
"""

from __future__ import annotations

from repro.bench.experiments._common import graph_for, partition_with
from repro.bench.harness import ExperimentConfig, ExperimentResult, register_experiment
from repro.bench.report import Table
from repro.bench.workloads import run_walk_job
from repro.partition.metrics import edge_cut_ratio

ALGOS = ("chunk-v", "chunk-e", "fennel", "hash", "bpart")
K = 8


@register_experiment("fig05", "Edge cuts and total message walks (Twitter, 8 parts)")
def run(config: ExperimentConfig) -> ExperimentResult:
    g = graph_for(config, "twitter")
    result = ExperimentResult("fig05", "Edge cuts and total message walks (Twitter, 8 parts)")
    table = Table(
        "Cut ratio and walker messages (5|V| walks, 4 steps)",
        ["algorithm", "edge-cut ratio", "message walks", "vs fennel"],
        note="Chunk-E/Hash ~90% cuts and >2x Fennel's transmitted walks",
    )
    messages = {}
    cuts = {}
    for name in ALGOS:
        a = partition_with(name, g, K, seed=config.seed).assignment
        cuts[name] = edge_cut_ratio(g, a.parts)
        walk = run_walk_job(
            g, a, app_name="deepwalk", walkers_per_vertex=5, seed=config.seed
        )
        messages[name] = walk.total_messages
    for name in ALGOS:
        table.add_row(
            name,
            cuts[name],
            messages[name],
            messages[name] / max(messages["fennel"], 1),
        )
    result.tables.append(table)
    result.data = {"cuts": cuts, "messages": messages}
    return result
