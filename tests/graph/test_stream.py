"""Unit tests for vertex stream orderings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph import vertex_stream
from repro.graph.stream import STREAM_ORDERS


class TestOrders:
    @pytest.mark.parametrize("order", STREAM_ORDERS)
    def test_is_permutation(self, powerlaw_small, order):
        s = vertex_stream(powerlaw_small, order, rng=1)
        assert np.array_equal(np.sort(s), np.arange(powerlaw_small.num_vertices))

    def test_natural(self, ring64):
        assert np.array_equal(vertex_stream(ring64, "natural"), np.arange(64))

    def test_random_is_seed_deterministic(self, ring64):
        a = vertex_stream(ring64, "random", rng=3)
        b = vertex_stream(ring64, "random", rng=3)
        assert np.array_equal(a, b)
        c = vertex_stream(ring64, "random", rng=4)
        assert not np.array_equal(a, c)

    def test_degree_orders(self, star16):
        asc = vertex_stream(star16, "degree")
        desc = vertex_stream(star16, "degree_desc")
        assert asc[-1] == 0  # hub last ascending
        assert desc[0] == 0  # hub first descending

    def test_bfs_visits_neighbors_contiguously(self, path10):
        s = vertex_stream(path10, "bfs")
        assert list(s) == list(range(10))  # path from 0 is already BFS order

    def test_bfs_covers_components(self, two_components):
        s = vertex_stream(two_components, "bfs")
        assert set(s) == set(range(5))

    def test_dfs_path(self, path10):
        s = vertex_stream(path10, "dfs")
        assert list(s) == list(range(10))

    def test_dfs_isolated(self, isolated_vertices):
        s = vertex_stream(isolated_vertices, "dfs")
        assert set(s) == set(range(6))

    def test_unknown_order(self, ring64):
        with pytest.raises(ConfigurationError):
            vertex_stream(ring64, "spiral")


class TestTraversalFrontier:
    """Regression for the O(n·frontier) BFS: the frontier is a deque now
    (list.pop(0) was quadratic). Timing-free — asserts the *order*
    stays the documented FIFO/LIFO semantics on structured graphs."""

    def test_bfs_path_graph_is_fifo(self):
        from repro.graph import path_graph

        n = 2000
        s = vertex_stream(path_graph(n), "bfs")
        # FIFO discovery from vertex 0 along a path is exactly 0..n-1;
        # any stack-like slip in the frontier would reorder the tail.
        assert np.array_equal(s, np.arange(n))

    def test_dfs_still_lifo_on_star(self, star16):
        s = vertex_stream(star16, "dfs")  # hub 0 + 16 leaves
        # Hub first, then leaves in reverse push order (LIFO).
        assert s[0] == 0
        assert np.array_equal(np.sort(s[1:]), np.arange(1, 17))
        assert s[1] == 16

    def test_bfs_star_visits_leaves_in_push_order(self, star16):
        s = vertex_stream(star16, "bfs")
        assert s[0] == 0
        assert np.array_equal(s[1:], np.arange(1, 17))  # FIFO keeps push order
