"""Unit tests for the networkx bridge."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graph import chung_lu, from_edges
from repro.graph.convert import from_networkx, to_networkx


class TestConvert:
    def test_roundtrip_undirected(self):
        g = chung_lu(150, 6.0, rng=1)
        assert from_networkx(to_networkx(g), num_vertices=g.num_vertices) == g

    def test_roundtrip_directed(self):
        g = from_edges([0, 1, 2], [1, 2, 0], directed=True)
        nxg = to_networkx(g)
        assert isinstance(nxg, nx.DiGraph)
        assert from_networkx(nxg, num_vertices=3) == g

    def test_counts_match(self):
        g = chung_lu(200, 5.0, rng=2)
        nxg = to_networkx(g)
        assert nxg.number_of_nodes() == g.num_vertices
        assert nxg.number_of_edges() == g.num_undirected_edges

    def test_empty(self):
        nxg = nx.Graph()
        nxg.add_nodes_from(range(4))
        g = from_networkx(nxg)
        assert g.num_vertices == 4
        assert g.num_edges == 0
