"""§4.2 — offline multilevel (Mt-KaHIP-style) and GD comparison.

Offline vertex-balanced partitioning leaves edges imbalanced
(paper: edge bias 0.70-2.59 at vertex bias 0.03).
"""


def test_multilevel(run_paper_experiment):
    result = run_paper_experiment("multilevel")
    assert result.tables or result.series
