"""Retry, timeout, and circuit-breaker policies.

The policies are *value objects* — they hold knobs and pure arithmetic,
never threads or timers — so the same instances work in the suite
runner's parent process, inside spawn workers, and in unit tests with a
fake clock. Determinism is a design requirement throughout: backoff
jitter comes from a seeded hash of ``(seed, key, attempt)``, not from a
shared RNG whose consumption order would differ between parallel runs.
"""

from __future__ import annotations

import hashlib
import struct
import time
from dataclasses import dataclass, field

from repro import telemetry
from repro.errors import ConfigurationError

__all__ = [
    "RetryPolicy",
    "Timeout",
    "CircuitBreaker",
    "call_with_retry",
    "hash_unit",
]


def hash_unit(*parts: object) -> float:
    """Deterministic uniform draw in ``[0, 1)`` from the given parts.

    The shared primitive behind backoff jitter and chaos decisions: a
    SHA-256 over the ``repr`` of the parts, mapped to the unit interval.
    Unlike a sequential RNG, the value depends only on the *identity* of
    the decision point, never on how many draws other workers made
    first — the property that keeps parallel chaos runs reproducible.
    """
    payload = "\x1f".join(repr(p) for p in parts).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    (value,) = struct.unpack(">Q", digest[:8])
    return value / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded deterministic jitter.

    ``delay(attempt)`` for attempts ``1, 2, …`` grows as
    ``base_delay · multiplier^(attempt-1)`` capped at ``max_delay``, plus
    a jitter of up to ``jitter`` (fractional) drawn from
    :func:`hash_unit` — the same ``(seed, key, attempt)`` always sleeps
    the same amount.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("retry delays cannot be negative")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not (0.0 <= self.jitter <= 1.0):
            raise ConfigurationError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based, capped)."""
        if attempt < 1:
            raise ConfigurationError(f"attempt is 1-based, got {attempt}")
        raw = self.base_delay * self.multiplier ** (attempt - 1)
        capped = min(raw, self.max_delay)
        return capped * (1.0 + self.jitter * hash_unit(self.seed, key, attempt))

    def attempts(self) -> range:
        """``range`` of 1-based attempt numbers this policy allows."""
        return range(1, self.max_attempts + 1)


@dataclass(frozen=True)
class Timeout:
    """A per-operation wall-clock bound (``None`` = unbounded)."""

    seconds: float | None = None

    def __post_init__(self) -> None:
        if self.seconds is not None and self.seconds <= 0:
            raise ConfigurationError(
                f"timeout must be positive or None, got {self.seconds}"
            )

    @property
    def bounded(self) -> bool:
        return self.seconds is not None

    def deadline(self, start: float | None = None) -> float | None:
        """Absolute ``perf_counter`` deadline, or ``None`` if unbounded."""
        if self.seconds is None:
            return None
        return (time.perf_counter() if start is None else start) + self.seconds

    def remaining(self, deadline: float | None) -> float | None:
        """Seconds left until ``deadline`` (clamped at 0), or ``None``."""
        if deadline is None:
            return None
        return max(0.0, deadline - time.perf_counter())

    def expired(self, deadline: float | None) -> bool:
        if deadline is None:
            return False
        return time.perf_counter() >= deadline


@dataclass
class CircuitBreaker:
    """Trip after ``failure_threshold`` consecutive failures.

    The suite runner uses it as the "stop fighting the pool" switch:
    every worker death records a failure, every delivered outcome a
    success, and once the breaker opens the remaining experiments run
    serially in-process. There is no half-open probing — within one
    suite run a pool that died ``failure_threshold`` times in a row is
    not worth re-entering — so ``tripped`` latches until :meth:`reset`.
    """

    failure_threshold: int = 3
    site: str = ""
    consecutive_failures: int = field(default=0, init=False)
    tripped: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def record_failure(self) -> bool:
        """Count one failure; returns ``True`` if this one tripped it."""
        self.consecutive_failures += 1
        if not self.tripped and self.consecutive_failures >= self.failure_threshold:
            self.tripped = True
            if telemetry.enabled():
                telemetry.active().counter(
                    "resilience.breaker_trips", site=self.site
                ).inc()
            return True
        return False

    def reset(self) -> None:
        self.consecutive_failures = 0
        self.tripped = False


def call_with_retry(
    fn,
    policy: RetryPolicy,
    *,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    key: str = "",
    site: str = "call",
    sleep=time.sleep,
):
    """Call ``fn(attempt)`` under ``policy``, backing off between tries.

    ``fn`` receives the 1-based attempt number (so callers can thread it
    into chaos sites and error messages). Exceptions matching
    ``retry_on`` are retried until the policy is exhausted, then
    re-raised; anything else propagates immediately. Retries and final
    give-ups are counted under ``resilience.retries`` /
    ``resilience.giveups`` with the ``site`` label.
    """
    last: BaseException | None = None
    for attempt in policy.attempts():
        try:
            return fn(attempt)
        except retry_on as exc:
            last = exc
            if attempt >= policy.max_attempts:
                if telemetry.enabled():
                    telemetry.active().counter(
                        "resilience.giveups", site=site
                    ).inc()
                raise
            if telemetry.enabled():
                telemetry.active().counter("resilience.retries", site=site).inc()
            sleep(policy.delay(attempt, key))
    raise last  # pragma: no cover - loop always returns or raises
