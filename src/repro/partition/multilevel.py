"""Mt-KaHIP-style offline multilevel partitioner (§4.2 comparison).

The paper compares BPart against Mt-KaHIP, the state-of-the-art offline
partitioner, and finds that although it balances vertices to bias ≈0.03,
its edge counts stay imbalanced (bias 0.7–2.6). This module reproduces
the algorithmic family:

1. **Coarsening** — size-constrained label propagation clusters the
   graph, clusters contract into weighted super-vertices; repeat until
   the coarse graph is small.
2. **Initial partition** — greedy balanced placement of super-vertices
   (largest-processing-time rule with edge-affinity tie-breaking) on the
   coarsest level, balancing *vertex weight* (the objective these tools
   optimise).
3. **Uncoarsening + local search** — project labels down each level and
   run FM-style boundary refinement: move a boundary vertex to the
   neighbouring part with the highest cut gain when the move keeps
   vertex balance within ``(1 + ε)``.

Vertex-balanced by construction; the resulting *edge* imbalance on
scale-free graphs is the experiment's point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.assignment import PartitionAssignment
from repro.partition.base import Partitioner, register_partitioner
from repro.utils.rng import as_rng
from repro.utils.timing import WallClock
from repro.utils.validation import check_positive

__all__ = ["MultilevelPartitioner"]


@dataclass
class _Level:
    """One coarse graph: weighted CSR + mapping to the finer level."""

    indptr: np.ndarray
    indices: np.ndarray
    eweights: np.ndarray
    vweights: np.ndarray
    fine_to_coarse: np.ndarray  # finer-level vertex → this level's vertex

    @property
    def num_vertices(self) -> int:
        return self.indptr.size - 1


def _contract(
    indptr: np.ndarray,
    indices: np.ndarray,
    eweights: np.ndarray,
    vweights: np.ndarray,
    labels: np.ndarray,
) -> _Level:
    """Contract clusters given by ``labels`` into a coarse weighted graph."""
    # Compact labels to 0..c-1.
    uniq, compact = np.unique(labels, return_inverse=True)
    c = uniq.size
    new_vweights = np.bincount(compact, weights=vweights, minlength=c)

    src = np.repeat(np.arange(indptr.size - 1), np.diff(indptr))
    csrc, cdst = compact[src], compact[indices]
    keep = csrc != cdst  # drop intra-cluster arcs
    csrc, cdst, w = csrc[keep], cdst[keep], eweights[keep]
    if csrc.size:
        key = csrc.astype(np.int64) * c + cdst
        order = np.argsort(key, kind="stable")
        key, w = key[order], w[order]
        boundaries = np.empty(key.size, dtype=bool)
        boundaries[0] = True
        np.not_equal(key[1:], key[:-1], out=boundaries[1:])
        starts = np.nonzero(boundaries)[0]
        merged_w = np.add.reduceat(w, starts)
        merged_key = key[starts]
        msrc = (merged_key // c).astype(np.int64)
        mdst = (merged_key % c).astype(np.int64)
    else:
        merged_w = np.empty(0, dtype=np.float64)
        msrc = mdst = np.empty(0, dtype=np.int64)
    counts = np.bincount(msrc, minlength=c)
    new_indptr = np.zeros(c + 1, dtype=np.int64)
    np.cumsum(counts, out=new_indptr[1:])
    return _Level(
        indptr=new_indptr,
        indices=mdst.astype(np.int64),
        eweights=merged_w.astype(np.float64),
        vweights=new_vweights.astype(np.float64),
        fine_to_coarse=compact.astype(np.int64),
    )


def _label_propagation(
    indptr: np.ndarray,
    indices: np.ndarray,
    eweights: np.ndarray,
    vweights: np.ndarray,
    max_cluster_weight: float,
    rng,
    iterations: int = 3,
) -> np.ndarray:
    """Size-constrained label propagation (Mt-KaHIP's coarsening engine).

    Each vertex adopts the label with the heaviest incident edge weight
    among clusters that still have room. Sequential within a pass (the
    constraint is stateful); a handful of passes converge.
    """
    n = indptr.size - 1
    labels = np.arange(n, dtype=np.int64)
    cluster_w = vweights.copy().astype(np.float64)
    for _ in range(iterations):
        changed = 0
        for v in rng.permutation(n):
            s, e = indptr[v], indptr[v + 1]
            if s == e:
                continue
            nbr_labels = labels[indices[s:e]]
            w = eweights[s:e]
            # Heaviest incident label (weighted vote).
            uniq, inv = np.unique(nbr_labels, return_inverse=True)
            votes = np.bincount(inv, weights=w)
            cur = labels[v]
            # Feasibility: moving v into cluster L must not overflow it.
            feasible = (cluster_w[uniq] + vweights[v] <= max_cluster_weight) | (uniq == cur)
            if not feasible.any():
                continue
            votes = np.where(feasible, votes, -np.inf)
            best = uniq[int(np.argmax(votes))]
            if best != cur:
                cluster_w[cur] -= vweights[v]
                cluster_w[best] += vweights[v]
                labels[v] = best
                changed += 1
        if changed == 0:
            break
    return labels


def _initial_partition(level: _Level, num_parts: int, slack: float) -> np.ndarray:
    """LPT-with-affinity placement of coarse vertices into ``k`` parts."""
    c = level.num_vertices
    parts = np.full(c, -1, dtype=np.int32)
    loads = np.zeros(num_parts, dtype=np.float64)
    capacity = slack * level.vweights.sum() / num_parts
    order = np.argsort(-level.vweights, kind="stable")
    for v in order:
        s, e = level.indptr[v], level.indptr[v + 1]
        nbr_parts = parts[level.indices[s:e]]
        mask = nbr_parts >= 0
        affinity = np.zeros(num_parts)
        if mask.any():
            affinity = np.bincount(
                nbr_parts[mask], weights=level.eweights[s:e][mask], minlength=num_parts
            )
        feasible = loads + level.vweights[v] <= capacity
        score = affinity - loads * 1e-9  # affinity first, then lightest
        if feasible.any():
            score[~feasible] = -np.inf
            choice = int(np.argmax(score))
        else:
            choice = int(np.argmin(loads))
        parts[v] = choice
        loads[choice] += level.vweights[v]
    return parts


def _refine(
    indptr: np.ndarray,
    indices: np.ndarray,
    eweights: np.ndarray,
    vweights: np.ndarray,
    parts: np.ndarray,
    num_parts: int,
    slack: float,
    rng,
    passes: int = 2,
) -> np.ndarray:
    """FM-style greedy boundary refinement with a vertex-balance cap."""
    loads = np.bincount(parts, weights=vweights, minlength=num_parts)
    capacity = slack * vweights.sum() / num_parts
    n = indptr.size - 1
    for _ in range(passes):
        src = np.repeat(np.arange(n), np.diff(indptr))
        boundary = np.unique(src[parts[src] != parts[indices]])
        moved = 0
        for v in rng.permutation(boundary):
            s, e = indptr[v], indptr[v + 1]
            nbr_parts = parts[indices[s:e]]
            conn = np.bincount(nbr_parts, weights=eweights[s:e], minlength=num_parts)
            cur = parts[v]
            gain = conn - conn[cur]
            gain[cur] = 0.0
            feasible = loads + vweights[v] <= capacity
            feasible[cur] = True
            gain[~feasible] = -np.inf
            best = int(np.argmax(gain))
            if best != cur and gain[best] > 0:
                loads[cur] -= vweights[v]
                loads[best] += vweights[v]
                parts[v] = best
                moved += 1
        if moved == 0:
            break
    return parts


class MultilevelPartitioner(Partitioner):
    """Coarsen → partition → refine, balanced on vertex count.

    Parameters
    ----------
    slack:
        Allowed vertex imbalance ``(1 + ε)``-style factor (default 1.03,
        matching Mt-KaHIP's 3 % setting — the paper reports its vertex
        bias as 0.03).
    coarsest_size:
        Stop coarsening when the coarse graph has at most
        ``max(coarsest_size, 20·k)`` vertices.
    """

    name = "multilevel"

    def __init__(
        self,
        *,
        slack: float = 1.03,
        coarsest_size: int = 200,
        lp_iterations: int = 3,
        refine_passes: int = 2,
        seed: int = 0,
    ) -> None:
        check_positive("slack", slack)
        check_positive("coarsest_size", coarsest_size)
        self._slack = slack
        self._coarsest = int(coarsest_size)
        self._lp_iterations = int(lp_iterations)
        self._refine_passes = int(refine_passes)
        self._seed = seed

    def _partition(
        self, graph: CSRGraph, num_parts: int, clock: WallClock
    ) -> tuple[PartitionAssignment, dict[str, Any]]:
        rng = as_rng(self._seed)
        indptr = graph.indptr.astype(np.int64)
        indices = graph.indices.astype(np.int64)
        eweights = np.ones(indices.size, dtype=np.float64)
        vweights = np.ones(graph.num_vertices, dtype=np.float64)

        levels: list[_Level] = []
        target = max(self._coarsest, 20 * num_parts)
        with clock.measure("coarsen"):
            cur = (indptr, indices, eweights, vweights)
            while cur[0].size - 1 > target:
                n_cur = cur[0].size - 1
                max_cluster = max(2.0, cur[3].sum() / target)
                labels = _label_propagation(
                    *cur, max_cluster_weight=max_cluster, rng=rng,
                    iterations=self._lp_iterations,
                )
                level = _contract(*cur, labels)
                if level.num_vertices >= n_cur * 0.95:  # stalled
                    break
                levels.append(level)
                cur = (level.indptr, level.indices, level.eweights, level.vweights)

        with clock.measure("initial"):
            if levels:
                parts = _initial_partition(levels[-1], num_parts, self._slack)
            else:
                # Graph already small: partition it directly as one level.
                pseudo = _Level(indptr, indices, eweights, vweights,
                                np.arange(graph.num_vertices))
                parts = _initial_partition(pseudo, num_parts, self._slack)

        with clock.measure("refine"):
            # Project down through the levels, refining at each.
            for i in range(len(levels) - 1, -1, -1):
                level = levels[i]
                if i == len(levels) - 1:
                    coarse_parts = parts
                parts_fine = coarse_parts[level.fine_to_coarse]
                if i > 0:
                    finer = levels[i - 1]
                    parts_fine = _refine(
                        finer.indptr, finer.indices, finer.eweights, finer.vweights,
                        parts_fine, num_parts, self._slack, rng,
                        passes=self._refine_passes,
                    )
                else:
                    parts_fine = _refine(
                        indptr, indices, eweights, vweights,
                        parts_fine, num_parts, self._slack, rng,
                        passes=self._refine_passes,
                    )
                coarse_parts = parts_fine
            parts = coarse_parts if levels else _refine(
                indptr, indices, eweights, vweights, parts, num_parts,
                self._slack, rng, passes=self._refine_passes,
            )

        return (
            PartitionAssignment(graph, parts.astype(np.int32), num_parts),
            {"levels": len(levels)},
        )


register_partitioner("multilevel", MultilevelPartitioner)
