"""Vectorised transition sampling primitives for walker engines.

All functions operate on *batches* of walkers at once — the engine never
loops over individual walkers in Python. The second-order membership
test (:func:`arcs_exist`) is a vectorised binary search over each
walker's CSR neighbour range, exploiting that the builder stores
neighbour lists sorted.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["uniform_neighbor", "arcs_exist"]


def uniform_neighbor(
    graph: CSRGraph, positions: np.ndarray, rng
) -> tuple[np.ndarray, np.ndarray]:
    """Sample one uniform out-neighbour per walker.

    Returns ``(targets, dead_end)``. Walkers at zero-degree vertices get
    ``dead_end=True`` and their target set to their current position
    (callers terminate them).
    """
    pos = np.asarray(positions, dtype=np.int64)
    deg = graph.degrees[pos]
    dead = deg == 0
    # floor(u · deg) is uniform over [0, deg); guard deg=0 with max(…,1).
    offsets = (rng.random(pos.size) * deg).astype(np.int64)
    slots = graph.indptr[pos] + np.minimum(offsets, np.maximum(deg - 1, 0))
    # Dead-end walkers may sit at the last vertex, where indptr[pos]
    # already equals m — point their slot at 0 and overwrite below.
    slots[dead] = 0
    # take_arcs == indices[slots], but shard-aware for out-of-core graphs.
    targets = graph.take_arcs(slots).astype(np.int64) if graph.num_edges else pos.copy()
    targets[dead] = pos[dead]
    return targets, dead


def arcs_exist(graph: CSRGraph, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Vectorised ``graph.has_edge(sources[i], targets[i])`` for batches.

    Binary search over each source's sorted neighbour range; O(log d)
    vectorised rounds rather than per-walker Python calls.
    """
    src = np.asarray(sources, dtype=np.int64)
    tgt = np.asarray(targets, dtype=np.int64)
    if graph.num_edges == 0:
        return np.zeros(src.size, dtype=bool)
    lo = graph.indptr[src].copy()
    hi = graph.indptr[src + 1].copy()
    num_arcs = graph.num_edges
    # Invariant: the answer slot, if any, is in [lo, hi).
    while True:
        open_mask = lo < hi
        if not open_mask.any():
            break
        mid = (lo + hi) // 2
        # Only compare where the range is still open; closed ranges keep
        # lo == hi and drop out.
        vals = np.where(
            open_mask, graph.take_arcs(np.minimum(mid, num_arcs - 1)), 0
        )
        go_right = open_mask & (vals < tgt)
        go_left = open_mask & (vals > tgt)
        found = open_mask & (vals == tgt)
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(go_left, mid, hi)
        # Collapse found ranges to a sentinel "hit" state.
        lo = np.where(found, -1, lo)
        hi = np.where(found, -2, hi)  # lo > hi ⇒ loop ignores, mark as hit
    return lo == -1
