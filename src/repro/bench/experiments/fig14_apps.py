"""Figure 14 — normalized running time of the seven applications.

Every application of §4.1 on every dataset, under all five partitioners,
normalized so Chunk-V = 1. The paper: BPart wins everywhere, 5–70 %
faster than Fennel/Chunk-V and 10–60 % faster than Chunk-E.
"""

from __future__ import annotations

from repro.bench.experiments._common import DATASET_ORDER, graph_for, partition_with
from repro.bench.harness import ExperimentConfig, ExperimentResult, register_experiment
from repro.bench.report import Table
from repro.bench.workloads import ALL_APPS, run_app

ALGOS = ("chunk-v", "chunk-e", "fennel", "hash", "bpart")
K = 8


@register_experiment("fig14", "Normalized running time of 7 applications (Chunk-V = 1)")
def run(config: ExperimentConfig) -> ExperimentResult:
    result = ExperimentResult(
        "fig14", "Normalized running time of 7 applications (Chunk-V = 1)"
    )
    for dataset in DATASET_ORDER:
        g = graph_for(config, dataset)
        assignments = {
            name: partition_with(name, g, K, seed=config.seed).assignment for name in ALGOS
        }
        table = Table(
            f"{dataset}: runtime / Chunk-V runtime",
            ["app"] + list(ALGOS),
            note="BPart lowest on every app (paper: 5-70% below Chunk-V/Fennel)",
        )
        for app in ALL_APPS:
            runtimes = {
                name: run_app(app, g, assignments[name], seed=config.seed).runtime
                for name in ALGOS
            }
            base = runtimes["chunk-v"] or 1e-12
            table.add_row(app, *[runtimes[name] / base for name in ALGOS])
            for name in ALGOS:
                result.data[(dataset, app, name)] = runtimes[name]
        result.tables.append(table)
    return result
