"""The serving_slo experiment and the servetrace artifact kind."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import artifacts
from repro.bench.harness import ExperimentConfig, run_experiment
from repro.bench.workloads import run_serving_job
from repro.graph import social_graph
from repro.partition.base import get_partitioner
from repro.resilience import ChaosPlan, ChaosRule, install_plan
from repro.serving import SITE_MACHINE, ServingConfig, WorkloadSpec


@pytest.fixture(scope="module")
def graph():
    return social_graph(1200, 8.0, 2.2, rng=17)


@pytest.fixture(scope="module")
def assignment(graph):
    return get_partitioner("bpart", seed=0).partition(graph, 4).assignment


@pytest.fixture
def spec():
    return WorkloadSpec(users=100, duration=0.25, rate=600.0, seed=2)


class TestServetraceArtifact:
    def test_replay_is_identical(self, graph, assignment, spec):
        fresh = run_serving_job(graph, assignment, spec=spec, seed=2)
        store = artifacts.get_store()
        before = store.stats.by_kind.get("servetrace", {}).get("hits", 0)
        cached = run_serving_job(graph, assignment, spec=spec, seed=2)
        assert store.stats.by_kind["servetrace"]["hits"] == before + 1
        assert cached.summary() == fresh.summary()
        np.testing.assert_array_equal(cached.latency, fresh.latency)

    def test_disk_replay_reconstructs_result(self, graph, assignment, spec):
        fresh = run_serving_job(graph, assignment, spec=spec, seed=2)
        # Drop the in-memory layer so the next load comes from disk.
        artifacts.reset_store()
        cached = run_serving_job(graph, assignment, spec=spec, seed=2)
        assert cached.summary() == fresh.summary()
        assert cached.cache_stats == fresh.cache_stats
        np.testing.assert_array_equal(cached.shed, fresh.shed)

    def test_chaos_plan_is_part_of_the_key(self, graph, assignment, spec):
        clean = run_serving_job(graph, assignment, spec=spec, seed=2)
        install_plan(
            ChaosPlan(seed=1, rules=(ChaosRule(site=SITE_MACHINE, kind="exception"),))
        )
        try:
            chaotic = run_serving_job(graph, assignment, spec=spec, seed=2)
        finally:
            install_plan(None)
        # distinct artifacts — the chaotic run must not replay the clean one
        assert chaotic.degraded_batches.sum() > 0
        assert clean.degraded_batches.sum() == 0
        assert chaotic.summary() != clean.summary()

    def test_seed_and_config_change_key(self, graph, assignment, spec):
        a = run_serving_job(graph, assignment, spec=spec, seed=2)
        b = run_serving_job(graph, assignment, spec=spec, seed=3)
        c = run_serving_job(
            graph, assignment, spec=spec, config=ServingConfig(batch_max=2), seed=2
        )
        assert a.summary() != b.summary() or a.summary() != c.summary()
        assert int(c.batches.sum()) >= int(a.batches.sum())


class TestServingSloExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("serving_slo", ExperimentConfig(scale=0.1, seed=1))

    def test_ranks_all_partitioners(self, result):
        clean = result.data[("report", "clean")]
        from repro.bench.experiments.serving_slo import SERVING_PARTITIONERS

        assert set(clean["entries"]) == set(SERVING_PARTITIONERS)
        for entry in clean["entries"].values():
            assert entry["completed"] > 0
            assert entry["latency_p99"] >= entry["latency_p50"] > 0

    def test_chaos_run_completes_with_bounded_shed(self, result):
        chaos = result.data[("report", "chaos")]
        for entry in chaos["entries"].values():
            assert entry["degraded_batches"] + entry["cache_flushes"] > 0
            assert entry["shed_rate"] < 0.5
            assert entry["completed"] > 0

    def test_renders_tables_and_chart(self, result):
        text = result.render()
        assert "serving SLOs" in text
        assert "degradation drill" in text
        assert "p99" in text

    def test_deterministic_across_runs(self, result):
        import json

        again = run_experiment("serving_slo", ExperimentConfig(scale=0.1, seed=1))
        assert json.dumps(result.to_dict(), sort_keys=True) == json.dumps(
            again.to_dict(), sort_keys=True
        )


class TestReplicatedServetrace:
    def test_replicated_result_survives_disk_replay(self, graph, assignment, spec):
        from repro.serving import SITE_REPLICA_CRASH

        config = ServingConfig(replication_factor=2)
        plan = ChaosPlan(
            seed=7,
            rules=(
                ChaosRule(
                    site=SITE_REPLICA_CRASH, kind="exception", match="m1:h5", rate=1.0
                ),
            ),
        )
        install_plan(plan)
        try:
            fresh = run_serving_job(graph, assignment, spec=spec, config=config, seed=2)
            artifacts.reset_store()  # force the reload from disk
            cached = run_serving_job(graph, assignment, spec=spec, config=config, seed=2)
        finally:
            install_plan(None)
        assert fresh.replicated and cached.replicated
        assert cached.summary() == fresh.summary()
        assert cached.health_ledger == fresh.health_ledger
        assert cached.plan_digest == fresh.plan_digest
        np.testing.assert_array_equal(cached.latency, fresh.latency)

    def test_replication_factor_changes_the_cache_key(self, graph, assignment, spec):
        k1 = run_serving_job(graph, assignment, spec=spec, seed=2)
        k2 = run_serving_job(
            graph,
            assignment,
            spec=spec,
            config=ServingConfig(replication_factor=2),
            seed=2,
        )
        assert not k1.replicated and k2.replicated
        assert "availability" in k2.summary()
        assert "availability" not in k1.summary()


class TestServingAvailabilityExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("serving_availability", ExperimentConfig(scale=0.1, seed=1))

    def test_k2_beats_k1_and_factor_restores(self, result):
        k1 = result.data[("report", "k1")]["entries"]["bpart"]
        k2 = result.data[("report", "k2")]["entries"]["bpart"]
        k3 = result.data[("report", "k3")]["entries"]["bpart"]
        assert k2["availability"] > k1["availability"]
        assert k3["availability"] >= k2["availability"]
        for entry in (k1, k2, k3):
            rep = entry["replication"]
            assert rep["crashes"] == 1
            assert rep["restored"] is True
            assert rep["transitions"]["dead->recovering"] == 1
            assert rep["transitions"]["recovering->healthy"] == 1
            assert rep["rereplication_bytes"] > 0

    def test_renders(self, result):
        text = result.render()
        assert "availability vs replication" in text
        assert "hedged requests" in text

    def test_deterministic_across_runs(self, result):
        import json

        again = run_experiment(
            "serving_availability", ExperimentConfig(scale=0.1, seed=1)
        )
        assert json.dumps(result.to_dict(), sort_keys=True) == json.dumps(
            again.to_dict(), sort_keys=True
        )
