"""Legacy setup shim.

Metadata lives in pyproject.toml; this file exists only so that
``pip install -e .`` works in offline environments whose setuptools
cannot build PEP 660 editable wheels (no ``wheel`` package).
"""

from setuptools import setup

setup()
