"""Fault recovery — crash/straggler tolerance across partitioners.

Extends the paper's balance argument to a failing cluster: when machine
1 crashes mid-walk and its subgraph must be restored and replayed, the
recovery superstep lasts as long as its most loaded participant — so a
two-dimensionally balanced partition pays less for recovery exactly as
it pays less at every ordinary barrier (Figure 13's mechanism). The
``redistribute`` strategy additionally re-spreads the lost subgraph via
BPart's combining logic, so post-recovery survivor balance reflects the
*input* partition's 2-D balance.

Standard plan (seeded, deterministic): machine 1 crashes at superstep
2, machine 0 runs 3x slow for supersteps 0-1, checkpoints every 2
supersteps. Compared on a 5|V| x 4-step DeepWalk job at 8 machines:

- baseline (no faults) vs ``restart`` vs ``redistribute`` runtimes per
  partitioner per dataset;
- survivor vertex/edge balance after ``redistribute``;
- a checkpoint-interval sweep (k = 0 / 1 / 2 / 4) trading checkpoint
  I/O against replay time.
"""

from __future__ import annotations

import dataclasses

from repro.bench.experiments._common import graph_for, partition_with
from repro.bench.harness import ExperimentConfig, ExperimentResult, register_experiment
from repro.bench.report import BarChart, Table
from repro.bench.workloads import PAPER_PARTITIONERS, run_fault_walk_job, run_walk_job
from repro.cluster.faults import (
    CheckpointCostModel,
    CheckpointPolicy,
    Crash,
    FaultPlan,
    Straggler,
)

DATASETS = ("livejournal", "twitter")
MACHINES = 8
CHECKPOINT_SWEEP = (0, 1, 2, 4)

#: slow stable storage and negligible fixed cost, so checkpoint and
#: restore time is dominated by per-machine state — the partition's
#: 2-D balance — rather than a flat fsync constant.
CHECKPOINT_COST = CheckpointCostModel(write_bandwidth=1e8, fixed_seconds=1e-5)

#: the standard fault schedule every cell of the comparison runs.
STANDARD_PLAN = FaultPlan(
    crashes=(Crash(machine=1, superstep=2),),
    stragglers=(Straggler(machine=0, start=0, duration=2, factor=3.0),),
    checkpoint=CheckpointPolicy(interval=2),
    recovery="redistribute",
    seed=7,
)


def _walk(config: ExperimentConfig, graph, assignment):
    return run_walk_job(
        graph, assignment, app_name="deepwalk", walkers_per_vertex=5, seed=config.seed
    )


def _fault_walk(config: ExperimentConfig, graph, assignment, plan):
    return run_fault_walk_job(
        graph,
        assignment,
        plan,
        app_name="deepwalk",
        walkers_per_vertex=5,
        seed=config.seed,
        checkpoint_cost=CHECKPOINT_COST,
    )


@register_experiment("faults", "Crash recovery and checkpointing across partitioners")
def run(config: ExperimentConfig) -> ExperimentResult:
    result = ExperimentResult(
        "faults", "Crash recovery and checkpointing across partitioners"
    )
    for dataset in DATASETS:
        g = graph_for(config, dataset)
        table = Table(
            f"{dataset}: DeepWalk under crash+straggler (8 machines, interval-2 checkpoints)",
            [
                "algorithm",
                "baseline_s",
                "restart_s",
                "redist_s",
                "redist_overhead",
                "recovery_s",
                "surv_edge_dev",
                "degraded_wait",
            ],
            note="balanced partitions recover cheaper; redistribute keeps survivors balanced",
        )
        for name in PAPER_PARTITIONERS:
            a = partition_with(name, g, MACHINES, seed=config.seed).assignment
            baseline = _walk(config, g, a)
            restart_res, restart_rep = _fault_walk(
                config, g, a, STANDARD_PLAN.with_recovery("restart")
            )
            redist_res, redist_rep = _fault_walk(config, g, a, STANDARD_PLAN)
            base_rt = baseline.runtime
            overhead = redist_res.runtime / base_rt if base_rt else float("inf")
            table.add_row(
                name,
                base_rt,
                restart_res.runtime,
                redist_res.runtime,
                overhead,
                redist_rep.recovery_seconds,
                redist_rep.survivor_edge_max_dev,
                redist_rep.degraded_waiting_ratio,
            )
            result.data[(dataset, name, "baseline_runtime")] = base_rt
            result.data[(dataset, name, "restart_runtime")] = restart_res.runtime
            result.data[(dataset, name, "redistribute_runtime")] = redist_res.runtime
            result.data[(dataset, name, "recovery_seconds")] = redist_rep.recovery_seconds
            result.data[(dataset, name, "checkpoint_seconds")] = redist_rep.checkpoint_seconds
            result.data[(dataset, name, "survivor_vertex_max_dev")] = (
                redist_rep.survivor_vertex_max_dev
            )
            result.data[(dataset, name, "survivor_edge_max_dev")] = (
                redist_rep.survivor_edge_max_dev
            )
            result.data[(dataset, name, "degraded_waiting_ratio")] = (
                redist_rep.degraded_waiting_ratio
            )
        result.tables.append(table)

    chart = BarChart(
        "twitter: recovery superstep cost (redistribute)",
        note="the 2-D balanced partition loses the least state on any one machine",
    )
    for name in PAPER_PARTITIONERS:
        chart.add(name, result.data[("twitter", name, "recovery_seconds")])
    result.charts.append(chart)

    # Checkpoint-interval sweep: frequent checkpoints cost barrier I/O
    # every k supersteps but bound the replay a crash must redo.
    g = graph_for(config, "twitter")
    a = partition_with("bpart", g, MACHINES, seed=config.seed).assignment
    sweep = Table(
        "twitter/bpart: checkpoint interval sweep (redistribute recovery)",
        ["interval", "runtime_s", "checkpoint_s", "recovery_s", "replay_s"],
        note="interval 0 = no checkpoints: zero I/O, maximal replay on crash",
    )
    for k in CHECKPOINT_SWEEP:
        plan = dataclasses.replace(STANDARD_PLAN, checkpoint=CheckpointPolicy(interval=k))
        res, rep = _fault_walk(config, g, a, plan)
        replay = sum(c["replay_seconds"] for c in rep.crashes)
        sweep.add_row(k, res.runtime, rep.checkpoint_seconds, rep.recovery_seconds, replay)
        result.data[("sweep", k, "runtime")] = res.runtime
        result.data[("sweep", k, "checkpoint_seconds")] = rep.checkpoint_seconds
        result.data[("sweep", k, "recovery_seconds")] = rep.recovery_seconds
        result.data[("sweep", k, "replay_seconds")] = replay
    result.tables.append(sweep)
    return result
