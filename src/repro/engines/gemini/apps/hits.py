"""HITS hubs-and-authorities (Kleinberg 1999) vertex program.

Alternating power iteration: authority ← Σ hub over in-neighbours,
hub ← Σ authority over out-neighbours, L2-normalised each round. On
symmetrised undirected storage the two vectors coincide with the
principal eigenvector of the adjacency matrix (eigenvector centrality),
which the tests exploit for cross-checking against networkx.

State packs both vectors as an ``n × 2`` array (the engine is agnostic
to state shape — it only threads the array through).
"""

from __future__ import annotations

import numpy as np

from repro.engines.gemini.vertex_program import VertexProgram, neighbor_sum
from repro.graph.csr import CSRGraph
from repro.utils.validation import check_positive

__all__ = ["HITS"]


class HITS(VertexProgram):
    """Hub/authority scores; ``values[:, 0]`` = authority, ``[:, 1]`` = hub."""

    name = "hits"

    def __init__(self, iterations: int = 50, tol: float = 1e-10) -> None:
        check_positive("iterations", iterations)
        check_positive("tol", tol)
        self.max_iterations = int(iterations)
        self._tol = float(tol)

    def initialize(self, graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
        n = graph.num_vertices
        # Directed graphs need the transpose for the hub gather; build it
        # once here instead of every iteration.
        self._rev = graph.reverse() if graph.directed else graph
        state = np.full((n, 2), 1.0 / max(np.sqrt(n), 1.0))
        return state, np.ones(n, dtype=bool)

    def iterate(
        self, graph: CSRGraph, state: np.ndarray, active: np.ndarray, iteration: int
    ) -> tuple[np.ndarray, np.ndarray]:
        # authority(v) = Σ hub(u) over in-arcs u→v: gather over the
        # transpose; hub(v) = Σ authority(w) over out-arcs v→w.
        auth = neighbor_sum(self._rev, state[:, 1])
        norm = np.linalg.norm(auth)
        if norm > 0:
            auth /= norm
        hub = neighbor_sum(graph, auth)
        norm = np.linalg.norm(hub)
        if norm > 0:
            hub /= norm
        new_state = np.column_stack([auth, hub])
        if np.abs(new_state - state).max() < self._tol:
            return new_state, np.zeros(graph.num_vertices, dtype=bool)
        return new_state, active
