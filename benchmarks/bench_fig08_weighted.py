"""Figure 8 — weighted-policy piece distributions (64 pieces).

BPart phase 1 with c=1/2: reduced skew and inversely proportional
|Vi| / |Ei| distributions (strongly negative correlation).
"""


def test_fig08(run_paper_experiment):
    result = run_paper_experiment("fig08")
    assert result.tables or result.series
