"""Tests for graph transformations."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph import chung_lu, from_edges, ring_graph, social_graph
from repro.graph.convert import to_networkx
from repro.graph.transform import (
    connected_components_sizes,
    filter_min_degree,
    kcore_subgraph,
    largest_connected_component,
    locality_reorder,
    relabel,
)


class TestComponents:
    def test_sizes(self, two_components):
        assert list(connected_components_sizes(two_components)) == [3, 2]

    def test_lcc(self, two_components):
        t = largest_connected_component(two_components)
        assert t.graph.num_vertices == 3
        assert set(t.old_of_new) == {0, 1, 2}
        assert t.new_of_old[4] == -1

    def test_lcc_matches_networkx(self):
        g = chung_lu(500, 3.0, rng=91)  # sparse → several components
        t = largest_connected_component(g)
        nx_sizes = sorted(
            (len(c) for c in nx.connected_components(to_networkx(g))), reverse=True
        )
        assert t.graph.num_vertices == nx_sizes[0]

    def test_isolated_vertices_each_a_component(self, isolated_vertices):
        sizes = connected_components_sizes(isolated_vertices)
        assert sizes[0] == 3  # the 0-1-2 path
        assert sizes.sum() == 6


class TestFilters:
    def test_min_degree(self, star16):
        t = filter_min_degree(star16, 2)
        assert t.graph.num_vertices == 1  # only the hub survives one shave
        assert t.graph.num_edges == 0

    def test_min_degree_zero_keeps_all(self, star16):
        t = filter_min_degree(star16, 0)
        assert t.graph.num_vertices == star16.num_vertices

    def test_kcore_matches_networkx(self):
        g = chung_lu(400, 8.0, rng=92)
        t = kcore_subgraph(g, 4)
        nxg = to_networkx(g)
        nxg.remove_edges_from(nx.selfloop_edges(nxg))
        expected = nx.k_core(nxg, 4)
        assert t.graph.num_vertices == expected.number_of_nodes()
        assert set(t.old_of_new) == set(expected.nodes())

    def test_kcore_of_ring(self, ring64):
        assert kcore_subgraph(ring64, 2).graph.num_vertices == 64
        assert kcore_subgraph(ring64, 3).graph.num_vertices == 0

    def test_negative_params_rejected(self, ring64):
        with pytest.raises(ConfigurationError):
            filter_min_degree(ring64, -1)
        with pytest.raises(ConfigurationError):
            kcore_subgraph(ring64, -1)


class TestRelabel:
    def test_identity(self, ring64):
        t = relabel(ring64, np.arange(64))
        assert t.graph == ring64

    def test_roundtrip_preserves_structure(self):
        g = chung_lu(300, 6.0, rng=93)
        rng = np.random.default_rng(94)
        perm = rng.permutation(g.num_vertices)
        t = relabel(g, perm)
        assert t.graph.num_edges == g.num_edges
        # edge (u, v) exists iff (new_of_old[u], new_of_old[v]) exists
        for u in range(0, g.num_vertices, 29):
            for v in g.neighbors(u):
                assert t.graph.has_edge(int(t.new_of_old[u]), int(t.new_of_old[v]))

    def test_invalid_permutation(self, ring64):
        with pytest.raises(ConfigurationError):
            relabel(ring64, np.zeros(64, dtype=np.int64))


class TestLocalityReorder:
    def test_bfs_reorder_recovers_mesh_locality(self):
        """A randomly-renumbered mesh loses its chunking locality; BFS
        renumbering recovers most of it — the preprocessing that
        justifies Chunk-V on structured graphs. (On expanders there is
        no locality to recover, so no gain is expected there.)"""
        from repro.graph import grid_graph
        from repro.partition import ChunkVPartitioner
        from repro.partition.metrics import edge_cut_ratio

        g = grid_graph(40, 40)
        rng = np.random.default_rng(95)
        shuffled = relabel(g, rng.permutation(g.num_vertices)).graph
        recovered = locality_reorder(shuffled, order="bfs").graph
        p = ChunkVPartitioner()
        cut_shuffled = edge_cut_ratio(shuffled, p.partition(shuffled, 8).assignment.parts)
        cut_recovered = edge_cut_ratio(recovered, p.partition(recovered, 8).assignment.parts)
        assert cut_recovered < cut_shuffled / 2

    def test_degree_distribution_preserved(self):
        g = chung_lu(400, 8.0, rng=96)
        t = locality_reorder(g, order="bfs")
        assert np.array_equal(np.sort(t.graph.degrees), np.sort(g.degrees))
