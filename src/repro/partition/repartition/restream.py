"""Prioritized restreaming over a live :class:`DynamicPartitioner`.

The offline ``passes`` knob of :func:`repro.partition._streamcore.
stream_partition` revisits vertices in *stream order* — fine when a
whole pass is cheap, wasteful when only a handful of placements are
actually wrong. Prioritized restreaming (Awadelkarim & Ugander, KDD
2020) generalises the uniform re-stream: vertices are re-scored in
**descending gain order**, so a bounded migration budget is spent on
the placements whose correction buys the most.

One epoch is two sweeps over the residents:

1. *Prioritise* — every resident is scored against the epoch-start
   state with its own load released (exactly the re-stream semantics of
   the multi-pass kernels); vertices whose best part beats their
   current part enter the candidate list, sorted by ``(−gain, id)`` —
   the id tie-break keeps the order, and hence the whole epoch,
   deterministic.
2. *Apply* — candidates are revisited in priority order and re-scored
   against the **live** state (earlier moves in the epoch are visible,
   as in a true re-stream). A move executes only while the migration
   budget lasts, only if the live gain is still positive, and — with
   ``cut_safe`` (default) — only if it does not lose resident-neighbour
   overlap. The overlap guard makes the resident edge cut monotonically
   non-increasing move by move, hence across epochs on a static stream.

Moves go through :meth:`DynamicPartitioner.move_vertex`, the exact
counter-transfer primitive, so the loads every later decision sees are
the post-migration truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.partition.dynamic import DynamicPartitioner

__all__ = ["MoveScore", "EpochStats", "score_vertex", "restream_epoch"]

#: gains below this are floating-point noise, never worth a migration.
GAIN_TOLERANCE = 1e-9


@dataclass(frozen=True)
class MoveScore:
    """One vertex's re-stream scoring against a partitioner state."""

    vertex: int
    current: int
    best: int
    gain: float
    overlap_delta: float  # resident-neighbour overlap gained by moving


@dataclass
class EpochStats:
    """Outcome of one prioritized-restreaming epoch."""

    candidates: int = 0
    moves: list[tuple[int, int, int]] = field(default_factory=list)
    gain: float = 0.0
    budget_exhausted: bool = False

    @property
    def migrations(self) -> int:
        return len(self.moves)


def score_vertex(dp: DynamicPartitioner, vertex: int) -> MoveScore:
    """Re-score a resident vertex with its own load released (Eq. 2).

    Mirrors the multi-pass kernels: the vertex is pulled out of its
    part, every part is scored ``|V_i ∩ N(v)| − α·γ·W_i^{γ−1}``, and
    saturated parts (``W_i ≥ ν·n/k``) are excluded — except the current
    part, because staying put is always legal.
    """
    cur = dp.part_of(vertex)
    w_v = dp.load_increment(vertex)
    loads = dp.live_loads()
    loads[cur] = max(loads[cur] - w_v, 0.0)
    overlap = dp.overlap_of(vertex)
    penalty = dp.live_alpha() * dp.gamma * np.power(loads, dp.gamma - 1.0)
    scores = overlap - penalty
    open_mask = loads < dp.live_capacity()
    open_mask[cur] = True
    masked = np.where(open_mask, scores, -np.inf)
    best = int(np.argmax(masked))
    return MoveScore(
        vertex=vertex,
        current=cur,
        best=best,
        gain=float(masked[best] - scores[cur]),
        overlap_delta=float(overlap[best] - overlap[cur]),
    )


def restream_epoch(
    dp: DynamicPartitioner,
    *,
    budget: int,
    cut_safe: bool = True,
) -> EpochStats:
    """Run one prioritized-restreaming epoch under a migration budget."""
    stats = EpochStats()
    candidates: list[tuple[float, int]] = []
    for v in dp.vertices():
        s = score_vertex(dp, v)
        if s.best != s.current and s.gain > GAIN_TOLERANCE:
            candidates.append((s.gain, v))
    candidates.sort(key=lambda t: (-t[0], t[1]))
    stats.candidates = len(candidates)

    for _, v in candidates:
        if stats.migrations >= budget:
            stats.budget_exhausted = True
            break
        live = score_vertex(dp, v)
        if live.best == live.current or live.gain <= GAIN_TOLERANCE:
            continue
        if cut_safe and live.overlap_delta < 0.0:
            continue
        dp.move_vertex(v, live.best)
        stats.moves.append((v, live.current, live.best))
        stats.gain += live.gain

    if telemetry.enabled():
        reg = telemetry.active()
        reg.counter("partition.repartition.epochs").inc()
        reg.counter("partition.repartition.candidates").inc(stats.candidates)
        if stats.migrations:
            reg.counter("partition.repartition.migrations").inc(stats.migrations)
        if stats.budget_exhausted:
            reg.counter("partition.repartition.budget_exhausted").inc()
        reg.gauge("partition.repartition.epoch_gain").set(stats.gain)
    return stats
