"""Wall-clock timing helpers for the partition-overhead experiments.

Table 2 of the paper reports the wall-clock cost of each partitioner.
:class:`Timer` is a context manager that records elapsed seconds;
:class:`WallClock` accumulates named segments so a multi-phase
partitioner (BPart's partition + combine layers) can report a breakdown.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "WallClock"]


@dataclass
class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


class WallClock:
    """Accumulates named wall-clock segments.

    Segments with the same name accumulate, so per-layer timings of the
    multi-layer combiner sum into one "combine" entry.
    """

    def __init__(self) -> None:
        self._segments: dict[str, float] = {}

    def measure(self, name: str) -> "_Segment":
        """Return a context manager adding its elapsed time to ``name``."""
        return _Segment(self, name)

    def add(self, name: str, seconds: float) -> None:
        self._segments[name] = self._segments.get(name, 0.0) + seconds

    @property
    def segments(self) -> dict[str, float]:
        """Mapping of segment name to accumulated seconds (copy)."""
        return dict(self._segments)

    @property
    def total(self) -> float:
        """Total seconds across all segments."""
        return sum(self._segments.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:.4f}s" for k, v in self._segments.items())
        return f"WallClock({inner})"


class _Segment:
    def __init__(self, clock: WallClock, name: str) -> None:
        self._clock = clock
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Segment":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._clock.add(self._name, time.perf_counter() - self._start)
