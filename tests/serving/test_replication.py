"""Replica placement: anti-affinity, 2D balance, canonical plans."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, PartitionError
from repro.graph import social_graph
from repro.partition.base import get_partitioner
from repro.serving import ReplicaPlan, plan_replicas
from repro.serving.replication import PLAN_SCHEMA, ensure_within_slack


@pytest.fixture(scope="module")
def assignment():
    graph = social_graph(1500, 10.0, 2.2, rng=11)
    return get_partitioner("bpart", seed=0).partition(graph, 8).assignment


class TestPlanReplicas:
    @pytest.mark.parametrize("factor", [1, 2, 3, 8])
    def test_every_partition_has_factor_distinct_holders(self, assignment, factor):
        plan = plan_replicas(assignment, factor)
        for p, holders in enumerate(plan.holders):
            assert len(holders) == factor
            assert len(set(holders)) == factor  # anti-affinity
            assert holders[0] == p  # primary first

    def test_factor_one_is_identity_routing(self, assignment):
        plan = plan_replicas(assignment, 1)
        assert plan.holders == tuple((p,) for p in range(8))
        np.testing.assert_array_equal(
            np.asarray(plan.hosted_v), assignment.vertex_counts
        )
        np.testing.assert_array_equal(
            np.asarray(plan.hosted_e), assignment.edge_counts
        )

    def test_hosted_loads_account_every_replica(self, assignment):
        plan = plan_replicas(assignment, 3)
        v = assignment.vertex_counts
        e = assignment.edge_counts
        assert sum(plan.hosted_v) == 3 * int(v.sum())
        assert sum(plan.hosted_e) == 3 * int(e.sum())
        for m in range(8):
            parts = plan.partitions_of(m)
            assert plan.hosted_v[m] == int(v[list(parts)].sum())
            assert plan.hosted_e[m] == int(e[list(parts)].sum())

    def test_two_dimensional_balance_within_slack(self, assignment):
        for factor in (2, 3):
            ratios = plan_replicas(assignment, factor, slack=0.5).balance()
            assert ratios["vertex_ratio"] <= 1.5
            assert ratios["edge_ratio"] <= 1.5

    def test_deterministic_and_digest_stable(self, assignment):
        a = plan_replicas(assignment, 2)
        b = plan_replicas(assignment, 2)
        assert a == b
        assert a.digest() == b.digest()
        assert a.digest() != plan_replicas(assignment, 3).digest()

    def test_factor_out_of_range_rejected(self, assignment):
        with pytest.raises(ConfigurationError):
            plan_replicas(assignment, 0)
        with pytest.raises(ConfigurationError):
            plan_replicas(assignment, 9)  # only 8 machines

    def test_negative_slack_rejected(self, assignment):
        with pytest.raises(ConfigurationError, match="slack"):
            plan_replicas(assignment, 2, slack=-0.1)

    def test_overloaded_plan_violates_slack(self):
        # Hand-built: machine 0 hosts 100 of 101 vertices (ratio ~1.98)
        # while the primaries were balanced (base ratio 1.0) — the
        # placer added all of that skew, so the guard must fire.
        plan = ReplicaPlan(
            num_machines=2,
            replication_factor=1,
            holders=((0,), (1,)),
            hosted_v=(100, 1),
            hosted_e=(10, 10),
        )
        with pytest.raises(PartitionError, match="balance slack"):
            ensure_within_slack(plan, 0.5)
        ensure_within_slack(plan, 1.0)  # a looser budget admits it

    def test_skewed_primaries_do_not_trip_the_guard(self):
        # chunk-style partitioners ship edge-skewed primaries; the
        # slack bounds what replication ADDS, not the inherited skew.
        graph = social_graph(1500, 10.0, 2.2, rng=11)
        skewed = get_partitioner("chunk-v", seed=0).partition(graph, 8).assignment
        base = float(
            skewed.edge_counts.max() / skewed.edge_counts.mean()
        )
        assert base > 1.5  # the absolute bound would reject this
        plan = plan_replicas(skewed, 2, slack=0.5)
        assert plan.balance()["edge_ratio"] <= 1.5 * base

    def test_holders_of_matches_partitions_of(self, assignment):
        plan = plan_replicas(assignment, 2)
        for p in range(8):
            for m in plan.holders_of(p):
                assert p in plan.partitions_of(m)


class TestPlanSerialisation:
    def test_json_round_trip(self, assignment):
        plan = plan_replicas(assignment, 2)
        again = ReplicaPlan.from_json(plan.to_json())
        assert again == plan
        assert again.digest() == plan.digest()

    def test_schema_tag_required(self, assignment):
        plan = plan_replicas(assignment, 2)
        doc = plan.to_json().replace(PLAN_SCHEMA, "replica-plan/v99")
        with pytest.raises(ConfigurationError, match="schema"):
            ReplicaPlan.from_json(doc)
        with pytest.raises(ConfigurationError):
            ReplicaPlan.from_json("not json")
