"""Unit tests for table/series rendering."""

from __future__ import annotations

import pytest

from repro.bench.report import Series, Table, format_cell


class TestFormatCell:
    def test_int_grouping(self):
        assert format_cell(1234567) == "1,234,567"

    def test_small_float(self):
        assert format_cell(0.12345) == "0.1235"

    def test_large_float(self):
        assert format_cell(12345.6) == "12,345.6"

    def test_zero(self):
        assert format_cell(0.0) == "0"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"

    def test_bool(self):
        assert format_cell(True) == "True"


class TestTable:
    def test_render_aligns_columns(self):
        t = Table("title", ["a", "bbb"], note="hello")
        t.add_row(1, 2.5)
        t.add_row(100, 0.25)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "title"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert "paper: hello" in out

    def test_wrong_arity(self):
        t = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_empty_table_renders(self):
        t = Table("t", ["x"])
        assert "x" in t.render()


class TestSeries:
    def test_render(self):
        s = Series("line")
        s.add(1, 0.5)
        s.add(2, 0.25)
        out = s.render()
        assert out.startswith("line:")
        assert "(1, 0.5000)" in out
