"""Unit tests for the BSP timing ledger."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import TimingLedger
from repro.errors import SimulationError


class TestIterationTiming:
    def test_duration_is_slowest_machine(self):
        ledger = TimingLedger(3)
        it = ledger.record(np.array([1.0, 2.0, 3.0]), np.array([0.5, 0.5, 0.5]))
        assert it.duration == pytest.approx(3.5)
        assert np.allclose(it.wait, [2.0, 1.0, 0.0])

    def test_wait_nonnegative(self):
        ledger = TimingLedger(4)
        rng = np.random.default_rng(0)
        for _ in range(10):
            it = ledger.record(rng.random(4), rng.random(4))
            assert (it.wait >= -1e-12).all()


class TestLedger:
    def test_total_runtime_sums_durations(self):
        ledger = TimingLedger(2)
        ledger.record(np.array([1.0, 2.0]), np.zeros(2))
        ledger.record(np.array([3.0, 1.0]), np.zeros(2))
        assert ledger.total_runtime == pytest.approx(5.0)

    def test_waiting_ratio_balanced_is_zero(self):
        ledger = TimingLedger(4)
        ledger.record(np.full(4, 2.0), np.zeros(4))
        assert ledger.waiting_ratio == pytest.approx(0.0)

    def test_waiting_ratio_single_worker(self):
        ledger = TimingLedger(4)
        ledger.record(np.array([4.0, 0.0, 0.0, 0.0]), np.zeros(4))
        # three machines wait the whole superstep → 3/4
        assert ledger.waiting_ratio == pytest.approx(0.75)

    def test_waiting_ratio_bounds(self):
        ledger = TimingLedger(5)
        rng = np.random.default_rng(1)
        for _ in range(5):
            ledger.record(rng.random(5), rng.random(5))
        assert 0.0 <= ledger.waiting_ratio < 1.0

    def test_empty_ledger(self):
        ledger = TimingLedger(2)
        assert ledger.total_runtime == 0.0
        assert ledger.waiting_ratio == 0.0
        assert ledger.compute_matrix.shape == (0, 2)

    def test_matrices_shape(self):
        ledger = TimingLedger(3)
        for _ in range(4):
            ledger.record(np.ones(3), np.ones(3))
        assert ledger.compute_matrix.shape == (4, 3)
        assert ledger.comm_matrix.shape == (4, 3)
        assert ledger.wait_matrix.shape == (4, 3)

    def test_shape_validation(self):
        ledger = TimingLedger(3)
        with pytest.raises(SimulationError):
            ledger.record(np.ones(2), np.ones(3))

    def test_negative_rejected(self):
        ledger = TimingLedger(2)
        with pytest.raises(SimulationError):
            ledger.record(np.array([-1.0, 0.0]), np.zeros(2))

    def test_invalid_machine_count(self):
        with pytest.raises(SimulationError):
            TimingLedger(0)

    def test_repr(self):
        ledger = TimingLedger(2)
        assert "machines=2" in repr(ledger)


class TestActiveMasks:
    def test_inactive_machines_set_no_barrier(self):
        ledger = TimingLedger(3)
        it = ledger.record(
            np.array([1.0, 9.0, 2.0]),
            np.zeros(3),
            active=np.array([True, False, True]),
        )
        # The dead machine's 9.0 does not stretch the superstep.
        assert it.duration == pytest.approx(2.0)
        assert np.allclose(it.wait, [1.0, 0.0, 0.0])
        assert it.num_active == 2

    def test_waiting_ratio_counts_active_time_only(self):
        ledger = TimingLedger(2)
        ledger.record(
            np.array([2.0, 0.0]), np.zeros(2), active=np.array([True, False])
        )
        # One active machine, zero wait → perfectly "balanced".
        assert ledger.waiting_ratio == pytest.approx(0.0)

    def test_unmasked_path_matches_legacy_formula(self):
        ledger = TimingLedger(4)
        rng = np.random.default_rng(5)
        for _ in range(6):
            ledger.record(rng.random(4), rng.random(4))
        assert not ledger.has_active_masks
        expected = ledger.total_wait / (4 * ledger.total_runtime)
        assert ledger.waiting_ratio == expected  # exact, not approx

    def test_all_dead_mask_rejected(self):
        ledger = TimingLedger(2)
        with pytest.raises(SimulationError):
            ledger.record(np.ones(2), np.zeros(2), active=np.zeros(2, dtype=bool))

    def test_waiting_ratio_from_tail(self):
        ledger = TimingLedger(2)
        ledger.record(np.array([5.0, 0.0]), np.zeros(2))  # very unbalanced
        ledger.record(np.array([1.0, 1.0]), np.zeros(2))  # balanced
        assert ledger.waiting_ratio_from(1) == pytest.approx(0.0)
        assert ledger.waiting_ratio_from(0) == pytest.approx(ledger.waiting_ratio)


class TestEventsAndJson:
    def _ledger(self):
        ledger = TimingLedger(3)
        ledger.record(np.array([1.0, 2.0, 3.0]), np.array([0.1, 0.2, 0.3]))
        ledger.add_event("straggler", machine=1, factor=2.5)
        ledger.record(
            np.array([1.0, 0.0, 1.0]),
            np.zeros(3),
            active=np.array([True, False, True]),
        )
        ledger.add_event("crash", superstep=1, machine=1, strategy="redistribute")
        return ledger

    def test_add_event_defaults_to_latest_iteration(self):
        ledger = self._ledger()
        assert ledger.events[0].superstep == 0
        assert ledger.events[0].detail == {"factor": 2.5}

    def test_json_round_trip_is_byte_identical(self):
        ledger = self._ledger()
        text = ledger.to_json()
        again = TimingLedger.from_json(text)
        assert again.to_json() == text
        assert again.num_machines == 3
        assert again.total_runtime == ledger.total_runtime
        assert again.waiting_ratio == ledger.waiting_ratio
        assert [e.kind for e in again.events] == ["straggler", "crash"]
        assert again.iterations[1].active is not None
        assert not again.iterations[1].active[1]

    def test_maskless_ledger_round_trips_without_masks(self):
        ledger = TimingLedger(2)
        ledger.record(np.ones(2), np.zeros(2))
        again = TimingLedger.from_json(ledger.to_json())
        assert not again.has_active_masks
        assert again.to_json() == ledger.to_json()

    def test_from_json_rejects_other_payloads(self):
        with pytest.raises(SimulationError):
            TimingLedger.from_json('{"format": "not-a-ledger"}')
