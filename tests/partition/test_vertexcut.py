"""Unit tests for the vertex-cut partitioner family."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, PartitionError
from repro.graph import chung_lu, ring_graph, star_graph
from repro.partition.vertexcut import (
    DBHPartitioner,
    EdgePartition,
    GridPartitioner,
    HDRFPartitioner,
    RandomEdgePartitioner,
    canonical_edges,
    edge_balance_bias,
    replication_factor,
)

ALL = [RandomEdgePartitioner, DBHPartitioner, HDRFPartitioner]


@pytest.fixture(scope="module")
def g():
    return chung_lu(800, 10.0, 2.2, rng=30)


class TestCanonicalEdges:
    def test_each_edge_once(self, triangle):
        src, dst = canonical_edges(triangle)
        assert sorted(zip(src, dst)) == [(0, 1), (0, 2), (1, 2)]

    def test_directed_keeps_arcs(self):
        from repro.graph import from_edges

        g = from_edges([0, 1], [1, 0], directed=True, dedup=True)
        src, dst = canonical_edges(g)
        assert src.size == 2


@pytest.mark.parametrize("cls", ALL)
class TestCommonContract:
    def test_every_edge_assigned(self, g, cls):
        p = cls().partition(g, 8)
        assert p.edge_parts.size == g.num_undirected_edges
        assert p.edge_counts.sum() == g.num_undirected_edges

    def test_replication_factor_bounds(self, g, cls):
        p = cls().partition(g, 8)
        rf = replication_factor(p)
        assert 1.0 <= rf <= 8.0

    def test_single_part_no_replication(self, g, cls):
        p = cls().partition(g, 1)
        assert replication_factor(p) == 1.0

    def test_invalid_parts(self, g, cls):
        with pytest.raises(ConfigurationError):
            cls().partition(g, 0)


class TestRandomEdge:
    def test_edge_balance(self, g):
        p = RandomEdgePartitioner().partition(g, 8)
        assert edge_balance_bias(p) < 0.15

    def test_hub_replicated_everywhere(self):
        g = star_graph(400)
        p = RandomEdgePartitioner().partition(g, 8)
        assert p.copies[0] == 8  # hub in every part
        assert (p.copies[1:] == 1).all()  # leaves never replicated


class TestDBH:
    def test_beats_random_on_powerlaw(self, g):
        rnd = replication_factor(RandomEdgePartitioner().partition(g, 16))
        dbh = replication_factor(DBHPartitioner().partition(g, 16))
        assert dbh < rnd

    def test_low_degree_endpoint_never_replicated(self):
        g = star_graph(100)
        p = DBHPartitioner().partition(g, 8)
        # leaves have degree 1 < hub's 100: each edge hashes its leaf
        assert (p.copies[1:] == 1).all()

    def test_edge_balance(self, g):
        # DBH hashes whole anchor-vertex edge groups, so its balance is
        # noisier than per-edge hashing on small graphs.
        p = DBHPartitioner().partition(g, 8)
        assert edge_balance_bias(p) < 0.5


class TestGrid:
    def test_replication_bounded_by_grid(self, g):
        p = GridPartitioner().partition(g, 16)  # 4x4 grid
        assert p.copies.max() <= 4 + 4 - 1

    def test_prime_k_rejected(self, g):
        with pytest.raises(ConfigurationError):
            GridPartitioner().partition(g, 7)

    def test_small_prime_allowed(self, g):
        p = GridPartitioner().partition(g, 3)
        assert p.edge_counts.sum() == g.num_undirected_edges

    def test_beats_random_replication_at_large_k(self, g):
        rnd = replication_factor(RandomEdgePartitioner().partition(g, 16))
        grid = replication_factor(GridPartitioner().partition(g, 16))
        assert grid < rnd


class TestHDRF:
    def test_lowest_replication(self, g):
        hdrf = replication_factor(HDRFPartitioner().partition(g, 8))
        dbh = replication_factor(DBHPartitioner().partition(g, 8))
        rnd = replication_factor(RandomEdgePartitioner().partition(g, 8))
        assert hdrf < dbh < rnd

    def test_balance_with_lambda(self, g):
        tight = HDRFPartitioner(lam=10.0).partition(g, 8)
        loose = HDRFPartitioner(lam=0.1).partition(g, 8)
        assert edge_balance_bias(tight) <= edge_balance_bias(loose) + 1e-9

    def test_large_k_table_path(self):
        g = chung_lu(300, 6.0, rng=31)
        p = HDRFPartitioner().partition(g, 80)  # k > 64: boolean-table path
        assert p.edge_counts.sum() == g.num_undirected_edges

    def test_invalid_lambda(self):
        with pytest.raises(ConfigurationError):
            HDRFPartitioner(lam=-1)


class TestEdgePartitionModel:
    def test_copies_on_ring(self):
        g = ring_graph(8)
        src, dst = canonical_edges(g)
        # all edges to part 0 → every vertex exactly 1 copy
        p = EdgePartition(g, src, dst, np.zeros(src.size, dtype=np.int32), 2)
        assert (p.copies == 1).all()

    def test_length_mismatch(self, triangle):
        src, dst = canonical_edges(triangle)
        with pytest.raises(PartitionError):
            EdgePartition(triangle, src, dst, np.zeros(1, dtype=np.int32), 2)

    def test_part_range_check(self, triangle):
        src, dst = canonical_edges(triangle)
        with pytest.raises(PartitionError):
            EdgePartition(triangle, src, dst, np.full(src.size, 9, dtype=np.int32), 2)


class TestDirectedGraphs:
    """Directed storage: every arc is its own edge (no u<v folding)."""

    @pytest.fixture(scope="class")
    def dg(self):
        from repro.graph import from_edges

        rng = np.random.default_rng(41)
        src = rng.integers(0, 200, size=1500)
        dst = rng.integers(0, 200, size=1500)
        keep = src != dst
        return from_edges(src[keep], dst[keep], 200, directed=True)

    def test_canonical_edges_count_arcs(self, dg):
        src, dst = canonical_edges(dg)
        assert src.size == dg.num_edges  # each arc its own edge

    @pytest.mark.parametrize("cls", [RandomEdgePartitioner, DBHPartitioner, HDRFPartitioner])
    def test_family_partitions_all_arcs(self, dg, cls):
        p = cls().partition(dg, 4)
        assert p.edge_parts.size == dg.num_edges
        assert p.edge_counts.sum() == dg.num_edges
        assert 0 <= p.edge_parts.min() and p.edge_parts.max() < 4
        assert replication_factor(p) >= 1.0

    def test_grid_partitions_directed(self, dg):
        p = GridPartitioner().partition(dg, 4)
        assert p.edge_parts.size == dg.num_edges
        assert p.edge_counts.sum() == dg.num_edges

    def test_determinism_on_directed(self, dg):
        a = HDRFPartitioner().partition(dg, 4).edge_parts
        b = HDRFPartitioner().partition(dg, 4).edge_parts
        np.testing.assert_array_equal(a, b)


class TestEdgelessGraphs:
    """Zero-edge graphs: the capacity guard `max(src.size, 1)` and the
    empty-copies return of replication_factor."""

    @pytest.fixture(scope="class")
    def empty(self):
        from repro.graph import from_edges

        return from_edges([], [], 12)

    @pytest.mark.parametrize(
        "cls", [RandomEdgePartitioner, DBHPartitioner, HDRFPartitioner, GridPartitioner]
    )
    def test_family_handles_edgeless(self, empty, cls):
        p = cls().partition(empty, 4)
        assert p.edge_parts.size == 0
        assert p.edge_counts.sum() == 0
        np.testing.assert_array_equal(p.copies, np.zeros(12, dtype=p.copies.dtype))

    def test_replication_factor_empty_is_zero(self, empty):
        p = RandomEdgePartitioner().partition(empty, 4)
        assert replication_factor(p) == 0.0

    def test_edge_balance_on_edgeless(self, empty):
        p = HDRFPartitioner().partition(empty, 4)
        assert edge_balance_bias(p) == 0.0
