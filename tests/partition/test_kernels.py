"""Parity and contract tests for the streaming-kernel layer.

The kernel layer's core promise is that ``kernel=`` trades throughput
only: every backend must produce *identical* assignments to the
``scalar`` reference — for the Fennel score, the BPart weighted
indicator, the LDG rule, and the dynamic single-vertex primitive,
across stream orders, seeds, and re-streaming passes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.graph import chung_lu, social_graph
from repro.partition import (
    BPartPartitioner,
    FennelPartitioner,
    LDGPartitioner,
    available_kernels,
    edge_cut_ratio,
    get_kernel,
)
from repro.partition._streamcore import default_alpha, stream_partition
from repro.partition.bpart import bpart_vertex_weights
from repro.partition.dynamic import DynamicPartitioner
from repro.partition.kernels import KERNEL_CHOICES, HAVE_NUMBA

# Every backend registered in this environment except the reference.
NON_SCALAR = [name for name in available_kernels() if name != "scalar"]


def _fennel_parts(g, k, *, kernel, order="natural", rng=None, passes=1, weighted=False):
    w = bpart_vertex_weights(g, 0.5) if weighted else np.ones(g.num_vertices)
    return stream_partition(
        g,
        k,
        vertex_weights=w,
        alpha=default_alpha(g, k),
        order=order,
        rng=rng,
        passes=passes,
        kernel=kernel,
    )


class TestRegistry:
    def test_scalar_always_available(self):
        assert "scalar" in available_kernels()
        assert "incremental" in available_kernels()
        assert "buffered" in available_kernels()

    def test_auto_resolves(self):
        backend = get_kernel("auto")
        assert backend.name == ("numba" if HAVE_NUMBA else "incremental")

    def test_numba_falls_back_gracefully(self):
        # Must never raise, installed or not.
        backend = get_kernel("numba")
        assert backend.name in ("numba", "incremental")

    def test_none_means_auto(self):
        assert get_kernel(None).name == get_kernel("auto").name

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            get_kernel("cuda")

    def test_choices_cover_registry(self):
        for name in available_kernels():
            assert name in KERNEL_CHOICES

    def test_all_registered_backends_claim_exactness(self):
        for name in available_kernels():
            assert get_kernel(name).exact


@pytest.mark.parametrize("kernel", NON_SCALAR)
class TestFennelParity:
    """scalar ≡ every other backend, bit-for-bit."""

    @pytest.mark.parametrize("order", ["natural", "random", "degree_desc"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_orders_and_seeds(self, kernel, order, seed):
        g = social_graph(800, 10.0, 2.3, rng=seed)
        ref = _fennel_parts(g, 5, kernel="scalar", order=order, rng=seed)
        out = _fennel_parts(g, 5, kernel=kernel, order=order, rng=seed)
        assert np.array_equal(ref, out)

    @pytest.mark.parametrize("passes", [2, 3])
    def test_restreaming(self, kernel, passes):
        g = social_graph(600, 12.0, 2.2, rng=9)
        ref = _fennel_parts(g, 4, kernel="scalar", passes=passes, weighted=True)
        out = _fennel_parts(g, 4, kernel=kernel, passes=passes, weighted=True)
        assert np.array_equal(ref, out)

    def test_weighted_indicator(self, kernel):
        g = chung_lu(700, 9.0, rng=21)
        ref = _fennel_parts(g, 6, kernel="scalar", weighted=True)
        out = _fennel_parts(g, 6, kernel=kernel, weighted=True)
        assert np.array_equal(ref, out)

    def test_large_k(self, kernel):
        # BPart over-splits into dozens of pieces; parity must hold there.
        g = chung_lu(900, 8.0, rng=33)
        ref = _fennel_parts(g, 48, kernel="scalar")
        out = _fennel_parts(g, 48, kernel=kernel)
        assert np.array_equal(ref, out)

    def test_single_part_and_tiny_graph(self, kernel):
        g = chung_lu(40, 4.0, rng=5)
        assert np.array_equal(
            _fennel_parts(g, 1, kernel="scalar"), _fennel_parts(g, 1, kernel=kernel)
        )

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(2, 9),
        order=st.sampled_from(["natural", "random", "degree", "bfs"]),
        passes=st.integers(1, 2),
    )
    def test_property_random_social_graphs(self, kernel, seed, k, order, passes):
        g = social_graph(300, 8.0, 2.4, rng=seed % 7)
        ref = _fennel_parts(g, k, kernel="scalar", order=order, rng=seed, passes=passes)
        out = _fennel_parts(g, k, kernel=kernel, order=order, rng=seed, passes=passes)
        assert np.array_equal(ref, out)


@pytest.mark.parametrize("kernel", NON_SCALAR)
class TestLDGParity:
    @pytest.mark.parametrize("order", ["natural", "random"])
    def test_assignments_identical(self, kernel, order):
        g = social_graph(900, 11.0, 2.3, rng=4)
        ref = LDGPartitioner(order=order, seed=8, kernel="scalar").partition(g, 6)
        out = LDGPartitioner(order=order, seed=8, kernel=kernel).partition(g, 6)
        assert np.array_equal(ref.assignment.parts, out.assignment.parts)

    def test_metadata_reports_backend(self, kernel):
        g = chung_lu(150, 6.0, rng=2)
        res = LDGPartitioner(kernel=kernel).partition(g, 3)
        assert res.metadata["kernel"] in available_kernels()


class TestBufferedContract:
    """The ISSUE-level guarantees for the chunked backend: never exceed
    the capacity bound, stay within ±10% edge-cut of scalar. (The
    implementation is in fact bit-exact — tested above — so these
    looser bounds hold a fortiori; they are what any future
    approximate chunk-resolution must still satisfy.)"""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_capacity_bound(self, seed):
        g = social_graph(2000, 14.0, 2.2, rng=seed)
        k, slack = 8, 1.1
        parts = stream_partition(
            g,
            k,
            vertex_weights=np.ones(g.num_vertices),
            alpha=default_alpha(g, k),
            slack=slack,
            kernel="buffered",
        )
        counts = np.bincount(parts, minlength=k)
        assert counts.max() <= slack * g.num_vertices / k + 1

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_edge_cut_within_tolerance(self, seed):
        g = social_graph(2000, 14.0, 2.2, rng=seed)
        ref = _fennel_parts(g, 8, kernel="scalar")
        buf = _fennel_parts(g, 8, kernel="buffered")
        cut_ref = edge_cut_ratio(g, ref)
        cut_buf = edge_cut_ratio(g, buf)
        assert abs(cut_buf - cut_ref) <= 0.1 * cut_ref

    def test_chunk_boundary_sizes(self):
        # n not divisible by the chunk size, n smaller than one chunk.
        for n in (40, 257, 512):
            g = chung_lu(n, 6.0, rng=n)
            ref = _fennel_parts(g, 4, kernel="scalar")
            buf = _fennel_parts(g, 4, kernel="buffered")
            assert np.array_equal(ref, buf)


class TestPartitionerKnob:
    @pytest.mark.parametrize("kernel", NON_SCALAR)
    def test_fennel_partitioner(self, powerlaw_small, kernel):
        ref = FennelPartitioner(kernel="scalar").partition(powerlaw_small, 8)
        out = FennelPartitioner(kernel=kernel).partition(powerlaw_small, 8)
        assert np.array_equal(ref.assignment.parts, out.assignment.parts)
        assert out.metadata["kernel"] == kernel

    @pytest.mark.parametrize("kernel", NON_SCALAR)
    def test_bpart_partitioner(self, powerlaw_small, kernel):
        ref = BPartPartitioner(kernel="scalar").partition(powerlaw_small, 4)
        out = BPartPartitioner(kernel=kernel).partition(powerlaw_small, 4)
        assert np.array_equal(ref.assignment.parts, out.assignment.parts)

    def test_invalid_kernel_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            FennelPartitioner(kernel="gpu")
        with pytest.raises(ConfigurationError):
            BPartPartitioner(kernel="gpu")

    def test_auto_is_default_and_resolved(self, powerlaw_small):
        res = FennelPartitioner().partition(powerlaw_small, 4)
        assert res.metadata["kernel"] == get_kernel("auto").name


class TestDynamicParity:
    @pytest.mark.parametrize("kernel", NON_SCALAR)
    def test_online_ingest_identical(self, kernel):
        g = chung_lu(500, 8.0, rng=77)
        ref = DynamicPartitioner(4, kernel="scalar")
        out = DynamicPartitioner(4, kernel=kernel)
        for v in range(g.num_vertices):
            assert ref.add_vertex(v, g.neighbors(v)) == out.add_vertex(v, g.neighbors(v))

    def test_churn_identical(self):
        g = chung_lu(300, 8.0, rng=78)
        ref = DynamicPartitioner(4, kernel="scalar")
        out = DynamicPartitioner(4, kernel="incremental")
        for v in range(g.num_vertices):
            ref.add_vertex(v, g.neighbors(v))
            out.add_vertex(v, g.neighbors(v))
        rng = np.random.default_rng(79)
        victims = rng.choice(g.num_vertices, size=90, replace=False)
        for v in victims:
            ref.remove_vertex(int(v))
            out.remove_vertex(int(v))
        for v in victims:
            assert ref.add_vertex(int(v), g.neighbors(int(v))) == out.add_vertex(
                int(v), g.neighbors(int(v))
            )


class TestEdgelessGraphs:
    """`default_alpha` guard: m = 0 must not collapse every vertex into
    part 0 (α = 0 → zero penalty → argmax always picks part 0)."""

    def test_alpha_positive_on_edgeless(self):
        from repro.graph import from_edges

        g = from_edges([], [], num_vertices=12)
        assert default_alpha(g, 3) > 0.0

    @pytest.mark.parametrize("kernel", sorted(set(available_kernels())))
    def test_round_robin_on_edgeless(self, kernel):
        from repro.graph import from_edges

        g = from_edges([], [], num_vertices=12)
        parts = stream_partition(
            g,
            3,
            vertex_weights=np.ones(12),
            alpha=default_alpha(g, 3),
            kernel=kernel,
        )
        # Positive penalty + no overlap signal → least-loaded each step.
        assert list(np.bincount(parts, minlength=3)) == [4, 4, 4]
        assert list(parts[:6]) == [0, 1, 2, 0, 1, 2]
