"""Unit tests for CSRGraph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import CSRGraph, from_edges


class TestConstruction:
    def test_basic_counts(self, triangle):
        assert triangle.num_vertices == 3
        assert triangle.num_edges == 6  # symmetrised arcs
        assert triangle.num_undirected_edges == 3

    def test_directed_flag(self):
        g = from_edges([0, 1], [1, 2], directed=True)
        assert g.directed
        assert g.num_edges == 2
        assert g.num_undirected_edges == 2

    def test_empty_graph(self):
        g = CSRGraph(np.array([0]), np.array([], dtype=np.int32))
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.avg_degree == 0.0

    def test_isolated_vertices_kept(self, isolated_vertices):
        assert isolated_vertices.num_vertices == 6
        assert isolated_vertices.degree(5) == 0

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([1, 2]), np.array([0], dtype=np.int32))

    def test_indptr_must_be_monotone(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 1], dtype=np.int32))

    def test_indptr_tail_must_match_indices(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 3]), np.array([0], dtype=np.int32))

    def test_indices_must_be_in_range(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 1]), np.array([5], dtype=np.int32))

    def test_arrays_are_frozen(self, triangle):
        with pytest.raises(ValueError):
            triangle.indices[0] = 0
        with pytest.raises(ValueError):
            triangle.indptr[0] = 1


class TestAccessors:
    def test_neighbors_sorted(self, k5):
        for v in range(5):
            nbrs = k5.neighbors(v)
            assert list(nbrs) == sorted(set(range(5)) - {v})

    def test_degrees_match_indptr(self, grid8x8):
        deg = grid8x8.degrees
        assert deg.sum() == grid8x8.num_edges
        # interior vertices of a grid have degree 4, corners 2
        assert deg.max() == 4
        assert deg.min() == 2

    def test_avg_degree(self, ring64):
        assert ring64.avg_degree == pytest.approx(2.0)

    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 1)
        assert triangle.has_edge(1, 0)
        assert not triangle.has_edge(0, 0)

    def test_edge_array_roundtrip(self, grid8x8):
        src, dst = grid8x8.edge_array()
        rebuilt = from_edges(src, dst, grid8x8.num_vertices, directed=True)
        assert np.array_equal(rebuilt.indptr, grid8x8.indptr)
        assert np.array_equal(rebuilt.indices, grid8x8.indices)

    def test_iter_edges(self, triangle):
        edges = set(triangle.iter_edges())
        assert edges == {(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)}


class TestDerived:
    def test_reverse_of_undirected_is_equal(self, grid8x8):
        assert grid8x8.reverse() == grid8x8

    def test_reverse_directed(self):
        g = from_edges([0, 0, 1], [1, 2, 2], directed=True)
        r = g.reverse()
        assert r.has_edge(1, 0)
        assert r.has_edge(2, 0)
        assert r.has_edge(2, 1)
        assert not r.has_edge(0, 1)

    def test_reverse_twice_identity(self):
        g = from_edges([0, 0, 1, 3], [1, 2, 2, 0], directed=True)
        assert g.reverse().reverse() == g

    def test_with_sorted_neighbors(self):
        # Build an unsorted CSR by hand (3 vertices, vertex 0 has all arcs).
        g = CSRGraph(np.array([0, 3, 3, 3]), np.array([2, 0, 1], dtype=np.int32),
                     directed=True)
        s = g.with_sorted_neighbors()
        assert list(s.neighbors(0)) == [0, 1, 2]

    def test_equality(self, triangle):
        other = from_edges([0, 1, 2], [1, 2, 0])
        assert triangle == other
        assert triangle != from_edges([0, 1], [1, 2])

    def test_repr(self, triangle):
        assert "n=3" in repr(triangle)


class TestFromEdges:
    def test_dedup(self):
        g = from_edges([0, 0, 0], [1, 1, 1])
        assert g.num_undirected_edges == 1

    def test_self_loops_dropped(self):
        g = from_edges([0, 1], [0, 2], num_vertices=3)
        assert g.num_undirected_edges == 1
        assert not g.has_edge(0, 0)

    def test_self_loops_kept_when_asked(self):
        g = from_edges([0], [0], num_vertices=2, drop_self_loops=False, directed=True)
        assert g.has_edge(0, 0)

    def test_num_vertices_override_too_small(self):
        with pytest.raises(GraphFormatError):
            from_edges([0], [5], num_vertices=3)

    def test_negative_ids_rejected(self):
        with pytest.raises(GraphFormatError):
            from_edges([-1], [0])

    def test_length_mismatch(self):
        with pytest.raises(GraphFormatError):
            from_edges([0, 1], [1])

    def test_empty_edge_list(self):
        g = from_edges([], [], num_vertices=4)
        assert g.num_vertices == 4
        assert g.num_edges == 0
