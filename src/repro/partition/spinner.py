"""Spinner-style partitioner via balanced label propagation.

Spinner (Martella et al., ICDE 2017 — the paper's reference [38])
partitions by label propagation over ``k`` partition labels: vertices
start with random labels and iteratively adopt the label most common
among their neighbours, *scaled by the label's remaining capacity*, so
the propagation converges to a balanced edge-cut partition without ever
streaming. It is the practical "in-system" repartitioner used by
Giraph-family deployments.

Score of label ``p`` for vertex ``v`` (Spinner's formulation, unweighted):

    score(v, p) = |N(v) ∩ V_p| / |N(v)| + c_bal · (1 − load_p / capacity)

Like the original, this implementation updates synchronously with a
keep-current-on-tie rule and stops when the fraction of vertices that
changed label drops below a threshold.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.assignment import PartitionAssignment
from repro.partition.base import Partitioner, register_partitioner
from repro.utils.rng import as_rng
from repro.utils.timing import WallClock
from repro.utils.validation import check_fraction, check_nonnegative, check_positive

__all__ = ["SpinnerPartitioner"]


class SpinnerPartitioner(Partitioner):
    """Balanced label-propagation partitioning.

    Parameters
    ----------
    iterations:     maximum LPA rounds.
    balance_weight: c_bal — strength of the capacity penalty.
    slack:          capacity factor ν over the vertex dimension.
    stop_fraction:  convergence threshold on the per-round fraction of
                    relabelled vertices.
    """

    name = "spinner"

    def __init__(
        self,
        *,
        iterations: int = 40,
        balance_weight: float = 1.0,
        slack: float = 1.05,
        stop_fraction: float = 0.002,
        seed: int = 0,
    ) -> None:
        check_positive("iterations", iterations)
        check_nonnegative("balance_weight", balance_weight)
        check_positive("slack", slack)
        check_fraction("stop_fraction", stop_fraction)
        self._iterations = int(iterations)
        self._c_bal = float(balance_weight)
        self._slack = float(slack)
        self._stop = float(stop_fraction)
        self._seed = seed

    def _partition(
        self, graph: CSRGraph, num_parts: int, clock: WallClock
    ) -> tuple[PartitionAssignment, dict[str, Any]]:
        rng = as_rng(self._seed)
        n = graph.num_vertices
        k = num_parts
        parts = rng.integers(0, k, size=n).astype(np.int32)
        capacity = self._slack * n / k
        indptr, indices = graph.indptr, graph.indices
        degrees = np.maximum(graph.degrees, 1).astype(np.float64)
        src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)

        rounds_run = 0
        with clock.measure("propagate"):
            for _ in range(self._iterations):
                rounds_run += 1
                loads = np.bincount(parts, minlength=k).astype(np.float64)
                # Neighbour-label histogram per vertex, vectorised: count
                # (vertex, label) pairs over all arcs.
                flat = src * k + parts[indices]
                pair_counts = np.bincount(flat, minlength=n * k).reshape(n, k)
                affinity = pair_counts / degrees[:, None]
                balance = self._c_bal * (1.0 - loads / capacity)
                scores = affinity + balance[None, :]
                # Keep-current-on-tie: nudge the current label's score up
                # by an epsilon so argmax prefers it, damping oscillation.
                rows = np.arange(n)
                scores[rows, parts] += 1e-9
                desired = np.argmax(scores, axis=1).astype(np.int32)
                movers = desired != parts
                if not movers.any():
                    break
                # Migration quotas (Spinner's key mechanism): synchronous
                # moves would stampede into the currently-lightest label,
                # so each destination only admits as many migrants as its
                # remaining capacity, highest score-gain first.
                gain = scores[rows, desired] - scores[rows, parts]
                changed_count = 0
                mover_ids = np.nonzero(movers)[0]
                for p in range(k):
                    into_p = mover_ids[desired[mover_ids] == p]
                    if into_p.size == 0:
                        continue
                    quota = int(max(capacity - loads[p], 0))
                    if quota == 0:
                        continue
                    if into_p.size > quota:
                        take = into_p[np.argsort(-gain[into_p], kind="stable")[:quota]]
                    else:
                        take = into_p
                    loads[p] += take.size
                    # releases are accounted next round (loads is
                    # recomputed from scratch at the top of the loop)
                    parts[take] = p
                    changed_count += take.size
                if changed_count / n < self._stop:
                    break

        return (
            PartitionAssignment(graph, parts, num_parts),
            {"rounds": rounds_run},
        )


register_partitioner("spinner", SpinnerPartitioner)
