"""BPart — the paper's two-dimensional balanced partitioner (§3).

Two phases per layer:

1. **Partitioning** (§3.2): a Fennel-style streaming pass whose balance
   penalty uses the weighted indicator of Eq. 1,

       W_i = c·|V_i| + (1 − c)·|E_i| / d̄,

   plugged into the score of Eq. 2,

       S(v, G_i) = |V_i ∩ N(v)| − α·γ·W_i^{γ−1}.

   Because every part converges to equal ``W_i``, a part with fewer
   vertices must hold more edges — the distributions come out *inversely
   proportional* (Figure 8), which is exactly what makes them
   combinable.

2. **Combining** (§3.3): over-split into ``2^ℓ · N_r`` pieces at layer
   ``ℓ``, pair smallest-|V| with largest-|V| for ``ℓ`` rounds, finalise
   the merged subgraphs that hit both balance thresholds, recurse on the
   rest (delegated to :func:`repro.partition.combine.multi_layer_combine`).

The standalone :func:`weighted_stream_partition` exposes phase 1 alone —
Figure 8 plots its output at 64 pieces.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition._streamcore import default_alpha, stream_partition
from repro.partition.assignment import PartitionAssignment
from repro.partition.base import Partitioner, register_partitioner
from repro.partition.combine import multi_layer_combine
from repro.partition.kernels import resolve_kernel_name
from repro.utils.timing import WallClock
from repro.utils.validation import check_fraction, check_positive, check_probability

__all__ = ["BPartPartitioner", "weighted_stream_partition", "bpart_vertex_weights"]


def bpart_vertex_weights(graph: CSRGraph, c: float) -> np.ndarray:
    """Per-vertex load increments realising Eq. 1.

    Assigning vertex ``v`` to part ``i`` adds 1 to ``|V_i|`` and
    ``deg(v)`` to ``|E_i|``, hence adds ``c + (1 − c)·deg(v)/d̄`` to
    ``W_i``. The weights sum to ``n`` (since Σdeg = n·d̄), so the
    capacity bound matches Fennel's.
    """
    d_bar = graph.avg_degree
    if d_bar == 0:
        return np.ones(graph.num_vertices)
    return c + (1.0 - c) * graph.degrees / d_bar


def weighted_stream_partition(
    graph: CSRGraph,
    num_pieces: int,
    *,
    c: float = 0.5,
    alpha: float | None = None,
    gamma: float = 1.5,
    slack: float = 1.1,
    order: str = "natural",
    rng=None,
    passes: int = 1,
    kernel: str = "auto",
    jobs: int | None = None,
) -> np.ndarray:
    """Phase-1 streaming pass with the weighted indicator (Eq. 1 + 2)."""
    check_probability("c", c)
    if alpha is None:
        alpha = default_alpha(graph, num_pieces)
    return stream_partition(
        graph,
        num_pieces,
        vertex_weights=bpart_vertex_weights(graph, c),
        alpha=alpha,
        gamma=gamma,
        slack=slack,
        order=order,
        rng=rng,
        passes=passes,
        kernel=kernel,
        jobs=jobs,
    )


class BPartPartitioner(Partitioner):
    """The full two-phase BPart scheme.

    Parameters
    ----------
    c:
        Weighting factor of Eq. 1 between vertex and edge balance.
        ``c = 1`` degenerates to Fennel's vertex indicator, ``c = 0`` to
        a pure edge indicator; the paper's empirical default is ½.
    balance_threshold:
        ε of the combining phase: a merged subgraph is final when both
        ``|V_i|`` and ``|E_i|`` are within ``(1 ± ε)`` of target.
    max_layers:
        Combination layer cap (the paper observes 2–3 layers suffice).
    oversplit_base:
        Pieces per target per combine round (paper: 2).
    base_rounds:
        Combine rounds in the first layer (default 2, i.e. 4N pieces;
        see :func:`repro.partition.combine.multi_layer_combine`).
    alpha, gamma, slack, order:
        Streaming-score knobs shared with Fennel.
    passes:
        Re-streaming passes per phase-1 invocation (ReFennel-style).
    kernel:
        Streaming-loop backend (:mod:`repro.partition.kernels`). BPart
        streams the graph ``2^ℓ·N`` pieces × layers × passes times, so
        the backend choice multiplies across the whole combine schedule;
        all backends are bit-exact, so results are unchanged.
    refine:
        Run balance-preserving FM-style boundary refinement
        (:func:`repro.partition.refine.refine_assignment`) after the
        combining phase: trades the residual balance slack (up to the
        ε envelope) for a lower edge cut.
    jobs:
        Worker processes for the parallel streaming backend (explicit
        value beats ``$REPRO_JOBS`` beats 1). With ``kernel="auto"`` and
        ``jobs > 1`` every phase-1 stream fans its chunk scoring over
        workers; assignments stay bit-identical at every jobs value.
    """

    name = "bpart"

    def __init__(
        self,
        *,
        c: float = 0.5,
        balance_threshold: float = 0.1,
        max_layers: int = 3,
        oversplit_base: int = 2,
        base_rounds: int = 2,
        alpha: float | None = None,
        gamma: float = 1.5,
        slack: float = 1.1,
        order: str = "natural",
        seed: int | None = None,
        passes: int = 1,
        kernel: str = "auto",
        jobs: int | None = None,
        refine: bool = False,
    ) -> None:
        check_probability("c", c)
        check_positive("passes", passes)
        self._passes = int(passes)
        self._refine = bool(refine)
        check_fraction("balance_threshold", balance_threshold)
        check_positive("max_layers", max_layers)
        if oversplit_base < 2:
            raise ValueError("oversplit_base must be >= 2")
        check_positive("base_rounds", base_rounds)
        self._base_rounds = int(base_rounds)
        self._c = c
        self._threshold = balance_threshold
        self._max_layers = int(max_layers)
        self._oversplit = int(oversplit_base)
        self._alpha = alpha
        self._gamma = gamma
        self._slack = slack
        self._order = order
        self._seed = seed
        self._jobs = jobs
        self._kernel = resolve_kernel_name(kernel, jobs)

    def _partition(
        self, graph: CSRGraph, num_parts: int, clock: WallClock
    ) -> tuple[PartitionAssignment, dict[str, Any]]:
        def phase1(sub: CSRGraph, pieces: int) -> np.ndarray:
            with clock.measure("stream"):
                return weighted_stream_partition(
                    sub,
                    pieces,
                    c=self._c,
                    alpha=self._alpha,
                    gamma=self._gamma,
                    slack=self._slack,
                    order=self._order,
                    rng=self._seed,
                    passes=self._passes,
                    kernel=self._kernel,
                    jobs=self._jobs,
                )

        with clock.measure("combine"):
            parts, traces = multi_layer_combine(
                graph,
                phase1,
                num_parts,
                oversplit_base=self._oversplit,
                base_rounds=self._base_rounds,
                balance_threshold=self._threshold,
                max_layers=self._max_layers,
            )
        metadata = {
            "c": self._c,
            "kernel": self._kernel,
            "layers": [
                {
                    "layer": t.layer,
                    "pieces": t.num_pieces,
                    "finalized": list(t.finalized),
                    "vertex_bias": t.vertex_bias_after,
                    "edge_bias": t.edge_bias_after,
                }
                for t in traces
            ],
        }
        assignment = PartitionAssignment(graph, parts, num_parts)
        if self._refine:
            from repro.partition.refine import refine_assignment

            with clock.measure("refine"):
                assignment = refine_assignment(
                    assignment, epsilon=self._threshold, rounds=5
                )
            metadata["refined"] = True
        return assignment, metadata


register_partitioner("bpart", BPartPartitioner)
