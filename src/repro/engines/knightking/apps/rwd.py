"""Random walk with domination (after Li et al., ICDE 2014).

The original RWD problem selects walks that maximise the number of
*dominated* (visited-or-adjacent) vertices. KnightKing's benchmark runs
its walk primitive: a fixed-length walk whose step distribution is
biased toward vertices that extend domination — in practice, toward
high-degree neighbours, since a high-degree vertex dominates the most
new neighbours.

We reproduce that walk primitive with the classic two-candidate power
rule: sample two uniform neighbour candidates and move to the one with
the larger degree. This keeps the step O(1), fully vectorised, and
reproduces the behaviour that matters for the paper's experiments — RWD
walkers pile onto hub vertices, making its load *more* sensitive to
edge imbalance than DeepWalk's (see EXPERIMENTS.md). The substitution is
recorded in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.engines.knightking.apps.base import WalkApp
from repro.engines.knightking.transition import uniform_neighbor
from repro.graph.csr import CSRGraph

__all__ = ["RWD"]


class RWD(WalkApp):
    """Degree-greedy two-candidate walk (domination-biased)."""

    name = "rwd"

    def advance(
        self,
        graph: CSRGraph,
        positions: np.ndarray,
        previous: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        cand_a, dead_a = uniform_neighbor(graph, positions, rng)
        cand_b, _ = uniform_neighbor(graph, positions, rng)
        deg = graph.degrees
        take_b = deg[cand_b] > deg[cand_a]
        targets = np.where(take_b, cand_b, cand_a)
        return targets, dead_a
