"""Unit tests for TrafficMatrix and BSPCluster."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import BSPCluster, CostModel, NetworkModel, TrafficMatrix
from repro.errors import SimulationError


class TestTrafficMatrix:
    def test_from_pairs_drops_local(self):
        tm = TrafficMatrix.from_pairs(3, np.array([0, 0, 1]), np.array([0, 1, 2]))
        assert tm.total == 2
        assert tm.counts[0, 1] == 1
        assert tm.counts[1, 2] == 1
        assert tm.counts[0, 0] == 0

    def test_sent_received(self):
        tm = TrafficMatrix.from_pairs(3, np.array([0, 0, 2]), np.array([1, 2, 1]))
        assert list(tm.sent) == [2, 0, 1]
        assert list(tm.received) == [0, 2, 1]

    def test_add(self):
        tm = TrafficMatrix(2)
        tm.add(0, 1, 5)
        tm.add(1, 1, 9)  # local: ignored
        assert tm.total == 5

    def test_iadd(self):
        a = TrafficMatrix.from_pairs(2, np.array([0]), np.array([1]))
        b = TrafficMatrix.from_pairs(2, np.array([0]), np.array([1]))
        a += b
        assert a.counts[0, 1] == 2

    def test_machine_range_check(self):
        with pytest.raises(SimulationError):
            TrafficMatrix.from_pairs(2, np.array([0]), np.array([5]))

    def test_length_mismatch(self):
        with pytest.raises(SimulationError):
            TrafficMatrix.from_pairs(2, np.array([0, 1]), np.array([1]))

    def test_size_mismatch_iadd(self):
        with pytest.raises(SimulationError):
            TrafficMatrix(2).__iadd__(TrafficMatrix(3))


class TestBSPCluster:
    def test_superstep_accounting(self):
        cl = BSPCluster(
            2,
            cost_model=CostModel(step_cost=1e-6, cores=1, edge_cost=0, vertex_cost=0),
            network=NetworkModel(bandwidth=1e6, latency=0.0, message_bytes=1),
        )
        cl.begin_run()
        tm = TrafficMatrix.from_pairs(2, np.array([0]), np.array([1]))
        cl.superstep(steps=np.array([100.0, 50.0]), traffic=tm)
        ledger = cl.ledger
        assert ledger.num_iterations == 1
        assert ledger.compute_matrix[0, 0] == pytest.approx(100e-6)
        assert cl.total_messages == 1

    def test_requires_begin_run(self):
        cl = BSPCluster(2)
        with pytest.raises(SimulationError):
            cl.superstep()
        with pytest.raises(SimulationError):
            _ = cl.ledger

    def test_begin_run_resets(self):
        cl = BSPCluster(2)
        cl.begin_run()
        cl.superstep(steps=np.ones(2))
        cl.begin_run()
        assert cl.ledger.num_iterations == 0
        assert cl.total_messages == 0

    def test_traffic_size_check(self):
        cl = BSPCluster(2)
        cl.begin_run()
        with pytest.raises(SimulationError):
            cl.superstep(traffic=TrafficMatrix(3))

    def test_invalid_machine_count(self):
        with pytest.raises(SimulationError):
            BSPCluster(0)

    def test_silent_superstep_pays_latency(self):
        cl = BSPCluster(2, network=NetworkModel(latency=1e-3))
        cl.begin_run()
        cl.superstep()
        assert cl.ledger.total_runtime == pytest.approx(1e-3)
