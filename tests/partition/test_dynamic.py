"""Tests for the online / churn partitioner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import chung_lu, social_graph
from repro.partition import PartitionAssignment, bias, edge_cut_ratio
from repro.partition.dynamic import DynamicPartitioner


def feed_graph(dp: DynamicPartitioner, g) -> None:
    for v in range(g.num_vertices):
        dp.add_vertex(v, g.neighbors(v))


class TestOnlineIngestion:
    def test_quality_matches_streaming_with_fixed_alpha(self):
        """Capacity-planning mode runs the same scoring law as the
        offline streaming pass. A single floating-point tie-break can
        cascade into different (equally valid) assignments, so the
        equivalence claim is about *quality*: the balance profile and
        cut ratio must match the offline pass closely."""
        from repro.partition._streamcore import default_alpha, stream_partition
        from repro.partition.bpart import bpart_vertex_weights

        g = chung_lu(800, 10.0, rng=140)
        alpha = default_alpha(g, 4)
        offline = stream_partition(
            g, 4, vertex_weights=bpart_vertex_weights(g, 0.5), alpha=alpha
        )
        dp = DynamicPartitioner(
            4,
            c=0.5,
            alpha=alpha,
            avg_degree=g.avg_degree,
            expected_vertices=g.num_vertices,
        )
        feed_graph(dp, g)
        online = dp.assignment_for(g)
        assert np.allclose(
            np.sort(dp.vertex_counts),
            np.sort(np.bincount(offline, minlength=4)),
            atol=g.num_vertices * 0.03,
        )
        cut_on = edge_cut_ratio(g, online)
        cut_off = edge_cut_ratio(g, offline)
        assert abs(cut_on - cut_off) < 0.05

    def test_balance_maintained_online(self):
        g = social_graph(3000, 14.0, 2.2, rng=141)
        dp = DynamicPartitioner(8)
        feed_graph(dp, g)
        vb, eb = dp.balance()
        assert vb < 0.25
        assert eb < 0.25

    def test_counts_match_graph(self):
        g = chung_lu(500, 8.0, rng=142)
        dp = DynamicPartitioner(4)
        feed_graph(dp, g)
        assert dp.vertex_counts.sum() == g.num_vertices
        assert dp.edge_counts.sum() == g.num_edges

    def test_assignment_is_valid_partition(self):
        g = chung_lu(400, 8.0, rng=143)
        dp = DynamicPartitioner(4)
        feed_graph(dp, g)
        a = PartitionAssignment(g, dp.assignment_for(g), 4)
        assert 0 <= edge_cut_ratio(g, a.parts) <= 1

    def test_duplicate_add_rejected(self):
        dp = DynamicPartitioner(2)
        dp.add_vertex(0, [])
        with pytest.raises(PartitionError):
            dp.add_vertex(0, [])

    def test_contains_and_part_of(self):
        dp = DynamicPartitioner(2)
        p = dp.add_vertex(7, [])
        assert 7 in dp
        assert dp.part_of(7) == p
        with pytest.raises(PartitionError):
            dp.part_of(8)


class TestChurn:
    def test_remove_releases_load(self):
        dp = DynamicPartitioner(2)
        p = dp.add_vertex(0, [1, 2, 3])
        assert dp.vertex_counts[p] == 1
        assert dp.edge_counts[p] == 3
        assert dp.remove_vertex(0) == p
        assert dp.vertex_counts.sum() == 0
        assert dp.edge_counts.sum() == 0

    def test_remove_absent_rejected(self):
        dp = DynamicPartitioner(2)
        with pytest.raises(PartitionError):
            dp.remove_vertex(4)

    def test_balance_survives_churn(self):
        g = social_graph(2000, 12.0, rng=144)
        dp = DynamicPartitioner(4)
        feed_graph(dp, g)
        rng = np.random.default_rng(145)
        # churn 30% of vertices: remove then re-add
        victims = rng.choice(g.num_vertices, size=600, replace=False)
        for v in victims:
            dp.remove_vertex(int(v))
        for v in victims:
            dp.add_vertex(int(v), g.neighbors(int(v)))
        vb, eb = dp.balance()
        assert vb < 0.3
        assert eb < 0.3
        assert dp.num_vertices == g.num_vertices

    def test_empty_balance(self):
        dp = DynamicPartitioner(4)
        assert dp.balance() == (0.0, 0.0)

    def test_repr(self):
        dp = DynamicPartitioner(2)
        dp.add_vertex(0, [])
        assert "k=2" in repr(dp)
