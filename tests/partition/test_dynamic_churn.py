"""DynamicPartitioner under interleaved insert/delete bursts.

The serving story assumes the online partitioner stays valid while the
vertex set churns (users joining and leaving between traffic waves).
These tests drive a deterministic churn schedule — alternating insert
and delete bursts with re-insertion — and check the two properties the
layer depends on: every resident vertex always maps to a valid part
with exact counter accounting, and the whole schedule replays
bit-identically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import social_graph
from repro.partition.dynamic import DynamicPartitioner
from repro.utils.rng import derive_rng


def churn_schedule(dp: DynamicPartitioner, g, *, bursts: int = 6, seed: int = 0) -> dict:
    """Run a deterministic insert/delete churn; returns v → part.

    Each burst inserts the next slice of vertices, then removes a
    seeded sample of residents, then re-inserts the removed vertices
    (their neighbour lists unchanged) — the join/leave/rejoin pattern
    of a user-facing service.
    """
    shadow: dict[int, int] = {}
    n = g.num_vertices
    slice_size = n // bursts
    rng = derive_rng(seed, 0xC1)
    for burst in range(bursts):
        lo, hi = burst * slice_size, min((burst + 1) * slice_size, n)
        for v in range(lo, hi):
            shadow[v] = dp.add_vertex(v, g.neighbors(v))
        residents = sorted(shadow)
        leave = rng.choice(len(residents), size=max(1, len(residents) // 8), replace=False)
        leaving = [residents[i] for i in sorted(leave.tolist())]
        for v in leaving:
            dp.remove_vertex(v)
            del shadow[v]
        for v in leaving:
            shadow[v] = dp.add_vertex(v, g.neighbors(v))
    return shadow


@pytest.fixture(scope="module")
def graph():
    return social_graph(1800, 10.0, 2.2, rng=33)


def test_assignment_stays_valid_under_churn(graph):
    dp = DynamicPartitioner(6, avg_degree=graph.avg_degree, expected_vertices=graph.num_vertices)
    shadow = churn_schedule(dp, graph, seed=5)
    assert dp.num_vertices == len(shadow) == graph.num_vertices
    for v, part in shadow.items():
        assert 0 <= part < 6
        assert dp.part_of(v) == part
        assert v in dp


def test_counter_accounting_is_exact(graph):
    dp = DynamicPartitioner(4, avg_degree=graph.avg_degree)
    shadow = churn_schedule(dp, graph, bursts=4, seed=9)
    expected_v = np.bincount([p for p in shadow.values()], minlength=4)
    np.testing.assert_array_equal(dp.vertex_counts, expected_v)
    expected_e = np.zeros(4, dtype=np.int64)
    for v, part in shadow.items():
        expected_e[part] += graph.neighbors(v).size
    np.testing.assert_array_equal(dp.edge_counts, expected_e)
    assert dp.vertex_counts.sum() == graph.num_vertices


def test_churn_schedule_is_deterministic(graph):
    outcomes = []
    for _ in range(2):
        dp = DynamicPartitioner(6, avg_degree=graph.avg_degree, expected_vertices=graph.num_vertices)
        outcomes.append(churn_schedule(dp, graph, seed=7))
    assert outcomes[0] == outcomes[1]


def test_balance_survives_churn(graph):
    dp = DynamicPartitioner(6, avg_degree=graph.avg_degree, expected_vertices=graph.num_vertices)
    churn_schedule(dp, graph, seed=3)
    vb, eb = dp.balance()
    # Churn degrades balance relative to a clean feed, but it must stay
    # bounded — the re-partition signal, not a collapse.
    assert 0.0 <= vb < 0.6
    assert 0.0 <= eb < 0.6


def test_edge_counts_exact_while_departed(graph):
    """Regression: ``remove_vertex`` must release the *neighbours'*
    stubs too, not just the departing vertex's own degree.

    Before reverse-stub tracking, every resident kept counting its full
    adjacency after a neighbour left, so ``edge_counts`` drifted upward
    monotonically under churn. This drives randomized add/remove cycles
    and checks the counters against a shadow model at every mid-churn
    state — i.e. while the departed set is non-empty, which the
    rejoin-everything schedules above never exercise.
    """
    k = 5
    dp = DynamicPartitioner(k, avg_degree=graph.avg_degree)
    rng = derive_rng(17, 0xD01F)
    resident: dict[int, int] = {}
    departed: set[int] = set()
    never_arrived = set(range(graph.num_vertices))

    def check() -> None:
        expected = np.zeros(k, dtype=np.int64)
        for v, part in resident.items():
            live = sum(1 for w in graph.neighbors(v) if int(w) not in departed)
            assert dp.degree_of(v) == live
            expected[part] += live
        np.testing.assert_array_equal(dp.edge_counts, expected)
        assert dp.edge_counts.sum() == expected.sum()

    for step in range(400):
        roll = rng.random()
        if roll < 0.55 and (never_arrived or departed):
            pool = sorted(never_arrived) if never_arrived else sorted(departed)
            v = pool[int(rng.integers(len(pool)))]
            never_arrived.discard(v)
            departed.discard(v)
            resident[v] = dp.add_vertex(v, graph.neighbors(v))
        elif resident:
            ids = sorted(resident)
            v = ids[int(rng.integers(len(ids)))]
            dp.remove_vertex(v)
            del resident[v]
            departed.add(v)
        if step % 25 == 0:
            check()
    assert departed, "schedule must end mid-churn to exercise the fix"
    check()


def test_edge_churn_counters_exact(graph):
    """add_edge / remove_edge keep the same invariant as vertex churn."""
    k = 4
    dp = DynamicPartitioner(k, avg_degree=graph.avg_degree)
    parts = {}
    for v in range(300):
        parts[v] = dp.add_vertex(v, [w for w in graph.neighbors(v) if w < 300])
    adj = {v: {int(w) for w in graph.neighbors(v) if w < 300} for v in range(300)}
    rng = derive_rng(23, 0xED6E)
    for _ in range(200):
        u, v = int(rng.integers(300)), int(rng.integers(300))
        if u == v:
            continue
        if rng.random() < 0.5:
            changed = dp.add_edge(u, v)
            assert changed == (v not in adj[u] or u not in adj[v])
            adj[u].add(v)
            adj[v].add(u)
        else:
            changed = dp.remove_edge(u, v)
            assert changed == (v in adj[u] or u in adj[v])
            adj[u].discard(v)
            adj[v].discard(u)
    expected = np.zeros(k, dtype=np.int64)
    for v, part in parts.items():
        assert dp.degree_of(v) == len(adj[v])
        expected[part] += len(adj[v])
    np.testing.assert_array_equal(dp.edge_counts, expected)


def test_move_vertex_transfers_counters(graph):
    dp = DynamicPartitioner(3, avg_degree=graph.avg_degree)
    for v in range(60):
        dp.add_vertex(v, graph.neighbors(v))
    v0 = dp.vertex_counts.copy()
    e0 = dp.edge_counts.copy()
    victim = 7
    old = dp.part_of(victim)
    new = (old + 1) % 3
    deg = dp.degree_of(victim)
    assert dp.move_vertex(victim, new) == old
    assert dp.part_of(victim) == new
    assert dp.vertex_counts[old] == v0[old] - 1
    assert dp.vertex_counts[new] == v0[new] + 1
    assert dp.edge_counts[old] == e0[old] - deg
    assert dp.edge_counts[new] == e0[new] + deg
    # moving to the same part is a no-op
    assert dp.move_vertex(victim, new) == new
    np.testing.assert_array_equal(dp.vertex_counts.sum(), v0.sum())


def test_empty_after_full_drain(graph):
    dp = DynamicPartitioner(3, avg_degree=graph.avg_degree)
    shadow = {}
    for v in range(100):
        shadow[v] = dp.add_vertex(v, graph.neighbors(v))
    for v in sorted(shadow):
        dp.remove_vertex(v)
    assert dp.num_vertices == 0
    assert dp.balance() == (0.0, 0.0)
    np.testing.assert_array_equal(dp.vertex_counts, np.zeros(3, dtype=np.int64))
    # and the partitioner accepts a fresh wave afterwards
    assert 0 <= dp.add_vertex(0, graph.neighbors(0)) < 3
