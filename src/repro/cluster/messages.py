"""Per-superstep message traffic bookkeeping.

A :class:`TrafficMatrix` is an ``M × M`` count of messages from machine
``i`` to machine ``j`` within one superstep. Engines fill it (walker
transmissions in KnightKing, vertex updates in Gemini); the cluster
derives per-machine sent/received vectors for the network model, and
Figure 5b's "total message walks" is the sum over all supersteps.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

__all__ = ["TrafficMatrix"]


class TrafficMatrix:
    """Dense ``M × M`` message-count matrix for one superstep."""

    __slots__ = ("_counts",)

    def __init__(self, num_machines: int) -> None:
        if num_machines <= 0:
            raise SimulationError(f"num_machines must be positive, got {num_machines}")
        self._counts = np.zeros((num_machines, num_machines), dtype=np.int64)

    @classmethod
    def from_pairs(
        cls, num_machines: int, src_machines: np.ndarray, dst_machines: np.ndarray
    ) -> "TrafficMatrix":
        """Build from parallel source/destination machine-id arrays.

        Intra-machine pairs are dropped (local delivery is free).
        Vectorised: one ``bincount`` over flattened pair ids.
        """
        tm = cls(num_machines)
        src = np.asarray(src_machines, dtype=np.int64)
        dst = np.asarray(dst_machines, dtype=np.int64)
        if src.size != dst.size:
            raise SimulationError("src and dst machine arrays differ in length")
        if src.size:
            if src.min() < 0 or src.max() >= num_machines or dst.min() < 0 or dst.max() >= num_machines:
                raise SimulationError("machine id outside cluster")
            cross = src != dst
            flat = src[cross] * num_machines + dst[cross]
            counts = np.bincount(flat, minlength=num_machines * num_machines)
            tm._counts += counts.reshape(num_machines, num_machines)
        return tm

    @classmethod
    def from_counts(cls, counts: np.ndarray) -> "TrafficMatrix":
        """Build from a dense per-pair count matrix.

        The diagonal is zeroed — local delivery is free, matching
        :meth:`from_pairs`. Used by the parallel engine path, which
        merges per-machine rows computed by pool workers.
        """
        arr = np.asarray(counts, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise SimulationError(f"counts must be a square matrix, got {arr.shape}")
        tm = cls(arr.shape[0])
        tm._counts += arr
        np.fill_diagonal(tm._counts, 0)
        return tm

    @property
    def counts(self) -> np.ndarray:
        """The raw matrix (view)."""
        return self._counts

    @property
    def num_machines(self) -> int:
        return self._counts.shape[0]

    def add(self, src: int, dst: int, count: int = 1) -> None:
        """Record ``count`` messages ``src → dst`` (no-op if same machine)."""
        if src != dst:
            self._counts[src, dst] += count

    @property
    def sent(self) -> np.ndarray:
        """Messages sent per machine (row sums)."""
        return self._counts.sum(axis=1)

    @property
    def received(self) -> np.ndarray:
        """Messages received per machine (column sums)."""
        return self._counts.sum(axis=0)

    @property
    def total(self) -> int:
        """Total cross-machine messages this superstep."""
        return int(self._counts.sum())

    def __iadd__(self, other: "TrafficMatrix") -> "TrafficMatrix":
        if other.num_machines != self.num_machines:
            raise SimulationError("traffic matrices of different cluster sizes")
        self._counts += other._counts
        return self
