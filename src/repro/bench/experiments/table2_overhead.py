"""Table 2 — wall-clock partition overhead (seconds), k = 8.

The paper's ordering: Chunk-V ≈ Chunk-E ≪ Hash < Fennel < BPart, with
BPart's extra cost coming from multiple combination layers. Absolute
seconds differ (their graphs are 10^3× larger), but the ordering and
rough ratios are the reproducible content.
"""

from __future__ import annotations

from repro.bench.experiments._common import DATASET_ORDER, graph_for, partition_with
from repro.bench.harness import ExperimentConfig, ExperimentResult, register_experiment
from repro.bench.report import Table

ALGOS = ("chunk-v", "chunk-e", "hash", "fennel", "bpart")
K = 8


@register_experiment("table2", "Partition time overhead in seconds (k = 8)")
def run(config: ExperimentConfig) -> ExperimentResult:
    result = ExperimentResult("table2", "Partition time overhead in seconds (k = 8)")
    table = Table(
        "Wall-clock seconds per partitioner",
        ["algorithm"] + list(DATASET_ORDER),
        note="ordering Chunk << Hash < Fennel < BPart (paper: 0.17s .. 210s at full scale)",
    )
    times: dict[str, dict[str, float]] = {name: {} for name in ALGOS}
    for dataset in DATASET_ORDER:
        g = graph_for(config, dataset)
        for name in ALGOS:
            # This experiment *measures* partitioning cost, so it must
            # never read a cached assignment (the run would report the
            # replayed clock of some earlier process). bypass_cache
            # still stores, warming the cache for the other figures.
            res = partition_with(name, g, K, seed=config.seed, bypass_cache=True)
            times[name][dataset] = res.elapsed
    for name in ALGOS:
        table.add_row(name, *[times[name][d] for d in DATASET_ORDER])
    result.tables.append(table)
    result.data = times
    return result
