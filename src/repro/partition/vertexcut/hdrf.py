"""HDRF — High-Degree (are) Replicated First (Petroni et al., CIKM 2015).

Streaming edge partitioner scoring every part for each incoming edge:

    C(u, v, p) = C_rep + λ · C_bal
    C_rep      = g(u, p) + g(v, p)
    g(x, p)    = (1 + (1 − θ(x))) if x already has a replica in p else 0
    θ(u)       = d(u) / (d(u) + d(v))      (normalised partial degree)
    C_bal      = (maxsize − size(p)) / (ε + maxsize − minsize)

The degree-weighting makes the *low*-degree endpoint's existing replica
worth more than the hub's, so hubs absorb the replication (like DBH)
while the greedy replica-reuse term keeps the replication factor lower
than any hashing scheme. Sequential by nature; the per-edge body is a
handful of NumPy ops over ``k`` parts.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.partition.vertexcut.base import EdgePartitioner
from repro.utils.validation import check_nonnegative

__all__ = ["HDRFPartitioner"]


class HDRFPartitioner(EdgePartitioner):
    """Streaming HDRF scoring.

    Parameters
    ----------
    lam:
        λ — weight of the balance term (the original paper evaluates
        λ = 1.1; larger values trade replication for tighter balance).
    slack:
        Hard capacity factor ν: parts holding ≥ ν·m/k edges are excluded
        from the argmax. Without a hard cap the greedy replica-reuse
        term chains every edge of a connected graph into one part.
    """

    name = "hdrf"

    def __init__(self, *, lam: float = 1.1, slack: float = 1.15) -> None:
        check_nonnegative("lam", lam)
        if slack < 1.0:
            raise ConfigurationError(f"slack must be >= 1, got {slack}")
        self._lam = float(lam)
        self._slack = float(slack)

    def _assign(
        self, graph: CSRGraph, src: np.ndarray, dst: np.ndarray, num_parts: int
    ) -> np.ndarray:
        n = graph.num_vertices
        k = num_parts
        out = np.empty(src.size, dtype=np.int32)
        # replica[v] is a k-bit mask of the parts v already lives in.
        replicas = np.zeros(n, dtype=np.uint64) if k <= 64 else None
        replica_table = None if k <= 64 else np.zeros((n, k), dtype=bool)
        partial_degree = np.zeros(n, dtype=np.int64)
        sizes = np.zeros(k, dtype=np.float64)
        bit = (np.uint64(1) << np.arange(k, dtype=np.uint64)) if k <= 64 else None
        eps = 1e-9
        capacity = self._slack * max(src.size, 1) / k

        for i in range(src.size):
            u, v = int(src[i]), int(dst[i])
            partial_degree[u] += 1
            partial_degree[v] += 1
            du, dv = partial_degree[u], partial_degree[v]
            theta_u = du / (du + dv)
            theta_v = 1.0 - theta_u
            if replicas is not None:
                in_u = (replicas[u] & bit) != 0
                in_v = (replicas[v] & bit) != 0
            else:
                in_u = replica_table[u]
                in_v = replica_table[v]
            c_rep = in_u * (2.0 - theta_u) + in_v * (2.0 - theta_v)
            maxsize, minsize = sizes.max(), sizes.min()
            c_bal = (maxsize - sizes) / (eps + maxsize - minsize)
            score = c_rep + self._lam * c_bal
            score[sizes >= capacity] = -np.inf
            p = int(np.argmax(score))
            out[i] = p
            sizes[p] += 1.0
            if replicas is not None:
                replicas[u] |= bit[p]
                replicas[v] |= bit[p]
            else:
                replica_table[u, p] = True
                replica_table[v, p] = True
        return out
