"""Extension — vertex-cut family comparison (§5 related work).

The paper's related work contrasts edge-cut partitioning (BPart's
family) with vertex-cut schemes [PowerGraph, DBH, HDRF], which balance
edges perfectly but pay *replication* instead of edge cuts. This
experiment puts both families on one table: replication factor and edge
balance for the vertex-cut schemes, against BPart's cut ratio and 2-D
balance, on the same graphs at k = 8.
"""

from __future__ import annotations

from repro.bench.artifacts import cached_edge_partition
from repro.bench.experiments._common import DATASET_ORDER, graph_for, partition_with
from repro.bench.harness import ExperimentConfig, ExperimentResult, register_experiment
from repro.bench.report import Table
from repro.partition.metrics import bias, edge_cut_ratio
from repro.partition.vertexcut import (
    DBHPartitioner,
    GridPartitioner,
    HDRFPartitioner,
    RandomEdgePartitioner,
    edge_balance_bias,
    replication_factor,
)

K = 8


@register_experiment("vertexcut", "Extension: vertex-cut family vs BPart (k = 8)")
def run(config: ExperimentConfig) -> ExperimentResult:
    result = ExperimentResult("vertexcut", "Extension: vertex-cut family vs BPart (k = 8)")
    table = Table(
        "Vertex-cut replication vs edge-cut ratio",
        ["dataset", "algorithm", "family", "replication", "edge bias", "cut ratio"],
        note="HDRF < DBH < random replication; BPart pays cuts instead of copies",
    )
    vc_algos = (
        ("random-edge", RandomEdgePartitioner()),
        ("dbh", DBHPartitioner()),
        ("grid", GridPartitioner()),
        ("hdrf", HDRFPartitioner()),
    )
    for dataset in DATASET_ORDER:
        g = graph_for(config, dataset)
        for name, algo in vc_algos:
            p = cached_edge_partition(algo, g, K)
            rf = replication_factor(p)
            table.add_row(dataset, name, "vertex-cut", rf, edge_balance_bias(p), "-")
            result.data[(dataset, name)] = rf
        a = partition_with("bpart", g, K, seed=config.seed).assignment
        table.add_row(
            dataset,
            "bpart",
            "edge-cut",
            1.0,
            bias(a.edge_counts),
            edge_cut_ratio(g, a.parts),
        )
    result.tables.append(table)
    return result
