"""Crash-safe append-only JSONL journal.

The suite runner records one JSON line per *completed* experiment
outcome; ``repro-bench all --resume`` replays the journal and re-runs
only what is missing. Crash-safety is the whole point, so the write
path is deliberately boring:

- one record = one line, appended with ``flush()`` + ``os.fsync()`` —
  a SIGKILL between suite experiments never loses a completed outcome;
- the reader tolerates a torn trailing line (the one write a crash can
  interrupt) by skipping undecodable lines instead of failing;
- records are keyed by the caller (experiment id × config digest here),
  and later records for the same key supersede earlier ones, so a
  re-run simply appends — the journal is never rewritten in place.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro import telemetry

__all__ = ["JsonlJournal"]


class JsonlJournal:
    """Append-only JSONL file with fsync'd writes and tolerant reads."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    def append(self, record: dict) -> None:
        """Durably append one record (creates parent dirs on demand).

        A crash mid-append leaves a line without its trailing newline;
        writing the next record directly after it would glue the two
        into one undecodable line, losing the *new* record too. Probe
        the last byte and start on a fresh line when needed — the torn
        fragment stays torn, the new record stays readable.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True)
        with open(self.path, "a+b") as fh:
            if fh.tell() > 0:
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) != b"\n":
                    fh.write(b"\n")
            fh.write(line.encode("utf-8") + b"\n")
            fh.flush()
            os.fsync(fh.fileno())

    def records(self) -> list[dict]:
        """All decodable records, in write order.

        Torn or garbage lines (a crash mid-append, manual edits) are
        skipped and counted under ``resilience.journal_torn_lines`` —
        resuming from a journal that saw a crash is the normal case,
        not an error.
        """
        if not self.path.exists():
            return []
        out: list[dict] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    if telemetry.enabled():
                        telemetry.active().counter(
                            "resilience.journal_torn_lines"
                        ).inc()
                    continue
                if isinstance(record, dict):
                    out.append(record)
        return out

    def latest_by(self, *fields: str) -> dict[tuple, dict]:
        """Last record per distinct ``fields`` tuple (later wins)."""
        out: dict[tuple, dict] = {}
        for record in self.records():
            key = tuple(record.get(f) for f in fields)
            out[key] = record
        return out
