"""The long-running repartitioning daemon.

:class:`RepartitionDaemon` owns a :class:`DynamicPartitioner`, feeds it
a :class:`ChurnEvent` stream, and every ``epoch_events`` applied events
runs one prioritized-restreaming epoch (:func:`restream_epoch`) under a
migration budget. Each epoch appends a record to the canonical
``repartition-epoch/v1`` ledger: the moves made, the score gain, and
the balance / edge-cut / recovered-community quality before and after
— the full audit trail of what the daemon did and what it bought.

Everything the daemon does is a deterministic function of the event
stream and its configuration (no RNG, no wall clock), so two same-seed
scenario runs produce **byte-identical** ledgers — exactly what the CI
``churn-smoke`` job asserts with ``cmp``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.partition.dynamic import DynamicPartitioner
from repro.partition.metrics import adjusted_rand_index
from repro.partition.repartition.ledger import RepartitionLedger
from repro.partition.repartition.restream import restream_epoch
from repro.partition.repartition.scenario import ChurnEvent, ChurnScenario
from repro.utils.validation import check_positive

__all__ = ["RepartitionDaemon"]


def _r(x: float) -> float:
    """Round a metric for the ledger (stable, compact JSON floats)."""
    return round(float(x), 6)


class RepartitionDaemon:
    """Event-driven incremental partitioner with periodic restreaming.

    Parameters
    ----------
    num_parts:     number of parts ``k``.
    epoch_events:  applied events between automatic restream epochs
                   (0 disables auto-epochs; call :meth:`run_epoch`).
    budget:        migration cap per epoch (hard, never exceeded).
    cut_safe:      gate moves on non-negative overlap delta so the
                   resident edge cut is monotone non-increasing.
    labels:        optional ground-truth community labels (id-indexed);
                   enables the ARI columns of the ledger.
    **partitioner: forwarded to :class:`DynamicPartitioner`
                   (``c``, ``alpha``, ``gamma``, ``slack``, ...).
    """

    def __init__(
        self,
        num_parts: int,
        *,
        epoch_events: int = 500,
        budget: int = 64,
        cut_safe: bool = True,
        labels=None,
        scenario: ChurnScenario | None = None,
        seed: int = 0,
        **partitioner,
    ) -> None:
        check_positive("budget", budget)
        if epoch_events < 0:
            raise ConfigurationError(
                f"epoch_events must be >= 0, got {epoch_events}"
            )
        self.dp = DynamicPartitioner(num_parts, **partitioner)
        self.epoch_events = int(epoch_events)
        self.budget = int(budget)
        self.cut_safe = bool(cut_safe)
        self.labels = None if labels is None else np.asarray(labels)
        self._events_applied = 0
        self._events_since_epoch = 0
        self.ledger = RepartitionLedger(
            num_parts=num_parts,
            seed=seed,
            config={
                "epoch_events": self.epoch_events,
                "budget": self.budget,
                "cut_safe": self.cut_safe,
                **{k: v for k, v in sorted(partitioner.items())},
            },
            scenario=(
                {**scenario.to_dict(), "digest": scenario.digest()}
                if scenario is not None
                else {}
            ),
        )

    # -- event ingestion ------------------------------------------------
    def apply(self, event: ChurnEvent) -> None:
        """Apply one stream event; auto-epoch when the interval elapses."""
        kind = event.kind
        if kind == "add_vertex":
            self.dp.add_vertex(event.u, event.neighbors)
        elif kind == "remove_vertex":
            self.dp.remove_vertex(event.u)
        elif kind == "add_edge":
            self.dp.add_edge(event.u, event.v)
        elif kind == "remove_edge":
            self.dp.remove_edge(event.u, event.v)
        else:
            raise ConfigurationError(f"unknown churn event kind {kind!r}")
        self._events_applied += 1
        self._events_since_epoch += 1
        if self.epoch_events and self._events_since_epoch >= self.epoch_events:
            self.run_epoch()

    def drain(self, events, *, final_epochs: int = 1) -> RepartitionLedger:
        """Apply a whole event stream, then ``final_epochs`` cleanup
        epochs, and return the finished ledger."""
        for ev in events:
            self.apply(ev)
        for _ in range(final_epochs):
            self.run_epoch()
        return self.ledger

    # -- live quality metrics -------------------------------------------
    def live_edge_cut(self) -> float:
        """Fraction of resident→resident stubs crossing parts."""
        total = 0.0
        same = 0.0
        for v in self.dp.vertices():
            overlap = self.dp.overlap_of(v)
            total += float(overlap.sum())
            same += float(overlap[self.dp.part_of(v)])
        if total == 0.0:
            return 0.0
        return 1.0 - same / total

    def ari(self) -> float | None:
        """Recovered-community ARI over the residents (None without
        ground truth)."""
        if self.labels is None:
            return None
        ids = sorted(self.dp.vertices())
        if not ids:
            return None
        true = self.labels[ids]
        pred = [self.dp.part_of(v) for v in ids]
        return adjusted_rand_index(true, pred)

    # -- restreaming ----------------------------------------------------
    def run_epoch(self) -> dict:
        """Run one prioritized-restreaming epoch and ledger it."""
        vb0, eb0 = self.dp.balance()
        cut0 = self.live_edge_cut()
        ari0 = self.ari()
        stats = restream_epoch(
            self.dp, budget=self.budget, cut_safe=self.cut_safe
        )
        vb1, eb1 = self.dp.balance()
        record = {
            "epoch": len(self.ledger.epochs),
            "events": self._events_applied,
            "resident": self.dp.num_vertices,
            "candidates": stats.candidates,
            "migrations": stats.migrations,
            "budget": self.budget,
            "budget_exhausted": stats.budget_exhausted,
            "moves": [[v, frm, to] for v, frm, to in stats.moves],
            "gain": _r(stats.gain),
            "vertex_bias_before": _r(vb0),
            "vertex_bias_after": _r(vb1),
            "edge_bias_before": _r(eb0),
            "edge_bias_after": _r(eb1),
            "edge_cut_before": _r(cut0),
            "edge_cut_after": _r(self.live_edge_cut()),
        }
        ari1 = self.ari()
        if ari0 is not None and ari1 is not None:
            record["ari_before"] = _r(ari0)
            record["ari_after"] = _r(ari1)
        self.ledger.add_epoch(record)
        self._events_since_epoch = 0
        return record

    # -- snapshots for baselines ---------------------------------------
    def snapshot_edges(self) -> tuple[list[int], np.ndarray, np.ndarray]:
        """``(resident ids, src, dst)`` of the live resident↔resident
        edges (each undirected edge once, in compacted local ids) —
        what a periodic full re-partition would operate on."""
        ids = sorted(self.dp.vertices())
        local = {v: i for i, v in enumerate(ids)}
        # collect into a pair set so one-sided adjacencies (one endpoint
        # listed the other at arrival, reverse unknown) appear once
        pairs: set[tuple[int, int]] = set()
        for v in ids:
            for w in self.dp.neighbors_of(v):
                if w in local and w != v:
                    pairs.add((v, w) if v < w else (w, v))
        ordered = sorted(pairs)
        src = np.asarray([local[a] for a, _ in ordered], dtype=np.int64)
        dst = np.asarray([local[b] for _, b in ordered], dtype=np.int64)
        return ids, src, dst

    def __repr__(self) -> str:
        return (
            f"RepartitionDaemon(k={self.dp.num_parts}, "
            f"resident={self.dp.num_vertices}, "
            f"epochs={len(self.ledger.epochs)}, "
            f"migrations={self.ledger.total_migrations})"
        )
