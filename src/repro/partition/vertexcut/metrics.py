"""Quality metrics for vertex-cut partitions."""

from __future__ import annotations

import numpy as np

from repro.partition.metrics import bias
from repro.partition.vertexcut.base import EdgePartition

__all__ = ["replication_factor", "vertex_copies", "edge_balance_bias"]


def vertex_copies(partition: EdgePartition) -> np.ndarray:
    """Copies per vertex (0 for isolated vertices)."""
    return partition.copies


def replication_factor(partition: EdgePartition) -> float:
    """Average copies per non-isolated vertex.

    1.0 means no vertex is ever cut (impossible for connected graphs at
    k > 1); random hashing on power-law graphs approaches
    ``k·(1 − (1 − 1/k)^d̄)``.
    """
    copies = partition.copies
    active = copies[copies > 0]
    if active.size == 0:
        return 0.0
    return float(active.mean())


def edge_balance_bias(partition: EdgePartition) -> float:
    """``(max − mean)/mean`` of edges per part — vertex-cut schemes'
    balance dimension."""
    return bias(partition.edge_counts)
