"""Unit tests for the Gemini-like engine and its vertex programs."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.cluster import BSPCluster
from repro.engines.gemini import (
    BFS,
    SSSP,
    ConnectedComponents,
    DegreeCentrality,
    GeminiEngine,
    PageRank,
    neighbor_min,
    neighbor_sum,
)
from repro.errors import SimulationError
from repro.graph import chung_lu, from_edges, path_graph, ring_graph
from repro.graph.convert import to_networkx
from repro.partition import HashPartitioner, PartitionAssignment


def make_assignment(g, k=4, seed=0):
    return HashPartitioner(seed=seed).partition(g, k).assignment


class TestGatherPrimitives:
    def test_neighbor_sum_ring(self, ring64):
        values = np.arange(64, dtype=float)
        s = neighbor_sum(ring64, values)
        # neighbours of v are v±1 mod 64
        expected = np.array([(v - 1) % 64 + (v + 1) % 64 for v in range(64)], dtype=float)
        assert np.allclose(s, expected)

    def test_neighbor_sum_isolated_default(self, isolated_vertices):
        s = neighbor_sum(isolated_vertices, np.ones(6), default=-7.0)
        assert s[5] == -7.0

    def test_neighbor_min(self, path10):
        values = np.arange(10, dtype=float)
        m = neighbor_min(path10, values)
        assert m[0] == 1  # only neighbour is 1
        assert m[5] == 4  # min(4, 6)

    def test_neighbor_min_empty_graph(self):
        g = from_edges([], [], num_vertices=3)
        m = neighbor_min(g, np.ones(3), default=np.inf)
        assert np.isinf(m).all()


class TestPageRank:
    def test_matches_networkx(self, powerlaw_small):
        a = make_assignment(powerlaw_small)
        engine = GeminiEngine(BSPCluster(4))
        res = engine.run(powerlaw_small, a, PageRank(iterations=80))
        nx_pr = nx.pagerank(to_networkx(powerlaw_small), alpha=0.85, max_iter=200, tol=1e-12)
        err = max(abs(res.values[v] - nx_pr[v]) for v in range(powerlaw_small.num_vertices))
        assert err < 1e-6

    def test_mass_conserved(self, powerlaw_small):
        a = make_assignment(powerlaw_small)
        res = GeminiEngine(BSPCluster(4)).run(powerlaw_small, a, PageRank(iterations=10))
        assert res.values.sum() == pytest.approx(1.0)

    def test_runs_exactly_n_iterations(self, ring64):
        a = make_assignment(ring64)
        res = GeminiEngine(BSPCluster(4)).run(ring64, a, PageRank(iterations=7))
        assert res.iterations == 7
        assert res.ledger.num_iterations == 7

    def test_result_independent_of_partition(self, powerlaw_small):
        p1 = make_assignment(powerlaw_small, seed=0)
        p2 = make_assignment(powerlaw_small, seed=9)
        r1 = GeminiEngine(BSPCluster(4)).run(powerlaw_small, p1, PageRank(10))
        r2 = GeminiEngine(BSPCluster(4)).run(powerlaw_small, p2, PageRank(10))
        assert np.allclose(r1.values, r2.values)

    def test_dangling_vertices(self, isolated_vertices):
        a = make_assignment(isolated_vertices, k=2)
        res = GeminiEngine(BSPCluster(2)).run(isolated_vertices, a, PageRank(30))
        assert res.values.sum() == pytest.approx(1.0)
        assert (res.values > 0).all()


class TestConnectedComponents:
    def test_labels_match_networkx(self, two_components):
        a = make_assignment(two_components, k=2)
        res = GeminiEngine(BSPCluster(2)).run(two_components, a, ConnectedComponents())
        comps = {}
        for v, label in enumerate(res.values):
            comps.setdefault(label, set()).add(v)
        expected = {frozenset(c) for c in nx.connected_components(to_networkx(two_components))}
        assert {frozenset(s) for s in comps.values()} == expected

    def test_label_is_component_minimum(self, two_components):
        a = make_assignment(two_components, k=2)
        res = GeminiEngine(BSPCluster(2)).run(two_components, a, ConnectedComponents())
        assert res.values[0] == 0 and res.values[3] == 3

    def test_converges_in_diameter_iterations(self, path10):
        a = make_assignment(path10, k=2)
        res = GeminiEngine(BSPCluster(2)).run(path10, a, ConnectedComponents())
        assert res.iterations <= 11


class TestBFSAndSSSP:
    def test_bfs_matches_networkx(self, powerlaw_small):
        a = make_assignment(powerlaw_small)
        res = GeminiEngine(BSPCluster(4)).run(powerlaw_small, a, BFS(source=0))
        lengths = nx.single_source_shortest_path_length(to_networkx(powerlaw_small), 0)
        for v in range(powerlaw_small.num_vertices):
            if v in lengths:
                assert res.values[v] == lengths[v]
            else:
                assert np.isinf(res.values[v])

    def test_unit_sssp_equals_bfs(self, powerlaw_small):
        a = make_assignment(powerlaw_small)
        eng = GeminiEngine(BSPCluster(4))
        bfs = eng.run(powerlaw_small, a, BFS(source=3)).values
        sssp = eng.run(powerlaw_small, a, SSSP(source=3)).values
        assert np.array_equal(bfs, sssp)

    def test_weighted_sssp(self):
        # path 0-1-2 with weights 1 and 10
        g = path_graph(3)
        # indices order: v0:[1], v1:[0,2], v2:[1]
        weights = np.array([1.0, 1.0, 10.0, 10.0])
        a = make_assignment(g, k=2)
        res = GeminiEngine(BSPCluster(2)).run(g, a, SSSP(source=0, weights=weights))
        assert res.values[2] == pytest.approx(11.0)

    def test_source_out_of_range(self, ring64):
        a = make_assignment(ring64)
        with pytest.raises(ValueError):
            GeminiEngine(BSPCluster(4)).run(ring64, a, BFS(source=100))

    def test_negative_weights_rejected(self, path10):
        a = make_assignment(path10, k=2)
        with pytest.raises(ValueError):
            GeminiEngine(BSPCluster(2)).run(
                path10, a, SSSP(source=0, weights=-np.ones(path10.num_edges))
            )


class TestDegreeCentrality:
    def test_single_iteration(self, ring64):
        a = make_assignment(ring64)
        res = GeminiEngine(BSPCluster(4)).run(ring64, a, DegreeCentrality())
        assert res.iterations == 1
        assert np.allclose(res.values, 2 / 63)


class TestEngineAccounting:
    def test_cluster_size_mismatch(self, ring64):
        a = make_assignment(ring64, k=4)
        with pytest.raises(SimulationError):
            GeminiEngine(BSPCluster(8)).run(ring64, a, PageRank(2))

    def test_messages_zero_on_single_part(self, powerlaw_small):
        a = HashPartitioner().partition(powerlaw_small, 1).assignment
        res = GeminiEngine(BSPCluster(1)).run(powerlaw_small, a, PageRank(3))
        assert res.total_messages == 0

    def test_aggregation_reduces_messages(self, powerlaw_small):
        a = make_assignment(powerlaw_small)
        agg = GeminiEngine(BSPCluster(4), aggregate_messages=True).run(
            powerlaw_small, a, PageRank(3)
        )
        raw = GeminiEngine(BSPCluster(4), aggregate_messages=False).run(
            powerlaw_small, a, PageRank(3)
        )
        assert agg.total_messages < raw.total_messages

    def test_raw_messages_equal_active_cut_arcs(self, powerlaw_small):
        from repro.partition.metrics import edge_cut_ratio

        a = make_assignment(powerlaw_small)
        res = GeminiEngine(BSPCluster(4), aggregate_messages=False).run(
            powerlaw_small, a, PageRank(1)
        )
        cut_arcs = round(
            edge_cut_ratio(powerlaw_small, a.parts) * powerlaw_small.num_edges
        )
        assert res.total_messages == cut_arcs

    def test_compute_proportional_to_local_edges(self, powerlaw_small):
        a = make_assignment(powerlaw_small)
        res = GeminiEngine(BSPCluster(4)).run(powerlaw_small, a, PageRank(1))
        compute = res.ledger.compute_matrix[0]
        edges_per_m = np.bincount(a.parts, weights=powerlaw_small.degrees, minlength=4)
        # same cost model across machines → compute ∝ local work
        ratio = compute / (
            edges_per_m * BSPCluster(4).cost_model.edge_cost / BSPCluster(4).cost_model.cores
            + np.bincount(a.parts, minlength=4)
            * BSPCluster(4).cost_model.vertex_cost
            / BSPCluster(4).cost_model.cores
        )
        assert np.allclose(ratio, 1.0)
