"""Extension — vertex-cut partitioner family vs BPart (related work §5).

Replication factor (HDRF < DBH < grid < random) and edge balance for
the PowerGraph-family edge partitioners, against BPart's edge-cut
numbers on the same graphs.
"""


def test_vertexcut(run_paper_experiment):
    result = run_paper_experiment("vertexcut")
    assert result.tables or result.series
