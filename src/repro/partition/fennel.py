"""Fennel streaming partitioner (Tsourakakis et al., WSDM 2014; §2.2).

For each streamed vertex ``v``, Fennel scores every part

    S(v, G_i) = |V_i ∩ N(v)| − α·γ·|V_i|^{γ−1}

and assigns ``v`` to the argmax. The first term rewards co-locating
``v`` with its already-placed neighbours (fewer edge cuts); the second
penalises large parts — but only in the *vertex* dimension, which is
exactly why the paper's Figure 3/10 shows Fennel with balanced ``|V_i|``
and wildly imbalanced ``|E_i|`` on scale-free graphs.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition._streamcore import default_alpha, stream_partition
from repro.partition.assignment import PartitionAssignment
from repro.partition.base import Partitioner, register_partitioner
from repro.partition.kernels import resolve_kernel_name
from repro.utils.timing import WallClock
from repro.utils.validation import check_positive

__all__ = ["FennelPartitioner"]


class FennelPartitioner(Partitioner):
    """Score-based streaming with vertex-count balance.

    Parameters
    ----------
    alpha:
        Score constant; ``None`` uses the original paper's
        ``√k · m / n^{3/2}``.
    gamma:
        Balance exponent (default 1.5, the original recommendation).
    slack:
        Capacity factor ν — parts above ``ν·n/k`` vertices are excluded.
    order:
        Vertex stream order (default ``natural``; ``random`` is Fennel's
        robust default, exposed for ablations).
    passes:
        Re-streaming passes (ReFennel); extra passes tighten the cut at
        proportional extra cost.
    kernel:
        Inner-loop backend (:mod:`repro.partition.kernels`); all
        backends are bit-exact, so this knob trades throughput only.
    jobs:
        Worker processes for the parallel backend (explicit value beats
        ``$REPRO_JOBS`` beats 1; ``<= 0`` means all available cores).
        With ``kernel="auto"`` and ``jobs > 1`` the ``parallel`` backend
        is engaged; assignments stay bit-identical at every jobs value.
    """

    name = "fennel"

    def __init__(
        self,
        *,
        alpha: float | None = None,
        gamma: float = 1.5,
        slack: float = 1.1,
        order: str = "natural",
        seed: int | None = None,
        passes: int = 1,
        kernel: str = "auto",
        jobs: int | None = None,
    ) -> None:
        if alpha is not None:
            check_positive("alpha", alpha)
        check_positive("gamma", gamma)
        check_positive("slack", slack)
        check_positive("passes", passes)
        self._alpha = alpha
        self._gamma = gamma
        self._slack = slack
        self._order = order
        self._seed = seed
        self._passes = int(passes)
        self._jobs = jobs
        # Resolve eagerly: validates the name and pins "auto" to the
        # concrete backend so metadata reports what actually ran.
        self._kernel = resolve_kernel_name(kernel, jobs)

    def _partition(
        self, graph: CSRGraph, num_parts: int, clock: WallClock
    ) -> tuple[PartitionAssignment, dict[str, Any]]:
        alpha = self._alpha if self._alpha is not None else default_alpha(graph, num_parts)
        with clock.measure("stream"):
            parts = stream_partition(
                graph,
                num_parts,
                vertex_weights=np.ones(graph.num_vertices),
                alpha=alpha,
                gamma=self._gamma,
                slack=self._slack,
                order=self._order,
                rng=self._seed,
                passes=self._passes,
                kernel=self._kernel,
                jobs=self._jobs,
            )
        return (
            PartitionAssignment(graph, parts, num_parts),
            {"alpha": alpha, "gamma": self._gamma, "order": self._order, "kernel": self._kernel},
        )


register_partitioner("fennel", FennelPartitioner)
