"""§3.3 connectivity check — edge connections between 64 pieces.

The paper partitions Friendster into 64 pieces and finds ≥ 50,000 edges
between *any* two pieces (mostly ≈ 500,000), concluding that combining
pieces never produces a disconnected subgraph. At our reduced scale the
absolute counts shrink proportionally; the reproducible claim is that
the minimum pairwise connection count stays far above zero.
"""

from __future__ import annotations

import numpy as np

from repro.bench.experiments._common import graph_for
from repro.bench.harness import ExperimentConfig, ExperimentResult, register_experiment
from repro.bench.report import Table
from repro.partition.bpart import weighted_stream_partition
from repro.partition.metrics import connectivity_matrix

K = 64


@register_experiment("connectivity", "Edge connections between 64 pieces (Friendster)")
def run(config: ExperimentConfig) -> ExperimentResult:
    g = graph_for(config, "friendster")
    pieces = weighted_stream_partition(g, K, c=0.5)
    conn = connectivity_matrix(g, pieces, K)
    off = conn[~np.eye(K, dtype=bool)]

    result = ExperimentResult(
        "connectivity", "Edge connections between 64 pieces (Friendster)"
    )
    table = Table(
        "Pairwise inter-piece arc counts",
        ["statistic", "value", "scaled to paper size"],
        note="paper: >= 50,000 between any two pieces, typically ~500,000",
    )
    # Linear scaling of edge counts to the real Friendster's 3.6 B edges.
    scale_factor = 3_600_000_000 * 2 / max(g.num_edges, 1)
    for stat, val in (
        ("min", float(off.min())),
        ("median", float(np.median(off))),
        ("mean", float(off.mean())),
        ("max", float(off.max())),
    ):
        table.add_row(stat, val, val * scale_factor)
    result.tables.append(table)
    zero_pairs = int((off == 0).sum())
    result.notes.append(
        f"piece pairs with zero connecting edges: {zero_pairs} of {off.size}"
    )
    result.data = {"matrix": conn.tolist(), "zero_pairs": zero_pairs}
    return result
