"""Workload generator: validation, canonical identity, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph import social_graph
from repro.serving import KIND_KHOP, KIND_WALK, WorkloadSpec


@pytest.fixture(scope="module")
def graph():
    return social_graph(2000, 10.0, 2.2, rng=7)


class TestSpecValidation:
    def test_defaults_valid(self):
        WorkloadSpec()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"users": 0},
            {"duration": 0.0},
            {"rate": -1.0},
            {"zipf_s": 0.0},
            {"locality": 1.5},
            {"locality": -0.1},
            {"walk_frac": 2.0},
            {"window_frac": 0.0},
            {"khop": 3},
            {"khop_cap": 0},
            {"walk_steps": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(**kwargs)


class TestCanonicalIdentity:
    def test_digest_stable_across_instances(self):
        a, b = WorkloadSpec(seed=9), WorkloadSpec(seed=9)
        assert a.digest() == b.digest()
        assert a.to_json() == b.to_json()

    def test_digest_sensitive_to_every_knob(self):
        base = WorkloadSpec()
        digests = {base.digest()}
        for kwargs in (
            {"users": 3},
            {"rate": 1.0},
            {"duration": 9.0},
            {"zipf_s": 2.0},
            {"locality": 0.1},
            {"walk_frac": 0.9},
            {"khop": 1},
            {"seed": 77},
        ):
            digests.add(WorkloadSpec(**kwargs).digest())
        assert len(digests) == 9

    def test_json_roundtrip(self):
        spec = WorkloadSpec(users=11, rate=200.0, seed=5)
        assert WorkloadSpec.from_json(spec.to_json()) == spec

    def test_from_json_rejects_wrong_schema(self):
        with pytest.raises(ConfigurationError, match="schema"):
            WorkloadSpec.from_json('{"schema": "workload/v0", "users": 3}')

    def test_from_json_rejects_unknown_fields(self):
        text = WorkloadSpec().to_json().replace('"users"', '"userz"')
        with pytest.raises(ConfigurationError, match="unknown"):
            WorkloadSpec.from_json(text)

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec.from_json("not json at all")


class TestGeneration:
    def test_deterministic(self, graph):
        spec = WorkloadSpec(users=200, duration=0.5, rate=1000.0, seed=4)
        t1, t2 = spec.generate(graph), spec.generate(graph)
        assert t1.fingerprint() == t2.fingerprint()
        np.testing.assert_array_equal(t1.times, t2.times)
        np.testing.assert_array_equal(t1.vertex, t2.vertex)
        np.testing.assert_array_equal(t1.user, t2.user)
        np.testing.assert_array_equal(t1.kind, t2.kind)

    def test_seed_changes_trace(self, graph):
        a = WorkloadSpec(users=200, duration=0.5, rate=1000.0, seed=4).generate(graph)
        b = WorkloadSpec(users=200, duration=0.5, rate=1000.0, seed=5).generate(graph)
        assert a.fingerprint() != b.fingerprint()

    def test_open_loop_arrivals(self, graph):
        spec = WorkloadSpec(users=100, duration=2.0, rate=500.0, seed=1)
        trace = spec.generate(graph)
        assert trace.times[-1] < spec.duration
        assert np.all(np.diff(trace.times) >= 0)
        # Poisson count stays within 6 sigma of rate * duration.
        expect = spec.rate * spec.duration
        assert abs(trace.num_queries - expect) < 6 * np.sqrt(expect)

    def test_columns_aligned_and_in_range(self, graph):
        trace = WorkloadSpec(users=50, duration=0.2, rate=800.0, seed=2).generate(graph)
        q = trace.num_queries
        assert trace.user.shape == trace.vertex.shape == trace.kind.shape == (q,)
        assert trace.user.min() >= 0 and trace.user.max() < 50
        assert trace.vertex.min() >= 0
        assert trace.vertex.max() < graph.num_vertices
        assert set(np.unique(trace.kind)) <= {KIND_KHOP, KIND_WALK}

    def test_walk_frac_extremes(self, graph):
        all_khop = WorkloadSpec(walk_frac=0.0, duration=0.2, seed=3).generate(graph)
        all_walk = WorkloadSpec(walk_frac=1.0, duration=0.2, seed=3).generate(graph)
        assert np.all(all_khop.kind == KIND_KHOP)
        assert np.all(all_walk.kind == KIND_WALK)

    def test_popularity_prefers_hubs(self, graph):
        # locality off isolates the Zipf draw: queried vertices should
        # have well above-average degree (hubs rank first).
        trace = WorkloadSpec(
            locality=0.0, zipf_s=1.5, duration=0.5, rate=2000.0, seed=6
        ).generate(graph)
        assert graph.degrees[trace.vertex].mean() > 2 * graph.degrees.mean()

    def test_locality_confines_to_windows(self, graph):
        spec = WorkloadSpec(
            locality=1.0, window_frac=0.01, users=30, duration=0.2, rate=500.0, seed=8
        )
        trace = spec.generate(graph)
        window = max(1, int(spec.window_frac * graph.num_vertices))
        # Every query must land within its user's community window
        # (homes are re-derived exactly as generate() derives them).
        from repro.serving.workload import _SALT_HOMES
        from repro.utils.rng import derive_rng

        order = np.argsort(-graph.degrees, kind="stable")
        ranks = np.arange(1, graph.num_vertices + 1, dtype=np.float64)
        cdf = np.cumsum(ranks ** -spec.zipf_s)
        cdf /= cdf[-1]
        rng = derive_rng(spec.seed, _SALT_HOMES)
        idx = np.searchsorted(cdf, rng.random(spec.users), side="left")
        homes = order[np.minimum(idx, graph.num_vertices - 1)]
        span = np.abs(trace.vertex - homes[trace.user])
        at_edge = (trace.vertex == 0) | (trace.vertex == graph.num_vertices - 1)
        assert np.all((span <= window) | at_edge)

    def test_empty_graph_rejected(self):
        from repro.graph import from_edges

        g = from_edges([], [], num_vertices=0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec().generate(g)

    def test_trace_arrays_frozen(self, graph):
        trace = WorkloadSpec(duration=0.1, seed=1).generate(graph)
        with pytest.raises(ValueError):
            trace.vertex[0] = 1
