"""Unit tests for the streaming partitioners: Chunk-V/E, Hash, Fennel, LDG."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, PartitionError
from repro.graph import social_graph
from repro.partition import (
    ChunkEPartitioner,
    ChunkVPartitioner,
    FennelPartitioner,
    HashPartitioner,
    LDGPartitioner,
    bias,
    edge_cut_ratio,
    get_partitioner,
    jains_fairness,
)

ALL_STREAMING = [ChunkVPartitioner, ChunkEPartitioner, HashPartitioner, FennelPartitioner, LDGPartitioner]


@pytest.mark.parametrize("cls", ALL_STREAMING)
class TestCommonContract:
    def test_every_vertex_assigned(self, powerlaw_small, cls):
        a = cls().partition(powerlaw_small, 7).assignment
        assert a.parts.size == powerlaw_small.num_vertices
        assert a.parts.min() >= 0 and a.parts.max() < 7

    def test_counts_conserved(self, powerlaw_small, cls):
        a = cls().partition(powerlaw_small, 5).assignment
        assert a.vertex_counts.sum() == powerlaw_small.num_vertices
        assert a.edge_counts.sum() == powerlaw_small.num_edges

    def test_single_part(self, powerlaw_small, cls):
        a = cls().partition(powerlaw_small, 1).assignment
        assert (a.parts == 0).all()

    def test_too_many_parts(self, triangle, cls):
        with pytest.raises(PartitionError):
            cls().partition(triangle, 10)

    def test_nonpositive_parts(self, triangle, cls):
        with pytest.raises(ConfigurationError):
            cls().partition(triangle, 0)

    def test_deterministic(self, powerlaw_small, cls):
        a = cls().partition(powerlaw_small, 4).assignment
        b = cls().partition(powerlaw_small, 4).assignment
        assert np.array_equal(a.parts, b.parts)


class TestChunkV:
    def test_vertex_balance_exact(self, powerlaw_small):
        a = ChunkVPartitioner().partition(powerlaw_small, 8).assignment
        assert bias(a.vertex_counts) < 0.01

    def test_contiguous_ranges(self, ring64):
        a = ChunkVPartitioner().partition(ring64, 4).assignment
        # natural order → contiguous id blocks → parts non-decreasing
        assert (np.diff(a.parts) >= 0).all()

    def test_ring_cut_is_minimal(self, ring64):
        a = ChunkVPartitioner().partition(ring64, 4).assignment
        assert edge_cut_ratio(ring64, a.parts) == pytest.approx(8 / 128)

    def test_edges_imbalanced_on_skewed_graph(self):
        g = social_graph(3000, 16.0, 2.1, rng=1)
        a = ChunkVPartitioner().partition(g, 8).assignment
        assert bias(a.edge_counts) > 0.5  # the Limitation-#1 phenomenon


class TestChunkE:
    def test_edge_balance(self, powerlaw_small):
        a = ChunkEPartitioner().partition(powerlaw_small, 8).assignment
        assert bias(a.edge_counts) < 0.25

    def test_vertices_imbalanced_on_skewed_graph(self):
        g = social_graph(3000, 16.0, 2.1, rng=1)
        a = ChunkEPartitioner().partition(g, 8).assignment
        assert bias(a.vertex_counts) > 0.5

    def test_edgeless_graph_falls_back_to_vertices(self):
        from repro.graph import from_edges

        g = from_edges([], [], num_vertices=12)
        a = ChunkEPartitioner().partition(g, 3).assignment
        assert list(a.vertex_counts) == [4, 4, 4]


class TestHash:
    def test_two_dimensional_balance(self, powerlaw_small):
        a = HashPartitioner().partition(powerlaw_small, 8).assignment
        assert jains_fairness(a.vertex_counts) > 0.98
        assert jains_fairness(a.edge_counts) > 0.95

    def test_cut_near_k_minus_1_over_k(self, powerlaw_small):
        a = HashPartitioner().partition(powerlaw_small, 8).assignment
        assert edge_cut_ratio(powerlaw_small, a.parts) == pytest.approx(7 / 8, abs=0.02)

    def test_seed_changes_assignment(self, powerlaw_small):
        a = HashPartitioner(seed=0).partition(powerlaw_small, 4).assignment
        b = HashPartitioner(seed=1).partition(powerlaw_small, 4).assignment
        assert not np.array_equal(a.parts, b.parts)

    def test_stable_across_processes(self, triangle):
        # splitmix64 is fixed; pin the exact assignment for seed 0, k=2.
        a = HashPartitioner(seed=0).partition(triangle, 2).assignment
        b = HashPartitioner(seed=0).partition(triangle, 2).assignment
        assert np.array_equal(a.parts, b.parts)


class TestFennel:
    def test_vertex_balance(self, powerlaw_small):
        a = FennelPartitioner().partition(powerlaw_small, 8).assignment
        assert bias(a.vertex_counts) < 0.15  # bounded by the 1.1 slack

    def test_cut_better_than_hash(self):
        g = social_graph(3000, 16.0, locality=0.3, rng=2)
        fennel = FennelPartitioner().partition(g, 8).assignment
        hash_a = HashPartitioner().partition(g, 8).assignment
        assert edge_cut_ratio(g, fennel.parts) < edge_cut_ratio(g, hash_a.parts) - 0.05

    def test_capacity_never_exceeded(self, powerlaw_small):
        a = FennelPartitioner(slack=1.1).partition(powerlaw_small, 8).assignment
        cap = 1.1 * powerlaw_small.num_vertices / 8
        assert a.vertex_counts.max() <= cap + 1

    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            FennelPartitioner(alpha=-1.0)

    def test_random_order_still_balanced(self, powerlaw_small):
        a = FennelPartitioner(order="random", seed=3).partition(powerlaw_small, 8).assignment
        assert bias(a.vertex_counts) < 0.15

    def test_metadata_contains_alpha(self, powerlaw_small):
        res = FennelPartitioner().partition(powerlaw_small, 4)
        assert res.metadata["alpha"] > 0

    def test_edgeless_graph_round_robins(self):
        # m = 0 used to zero out alpha: no balance penalty, every vertex
        # in part 0. The default_alpha guard keeps the penalty positive,
        # which with no overlap signal degenerates to round-robin.
        from repro.graph import from_edges

        g = from_edges([], [], num_vertices=12)
        a = FennelPartitioner().partition(g, 3).assignment
        assert list(a.vertex_counts) == [4, 4, 4]


class TestLDG:
    def test_vertex_balance(self, powerlaw_small):
        a = LDGPartitioner().partition(powerlaw_small, 8).assignment
        assert bias(a.vertex_counts) < 0.15

    def test_cut_better_than_hash(self):
        g = social_graph(3000, 16.0, locality=0.3, rng=2)
        ldg = LDGPartitioner().partition(g, 8).assignment
        hash_a = HashPartitioner().partition(g, 8).assignment
        assert edge_cut_ratio(g, ldg.parts) < edge_cut_ratio(g, hash_a.parts)


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["chunk-v", "chunk-e", "hash", "fennel", "ldg", "bpart", "multilevel", "gd"]
    )
    def test_lookup(self, name):
        assert get_partitioner(name).name == name

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            get_partitioner("metis")

    def test_case_insensitive(self):
        assert get_partitioner("BPart").name == "bpart"
