"""The prioritized-restreaming repartition service.

Covers the acceptance contract of the daemon layer: same seed ⇒
byte-identical ledger, migrations never exceed the budget, resident
edge cut monotonically non-increasing across epochs on a static
stream, exact counters throughout, and a verifiable canonical ledger
document.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.partition.repartition import (
    ChurnScenario,
    LEDGER_SCHEMA,
    RepartitionDaemon,
    RepartitionLedger,
    restream_epoch,
    score_vertex,
    static_hash_ari,
)


@pytest.fixture(scope="module")
def scenario():
    return ChurnScenario(num_vertices=600, num_groups=3, churn_events=600, seed=11)


def _run(scenario, **kwargs):
    params = dict(
        epoch_events=200,
        budget=32,
        labels=scenario.labels(),
        scenario=scenario,
        seed=scenario.seed,
        expected_vertices=scenario.num_vertices,
    )
    params.update(kwargs)
    daemon = RepartitionDaemon(3, **params)
    daemon.drain(scenario.events(), final_epochs=2)
    return daemon


# ---------------------------------------------------------------------
# scenario
# ---------------------------------------------------------------------
def test_scenario_stream_is_deterministic(scenario):
    a = scenario.events()
    b = ChurnScenario(num_vertices=600, num_groups=3, churn_events=600, seed=11).events()
    assert a == b
    assert scenario.digest() == ChurnScenario(
        num_vertices=600, num_groups=3, churn_events=600, seed=11
    ).digest()


def test_scenario_digest_separates_parameters(scenario):
    other = ChurnScenario(num_vertices=600, num_groups=3, churn_events=600, seed=12)
    assert scenario.digest() != other.digest()


def test_scenario_events_are_applicable(scenario):
    """Every event in the stream must be applicable in order — deletions
    name resident endpoints, rejoins carry adjacency."""
    daemon = RepartitionDaemon(3, epoch_events=0, budget=8)
    for ev in scenario.events():
        daemon.apply(ev)
    assert daemon.dp.num_vertices > 0


def test_scenario_rejects_bad_parameters():
    with pytest.raises(ConfigurationError):
        ChurnScenario(num_vertices=100, churn_events=-1)
    with pytest.raises(ConfigurationError):
        ChurnScenario(num_vertices=100, delete_frac=1.5)


# ---------------------------------------------------------------------
# restreaming engine
# ---------------------------------------------------------------------
def test_restream_budget_is_hard(scenario):
    daemon = RepartitionDaemon(3, epoch_events=0, budget=5)
    for ev in scenario.arrival_events():
        daemon.apply(ev)
    stats = restream_epoch(daemon.dp, budget=5)
    assert stats.migrations <= 5
    if stats.candidates > 5:
        assert stats.budget_exhausted


def test_restream_monotone_cut_on_static_stream(scenario):
    """With no churn between epochs, the cut-safe gate guarantees the
    resident edge cut never increases epoch over epoch."""
    daemon = RepartitionDaemon(3, epoch_events=0, budget=64)
    for ev in scenario.arrival_events():
        daemon.apply(ev)
    cuts = [daemon.live_edge_cut()]
    for _ in range(6):
        daemon.run_epoch()
        cuts.append(daemon.live_edge_cut())
    for before, after in zip(cuts, cuts[1:]):
        assert after <= before + 1e-12
    assert cuts[-1] < cuts[0]  # and it actually improves


def test_restream_moves_have_positive_gain(scenario):
    daemon = RepartitionDaemon(3, epoch_events=0, budget=32)
    for ev in scenario.arrival_events():
        daemon.apply(ev)
    stats = restream_epoch(daemon.dp, budget=32)
    assert stats.migrations > 0
    assert stats.gain > 0.0
    for v, frm, to in stats.moves:
        assert frm != to
        assert daemon.dp.part_of(v) == to


def test_score_vertex_matches_move_outcome(scenario):
    daemon = RepartitionDaemon(3, epoch_events=0, budget=32)
    for ev in scenario.arrival_events():
        daemon.apply(ev)
    v = next(iter(daemon.dp.vertices()))
    s = score_vertex(daemon.dp, v)
    assert s.current == daemon.dp.part_of(v)
    assert 0 <= s.best < 3
    # staying put scores a gain of exactly zero
    assert s.gain >= 0.0


def test_counters_stay_exact_through_epochs(scenario):
    daemon = _run(scenario)
    dp = daemon.dp
    expected = np.zeros(3, dtype=np.int64)
    for v in dp.vertices():
        expected[dp.part_of(v)] += dp.degree_of(v)
    np.testing.assert_array_equal(dp.edge_counts, expected)
    assert dp.vertex_counts.sum() == dp.num_vertices


# ---------------------------------------------------------------------
# daemon + ledger
# ---------------------------------------------------------------------
def test_same_seed_byte_identical_ledger(scenario):
    a = _run(scenario).ledger.to_json()
    b = _run(scenario).ledger.to_json()
    assert a == b
    assert a.encode("utf-8") == b.encode("utf-8")


def test_budget_respected_in_every_epoch(scenario):
    ledger = _run(scenario).ledger
    assert ledger.epochs
    for rec in ledger.epochs:
        assert rec["migrations"] <= rec["budget"]
        assert len(rec["moves"]) == rec["migrations"]


def test_epoch_cut_never_increases_within_epoch(scenario):
    for rec in _run(scenario).ledger.epochs:
        assert rec["edge_cut_after"] <= rec["edge_cut_before"] + 1e-9


def test_daemon_beats_static_hash(scenario):
    daemon = _run(scenario)
    ids = list(daemon.dp.vertices())
    hash_ari = static_hash_ari(ids, scenario.labels(), 3, seed=scenario.seed)
    assert daemon.ari() > hash_ari


def test_ledger_roundtrip(scenario):
    ledger = _run(scenario).ledger
    text = ledger.to_json()
    back = RepartitionLedger.from_json(text)
    assert back.to_json() == text
    assert back.digest() == ledger.digest()
    assert back.total_migrations == ledger.total_migrations


def test_ledger_rejects_wrong_schema():
    with pytest.raises(ConfigurationError):
        RepartitionLedger.from_json('{"schema": "other/v9", "num_parts": 2}')


def test_ledger_rejects_tampered_document(scenario):
    ledger = _run(scenario).ledger
    doc = ledger.to_dict()
    doc["epochs"][0]["migrations"] += 1
    import json

    with pytest.raises(ConfigurationError):
        RepartitionLedger.from_json(json.dumps(doc))


def test_ledger_schema_tag(scenario):
    doc = _run(scenario).ledger.to_dict()
    assert doc["schema"] == LEDGER_SCHEMA
    assert doc["scenario"]["digest"] == scenario.digest()


def test_daemon_rejects_unknown_event():
    from repro.partition.repartition import ChurnEvent

    daemon = RepartitionDaemon(2, epoch_events=0, budget=4)
    with pytest.raises(ConfigurationError):
        daemon.apply(ChurnEvent(kind="teleport_vertex", u=0))
