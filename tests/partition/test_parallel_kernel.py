"""Serial-vs-parallel bit-parity for the streaming partition layer.

The parallel backend's contract is stronger than "same quality": with
the window-masking protocol every fan-out must reproduce the buffered
(and therefore scalar) assignment *bit for bit*, for any worker count,
on dense and sharded graphs alike — and a crashed worker degrades to
the serial path with the identical result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.graph import social_graph, spill_csr
from repro.parallel import shm_available
from repro.partition import get_partitioner
from repro.partition._streamcore import default_alpha, stream_partition
from repro.partition.bpart import bpart_vertex_weights
from repro.partition.kernels import resolve_kernel_name

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="no usable shared memory on this host"
)

ALGOS = ("fennel", "bpart", "ldg", "hash", "chunk-v")


@pytest.fixture(scope="module")
def dense():
    return social_graph(1200, 8.0, 2.3, rng=11)


@pytest.fixture(scope="module")
def sharded(dense, tmp_path_factory):
    return spill_csr(dense, tmp_path_factory.mktemp("shards"), shard_size=256)


def _stream(g, *, kernel, jobs=None, passes=1, weighted=False):
    w = bpart_vertex_weights(g, 0.5) if weighted else np.ones(g.num_vertices)
    return stream_partition(
        g,
        6,
        vertex_weights=w,
        alpha=default_alpha(g, 6),
        passes=passes,
        kernel=kernel,
        jobs=jobs,
    )


class TestKernelNameResolution:
    def test_auto_promotes_only_with_jobs(self):
        assert resolve_kernel_name("auto", 4) == "parallel"
        assert resolve_kernel_name("auto", 1) != "parallel"
        assert resolve_kernel_name("auto", None) != "parallel"

    def test_explicit_kernel_is_respected(self):
        for name in ("scalar", "incremental", "buffered"):
            assert resolve_kernel_name(name, 4) == name
        assert resolve_kernel_name("parallel", None) == "parallel"


class TestStreamParity:
    @pytest.mark.parametrize("jobs", [2, 4])
    @pytest.mark.parametrize("passes", [1, 3])
    def test_dense_matches_buffered(self, dense, jobs, passes):
        base = _stream(dense, kernel="buffered", passes=passes)
        par = _stream(dense, kernel="parallel", jobs=jobs, passes=passes)
        np.testing.assert_array_equal(base, par)

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_sharded_matches_buffered(self, sharded, jobs):
        base = _stream(sharded, kernel="buffered")
        par = _stream(sharded, kernel="parallel", jobs=jobs)
        np.testing.assert_array_equal(base, par)

    def test_weighted_stream_matches(self, dense):
        base = _stream(dense, kernel="scalar", weighted=True)
        par = _stream(dense, kernel="parallel", jobs=3, weighted=True)
        np.testing.assert_array_equal(base, par)

    def test_jobs_one_is_plain_serial(self, dense):
        # kernel="parallel" with jobs=1 must not spawn anything and
        # still produce the reference assignment.
        telemetry.set_enabled(True)
        telemetry.reset()
        base = _stream(dense, kernel="scalar")
        par = _stream(dense, kernel="parallel", jobs=1)
        np.testing.assert_array_equal(base, par)
        counters = telemetry.registry().snapshot()["counters"]
        assert counters.get("parallel.workers_spawned", 0) == 0

    def test_jobs_one_degrades_before_the_parallel_path(self, dense):
        # Regression: an explicit kernel="parallel" resolving to one
        # effective worker used to enter the multiprocessing path and
        # degrade *inside* it silently, mislabelling the stream timer
        # "parallel". It must degrade up front, tick the fallback
        # counter at site=kernel.jobs, and run the buffered kernel.
        telemetry.set_enabled(True)
        telemetry.reset()
        base = _stream(dense, kernel="buffered")
        par = _stream(dense, kernel="parallel", jobs=1)
        np.testing.assert_array_equal(base, par)
        counters = telemetry.registry().snapshot()["counters"]
        assert counters.get('parallel.fallbacks{site="kernel.jobs"}', 0) >= 1
        # the stream telemetry labels the kernel that actually ran
        assert counters.get('partition.stream.vertices{kernel="buffered"}', 0) > 0

    def test_jobs_above_one_does_not_tick_jobs_fallback(self, dense):
        telemetry.set_enabled(True)
        telemetry.reset()
        _stream(dense, kernel="parallel", jobs=2)
        counters = telemetry.registry().snapshot()["counters"]
        assert counters.get('parallel.fallbacks{site="kernel.jobs"}', 0) == 0


class TestPartitionerParity:
    """jobs>1 through the public constructors is invisible in output."""

    @pytest.mark.parametrize("algo", ALGOS)
    @pytest.mark.parametrize("kind", ["dense", "sharded"])
    def test_partitioners_bit_identical(self, algo, kind, dense, sharded, request):
        g = dense if kind == "dense" else sharded
        serial = get_partitioner(algo, seed=3).partition(g, 5)
        kwargs = {} if algo in ("hash", "chunk-v") else {"jobs": 2}
        parallel = get_partitioner(algo, seed=3, **kwargs).partition(g, 5)
        np.testing.assert_array_equal(serial.assignment, parallel.assignment)

    @pytest.mark.parametrize("algo", ["fennel", "bpart", "ldg"])
    def test_jobs_selects_parallel_kernel(self, algo, dense):
        p = get_partitioner(algo, seed=3, jobs=2)
        assert p._kernel if isinstance(p._kernel, str) else p._kernel.name
        name = p._kernel if isinstance(p._kernel, str) else p._kernel.name
        assert name == "parallel"


class TestCrashFallback:
    def test_crashed_worker_degrades_to_serial(self, dense, monkeypatch):
        # Point the score task at a worker-killing function: every
        # dispatch dies, the backend must fall back and still return
        # the exact serial assignment, counting the fallback.
        from repro.partition.kernels import parallel_backend

        telemetry.set_enabled(True)
        telemetry.reset()
        monkeypatch.setattr(
            parallel_backend, "_SCORE_TASK", "tests.parallel._tasks:crash"
        )
        base = _stream(dense, kernel="buffered")
        par = _stream(dense, kernel="parallel", jobs=2)
        np.testing.assert_array_equal(base, par)
        counters = telemetry.registry().snapshot()["counters"]
        assert counters.get('parallel.fallbacks{site="kernel.crash"}', 0) >= 1
        assert counters.get("parallel.worker_crashes", 0) >= 1
