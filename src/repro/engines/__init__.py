"""Simulated distributed graph engines.

Two engines mirror the systems the paper integrates BPart into:

- :mod:`repro.engines.gemini` — iteration-based vertex-centric BSP
  (PageRank, Connected Components, BFS, SSSP, …), modelled on Gemini
  (Zhu et al., OSDI 2016).
- :mod:`repro.engines.knightking` — walker-centric BSP random walk
  engine (PPR, RWJ, RWD, DeepWalk, node2vec), modelled on KnightKing
  (Yang et al., SOSP 2019).

Both compute *exact* algorithm results on the partitioned graph while
accounting per-machine work and cross-machine messages against a
:class:`~repro.cluster.bsp.BSPCluster`.
"""

from repro.engines import gemini, knightking

__all__ = ["gemini", "knightking"]
