"""k-core decomposition via H-index iteration (Lü et al., Nature Comm. 2016).

Each vertex repeatedly replaces its core estimate with the *H-index* of
its neighbours' estimates (the largest ``h`` such that at least ``h``
neighbours have estimate ≥ ``h``). Starting from the degrees, this
converges to the exact coreness of every vertex — a classic
vertex-centric formulation that, unlike sequential peeling, fits the
BSP model.

The per-vertex H-index over CSR segments is vectorised: one global
lexsort by (vertex, −value) gives each segment in descending order;
positions within segments come from subtracting ``indptr``; the H-index
is the per-segment count of positions where ``value ≥ position + 1``.
"""

from __future__ import annotations

import numpy as np

from repro.engines.gemini.vertex_program import VertexProgram
from repro.graph.csr import CSRGraph

__all__ = ["KCore"]


def _segment_h_index(graph: CSRGraph, values: np.ndarray) -> np.ndarray:
    """H-index of ``values`` over each vertex's neighbour list."""
    n = graph.num_vertices
    out = np.zeros(n, dtype=np.int64)
    if graph.num_edges == 0:
        return out
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    vals = values[graph.indices].astype(np.int64)
    order = np.lexsort((-vals, src))
    sorted_vals = vals[order]
    sorted_src = src[order]
    # After the (src, −val) sort, segments stay contiguous in vertex
    # order, so per-segment positions follow directly from indptr.
    pos_in_segment = np.arange(src.size) - np.repeat(graph.indptr[:-1], graph.degrees)
    qualifies = sorted_vals >= (pos_in_segment + 1)
    if qualifies.any():
        return np.bincount(sorted_src[qualifies], minlength=n).astype(np.int64)
    return out


class KCore(VertexProgram):
    """Coreness of every vertex (state converges to the core number)."""

    name = "k-core"
    max_iterations = 10_000

    def initialize(self, graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
        return graph.degrees.astype(np.float64), np.ones(graph.num_vertices, dtype=bool)

    def iterate(
        self, graph: CSRGraph, state: np.ndarray, active: np.ndarray, iteration: int
    ) -> tuple[np.ndarray, np.ndarray]:
        new_state = _segment_h_index(graph, state.astype(np.int64)).astype(np.float64)
        # H-operator is monotone non-increasing from the degree start.
        changed = new_state != state
        next_active = np.zeros_like(active)
        next_active[changed] = True
        return new_state, next_active
