"""Vertex programs for the Gemini-like engine."""

from repro.engines.gemini.apps.bfs import BFS
from repro.engines.gemini.apps.cc import ConnectedComponents
from repro.engines.gemini.apps.degree import DegreeCentrality
from repro.engines.gemini.apps.hits import HITS
from repro.engines.gemini.apps.kcore import KCore
from repro.engines.gemini.apps.lpa import LabelPropagation
from repro.engines.gemini.apps.pagerank import PageRank
from repro.engines.gemini.apps.sssp import SSSP
from repro.engines.gemini.apps.triangles import TriangleCount

__all__ = [
    "PageRank",
    "ConnectedComponents",
    "BFS",
    "SSSP",
    "DegreeCentrality",
    "HITS",
    "LabelPropagation",
    "KCore",
    "TriangleCount",
]
