"""Walk-corpus persistence.

DeepWalk/node2vec pipelines write their walk traces to disk as one
whitespace-separated line per walk — the exact input format skip-gram
trainers (word2vec, gensim) consume. These helpers convert between the
engine's padded path matrix (−1 past each walk's end) and that format.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import GraphFormatError

__all__ = ["write_walk_corpus", "read_walk_corpus"]


def write_walk_corpus(paths: np.ndarray, path: str | os.PathLike) -> int:
    """Write one line per walk; returns the number of lines written.

    ``paths`` is the ``walkers × (steps + 1)`` matrix produced by a
    :class:`~repro.engines.knightking.engine.WalkEngine` run with
    ``record_paths=True``; −1 entries mark the end of shorter walks.
    """
    paths = np.asarray(paths)
    if paths.ndim != 2:
        raise GraphFormatError("paths must be a 2-D walkers × steps matrix")
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for row in paths:
            trace = row[row >= 0]
            if trace.size == 0:
                continue
            fh.write(" ".join(str(int(v)) for v in trace))
            fh.write("\n")
            count += 1
    return count


def read_walk_corpus(path: str | os.PathLike) -> np.ndarray:
    """Read a corpus back into the padded matrix format."""
    walks: list[list[int]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                walks.append([int(tok) for tok in line.split()])
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: non-integer vertex id") from exc
    if not walks:
        return np.empty((0, 0), dtype=np.int64)
    width = max(len(w) for w in walks)
    out = np.full((len(walks), width), -1, dtype=np.int64)
    for i, w in enumerate(walks):
        out[i, : len(w)] = w
    return out
